"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
