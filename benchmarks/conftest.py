"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  The experiments take
seconds to minutes each, so every benchmark runs exactly once
(``pedantic(rounds=1, iterations=1)``) — the interesting output is the
printed report and the shape assertions, not the timing statistics.

Scale: benchmarks use the QUICK profile for contiguity experiments and
the DEFAULT (calibrated) profile for the hardware figures unless
``REPRO_BENCH_SCALE`` overrides it (``test`` | ``quick`` | ``default``).
"""

import os

import pytest

from repro.sim.config import DEFAULT_SCALE, QUICK_SCALE, TEST_SCALE

_SCALES = {
    "test": TEST_SCALE,
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
}


def _pick(env_default: str):
    name = os.environ.get("REPRO_BENCH_SCALE", env_default)
    return _SCALES[name]


def active_scale_name() -> str:
    """The scale profile name benchmarks in this session resolve to."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def contiguity_scale():
    """Scale for allocation/contiguity experiments (Figs 1,7-12, tables)."""
    return _pick("quick")


@pytest.fixture(scope="session")
def hw_scale():
    """Scale for the calibrated hardware figures (Fig 13/14, Table VII)."""
    return _pick("quick")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    Results are tagged with the active scale profile so saved timings
    from different ``REPRO_BENCH_SCALE`` settings are never compared
    against each other.
    """
    benchmark.extra_info["scale"] = active_scale_name()
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
