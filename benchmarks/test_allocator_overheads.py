"""Allocator micro-benchmarks: the paper's §III-B bookkeeping claims.

These measure the *simulator's* allocator throughput, but the asserted
property mirrors the paper's: maintaining the contiguity map (updates
on every MAX_ORDER list insertion/removal) and sorting the MAX_ORDER
free list must not meaningfully slow the allocation path.
"""

import random
import time

from repro.mm.buddy import BuddyAllocator
from repro.mm.zone import Zone

N_PAGES = 64 * 1024
MAX_ORDER = 10
OPS = 4000


def churn_ops(alloc, free, rng):
    held = []
    for _ in range(OPS):
        if held and rng.random() < 0.5:
            pfn, order = held.pop(rng.randrange(len(held)))
            free(pfn, order)
        else:
            order = rng.randint(0, 9)
            try:
                held.append((alloc(order), order))
            except Exception:
                continue
    for pfn, order in held:
        free(pfn, order)


def _time_zone(**zone_kwargs) -> float:
    best = float("inf")
    for trial in range(3):
        zone = Zone(0, 0, N_PAGES, max_order=MAX_ORDER, **zone_kwargs)
        rng = random.Random(1234)
        started = time.perf_counter()
        churn_ops(zone.alloc_block, zone.free_block, rng)
        best = min(best, time.perf_counter() - started)
    return best


def _time_bare_buddy() -> float:
    best = float("inf")
    for trial in range(3):
        buddy = BuddyAllocator(0, N_PAGES, max_order=MAX_ORDER)
        rng = random.Random(1234)
        started = time.perf_counter()
        churn_ops(buddy.alloc_block, buddy.free_block, rng)
        best = min(best, time.perf_counter() - started)
    return best


def test_contiguity_map_overhead(benchmark):
    """§III-B: 'keeping the map up to date does not affect performance'."""

    def run():
        bare = _time_bare_buddy()  # no contiguity-map listener
        mapped = _time_zone()  # zone wires the map to the buddy
        return bare, mapped

    bare, mapped = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = mapped / bare - 1.0
    print(f"\nalloc churn: bare {bare * 1e3:.1f}ms, "
          f"with map {mapped * 1e3:.1f}ms ({overhead:+.1%})")
    # Generous bound: interpreter noise aside, the incremental map must
    # stay within a modest constant factor of the raw buddy.
    assert mapped < bare * 1.6


def test_sorted_max_order_list_overhead(benchmark):
    """The sorted MAX_ORDER list is a bisect insert: near-free."""

    def run():
        unsorted = _time_zone(sorted_max_order=False)
        sorted_list = _time_zone(sorted_max_order=True)
        return unsorted, sorted_list

    unsorted, sorted_list = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nalloc churn: unsorted {unsorted * 1e3:.1f}ms, "
          f"sorted {sorted_list * 1e3:.1f}ms")
    assert sorted_list < unsorted * 1.5


def test_targeted_allocation_throughput(benchmark):
    """CA's alloc_target must stay O(max_order) per request."""

    def run():
        zone = Zone(0, 0, N_PAGES, max_order=MAX_ORDER)
        started = time.perf_counter()
        granted = 0
        for pfn in range(0, N_PAGES, 2):
            granted += zone.alloc_target(pfn, 0)
        return time.perf_counter() - started, granted

    elapsed, granted = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = granted / elapsed
    print(f"\ntargeted allocs: {granted} in {elapsed * 1e3:.1f}ms "
          f"({rate / 1e3:.0f}k/s)")
    assert granted == N_PAGES // 2
    assert rate > 20_000  # sanity floor for the simulator
