"""Table VII: unsafe-load estimation."""

from repro.experiments import table7

from conftest import run_once


def test_table7_usl_estimation(benchmark, hw_scale):
    result = run_once(benchmark, table7.run, scale=hw_scale)
    print("\n" + result.report())
    g = result.geomean_row()
    # TLB misses trigger speculation far less often than branches...
    assert g["dtlb_misses_per_instruction"] * 10 < g["branches_per_instruction"]
    # ...so SpOT's unsafe-load mass stays well below Spectre's even
    # though each SpOT window is ~4x longer (paper: ~3% vs ~16.5%).
    assert g["spot_usl_per_instruction"] * 3 < g["spectre_usl_per_instruction"]
    # And it stays small in absolute terms (mitigation cost < 2%).
    assert g["spot_usl_per_instruction"] < 0.10
