"""Table V: fault counts and 99th-percentile latency."""

from repro.experiments import table5

from conftest import run_once


def test_table5_faults_and_latency(benchmark, contiguity_scale):
    result = run_once(benchmark, table5.run, scale=contiguity_scale)
    print("\n" + result.report())
    thp = result.rows["thp"]
    ca = result.rows["ca"]
    eager = result.rows["eager"]
    # Demand paging: THP and CA take the same number of faults.
    assert ca.total_faults == thp.total_faults
    # CA's placement search barely moves the tail (paper: 515 -> 526us).
    assert ca.p99_latency_us < thp.p99_latency_us * 1.2
    # Eager: orders of magnitude fewer faults, but a huge tail.
    assert eager.total_faults * 5 < thp.total_faults
    assert eager.p99_latency_us > thp.p99_latency_us * 20
