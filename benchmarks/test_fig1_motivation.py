"""Fig. 1(b,c): motivation — regenerate and check the paper's shapes."""

from repro.experiments import fig1

from conftest import run_once


def test_fig1b_eager_decays_under_aging(benchmark, contiguity_scale):
    """Eager paging loses coverage over consecutive runs; CA sustains it."""
    result = run_once(benchmark, fig1.run_fig1b, scale=contiguity_scale, runs=8)
    print("\n" + result.report())
    # Paper shape: the 32-largest (scaled: 8-largest) coverage of eager
    # paging decays run over run while CA paging resists longer.
    assert result.decay("eager") > 0.15
    assert result.decay("ca") < result.decay("eager")
    # CA starts (and stays longer) at full coverage.
    assert result.coverage_by_run["ca"][0] > 0.95


def test_fig1c_ranger_coalesces_late(benchmark, contiguity_scale):
    """Ranger's migrations lag the allocation phase; CA is instant."""
    result = run_once(benchmark, fig1.run_fig1c, scale=contiguity_scale)
    print("\n" + result.report())
    ca = result.series_by_policy["ca"]
    ranger = result.series_by_policy["ranger"]
    # CA has high coverage already during allocation.
    mid_ca = ca[len(ca) // 2][1]
    mid_ranger = ranger[len(ranger) // 2][1]
    assert mid_ca > 0.9
    assert mid_ranger < mid_ca
    # Ranger eventually catches up in the steady state.
    assert ranger[-1][1] > 0.8
