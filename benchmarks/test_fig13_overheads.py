"""Fig. 13: execution-time overheads of address translation."""

from repro.experiments import fig13

from conftest import run_once


def test_fig13_translation_overheads(benchmark, hw_scale):
    result = run_once(benchmark, fig13.run, scale=hw_scale)
    print("\n" + result.report())

    # 4K paging is far worse than THP in both worlds.
    assert result.mean("4K") > result.mean("THP") * 5
    assert result.mean("4K+4K") > result.mean("THP+THP") * 5
    # Nested paging magnifies the THP overhead (paper: ~2.4x).
    assert result.mean("THP+THP") > result.mean("THP") * 1.5
    # SpOT removes most of the nested-THP overhead (paper: 16.5 -> 0.9%).
    assert result.mean("SpOT") < result.mean("THP+THP") * 0.5
    # vRMM is nearly free; DS eliminates the penalty inside the segment.
    assert result.mean("vRMM") < 0.01
    assert result.mean("DS") < 0.01
    # Ordering on every workload: SpOT never beats vRMM/DS, all beat vTHP.
    for wl in {w for w, _ in result.overheads}:
        assert result.overheads[(wl, "vRMM")] <= result.overheads[(wl, "SpOT")] + 1e-9
        assert result.overheads[(wl, "SpOT")] <= result.overheads[(wl, "THP+THP")] + 1e-9
