"""Extension experiments: the paper's §VII claims made testable."""

from repro.experiments import ext_multivm, ext_shadow

from conftest import run_once


def test_ext_shadow_crossover(benchmark, contiguity_scale):
    """Shadow paging trades walk cost for sync cost; SpOT helps both."""
    result = run_once(benchmark, ext_shadow.run, scale=contiguity_scale)
    print("\n" + result.report())
    for row in result.rows.values():
        # Shadow walks are strictly cheaper than nested walks.
        assert row.shadow_walk_overhead < row.nested_overhead
        # SpOT compresses the steady-state cost under both techniques
        # (it predicts gVA->hPA offsets regardless of table format).
        assert row.nested_spot_overhead <= row.nested_overhead + 1e-9
        assert row.shadow_spot_overhead <= row.nested_spot_overhead + 1e-9
    # The classic trade-off: at least one workload on each side.
    nested_wins = [
        r for r in result.rows.values() if r.nested_overhead < r.shadow_overhead
    ]
    shadow_wins = [
        r for r in result.rows.values() if r.shadow_overhead < r.nested_overhead
    ]
    assert nested_wins and shadow_wins


def test_ext_vhc_mechanism(benchmark, contiguity_scale):
    """Anchored coalescing works but pays for alignment in entries."""
    from repro.experiments import ext_vhc

    def run():
        result = ext_vhc.run(scale=contiguity_scale)
        sweep = ext_vhc.distance_sweep(scale=contiguity_scale)
        return result, sweep

    result, sweep = run_once(benchmark, run)
    print("\n" + result.report())
    print(f"xsbench miss rate by anchor distance: {sweep}")
    for row in result.rows.values():
        # Coalesced entries beat plain (huge-entry) TLB reach...
        assert row.vhc_miss_rate <= row.baseline_miss_rate + 1e-9
        # ...and cover less per entry than a whole-run range would
        # (the Table I structural penalty, bounded by the distance).
        assert row.avg_pages_per_entry <= 2 * row.anchor_distance
    # The alignment penalty: reach collapses as the distance shrinks.
    distances = sorted(sweep)
    assert sweep[distances[0]] >= sweep[distances[-1]]


def test_ext_multivm_consolidation(benchmark, contiguity_scale):
    """A CA host keeps consolidated VMs' backings apart."""
    result = run_once(benchmark, ext_multivm.run, scale=contiguity_scale)
    print("\n" + result.report())
    assert result.worst_mappings("ca") * 2 <= result.worst_mappings("thp")
    for (policy, vm), cov in result.coverage_32.items():
        if policy == "ca":
            assert cov > 0.9
