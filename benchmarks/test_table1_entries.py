"""Table I: vRMM ranges and vHC anchor entries for 99% coverage."""

from repro.experiments import table1

from conftest import run_once


def test_table1_entry_counts(benchmark, contiguity_scale):
    result = run_once(benchmark, table1.run, scale=contiguity_scale)
    print("\n" + result.report())
    ca_ranges, ca_vhc = result.geomean("ca")
    thp_ranges, thp_vhc = result.geomean("thp")
    # CA paging cuts the range count by about an order of magnitude.
    assert ca_ranges * 4 < thp_ranges
    # Alignment restrictions make vHC need more entries than vRMM.
    assert ca_vhc > ca_ranges
    # Per-workload sanity: every CA row beats its THP row on ranges.
    for wl in {r.workload for r in result.rows}:
        assert result.row(wl, "ca").ranges <= result.row(wl, "thp").ranges
