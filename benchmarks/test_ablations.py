"""Ablations of the design choices DESIGN.md calls out.

Each benchmark isolates one knob of CA paging or SpOT and checks the
direction the paper's design argues for.
"""

import pytest

from repro.experiments import common
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.hw.walk import WalkLatencyModel
from repro.sim.config import HardwareConfig
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native
from repro.units import HUGE_PAGES

from conftest import run_once


def _contiguity_under_pressure(scale, policy_kwargs, hog=0.4, workload="xsbench"):
    machine = build_machine("ca", common.system_config(scale), **policy_kwargs)
    machine.hog(hog)
    wl = common.workload(workload, scale)
    return run_native(machine, wl, RunOptions(sample_every=None))


def _spot_state(scale, workload_name="svm"):
    """A CA memory state + trace for SpOT parameter sweeps."""
    machine = build_machine("ca", common.system_config(scale))
    wl = common.workload(workload_name, scale)
    r = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
    return machine, wl, r


class TestPlacementPolicyAblation:
    def test_placement_policies(self, benchmark, contiguity_scale):
        """next-fit (paper) vs first-fit vs best-fit placement."""

        def run():
            results = {}
            for placement in ("next_fit", "first_fit", "best_fit"):
                r = _contiguity_under_pressure(
                    contiguity_scale, {"placement": placement}
                )
                results[placement] = r.final.mappings_99
            return results

        results = run_once(benchmark, run)
        print(f"\nmaps99 by placement: {results}")
        # All placements must produce usable contiguity; next-fit (the
        # paper's choice for racing deferral) must not be the worst by
        # a large margin.
        worst = max(results.values())
        assert results["next_fit"] <= worst
        assert all(v < 500 for v in results.values())


class TestOffsetFifoAblation:
    def test_single_offset_vs_64(self, benchmark, contiguity_scale):
        """Sub-VMA placements need the 64-offset FIFO under pressure."""

        def run():
            results = {}
            for max_offsets in (1, 64):
                machine = build_machine("ca", common.system_config(contiguity_scale))
                machine.hog(0.4)
                kern = machine.kernel
                wl = common.workload("pagerank", contiguity_scale)
                proc = kern.create_process("t")
                vmas = []
                for plan in wl.vma_plans:
                    vma = kern.mmap(proc, plan.n_pages, name=plan.name)
                    vma.max_offsets = max_offsets
                    vmas.append(vma)
                for step in wl.alloc_steps():
                    if step.kind == "anon":
                        kern.touch_range(
                            proc,
                            vmas[step.index].start_vpn + step.start_page,
                            step.n_pages,
                        )
                results[max_offsets] = len(proc.space.runs)
                kern.exit_process(proc)
            return results

        results = run_once(benchmark, run)
        print(f"\nruns by max_offsets: {results}")
        # One offset per VMA cannot describe a footprint scattered over
        # many sub-VMA placements: fragmentation must not improve.
        assert results[64] <= results[1]


class TestSortedFreelistAblation:
    def test_sorted_max_order_restrains_fragmentation(
        self, benchmark, contiguity_scale
    ):
        """The paper sorts the MAX_ORDER list so fallback 4K allocations
        chew one end of memory instead of scattering (§III-C)."""

        def run():
            from repro.mm.free_stats import free_block_histogram

            largest = {}
            for sorted_list in (False, True):
                cfg = common.system_config(
                    contiguity_scale, sorted_max_order=sorted_list
                )
                machine = build_machine("thp", cfg)
                kern = machine.kernel
                # Allocate and free many 4K pages between hugepage
                # allocations: the fallback-fragmentation pattern.
                procs = []
                for i in range(4):
                    proc = kern.create_process(f"p{i}")
                    vma = kern.mmap(proc, HUGE_PAGES * 8)
                    kern.touch_range(proc, vma.start_vpn, vma.n_pages)
                    small = kern.create_process(f"s{i}")
                    svma = kern.mmap(small, 64)
                    kern.touch_range(small, svma.start_vpn, 64)
                    procs.append((proc, small))
                for proc, small in procs[::2]:
                    kern.exit_process(proc)
                largest[sorted_list] = free_block_histogram(
                    machine.mem
                ).largest_run_pages()
            return largest

        largest = run_once(benchmark, run)
        print(f"\nlargest free run, sorted vs not: {largest}")
        assert largest[True] >= largest[False]


class TestSpotAblations:
    def test_confidence_counter(self, benchmark, hw_scale):
        """The 2-bit counter trades a few correct predictions for far
        fewer pipeline flushes on irregular workloads."""

        def run():
            machine, wl, r = _spot_state(hw_scale, "hashjoin")
            trace = wl.trace(100_000)
            out = {}
            for conf in (True, False):
                hw = HardwareConfig(spot_confidence=conf)
                view = TranslationView.native(r.process)
                sim = MmuSimulator(view, hw).run(
                    trace, r.vma_start_vpns, workload=wl
                )
                out[conf] = (sim.spot_mispredict, sim.spot_correct)
            machine.kernel.exit_process(r.process)
            return out

        out = run_once(benchmark, run)
        print(f"\n(mispredicts, correct) with/without confidence: {out}")
        assert out[True][0] <= out[False][0]

    def test_table_size_sweep(self, benchmark, hw_scale):
        """More entries help until the hot-PC set fits (paper: 32-64)."""

        def run():
            machine, wl, r = _spot_state(hw_scale, "svm")
            trace = wl.trace(100_000)
            correct = {}
            for entries in (4, 32, 128):
                hw = HardwareConfig(spot_entries=entries, spot_ways=4)
                view = TranslationView.native(r.process)
                sim = MmuSimulator(view, hw).run(
                    trace, r.vma_start_vpns, workload=wl
                )
                correct[entries] = sim.spot_breakdown()["correct"]
            machine.kernel.exit_process(r.process)
            return correct

        correct = run_once(benchmark, run)
        print(f"\ncorrect fraction by table size: {correct}")
        assert correct[32] >= correct[4]
        # Diminishing returns past the hot-PC set.
        assert correct[128] <= correct[32] + 0.05

    def test_contig_threshold_sweep(self, benchmark, hw_scale):
        """The fill filter (32 pages in the paper): too high starves
        the table, zero admits thrash."""

        def run():
            machine, wl, r = _spot_state(hw_scale, "svm")
            trace = wl.trace(100_000)
            out = {}
            for threshold in (1, 32, 1 << 30):
                view = TranslationView.native(
                    r.process, contig_threshold=threshold
                )
                sim = MmuSimulator(view, HardwareConfig()).run(
                    trace, r.vma_start_vpns, workload=wl
                )
                out[threshold] = sim.spot_breakdown()["correct"]
            machine.kernel.exit_process(r.process)
            return out

        out = run_once(benchmark, run)
        print(f"\ncorrect fraction by contig threshold: {out}")
        # An absurdly high threshold blocks every fill: no predictions.
        assert out[1 << 30] == 0.0
        assert out[32] > 0.5

    def test_five_level_nested_costs(self, benchmark, hw_scale):
        """5-level paging (intro): nested walks get ~45% costlier,
        SpOT's hidden fraction grows accordingly."""

        def run():
            model = WalkLatencyModel()
            cost4 = model.cycles(model.nested_references(3, 3))
            cost5 = model.cycles(model.nested_references(4, 4))
            return cost4, cost5

        cost4, cost5 = run_once(benchmark, run)
        print(f"\nnested THP walk: 4-level {cost4:.0f} vs 5-level {cost5:.0f} cycles")
        assert 1.3 < cost5 / cost4 < 1.8
