"""Fig. 14: SpOT prediction-outcome breakdown."""

from repro.experiments import fig14

from conftest import run_once


def test_fig14_spot_breakdown(benchmark, hw_scale):
    result = run_once(benchmark, fig14.run, scale=hw_scale)
    print("\n" + result.report())
    for wl, b in result.breakdown.items():
        # Fractions are a proper distribution of all misses.
        assert abs(sum(b.values()) - 1.0) < 1e-9
        # The confidence mechanism keeps flushes rare: mispredictions
        # stay in the single digits everywhere (paper: max ~4%).
        assert b["mispredict"] < 0.15
    # Streaming workloads predict almost everything correctly.
    assert result.correct("pagerank") > 0.9
    assert result.correct("svm") > 0.85
