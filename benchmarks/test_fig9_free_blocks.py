"""Fig. 9: free-block size distribution after a benchmark batch."""

from repro.experiments import fig9

from conftest import run_once


def test_fig9_fragmentation_restraint(benchmark, contiguity_scale):
    result = run_once(benchmark, fig9.run, scale=contiguity_scale)
    print("\n" + result.report())
    # CA leaves a significantly larger share of free memory in the
    # biggest bucket than default paging.
    assert result.huge_fraction("ca") > result.huge_fraction("thp") + 0.1
    # Sanity: fractions are proper distributions.
    for hist in result.histograms.values():
        assert abs(sum(hist.fractions().values()) - 1.0) < 1e-6
