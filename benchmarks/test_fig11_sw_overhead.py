"""Fig. 11: software runtime overheads normalized to THP."""

from repro.experiments import fig11

from conftest import run_once


def test_fig11_software_overheads(benchmark, contiguity_scale):
    result = run_once(benchmark, fig11.run, scale=contiguity_scale)
    print("\n" + result.report())
    # CA paging and eager paging add (almost) no runtime overhead.
    assert result.mean_overhead("ca") < 0.01
    assert result.mean_overhead("eager") < 0.02
    # Ranger pays for its migrations (paper: ~3%).
    assert 0.005 < result.mean_overhead("ranger") < 0.10
    # TLB-friendly workloads are unaffected by CA paging (paper §VI-A).
    assert abs(result.normalized[("tlb_friendly", "ca")] - 1.0) < 0.01
