"""Table VI: memory bloat relative to 4K demand paging."""

from repro.experiments import table6

from conftest import run_once


def test_table6_bloat(benchmark, contiguity_scale):
    result = run_once(benchmark, table6.run, scale=contiguity_scale)
    print("\n" + result.report())
    for wl in ("svm", "pagerank", "hashjoin", "xsbench", "bt"):
        # CA builds on THP and does not change page-size decisions.
        assert result.bloat[(wl, "ca")] == result.bloat[(wl, "thp")]
        # Ingens promotes only utilized regions: bloat <= THP.
        assert result.bloat[(wl, "ingens")] <= result.bloat[(wl, "thp")]
        # Eager backs whole VMAs: bloat >= THP everywhere.
        assert result.bloat[(wl, "eager")] >= result.bloat[(wl, "thp")]
    # hashjoin's over-reserved arena is the standout (paper: ~47%).
    assert result.bloat_fraction("hashjoin", "eager") > 0.25
    # THP-level bloat stays tiny (paper: <= 0.1%).
    assert result.bloat_fraction("pagerank", "thp") < 0.02
