"""Fig. 10: two concurrent SVM instances."""

from repro.experiments import fig10

from conftest import run_once


def test_fig10_multiprogrammed_svm(benchmark, contiguity_scale):
    result = run_once(benchmark, fig10.run, scale=contiguity_scale)
    print("\n" + result.report())
    ca = result.final_mappings("ca")
    thp = result.final_mappings("thp")
    # Next-fit keeps the two CA footprints apart: both instances end
    # with very few mappings, far below default paging.
    assert max(ca) * 2 <= max(thp)
    # Neither CA instance starves the other (within 3x of each other).
    assert max(ca) <= 3 * max(1, min(ca))
