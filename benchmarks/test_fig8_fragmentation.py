"""Fig. 8: contiguity under external fragmentation (hog sweep)."""

from repro.experiments import fig8

from conftest import run_once


def test_fig8_fragmentation_sweep(benchmark, contiguity_scale):
    result = run_once(benchmark, fig8.run, scale=contiguity_scale)
    print("\n" + result.report())

    # THP is indifferent to >2MB-granularity fragmentation.
    thp_0 = result.geomean_row(0.0, "thp")[2]
    thp_50 = result.geomean_row(0.50, "thp")[2]
    assert abs(thp_50 - thp_0) < 0.3 * thp_0 + 5

    # Eager paging degrades with pressure; CA stays ahead of it.
    eager_0 = result.geomean_row(0.0, "eager")[2]
    eager_50 = result.geomean_row(0.50, "eager")[2]
    assert eager_50 > eager_0 * 1.5
    ca_50_cov32 = result.geomean_row(0.50, "ca")[0]
    eager_50_cov32 = result.geomean_row(0.50, "eager")[0]
    assert ca_50_cov32 >= eager_50_cov32 - 0.02

    # CA still covers nearly everything with 128 mappings at hog-50
    # (the paper reports ~94%).
    assert result.geomean_row(0.50, "ca")[1] > 0.9

    # CA tracks the ideal baseline across the sweep.
    for pressure in (0.0, 0.25, 0.50):
        ca = result.geomean_row(pressure, "ca")[0]
        ideal = result.geomean_row(pressure, "ideal")[0]
        assert ca >= ideal - 0.1
