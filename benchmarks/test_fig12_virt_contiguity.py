"""Fig. 12: virtualized (2D) contiguity."""

from repro.experiments import fig12

from conftest import run_once


def test_fig12_virtualized_contiguity(benchmark, contiguity_scale):
    result = run_once(benchmark, fig12.run, scale=contiguity_scale)
    print("\n" + result.report())
    # CA in both dimensions cuts mappings-for-99% by roughly an order
    # of magnitude versus default paging (paper: ~90 vs ~thousands).
    assert result.mappings_99("ca") * 4 < result.mappings_99("thp")
    # Mean coverage of the 32 largest 2D mappings stays high with CA
    # (paper: ~86%).
    assert result.mean_coverage_32("ca") > 0.75
    # ... and clearly above default paging's.
    assert result.mean_coverage_32("ca") > result.mean_coverage_32("thp")
