"""Fig. 7: native contiguity without memory pressure."""

from repro.experiments import fig7

from conftest import run_once


def test_fig7_native_contiguity(benchmark, contiguity_scale):
    result = run_once(benchmark, fig7.run, scale=contiguity_scale)
    print("\n" + result.report())

    # Orders of magnitude: CA needs far fewer mappings than THP/Ingens.
    assert result.mappings_99("ca") * 5 < result.mappings_99("thp")
    assert result.mappings_99("ca") * 5 < result.mappings_99("ingens")
    # CA is comparable to eager pre-allocation and the ideal bound.
    assert result.mappings_99("ca") <= result.mappings_99("eager") * 3
    # Ranger lands between the defaults and the allocation-time schemes.
    assert result.mappings_99("ranger") < result.mappings_99("thp")

    # Per-workload: CA's coverage of the 128 largest mappings is full
    # (the paper's ~99% coverage with ~27 mappings).
    for wl in ("svm", "pagerank", "hashjoin", "xsbench"):
        assert result.row(wl, "ca").average.coverage_128 > 0.95
