"""Unit tests for the baseline policies (eager, ingens, ranger, ideal)."""

import pytest

from repro.policies import make_policy
from repro.units import HUGE_ORDER, HUGE_PAGES

from tests.policies.conftest import machine


class TestEager:
    def test_whole_vma_backed_at_mmap(self):
        m = machine("eager")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        # No faults were taken, yet everything is mapped.
        assert proc.resident_pages == vma.n_pages
        assert kern.major_faults >= 1  # pre-allocation events recorded

    def test_fresh_machine_gives_one_run(self):
        m = machine("eager", aged=False)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 16)
        assert len(proc.space.runs) == 1

    def test_fault_count_far_below_demand_paging(self):
        m_eager = machine("eager")
        m_thp = machine("thp")
        for m in (m_eager, m_thp):
            proc = m.kernel.create_process("t")
            vma = m.kernel.mmap(proc, HUGE_PAGES * 16)
            m.kernel.touch_range(proc, vma.start_vpn, vma.n_pages)
        assert m_eager.kernel.major_faults < m_thp.kernel.major_faults / 4

    def test_eager_latency_tail_is_heavy(self):
        m = machine("eager")
        proc = m.kernel.create_process("t")
        m.kernel.mmap(proc, HUGE_PAGES * 32)
        worst_eager = max(m.kernel.fault_latencies_us())
        m2 = machine("thp")
        proc2 = m2.kernel.create_process("t")
        vma2 = m2.kernel.mmap(proc2, HUGE_PAGES * 32)
        m2.kernel.touch_range(proc2, vma2.start_vpn, vma2.n_pages)
        worst_thp = max(m2.kernel.fault_latencies_us())
        assert worst_eager > worst_thp * 8

    def test_fragmentation_shatters_eager_runs(self):
        m = machine("eager")
        m.hog(0.4)
        proc = m.kernel.create_process("t")
        vma = m.kernel.mmap(proc, HUGE_PAGES * 16)
        assert proc.resident_pages == vma.n_pages
        assert len(proc.space.runs) > 1

    def test_bloat_includes_untouched_pages(self):
        m = machine("eager")
        proc = m.kernel.create_process("t")
        vma = m.kernel.mmap(proc, HUGE_PAGES * 8)
        m.kernel.touch_range(proc, vma.start_vpn, HUGE_PAGES)  # touch 1/8
        assert proc.resident_pages == vma.n_pages
        assert proc.touched_pages == HUGE_PAGES


class TestIngens:
    def test_faults_are_base_pages(self):
        m = machine("ingens")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        result = kern.fault(proc, vma.start_vpn)
        assert result.order == 0

    def test_promotion_after_utilization(self):
        m = machine("ingens")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        kern.touch_range(proc, vma.start_vpn, HUGE_PAGES)  # 100% of region 0
        kern.run_daemons()
        pte = proc.space.page_table.lookup(vma.start_vpn)
        assert pte.huge
        assert kern.policy.stats.promoted_huge_pages == 1

    def test_underutilized_region_not_promoted(self):
        m = machine("ingens")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        kern.touch_range(proc, vma.start_vpn, HUGE_PAGES // 2)  # 50% < 90%
        kern.run_daemons()
        pte = proc.space.page_table.lookup(vma.start_vpn)
        assert not pte.huge
        # Bloat stays zero: only touched pages are resident.
        assert proc.resident_pages == HUGE_PAGES // 2

    def test_promotion_counts_migrations(self):
        m = machine("ingens")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        kern.touch_range(proc, vma.start_vpn, HUGE_PAGES)
        kern.run_daemons()
        assert kern.policy.stats.migrations == HUGE_PAGES

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_policy("ingens", util_threshold=0.0)


class TestRanger:
    def test_epochs_coalesce_footprint(self):
        m = machine("ranger", migrations_per_epoch=HUGE_PAGES * 4)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        before = len(proc.space.runs)
        for _ in range(10):
            kern.run_daemons()
        after = len(proc.space.runs)
        assert after <= before
        assert after <= 2  # nearly fully coalesced

    def test_migration_budget_limits_progress(self):
        m = machine("ranger", migrations_per_epoch=HUGE_PAGES)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        kern.run_daemons()
        # One epoch with a one-huge-page budget cannot coalesce 8 regions.
        assert kern.policy.stats.migrations <= HUGE_PAGES

    def test_migrations_counted_and_shootdowns_fire(self):
        m = machine("ranger", migrations_per_epoch=HUGE_PAGES * 8)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        shootdowns_before = kern.tlb_shootdowns
        kern.run_daemons()
        if kern.policy.stats.migrations:
            assert kern.tlb_shootdowns > shootdowns_before

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            make_policy("ranger", migrations_per_epoch=0)

    def test_forget_drops_anchors(self):
        m = machine("ranger")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        kern.run_daemons()
        kern.policy.forget(proc)
        assert not kern.policy._anchors


class TestIdeal:
    def test_reservation_gives_single_run(self):
        m = machine("ideal")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 16)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        assert len(proc.space.runs) == 1

    def test_reservations_do_not_collide(self):
        m = machine("ideal")
        kern = m.kernel
        proc = kern.create_process("t")
        a = kern.mmap(proc, HUGE_PAGES * 8)
        b = kern.mmap(proc, HUGE_PAGES * 8)
        for i in range(8):
            kern.fault(proc, a.start_vpn + i * HUGE_PAGES)
            kern.fault(proc, b.start_vpn + i * HUGE_PAGES)
        assert len(proc.space.runs) == 2

    def test_snapshot_is_pre_execution_state(self):
        m = machine("ideal")
        m.hog(0.5)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 16)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        # Under fragmentation ideal still maps everything, in the best
        # achievable number of pieces given the snapshot.
        assert proc.space.runs.total_pages == vma.n_pages
