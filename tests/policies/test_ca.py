"""Unit tests for CA paging behaviour."""

import pytest

from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.flags import DEFAULT_ANON

from tests.policies.conftest import machine


def touch_all(kern, proc, vma):
    kern.touch_range(proc, vma.start_vpn, vma.n_pages)


class TestSingleVma:
    def test_whole_vma_becomes_one_run(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 16)
        touch_all(kern, proc, vma)
        assert proc.space.runs.run_length_at(vma.start_vpn) == vma.n_pages
        assert len(proc.space.runs) == 1

    def test_thp_baseline_scatters_by_contrast(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 16)
        touch_all(kern, proc, vma)
        # An aged machine's randomized lists scatter THP allocations.
        assert len(proc.space.runs) > 1

    def test_offset_recorded_on_first_fault(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 4)
        kern.fault(proc, vma.start_vpn)
        assert len(vma.offsets) == 1
        pfn = proc.space.translate(vma.start_vpn)
        assert vma.offsets[0].offset == vma.start_vpn - pfn

    def test_faults_in_any_order_stay_contiguous(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        order = [3, 0, 6, 1, 7, 2, 5, 4]
        for i in order:
            kern.fault(proc, vma.start_vpn + i * HUGE_PAGES)
        assert len(proc.space.runs) == 1

    def test_middle_first_fault_still_fits_whole_vma(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.fault(proc, vma.start_vpn + 4 * HUGE_PAGES)  # first touch mid-VMA
        touch_all(kern, proc, vma)
        assert len(proc.space.runs) == 1


class TestMultiVma:
    def test_two_vmas_get_disjoint_regions(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        a = kern.mmap(proc, HUGE_PAGES * 8)
        b = kern.mmap(proc, HUGE_PAGES * 8)
        # Interleave faults between the VMAs.
        for i in range(8):
            kern.fault(proc, a.start_vpn + i * HUGE_PAGES)
            kern.fault(proc, b.start_vpn + i * HUGE_PAGES)
        assert len(proc.space.runs) == 2

    def test_two_processes_do_not_interfere(self):
        m = machine("ca")
        kern = m.kernel
        p1 = kern.create_process("a")
        p2 = kern.create_process("b")
        v1 = kern.mmap(p1, HUGE_PAGES * 8)
        v2 = kern.mmap(p2, HUGE_PAGES * 8)
        for i in range(8):
            kern.fault(p1, v1.start_vpn + i * HUGE_PAGES)
            kern.fault(p2, v2.start_vpn + i * HUGE_PAGES)
        assert len(p1.space.runs) == 1
        assert len(p2.space.runs) == 1


class TestFragmentation:
    def test_sub_vma_placement_under_pressure(self):
        m = machine("ca")
        m.hog(0.5)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 24)
        touch_all(kern, proc, vma)
        # The footprint no longer fits one cluster but must still be
        # fully mapped, in a handful of sub-VMA runs.
        assert proc.space.runs.total_pages == vma.n_pages
        assert len(vma.offsets) >= 1

    def test_ca_beats_thp_under_pressure(self):
        results = {}
        for name in ("ca", "thp"):
            m = machine(name)
            m.hog(0.4)
            kern = m.kernel
            proc = kern.create_process("t")
            vma = kern.mmap(proc, HUGE_PAGES * 24)
            touch_all(kern, proc, vma)
            results[name] = len(proc.space.runs)
        assert results["ca"] < results["thp"]

    def test_offsets_bounded_by_fifo(self):
        m = machine("ca")
        m.hog(0.6, block_order=8)  # fine-grained fragmentation
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 32)
        touch_all(kern, proc, vma)
        assert len(vma.offsets) <= 64


class TestFallbacks:
    def test_4k_failure_falls_back_without_offset(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 64)  # too small for huge faults
        kern.fault(proc, vma.start_vpn)
        offsets_after_first = len(vma.offsets)
        # Occupy the next CA target so the targeted allocation fails.
        next_target = proc.space.translate(vma.start_vpn) + 1
        assert m.mem.alloc_target(next_target, 0)
        kern.fault(proc, vma.start_vpn + 1)
        # 4K failure: default fallback, no new offset recorded.
        assert len(vma.offsets) == offsets_after_first
        assert m.kernel.policy.stats.fallbacks >= 1

    def test_huge_failure_triggers_replacement(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.fault(proc, vma.start_vpn)
        # Block the next huge target.
        target = proc.space.translate(vma.start_vpn) + HUGE_PAGES
        assert m.mem.alloc_target(target, 0)
        kern.fault(proc, vma.start_vpn + HUGE_PAGES)
        assert len(vma.offsets) == 2  # re-placement happened

    def test_bad_placement_params_rejected(self):
        from repro.policies.ca import CAPaging

        with pytest.raises(ValueError):
            CAPaging(placement="worst_fit")


class TestPlacementAblations:
    @pytest.mark.parametrize("placement", ["next_fit", "first_fit", "best_fit"])
    def test_all_placements_build_contiguity(self, placement):
        m = machine("ca", placement=placement)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        touch_all(kern, proc, vma)
        assert len(proc.space.runs) == 1
