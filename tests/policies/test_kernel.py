"""Unit tests for the kernel fault path (policy-independent behaviour)."""

import pytest

from repro.errors import AddressSpaceError
from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.flags import DEFAULT_ANON, PteFlags, VmaFlags

from tests.policies.conftest import machine


class TestFaultPath:
    def test_fault_maps_huge_when_eligible(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 4)
        result = kern.fault(proc, vma.start_vpn)
        assert result.order == HUGE_ORDER
        assert proc.space.is_mapped(vma.start_vpn + 511)

    def test_fault_maps_base_page_in_small_vma(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 64)
        result = kern.fault(proc, vma.start_vpn + 3)
        assert result.order == 0
        assert proc.space.is_mapped(vma.start_vpn + 3)
        assert not proc.space.is_mapped(vma.start_vpn + 4)

    def test_fault_outside_vma_segfaults(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        with pytest.raises(AddressSpaceError):
            kern.fault(proc, 0xDEAD)

    def test_refault_is_minor(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 64)
        kern.fault(proc, vma.start_vpn)
        result = kern.fault(proc, vma.start_vpn)
        assert result.minor
        assert kern.minor_faults == 1

    def test_touch_range_faults_every_page(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        majors = kern.touch_range(proc, vma.start_vpn, HUGE_PAGES * 2)
        assert majors == 2  # two huge faults
        assert proc.resident_pages == HUGE_PAGES * 2
        assert proc.touched_pages == HUGE_PAGES * 2

    def test_write_protection_flags(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        ro = kern.mmap(proc, 64, flags=VmaFlags.READ | VmaFlags.ANON)
        kern.fault(proc, ro.start_vpn, write=False)
        pte = proc.space.page_table.lookup(ro.start_vpn)
        assert not pte.flags & PteFlags.WRITE

    def test_exit_frees_all_frames(self, thp_machine):
        kern = thp_machine.kernel
        free_before = thp_machine.mem.free_pages
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 4)
        kern.touch_range(proc, vma.start_vpn, HUGE_PAGES * 4)
        kern.exit_process(proc)
        assert thp_machine.mem.free_pages == free_before
        assert not proc.alive

    def test_thp_disabled_maps_base_pages(self):
        m = machine("ingens")  # ingens config turns THP off
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 2)
        result = kern.fault(proc, vma.start_vpn)
        assert result.order == 0


class TestContigBit:
    def test_contig_bit_set_after_threshold(self, ca_machine):
        kern = ca_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.touch_range(proc, vma.start_vpn, HUGE_PAGES * 2)
        assert kern.pte_contiguous(proc, vma.start_vpn)
        pte = proc.space.page_table.lookup(vma.start_vpn)
        assert pte.flags & PteFlags.CONTIG

    def test_no_contig_bit_below_threshold(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 16)  # < 32-page threshold
        kern.touch_range(proc, vma.start_vpn, 16)
        assert not kern.pte_contiguous(proc, vma.start_vpn)


class TestForkCow:
    def test_fork_shares_frames(self, thp_machine):
        kern = thp_machine.kernel
        parent = kern.create_process("p")
        vma = kern.mmap(parent, 64)
        kern.touch_range(parent, vma.start_vpn, 8)
        used_before = thp_machine.mem.n_pages - thp_machine.mem.free_pages
        child = kern.fork(parent)
        used_after = thp_machine.mem.n_pages - thp_machine.mem.free_pages
        assert used_after == used_before  # no copies yet
        assert child.space.translate(vma.start_vpn) == parent.space.translate(
            vma.start_vpn
        )

    def test_cow_write_copies(self, thp_machine):
        kern = thp_machine.kernel
        parent = kern.create_process("p")
        vma = kern.mmap(parent, 64)
        kern.touch_range(parent, vma.start_vpn, 8)
        child = kern.fork(parent)
        result = kern.fault(child, vma.start_vpn, write=True)
        assert result.cow_break
        assert child.space.translate(vma.start_vpn) != parent.space.translate(
            vma.start_vpn
        )
        assert kern.cow_breaks == 1

    def test_cow_read_does_not_copy(self, thp_machine):
        kern = thp_machine.kernel
        parent = kern.create_process("p")
        vma = kern.mmap(parent, 64)
        kern.touch_range(parent, vma.start_vpn, 8)
        child = kern.fork(parent)
        result = kern.fault(child, vma.start_vpn, write=False)
        assert result.minor

    def test_exit_of_forked_pair_frees_everything(self, thp_machine):
        kern = thp_machine.kernel
        free_before = thp_machine.mem.free_pages
        parent = kern.create_process("p")
        vma = kern.mmap(parent, 64)
        kern.touch_range(parent, vma.start_vpn, 16)
        child = kern.fork(parent)
        kern.fault(child, vma.start_vpn, write=True)
        kern.exit_process(child)
        kern.exit_process(parent)
        assert thp_machine.mem.free_pages == free_before


class TestPageCacheIntegration:
    def test_file_read_allocates_frames(self, ca_machine):
        kern = ca_machine.kernel
        f = kern.page_cache.open(256, name="data.bin")
        pfn = kern.file_read(f, 0)
        assert pfn >= 0
        assert f.resident_pages == kern.page_cache.readahead_pages

    def test_ca_makes_file_pages_contiguous(self, ca_machine):
        kern = ca_machine.kernel
        f = kern.page_cache.open(256)
        for index in range(0, 256, 8):
            kern.file_read(f, index)
        runs = kern.page_cache.runs[f.inode]
        assert runs.run_length_at(0) == 256

    def test_drop_file_frees_frames(self, ca_machine):
        kern = ca_machine.kernel
        free_before = ca_machine.mem.free_pages
        f = kern.page_cache.open(64)
        for index in range(0, 64, 8):
            kern.file_read(f, index)
        kern.drop_file(f)
        assert ca_machine.mem.free_pages == free_before


class TestFaultAccounting:
    def test_fault_events_recorded(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES)
        kern.fault(proc, vma.start_vpn)
        assert kern.major_faults == 1
        (event,) = kern.fault_events
        assert event.order == HUGE_ORDER
        assert event.latency_us > 500  # ~515us THP fault (Table V regime)

    def test_base_fault_is_cheap(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 16)
        kern.fault(proc, vma.start_vpn)
        (event,) = kern.fault_events
        assert event.latency_us < 10

    def test_reset_fault_stats(self, thp_machine):
        kern = thp_machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 16)
        kern.fault(proc, vma.start_vpn)
        kern.reset_fault_stats()
        assert kern.major_faults == 0
