"""Detailed tests for Translation Ranger's plan/exchange machinery."""

import pytest

from repro.policies.ranger import RangerPaging
from repro.units import HUGE_PAGES

from tests.policies.conftest import machine


def run_workload(m, n_pages=HUGE_PAGES * 8, epochs=12):
    kern = m.kernel
    proc = kern.create_process("t")
    vma = kern.mmap(proc, n_pages)
    kern.touch_range(proc, vma.start_vpn, n_pages)
    for _ in range(epochs):
        kern.run_daemons()
    return proc, vma


class TestAnchorPlan:
    def test_plan_carved_once(self):
        m = machine("ranger")
        kern = m.kernel
        proc, vma = run_workload(m)
        plan_a = kern.policy._anchors[(proc.pid, vma.start_vpn)]
        kern.run_daemons()
        plan_b = kern.policy._anchors[(proc.pid, vma.start_vpn)]
        assert plan_a is plan_b

    def test_plans_of_vmas_disjoint(self):
        m = machine("ranger")
        kern = m.kernel
        proc = kern.create_process("t")
        vmas = [kern.mmap(proc, HUGE_PAGES * 4) for _ in range(3)]
        for vma in vmas:
            kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        for _ in range(10):
            kern.run_daemons()
        # After convergence each VMA's physical band must not overlap
        # another's (the shared span pool guarantees disjoint plans).
        bands = []
        for vma in vmas:
            pfns = sorted(
                r.start_pfn for r in proc.space.runs
                if vma.start_vpn <= r.start_vpn < vma.end_vpn
            )
            runs = [
                (r.start_pfn, r.end_pfn)
                for r in proc.space.runs
                if vma.start_vpn <= r.start_vpn < vma.end_vpn
            ]
            bands.append(runs)
        flat = sorted(b for band in bands for b in band)
        for (s1, e1), (s2, e2) in zip(flat, flat[1:]):
            assert e1 <= s2, "physical bands overlap"

    def test_forget_clears_pool(self):
        m = machine("ranger")
        kern = m.kernel
        proc, vma = run_workload(m, epochs=2)
        kern.policy.forget(proc)
        assert proc.pid not in kern.policy._span_pool
        assert (proc.pid, vma.start_vpn) not in kern.policy._anchors


class TestConvergence:
    def test_migrations_stop_after_convergence(self):
        m = machine("ranger")
        kern = m.kernel
        run_workload(m, epochs=10)
        migrated = kern.policy.stats.migrations
        kern.run_daemons()
        # Once coalesced, further epochs migrate nothing.
        assert kern.policy.stats.migrations == migrated

    def test_budget_is_respected_per_epoch(self):
        m = machine("ranger", migrations_per_epoch=512)
        kern = m.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, HUGE_PAGES * 8)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        before = kern.policy.stats.migrations
        kern.run_daemons()
        assert kern.policy.stats.migrations - before <= 512 + HUGE_PAGES


class TestExchange:
    def test_exchange_swaps_own_pages(self):
        m = machine("ranger")
        kern = m.kernel
        proc, vma = run_workload(m, epochs=12)
        # Converged: single (or near-single) run despite LIFO scatter.
        assert len(proc.space.runs) <= 3

    def test_move_page_cache_option(self):
        policy = RangerPaging(move_page_cache=True)
        assert policy.move_page_cache
        assert not RangerPaging().move_page_cache

    def test_cache_exchange_disabled_by_default(self):
        m = machine("ranger")
        kern = m.kernel
        # A cached file sits in the way; default ranger must not move it.
        f = kern.page_cache.open(256, name="blocker")
        for i in range(0, 256, 8):
            kern.file_read(f, i)
        pages_before = dict(f.pages)
        run_workload(m, epochs=6)
        assert f.pages == pages_before


class TestMultiprocess:
    def test_serial_scanning_shares_budget(self):
        m = machine("ranger", migrations_per_epoch=1024)
        kern = m.kernel
        procs = []
        for i in range(2):
            proc = kern.create_process(f"p{i}")
            vma = kern.mmap(proc, HUGE_PAGES * 8)
            kern.touch_range(proc, vma.start_vpn, vma.n_pages)
            procs.append(proc)
        kern.run_daemons()
        # The budget drains on the first process scanned: the paper's
        # serial-scan weakness in miniature.
        assert kern.policy.stats.migrations <= 1024 + HUGE_PAGES
