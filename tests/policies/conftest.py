"""Shared fixtures for policy/kernel tests: small, fast machines."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.machine import Machine, build_machine

#: Small two-node machine: 32K + 32K pages (128 MiB + 128 MiB).
SMALL = SystemConfig(node_pages=(32 * 1024, 32 * 1024), churn_ops=400)


@pytest.fixture
def small_config():
    return SMALL


def machine(policy_name, config=SMALL, aged=True, **kw):
    return build_machine(policy_name, config, aged=aged, **kw)


@pytest.fixture
def thp_machine():
    return machine("thp")


@pytest.fixture
def ca_machine():
    return machine("ca")
