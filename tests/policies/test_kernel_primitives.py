"""Unit tests for the kernel's migration/exchange/reclaim primitives."""

import pytest

from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.flags import DEFAULT_ANON, PteFlags

from tests.policies.conftest import machine


def make_two_leaves(kern, proc, n_pages=HUGE_PAGES * 4):
    vma = kern.mmap(proc, n_pages)
    kern.touch_range(proc, vma.start_vpn, n_pages)
    return vma


class TestSwapMappings:
    def test_swap_exchanges_frames(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        a, b = vma.start_vpn, vma.start_vpn + HUGE_PAGES
        pfn_a = proc.space.translate(a)
        pfn_b = proc.space.translate(b)
        assert kern.swap_mappings(proc, a, b)
        assert proc.space.translate(a) == pfn_b
        assert proc.space.translate(b) == pfn_a

    def test_swap_updates_runs(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        a, b = vma.start_vpn, vma.start_vpn + HUGE_PAGES
        kern.swap_mappings(proc, a, b)
        # Run tracking still translates consistently with the tables.
        for vpn in (a, a + 5, b, b + 511):
            assert proc.space.runs.find(vpn).translate(vpn) == proc.space.translate(vpn)

    def test_swap_rejects_mismatched_orders(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        big = kern.mmap(proc, HUGE_PAGES * 2)
        kern.touch_range(proc, big.start_vpn, big.n_pages)
        small = kern.mmap(proc, 16)
        kern.touch_range(proc, small.start_vpn, 16)
        assert not kern.swap_mappings(proc, big.start_vpn, small.start_vpn)

    def test_swap_rejects_same_leaf_and_unmapped(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        assert not kern.swap_mappings(proc, vma.start_vpn, vma.start_vpn + 5)
        assert not kern.swap_mappings(proc, vma.start_vpn, vma.end_vpn + 999)

    def test_swap_rejects_cow_shared(self):
        m = machine("thp")
        kern = m.kernel
        parent = kern.create_process("p")
        vma = kern.mmap(parent, 64)
        kern.touch_range(parent, vma.start_vpn, 2)
        kern.fork(parent)
        assert not kern.swap_mappings(parent, vma.start_vpn, vma.start_vpn + 1)

    def test_swap_counts_shootdowns(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        before = kern.tlb_shootdowns
        kern.swap_mappings(proc, vma.start_vpn, vma.start_vpn + HUGE_PAGES)
        assert kern.tlb_shootdowns == before + 2


class TestRelocateLeaf:
    def test_relocate_moves_frame(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        old = proc.space.translate(vma.start_vpn)
        assert kern.relocate_leaf(proc, vma.start_vpn)
        assert proc.space.translate(vma.start_vpn) != old
        # The old frame returned to the allocator.
        assert m.mem.is_free(old)

    def test_relocate_unmapped_fails(self):
        m = machine("thp")
        kern = m.kernel
        proc = kern.create_process("t")
        kern.mmap(proc, 64)
        assert not kern.relocate_leaf(proc, 0xDEAD000)


class TestOwnerLookup:
    def test_owner_vpn_of_frame(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        vma = make_two_leaves(kern, proc)
        pfn = proc.space.translate(vma.start_vpn + 700)
        assert kern.owner_vpn_of_frame(proc, pfn) == vma.start_vpn + 700

    def test_owner_of_foreign_frame_is_none(self):
        m = machine("ca")
        kern = m.kernel
        proc = kern.create_process("t")
        make_two_leaves(kern, proc)
        other = m.mem.alloc_block(0)
        assert kern.owner_vpn_of_frame(proc, other) is None


class TestReclaim:
    def test_reclaim_drops_cached_files(self):
        m = machine("ca")
        kern = m.kernel
        f = kern.page_cache.open(128, name="log")
        for i in range(0, 128, 8):
            kern.file_read(f, i)
        freed = kern.reclaim_pages(64)
        assert freed >= 64
        assert f.resident_pages == 0

    def test_reclaim_when_nothing_cached(self):
        m = machine("ca")
        assert m.kernel.reclaim_pages(10) == 0

    def test_allocation_pressure_triggers_reclaim(self):
        m = machine("thp", aged=False)
        kern = m.kernel
        # Fill the cache, then allocate (nearly) everything anonymous:
        # the cache must get reclaimed instead of OOMing.
        f = kern.page_cache.open(4096, name="data")
        for i in range(0, 4096, 8):
            kern.file_read(f, i)
        free = m.mem.free_pages
        proc = kern.create_process("big")
        # Demand more than what is free: only cache reclaim can serve it.
        vma = kern.mmap(proc, free + 2048)
        kern.touch_range(proc, vma.start_vpn, vma.n_pages)
        assert proc.resident_pages == vma.n_pages
        assert kern.page_cache.resident_pages < 4096

    def test_drop_caches_frees_everything(self):
        m = machine("ca")
        kern = m.kernel
        for name in ("a", "b"):
            f = kern.page_cache.open(64, name=name)
            kern.file_read(f, 0)
        assert kern.drop_caches() > 0
        assert kern.page_cache.resident_pages == 0


class TestCachePageRelocation:
    def test_relocate_cache_page(self):
        m = machine("ca")
        kern = m.kernel
        f = kern.page_cache.open(16, name="x")
        kern.file_read(f, 0)
        pfn = f.pages[0]
        assert kern.relocate_cache_page(pfn)
        assert f.pages[0] != pfn
        assert m.mem.is_free(pfn)

    def test_relocate_respects_avoid(self):
        m = machine("ca")
        kern = m.kernel
        f = kern.page_cache.open(16, name="x")
        kern.file_read(f, 0)
        pfn = f.pages[0]
        # Vetoing every destination must fail cleanly.
        assert not kern.relocate_cache_page(pfn, avoid=lambda _: True)
        assert f.pages[0] == pfn

    def test_relocate_non_cache_frame_fails(self):
        m = machine("ca")
        kern = m.kernel
        pfn = m.mem.alloc_block(0)
        assert not kern.relocate_cache_page(pfn)

    def test_page_cache_move_updates_runs(self):
        m = machine("ca")
        kern = m.kernel
        f = kern.page_cache.open(16, name="x")
        kern.file_read(f, 0)
        pfn = f.pages[3]
        kern.relocate_cache_page(pfn)
        runs = kern.page_cache.runs[f.inode]
        assert runs.find(3).translate(3) == f.pages[3]
