"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.sim.config import TEST_SCALE, ScaleProfile
from repro.units import HUGE_PAGES, MIB
from repro.workloads import PAPER_SUITE, make_workload
from repro.workloads.base import TraceSite, VmaPlan, Workload


ALL_NAMES = [cls.name for cls in PAPER_SUITE] + ["tlb_friendly", "gups"]


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_make_workload(self, name):
        wl = make_workload(name, TEST_SCALE)
        assert wl.name == name
        assert wl.footprint_pages > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_workload("doom", TEST_SCALE)

    def test_footprints_ordered_like_paper(self):
        # Table III: SVM < PageRank < hashjoin < XSBench < BT (reserved
        # VMA capacity; hashjoin's *touched* footprint is smaller than
        # its arena, which is exactly its eager-bloat story).
        sizes = [
            sum(p.n_pages for p in make_workload(n, TEST_SCALE).vma_plans)
            for n in ("svm", "pagerank", "hashjoin", "xsbench", "bt")
        ]
        assert sizes == sorted(sizes)


class TestPlans:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_vma_plans_well_formed(self, name):
        wl = make_workload(name, TEST_SCALE)
        for plan in wl.vma_plans:
            assert plan.n_pages > 0
            assert 0 < plan.touched_pages <= plan.n_pages

    def test_touched_fraction_clamped(self):
        plan = VmaPlan("x", 100, touched_fraction=2.0)
        assert plan.touched_pages == 100
        tiny = VmaPlan("y", 100, touched_fraction=0.0)
        assert tiny.touched_pages == 1

    def test_hashjoin_arena_overreserved(self):
        wl = make_workload("hashjoin", TEST_SCALE)
        build = wl.vma_plans[0]
        assert build.touched_pages < build.n_pages * 0.6

    def test_scaling_is_proportional(self):
        small = make_workload("svm", TEST_SCALE)
        big = make_workload(
            "svm", ScaleProfile(name="2x", bytes_per_paper_gb=2 * MIB)
        )
        ratio = big.footprint_pages / small.footprint_pages
        assert 1.8 < ratio < 2.2


class TestAllocSteps:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_steps_cover_touched_pages(self, name):
        wl = make_workload(name, TEST_SCALE)
        covered = [0] * len(wl.vma_plans)
        for step in wl.alloc_steps():
            if step.kind == "anon":
                covered[step.index] += step.n_pages
        for plan, got in zip(wl.vma_plans, covered):
            assert got == plan.touched_pages

    def test_file_steps_cover_files(self):
        wl = make_workload("pagerank", TEST_SCALE)
        file_pages = sum(
            s.n_pages for s in wl.alloc_steps() if s.kind == "file"
        )
        assert file_pages == sum(f.n_pages for f in wl.file_plans)

    def test_multithreaded_steps_interleave(self):
        wl = make_workload("xsbench", TEST_SCALE)
        first_steps = [s for s in wl.alloc_steps()][: wl.threads]
        starts = {s.start_page for s in first_steps if s.kind == "anon"}
        assert len(starts) > 1  # different partitions fault concurrently

    def test_bt_interleaves_its_arrays(self):
        wl = make_workload("bt", TEST_SCALE)
        first = [s.index for s in list(wl.alloc_steps())[:5]]
        assert sorted(first) == [0, 1, 2, 3, 4]


class TestTraces:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_trace_within_bounds(self, name):
        wl = make_workload(name, TEST_SCALE)
        trace = wl.trace(5000)
        assert len(trace) == 5000
        for i, plan in enumerate(wl.vma_plans):
            mask = trace.vma == i
            if mask.any():
                assert trace.page[mask].max() < plan.touched_pages
                assert trace.page[mask].min() >= 0

    def test_trace_deterministic_per_seed(self):
        wl = make_workload("svm", TEST_SCALE)
        a = wl.trace(1000, seed=5)
        b = wl.trace(1000, seed=5)
        assert np.array_equal(a.page, b.page)
        c = wl.trace(1000, seed=6)
        assert not np.array_equal(a.page, c.page)

    def test_site_weights_respected(self):
        wl = make_workload("pagerank", TEST_SCALE)
        trace = wl.trace(20_000)
        sites = wl.trace_sites()
        total_w = sum(s.weight for s in sites)
        for site in sites:
            frac = float((trace.pc == site.pc).mean())
            assert abs(frac - site.weight / total_w) < 0.05

    def test_sequential_pattern_is_sequential(self):
        class Seq(Workload):
            name = "seq"

            def _build_vma_plans(self):
                return [VmaPlan("a", 10_000)]

            def trace_sites(self):
                return [TraceSite(pc=1, vma=0, pattern="seq", weight=1.0)]

        wl = Seq(TEST_SCALE)
        trace = wl.trace(100)
        deltas = np.diff(trace.page)
        assert ((deltas == 1) | (deltas < 0)).all()  # wraps allowed

    def test_unknown_pattern_rejected(self):
        class Bad(Workload):
            name = "bad"

            def _build_vma_plans(self):
                return [VmaPlan("a", 100)]

            def trace_sites(self):
                return [TraceSite(pc=1, vma=0, pattern="fancy", weight=1.0)]

        with pytest.raises(ValueError):
            Bad(TEST_SCALE).trace(10)

    def test_zipf_is_skewed(self):
        class Z(Workload):
            name = "z"

            def _build_vma_plans(self):
                return [VmaPlan("a", 100_000)]

            def trace_sites(self):
                return [TraceSite(pc=1, vma=0, pattern="zipf", weight=1.0)]

        trace = Z(TEST_SCALE).trace(10_000)
        # A power law concentrates mass on the lowest pages.
        assert float((trace.page < 100).mean()) > 0.5

    def test_strip_pattern_reads_runs(self):
        class S(Workload):
            name = "s"

            def _build_vma_plans(self):
                return [VmaPlan("a", 100_000)]

            def trace_sites(self):
                return [
                    TraceSite(pc=1, vma=0, pattern="strip", weight=1.0, strip_len=8)
                ]

        trace = S(TEST_SCALE).trace(800)
        deltas = np.diff(trace.page)
        # Most steps advance by one (inside a strip).
        assert float((deltas == 1).mean()) > 0.7

    def test_instruction_count(self):
        wl = make_workload("hashjoin", TEST_SCALE)
        assert wl.instruction_count(1000) == 1000 * wl.instructions_per_access
