"""Tests for the page cache's (name, n_pages) file index."""

from repro.vm.page_cache import PageCache


class TestFindIndex:
    def test_find_returns_registered_file(self):
        pc = PageCache()
        f = pc.open(16, name="graph.bin")
        assert pc.find("graph.bin", 16) is f

    def test_find_misses_on_name_or_size(self):
        pc = PageCache()
        pc.open(16, name="graph.bin")
        assert pc.find("graph.bin", 8) is None
        assert pc.find("other.bin", 16) is None

    def test_first_registration_wins(self):
        # The index must keep the scan semantics it replaced: the
        # earliest file opened under an identity is the one reopened.
        pc = PageCache()
        first = pc.open(16, name="dup")
        second = pc.open(16, name="dup")
        assert second is not first
        assert pc.find("dup", 16) is first

    def test_index_matches_scan_for_every_file(self):
        pc = PageCache()
        files = [pc.open(4 + i, name=f"f{i % 3}") for i in range(9)]
        for f in files:
            scan = next(
                g for g in pc.iter_files()
                if g.name == f.name and g.n_pages == f.n_pages
            )
            assert pc.find(f.name, f.n_pages) is scan
