"""Property-based tests for the vm substrate.

Model-based testing: the mapping-run tracker and the radix page table
are driven with random operation sequences and checked against naive
dictionary models after every step.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.mapping_runs import MappingRuns, compose
from repro.vm.page_table import PageTable

VPN_SPACE = 512
PFN_SPACE = 4096


@st.composite
def run_ops(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["add", "remove"]))
        vpn = draw(st.integers(min_value=0, max_value=VPN_SPACE - 8))
        if kind == "add":
            pfn = draw(st.integers(min_value=0, max_value=PFN_SPACE))
            pages = draw(st.integers(min_value=1, max_value=8))
            ops.append(("add", vpn, pfn, pages))
        else:
            pages = draw(st.integers(min_value=1, max_value=16))
            ops.append(("remove", vpn, 0, pages))
    return ops


@settings(max_examples=80, deadline=None)
@given(ops=run_ops())
def test_mapping_runs_match_dict_model(ops):
    runs = MappingRuns()
    model: dict[int, int] = {}  # vpn -> pfn
    for kind, vpn, pfn, pages in ops:
        if kind == "add":
            # Skip adds that would overlap existing pages (the runner
            # never remaps without removing first).
            if any((vpn + i) in model for i in range(pages)):
                continue
            runs.add(vpn, pfn, pages)
            for i in range(pages):
                model[vpn + i] = pfn + i
        else:
            runs.remove(vpn, pages)
            for i in range(pages):
                model.pop(vpn + i, None)
        # Invariants after every operation:
        assert runs.total_pages == len(model)
        snapshot = runs.snapshot()
        # 1. Runs are disjoint, sorted and maximal.
        for a, b in zip(snapshot, snapshot[1:]):
            assert a.end_vpn <= b.start_vpn
            if a.end_vpn == b.start_vpn:
                assert a.offset != b.offset, "adjacent equal-offset runs must merge"
        # 2. Every page translates exactly like the model.
        for run in snapshot:
            for v in range(run.start_vpn, run.end_vpn):
                assert model[v] == run.translate(v)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=1, max_value=60),
)
def test_page_table_matches_dict_model(seed, n_ops):
    rng = random.Random(seed)
    pt = PageTable()
    model: dict[int, int] = {}  # base vpn -> pfn (leaf granularity)
    huge_bases: set[int] = set()
    for _ in range(n_ops):
        op = rng.choice(["map4k", "map2m", "unmap", "lookup"])
        if op == "map4k":
            vpn = rng.randrange(0, 4 * HUGE_PAGES)
            try:
                pt.map(vpn, vpn + 10_000)
                model[vpn] = vpn + 10_000
            except MappingError:
                covered = vpn in model or any(
                    b <= vpn < b + HUGE_PAGES for b in huge_bases
                )
                assert covered
        elif op == "map2m":
            base = rng.randrange(0, 4) * HUGE_PAGES
            try:
                pt.map(base, base + 100 * HUGE_PAGES, order=HUGE_ORDER)
                huge_bases.add(base)
            except MappingError:
                conflict = base in huge_bases or any(
                    base <= v < base + HUGE_PAGES for v in model
                )
                assert conflict
        elif op == "unmap":
            vpn = rng.randrange(0, 4 * HUGE_PAGES)
            try:
                pte = pt.unmap(vpn)
                if pte.huge:
                    huge_bases.discard(vpn & ~(HUGE_PAGES - 1))
                else:
                    del model[vpn]
            except MappingError:
                assert vpn not in model and not any(
                    b <= vpn < b + HUGE_PAGES for b in huge_bases
                )
        else:
            vpn = rng.randrange(0, 4 * HUGE_PAGES)
            got = pt.translate(vpn)
            base = vpn & ~(HUGE_PAGES - 1)
            if vpn in model:
                assert got == model[vpn]
            elif base in huge_bases:
                assert got == base + 100 * HUGE_PAGES + (vpn - base)
            else:
                assert got is None
    assert pt.leaf_count == len(model) + len(huge_bases)


@settings(max_examples=60, deadline=None)
@given(
    guest=run_ops(),
    host=run_ops(),
)
def test_compose_agrees_with_pointwise_translation(guest, host):
    """2D composition must equal translating page by page."""
    g = MappingRuns()
    h = MappingRuns()
    taken_g: set[int] = set()
    taken_h: set[int] = set()
    for kind, vpn, pfn, pages in guest:
        if kind == "add" and not any((vpn + i) in taken_g for i in range(pages)):
            g.add(vpn, pfn, pages)
            taken_g.update(vpn + i for i in range(pages))
    for kind, vpn, pfn, pages in host:
        if kind == "add" and not any((vpn + i) in taken_h for i in range(pages)):
            h.add(vpn, pfn, pages)
            taken_h.update(vpn + i for i in range(pages))

    two_d = compose(g, h)
    for vpn in range(VPN_SPACE):
        g_run = g.find(vpn)
        expected = None
        if g_run is not None:
            mid = g_run.translate(vpn)
            h_run = h.find(mid)
            if h_run is not None:
                expected = h_run.translate(mid)
        run_2d = two_d.find(vpn)
        got = run_2d.translate(vpn) if run_2d else None
        assert got == expected
