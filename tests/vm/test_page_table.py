"""Unit tests for the 4-level radix page table."""

import pytest

from repro.errors import MappingError
from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.flags import PteFlags
from repro.vm.page_table import LEVELS, PageTable


class TestBaseMappings:
    def test_map_and_translate(self):
        pt = PageTable()
        pt.map(0x1000, 42)
        assert pt.translate(0x1000) == 42

    def test_unmapped_translates_to_none(self):
        pt = PageTable()
        assert pt.translate(0x1000) is None

    def test_remap_rejected(self):
        pt = PageTable()
        pt.map(7, 1)
        with pytest.raises(MappingError):
            pt.map(7, 2)

    def test_unmap_returns_pte(self):
        pt = PageTable()
        pt.map(7, 99, flags=PteFlags.WRITE)
        pte = pt.unmap(7)
        assert pte.pfn == 99
        assert pte.flags & PteFlags.WRITE
        assert not pt.is_mapped(7)

    def test_unmap_absent_rejected(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.unmap(7)

    def test_leaf_count(self):
        pt = PageTable()
        for vpn in range(10):
            pt.map(vpn, vpn + 100)
        pt.unmap(3)
        assert pt.leaf_count == 9

    def test_widely_separated_vpns(self):
        pt = PageTable()
        vpns = [0, 1 << 20, 1 << 30, (1 << 36) - 1]
        for i, vpn in enumerate(vpns):
            pt.map(vpn, i)
        for i, vpn in enumerate(vpns):
            assert pt.translate(vpn) == i


class TestHugeMappings:
    def test_huge_map_covers_512_pages(self):
        pt = PageTable()
        pt.map(HUGE_PAGES, 1024, order=HUGE_ORDER)
        assert pt.translate(HUGE_PAGES) == 1024
        assert pt.translate(HUGE_PAGES + 511) == 1024 + 511

    def test_huge_requires_alignment(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.map(1, 1024, order=HUGE_ORDER)
        with pytest.raises(MappingError):
            pt.map(HUGE_PAGES, 1, order=HUGE_ORDER)

    def test_bad_order_rejected(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.map(0, 0, order=3)

    def test_huge_walk_is_three_levels(self):
        pt = PageTable()
        pt.map(0, 0, order=HUGE_ORDER)
        assert pt.walk(5).levels == 3

    def test_base_walk_is_four_levels(self):
        pt = PageTable()
        pt.map(0, 0)
        assert pt.walk(0).levels == LEVELS

    def test_huge_unmap_by_interior_page(self):
        pt = PageTable()
        pt.map(0, 0, order=HUGE_ORDER)
        pt.unmap(100)
        assert not pt.is_mapped(0)

    def test_huge_over_existing_4k_rejected(self):
        pt = PageTable()
        pt.map(3, 30)
        with pytest.raises(MappingError):
            pt.map(0, 0, order=HUGE_ORDER)

    def test_4k_under_huge_rejected(self):
        pt = PageTable()
        pt.map(0, 0, order=HUGE_ORDER)
        with pytest.raises(MappingError):
            pt.map(3, 30)

    def test_huge_slot_free_probe(self):
        pt = PageTable()
        assert pt.huge_slot_free(0)
        pt.map(3, 30)
        assert not pt.huge_slot_free(0)
        assert pt.huge_slot_free(HUGE_PAGES)
        pt.map(HUGE_PAGES, 512, order=HUGE_ORDER)
        assert not pt.huge_slot_free(HUGE_PAGES + 5)
        pt.unmap(3)
        assert pt.huge_slot_free(0)


class TestIterationAndStats:
    def test_iter_leaves_in_vpn_order(self):
        pt = PageTable()
        for vpn in (500, 3, HUGE_PAGES * 4, 77):
            if vpn % HUGE_PAGES == 0:
                pt.map(vpn, vpn, order=HUGE_ORDER)
            else:
                pt.map(vpn, vpn)
        vpns = [vpn for vpn, _ in pt.iter_leaves()]
        assert vpns == sorted(vpns)

    def test_mapped_pages_counts_huge(self):
        pt = PageTable()
        pt.map(0, 0, order=HUGE_ORDER)
        pt.map(HUGE_PAGES, 512)
        assert pt.mapped_pages() == HUGE_PAGES + 1

    def test_node_count_grows_with_spread(self):
        pt = PageTable()
        pt.map(0, 0)
        dense = pt.node_count()
        pt.map(1 << 30, 1)
        assert pt.node_count() > dense

    def test_walk_result_translate_miss_raises(self):
        pt = PageTable()
        walk = pt.walk(1234)
        assert not walk.hit
        with pytest.raises(MappingError):
            walk.translate(1234)
