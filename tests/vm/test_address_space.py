"""Unit tests for address spaces, VMAs, and the page cache."""

import pytest

from repro.errors import AddressSpaceError, MappingError
from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.vm.address_space import AddressSpace
from repro.vm.flags import DEFAULT_ANON, PteFlags, VmaFlags
from repro.vm.page_cache import PageCache
from repro.vm.vma import Vma


class TestVmaManagement:
    def test_mmap_creates_huge_aligned_vma(self):
        space = AddressSpace()
        vma = space.mmap(1000, DEFAULT_ANON, name="heap")
        assert vma.start_vpn % HUGE_PAGES == 0
        assert vma.n_pages == 1000

    def test_vmas_never_virtually_adjacent(self):
        space = AddressSpace()
        a = space.mmap(HUGE_PAGES, DEFAULT_ANON)
        b = space.mmap(HUGE_PAGES, DEFAULT_ANON)
        assert b.start_vpn >= a.end_vpn + 1

    def test_fixed_address_mmap(self):
        space = AddressSpace()
        vma = space.mmap(64, DEFAULT_ANON, at_vpn=HUGE_PAGES * 10)
        assert vma.start_vpn == HUGE_PAGES * 10

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.mmap(64, DEFAULT_ANON, at_vpn=0)
        with pytest.raises(AddressSpaceError):
            space.mmap(64, DEFAULT_ANON, at_vpn=32)

    def test_zero_pages_rejected(self):
        space = AddressSpace()
        with pytest.raises(AddressSpaceError):
            space.mmap(0, DEFAULT_ANON)

    def test_vma_at(self):
        space = AddressSpace()
        vma = space.mmap(64, DEFAULT_ANON, at_vpn=0)
        assert space.vma_at(10) is vma
        assert space.vma_at(64) is None

    def test_munmap_removes_mappings(self):
        space = AddressSpace()
        vma = space.mmap(64, DEFAULT_ANON, at_vpn=0)
        space.install(vma, 5, 500, 0, PteFlags.NONE)
        removed = space.munmap(vma)
        assert [(v, p.pfn) for v, p in removed] == [(5, 500)]
        assert space.vma_count == 0
        assert space.resident_pages == 0

    def test_munmap_unknown_vma_rejected(self):
        space = AddressSpace()
        with pytest.raises(AddressSpaceError):
            space.munmap(Vma(0, 10, DEFAULT_ANON))


class TestInstall:
    def test_install_updates_runs_and_accounting(self):
        space = AddressSpace()
        vma = space.mmap(1024, DEFAULT_ANON, at_vpn=0)
        space.install(vma, 0, 100, 0, PteFlags.NONE)
        space.install(vma, 1, 101, 0, PteFlags.NONE)
        assert space.runs.run_length_at(0) == 2
        assert vma.mapped_pages == 2
        assert vma.unmapped_pages == 1022

    def test_install_huge(self):
        space = AddressSpace()
        vma = space.mmap(1024, DEFAULT_ANON, at_vpn=0)
        space.install(vma, 0, 512, HUGE_ORDER, PteFlags.NONE)
        assert space.translate(511) == 1023
        assert vma.mapped_pages == 512

    def test_uninstall(self):
        space = AddressSpace()
        vma = space.mmap(1024, DEFAULT_ANON, at_vpn=0)
        space.install(vma, 0, 512, HUGE_ORDER, PteFlags.NONE)
        pte = space.uninstall(vma, 100)  # interior page of the huge leaf
        assert pte.pfn == 512
        assert vma.mapped_pages == 0
        assert space.resident_pages == 0

    def test_uninstall_unmapped_rejected(self):
        space = AddressSpace()
        vma = space.mmap(64, DEFAULT_ANON, at_vpn=0)
        with pytest.raises(MappingError):
            space.uninstall(vma, 5)


class TestHugeCandidate:
    def test_aligned_interior_region_is_eligible(self):
        space = AddressSpace()
        vma = space.mmap(HUGE_PAGES * 4, DEFAULT_ANON, at_vpn=0)
        assert space.huge_candidate(vma, HUGE_PAGES + 5) == HUGE_PAGES

    def test_region_crossing_vma_end_rejected(self):
        space = AddressSpace()
        vma = space.mmap(HUGE_PAGES + 10, DEFAULT_ANON, at_vpn=0)
        assert space.huge_candidate(vma, HUGE_PAGES + 5) is None

    def test_nohuge_vma_rejected(self):
        space = AddressSpace()
        vma = space.mmap(HUGE_PAGES * 2, DEFAULT_ANON | VmaFlags.NOHUGE, at_vpn=0)
        assert space.huge_candidate(vma, 0) is None

    def test_partially_mapped_region_rejected(self):
        space = AddressSpace()
        vma = space.mmap(HUGE_PAGES * 2, DEFAULT_ANON, at_vpn=0)
        space.install(vma, 3, 999, 0, PteFlags.NONE)
        assert space.huge_candidate(vma, 5) is None
        assert space.huge_candidate(vma, HUGE_PAGES) == HUGE_PAGES


class TestVmaOffsets:
    def test_record_and_pick_closest(self):
        vma = Vma(0, 10000, DEFAULT_ANON)
        vma.record_offset(fault_vpn=0, offset=50)
        vma.record_offset(fault_vpn=5000, offset=900)
        assert vma.pick_offset(100).offset == 50
        assert vma.pick_offset(4800).offset == 900

    def test_fifo_eviction(self):
        vma = Vma(0, 10, DEFAULT_ANON, max_offsets=3)
        for i in range(5):
            vma.record_offset(i, i * 10)
        assert len(vma.offsets) == 3
        assert vma.offsets[0].fault_vpn == 2

    def test_pick_empty_is_none(self):
        vma = Vma(0, 10, DEFAULT_ANON)
        assert vma.pick_offset(3) is None

    def test_replacement_flag_is_exclusive(self):
        vma = Vma(0, 10, DEFAULT_ANON)
        assert vma.try_begin_replacement()
        assert not vma.try_begin_replacement()
        vma.end_replacement()
        assert vma.try_begin_replacement()


class TestPageCache:
    def _seq_allocator(self, start=1000):
        state = {"next": start}

        def allocate(file, index, n):
            pfns = list(range(state["next"], state["next"] + n))
            state["next"] += n
            return pfns

        return allocate

    def test_read_populates_readahead_window(self):
        cache = PageCache(readahead_pages=4)
        f = cache.open(100)
        cache.read(f, 0, self._seq_allocator())
        assert f.resident_pages == 4
        assert cache.readahead_count == 3

    def test_hit_does_not_reallocate(self):
        cache = PageCache(readahead_pages=4)
        f = cache.open(100)
        pfn = cache.read(f, 1, self._seq_allocator())
        assert cache.read(f, 1, None) == pfn  # allocator unused on hit
        assert cache.fault_count == 1

    def test_window_clamped_at_eof(self):
        cache = PageCache(readahead_pages=8)
        f = cache.open(5)
        cache.read(f, 3, self._seq_allocator())
        assert f.resident_pages == 2

    def test_window_stops_at_resident_page(self):
        cache = PageCache(readahead_pages=8)
        f = cache.open(100)
        cache.read(f, 4, self._seq_allocator(start=5000))
        cache.read(f, 0, self._seq_allocator(start=9000))
        # Second read stops before index 4 which is already resident.
        assert f.pages[3] == 9003
        assert f.pages[4] == 5000

    def test_out_of_range_read_rejected(self):
        cache = PageCache()
        f = cache.open(10)
        with pytest.raises(AddressSpaceError):
            cache.read(f, 10, self._seq_allocator())

    def test_drop_releases_all(self):
        cache = PageCache(readahead_pages=4)
        f = cache.open(100)
        cache.read(f, 0, self._seq_allocator())
        released = []
        assert cache.drop(f, released.append) == 4
        assert released == [1000, 1001, 1002, 1003]
        assert cache.resident_pages == 0

    def test_contiguity_runs_tracked(self):
        cache = PageCache(readahead_pages=4)
        f = cache.open(100)
        cache.read(f, 0, self._seq_allocator())
        assert cache.runs[f.inode].run_length_at(0) == 4

    def test_zero_page_file_rejected(self):
        cache = PageCache()
        with pytest.raises(AddressSpaceError):
            cache.open(0)
