"""Unit tests for contiguous mapping-run tracking and 2D composition."""

import pytest

from repro.vm.mapping_runs import MappingRun, MappingRuns, compose


class TestAddMerge:
    def test_single_page_run(self):
        runs = MappingRuns()
        runs.add(10, 100)
        assert runs.run_length_at(10) == 1

    def test_forward_merge(self):
        runs = MappingRuns()
        runs.add(10, 100)
        runs.add(11, 101)
        assert len(runs) == 1
        assert runs.run_length_at(10) == 2

    def test_backward_merge(self):
        runs = MappingRuns()
        runs.add(11, 101)
        runs.add(10, 100)
        assert len(runs) == 1

    def test_bridge_merge(self):
        runs = MappingRuns()
        runs.add(10, 100)
        runs.add(12, 102)
        runs.add(11, 101)
        assert len(runs) == 1
        assert runs.run_length_at(12) == 3

    def test_adjacent_virtual_different_offset_no_merge(self):
        runs = MappingRuns()
        runs.add(10, 100)
        runs.add(11, 200)
        assert len(runs) == 2

    def test_block_add(self):
        runs = MappingRuns()
        runs.add(0, 1000, n_pages=512)
        assert runs.run_length_at(511) == 512

    def test_blocks_with_matching_offsets_merge(self):
        runs = MappingRuns()
        runs.add(0, 1000, n_pages=512)
        runs.add(512, 1512, n_pages=512)
        assert len(runs) == 1
        assert runs.total_pages == 1024


class TestRemoveSplit:
    def test_remove_middle_splits(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=10)
        runs.remove(4, 2)
        assert runs.sizes_desc() == [4, 4]
        assert runs.find(4) is None
        assert runs.find(3).n_pages == 4

    def test_remove_edge_shrinks(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=10)
        runs.remove(0, 3)
        (run,) = list(runs)
        assert run.start_vpn == 3 and run.start_pfn == 103 and run.n_pages == 7

    def test_remove_across_runs(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=4)
        runs.add(4, 500, n_pages=4)
        runs.remove(2, 4)
        assert runs.sizes_desc() == [2, 2]

    def test_remove_unmapped_is_noop(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=2)
        runs.remove(50, 5)
        assert runs.total_pages == 2

    def test_remove_whole_run(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=8)
        runs.remove(0, 8)
        assert len(runs) == 0


class TestQueries:
    def test_find_miss_between_runs(self):
        runs = MappingRuns()
        runs.add(0, 100, n_pages=2)
        runs.add(10, 200, n_pages=2)
        assert runs.find(5) is None

    def test_translate(self):
        run = MappingRun(10, 100, 5)
        assert run.translate(12) == 102
        assert run.offset == -90

    def test_sizes_desc(self):
        runs = MappingRuns()
        runs.add(0, 0, n_pages=3)
        runs.add(100, 50, n_pages=7)
        runs.add(200, 400, n_pages=1)
        assert runs.sizes_desc() == [7, 3, 1]

    def test_snapshot_is_a_copy(self):
        runs = MappingRuns()
        runs.add(0, 0, n_pages=3)
        snap = runs.snapshot()
        runs.remove(0, 3)
        assert snap[0].n_pages == 3

    def test_iteration_in_vpn_order(self):
        runs = MappingRuns()
        for vpn in (50, 5, 500):
            runs.add(vpn, vpn + 1000)
        starts = [r.start_vpn for r in runs]
        assert starts == sorted(starts)


class TestCompose:
    def test_both_dimensions_contiguous(self):
        guest = MappingRuns()
        guest.add(0, 100, n_pages=10)  # gVA 0..10 -> gPA 100..110
        host = MappingRuns()
        host.add(100, 5000, n_pages=10)  # gPA 100..110 -> hPA 5000..5010
        two_d = compose(guest, host)
        assert len(two_d) == 1
        run = two_d.find(0)
        assert run.start_pfn == 5000 and run.n_pages == 10

    def test_host_split_breaks_2d_run(self):
        guest = MappingRuns()
        guest.add(0, 100, n_pages=10)
        host = MappingRuns()
        host.add(100, 5000, n_pages=5)
        host.add(105, 9000, n_pages=5)
        two_d = compose(guest, host)
        assert two_d.sizes_desc() == [5, 5]

    def test_guest_split_breaks_2d_run(self):
        guest = MappingRuns()
        guest.add(0, 100, n_pages=5)
        guest.add(5, 300, n_pages=5)
        host = MappingRuns()
        host.add(0, 0, n_pages=1024)
        two_d = compose(guest, host)
        assert two_d.sizes_desc() == [5, 5]

    def test_unaligned_overlap_intersects(self):
        # One guest run backed by two host runs at an unaligned cut:
        # the paper's Fig. 5 mismatch case.
        guest = MappingRuns()
        guest.add(0, 103, n_pages=10)
        host = MappingRuns()
        host.add(100, 5000, n_pages=7)  # covers gPA 100..107
        host.add(107, 9000, n_pages=10)  # covers gPA 107..117
        two_d = compose(guest, host)
        # gVA 0..4 -> hPA 5003..5007 (tail of run 1), gVA 4..10 ->
        # hPA 9000..9006 (head of run 2).
        assert two_d.sizes_desc() == [6, 4]
        assert two_d.find(0).start_pfn == 5003
        assert two_d.find(4).start_pfn == 9000

    def test_unbacked_intermediate_pages_skipped(self):
        guest = MappingRuns()
        guest.add(0, 100, n_pages=4)
        host = MappingRuns()
        host.add(102, 7000, n_pages=2)  # only gPA 102..104 backed
        two_d = compose(guest, host)
        assert two_d.total_pages == 2
        assert two_d.find(2).start_pfn == 7000

    def test_adjacent_host_runs_do_not_merge_through_offset_change(self):
        guest = MappingRuns()
        guest.add(0, 100, n_pages=4)
        host = MappingRuns()
        host.add(100, 7000, n_pages=2)
        host.add(102, 9000, n_pages=2)  # physically elsewhere
        two_d = compose(guest, host)
        assert two_d.sizes_desc() == [2, 2]
