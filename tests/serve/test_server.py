"""End-to-end server tests over real sockets.

Each test boots a :class:`ReproServer` on an ephemeral port inside
``asyncio.run`` and drives it with the synchronous
:class:`ServeClient` via ``asyncio.to_thread``, so the full
HTTP-parse -> schedule -> coalesce -> respond path is exercised,
including the NDJSON stream framing.  Toy plans keep the simulator out
of the loop; one registry test checks the real plan mapping.

No real-time choreography: tests that need a job to stay in flight
park its cell on a named :func:`threading.Event` **gate** and open it
once the scheduler state they are arranging (coalesced joiners, a full
queue) has been observed via :func:`eventually` — nothing sleeps for a
tuned duration, so the suite cannot flake on a slow machine.
"""

import asyncio
import json
import threading
import time
from dataclasses import dataclass

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.sim.jobs import Plan, cell

#: Named gates cells can block on (same process: the scheduler runs
#: cells on a thread pool, so the test coroutine can open them).
_GATES: dict[str, threading.Event] = {}


def _gate(name: str) -> threading.Event:
    return _GATES.setdefault(name, threading.Event())


def _sq(*, x, gate=""):
    if gate and not _gate(gate).wait(timeout=30):
        raise TimeoutError(f"gate {gate!r} never opened")
    return x * x


SQ = "tests.serve.test_server:_sq"


async def eventually(cond, timeout=10.0, message="condition"):
    """Poll ``cond()`` until true (cheap in-process checks only)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"{message} not reached within {timeout}s")


@dataclass
class ToyResult:
    values: tuple

    def report(self) -> str:
        return f"values={self.values}"


def toy_plans_for(experiment, scale_name, params):
    params = params or {}
    xs = tuple(params.get("xs", (1, 2)))
    gate = params.get("gate", "")
    return [(experiment, Plan(
        [cell(SQ, x=x, gate=gate) for x in xs],
        assemble=lambda rs: ToyResult(tuple(rs)),
    ))]


async def _with_server(body, **kwargs):
    kwargs.setdefault("plans_for", toy_plans_for)
    kwargs.setdefault("workers", 1)
    server = ReproServer(port=0, **kwargs)
    await server.start()
    try:
        await body(server, ServeClient(port=server.port, timeout=30))
    finally:
        await server.stop()


def run(body, **kwargs):
    asyncio.run(_with_server(body, **kwargs))


class TestEndpoints:
    def test_healthz(self):
        async def body(server, client):
            health = await asyncio.to_thread(client.healthz)
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0

        run(body)

    def test_experiments_lists_registry(self):
        async def body(server, client):
            listing = await asyncio.to_thread(client.experiments)
            assert "fig11" in listing["experiments"]
            assert listing["scales"] == ["big", "default", "quick"]

        run(body)

    def test_unknown_route_404(self):
        async def body(server, client):
            resp = await asyncio.to_thread(
                client._request, "GET", "/v1/nope"
            )
            assert resp.status == 404

        run(body)

    def test_run_needs_post(self):
        async def body(server, client):
            resp = await asyncio.to_thread(client._request, "GET", "/v1/run")
            assert resp.status == 405
            assert resp.headers["allow"] == "POST"

        run(body)

    def test_bad_json_400(self):
        def post_garbage(port: int) -> int:
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                conn.request("POST", "/v1/run", body=b"{nope",
                             headers={"Content-Type": "application/json"})
                return conn.getresponse().status
            finally:
                conn.close()

        async def body(server, client):
            status = await asyncio.to_thread(post_garbage, client.port)
            assert status == 400

        run(body)

    def test_missing_experiment_400(self):
        async def body(server, client):
            resp = await asyncio.to_thread(
                client._request, "POST", "/v1/run", {"scale": "quick"}
            )
            assert resp.status == 400

        run(body)

    def test_metrics_exposition(self):
        async def body(server, client):
            await asyncio.to_thread(client.run, "toy")
            text = await asyncio.to_thread(client.metrics_text)
            assert "# TYPE repro_requests_total counter" in text
            assert 'repro_jobs_total{status="done"} 1' in text
            assert "repro_request_seconds_bucket" in text

        run(body)


class TestRun:
    def test_run_round_trip(self):
        async def body(server, client):
            resp = await asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [2, 3]}
            )
            assert resp.ok
            assert resp.json["results"]["toy"]["values"] == [4, 9]
            assert resp.json["reports"]["toy"] == "values=(4, 9)"
            assert resp.headers["x-repro-coalesced"] == "0"
            assert resp.cells_computed == 2

        run(body)

    def test_unknown_experiment_404(self):
        from repro.serve.scheduler import default_plans_for

        async def body(server, client):
            resp = await asyncio.to_thread(client.run, "not-an-experiment")
            assert resp.status == 404

        # The real registry, not the toy one.
        run(body, plans_for=default_plans_for)


class TestCoalescingOverHttp:
    def test_concurrent_identical_requests_coalesce(self):
        async def body(server, client):
            params = {"xs": [7], "gate": "coalesce-http"}
            tasks = [
                asyncio.create_task(asyncio.to_thread(
                    client.run, "toy", "quick", params
                ))
                for _ in range(4)
            ]
            # The job is parked on the gate; wait until the three late
            # twins have joined it, then let it finish.
            await eventually(
                lambda: server.scheduler.m_coalesced.total() == 3,
                message="3 coalesced joiners",
            )
            _gate("coalesce-http").set()
            results = await asyncio.gather(*tasks)
            assert [r.status for r in results] == [200] * 4
            assert len({r.body for r in results}) == 1
            assert sorted(r.coalesced for r in results) == [
                False, True, True, True,
            ]
            metrics = await asyncio.to_thread(client.metrics_text)
            assert "repro_coalesced_joins_total 3" in metrics
            assert 'repro_jobs_total{status="done"} 1' in metrics
            assert server.scheduler.totals.computed == 1

        run(body)


class TestAdmissionOverHttp:
    def test_queue_full_503_with_retry_after(self):
        async def body(server, client):
            running = asyncio.create_task(asyncio.to_thread(
                client.run, "toy", "quick",
                {"xs": [1], "gate": "admission-http"},
            ))
            # The gated job occupies the single worker...
            await eventually(
                lambda: len(server.scheduler._inflight) == 1
                and server.scheduler._queue.qsize() == 0,
                message="worker busy with the gated job",
            )
            queued = asyncio.create_task(asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [2]}
            ))
            # ...the next job fills the depth-1 queue...
            await eventually(
                lambda: server.scheduler._queue.qsize() == 1,
                message="queue full",
            )
            # ...so a third is rejected immediately.
            rejected = await asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [3]}
            )
            assert rejected.status == 503
            assert rejected.headers["retry-after"] == "2.5"
            assert json.loads(rejected.body)["error"].startswith("queue full")
            _gate("admission-http").set()
            assert (await running).status == 200
            assert (await queued).status == 200
            metrics = await asyncio.to_thread(client.metrics_text)
            assert "repro_queue_rejected_total 1" in metrics

        run(body, queue_depth=1, retry_after=2.5)


class TestStreaming:
    def test_ndjson_event_order_and_result(self):
        async def body(server, client):
            events = await asyncio.to_thread(
                client.run_stream, "toy", "quick", {"xs": [1, 2]}
            )
            kinds = [e["event"] for e in events]
            assert kinds == ["queued", "started", "cell-done", "cell-done",
                            "finished", "result"]
            queued = events[0]
            assert queued["total_cells"] == 2
            assert events[-1]["data"]["results"]["toy"]["values"] == [1, 4]
            # Stream and plain bodies agree on the payload.
            plain = await asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [1, 2]}
            )
            assert plain.json == events[-1]["data"]

        run(body)

    def test_stream_of_coalesced_request_replays_history(self):
        async def body(server, client):
            params = {"xs": [5], "gate": "stream-replay"}
            first = asyncio.create_task(asyncio.to_thread(
                client.run, "toy", "quick", params
            ))
            await eventually(
                lambda: len(server.scheduler._inflight) == 1,
                message="first request in flight",
            )
            stream = asyncio.create_task(asyncio.to_thread(
                client.run_stream, "toy", "quick", params
            ))
            await eventually(
                lambda: server.scheduler.m_coalesced.total() == 1,
                message="stream joined the in-flight job",
            )
            _gate("stream-replay").set()
            events = await stream
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"  # replayed from history
            assert kinds[-1] == "result"
            assert (await first).status == 200

        run(body)
