"""End-to-end tests for the federated cache tier.

One real :class:`ReproServer` (ephemeral port, scratch cache) plays
the shared tier; :class:`HttpCacheTier` clients and tiered
:class:`RunCache` instances talk to it over real sockets, so the full
path — key validation, single-writer promotion, read-through local
fill, executor-level federation — is exercised exactly as two worker
boxes would drive it.
"""

from __future__ import annotations

import http.client
import pickle

import numpy as np
import pytest

from repro.serve.loadgen import ServerThread
from repro.sim import transport
from repro.sim.cache import MISS, HttpCacheTier, RunCache
from repro.sim.jobs import Executor, cell

SQ = "tests.sim.test_jobs:_square"

KEY = "ab" * 32  # 64 lowercase hex chars, like a real digest


@pytest.fixture(scope="module")
def tier_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("tier")
    with ServerThread(cache=RunCache(root)) as server:
        yield server


def _raw(server, method: str, path: str, body: bytes | None = None,
         headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


class TestEndpoint:
    def test_get_missing_key_is_404(self, tier_server):
        status, _, _ = _raw(tier_server, "GET", f"/v1/cache/{'00' * 32}")
        assert status == 404

    def test_malformed_keys_rejected(self, tier_server):
        for bad in ("short", "Z" * 64, "AB" * 32, "../../etc/passwd"):
            status, _, _ = _raw(tier_server, "GET", f"/v1/cache/{bad}")
            assert status == 400, bad

    def test_single_writer_promotion(self, tier_server):
        first = pickle.dumps({"winner": 1})
        second = pickle.dumps({"loser": 2})
        status, _, _ = _raw(tier_server, "PUT", f"/v1/cache/{KEY}", first)
        assert status == 201  # stored
        status, _, _ = _raw(tier_server, "PUT", f"/v1/cache/{KEY}", second)
        assert status == 200  # exists: first writer's copy kept
        status, body, _ = _raw(tier_server, "GET", f"/v1/cache/{KEY}")
        assert status == 200
        assert body == first

    def test_method_not_allowed(self, tier_server):
        status, _, _ = _raw(tier_server, "POST", f"/v1/cache/{'cd' * 32}")
        assert status == 405


class TestHttpCacheTier:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            HttpCacheTier("ftp://host:1/")
        with pytest.raises(ValueError):
            HttpCacheTier("http://")

    def test_get_put_roundtrip(self, tier_server):
        tier = HttpCacheTier(f"http://127.0.0.1:{tier_server.port}")
        key = "ee" * 32
        blob = pickle.dumps([1, 2, 3])
        assert tier.get(key) is None  # miss
        assert tier.put(key, blob) == "stored"
        assert tier.put(key, blob) == "exists"
        assert tier.get(key) == blob
        assert tier.errors == 0

    def test_unreachable_tier_degrades_quietly(self):
        tier = HttpCacheTier("http://127.0.0.1:9", timeout=0.2)
        assert tier.get("ff" * 32) is None
        assert tier.put("ff" * 32, b"x") is None
        assert tier.errors == 2


class TestFederatedRunCache:
    def test_read_through_fills_local(self, tier_server, tmp_path):
        url = f"http://127.0.0.1:{tier_server.port}"
        a = RunCache(tmp_path / "a", tier=HttpCacheTier(url))
        b = RunCache(tmp_path / "b", tier=HttpCacheTier(url))
        key = "0a" * 32
        a.put(key, {"v": 42})  # local store + write-through publish
        assert a.tier_stores == 1
        # b has never seen the key locally: the tier serves it...
        assert b.get(key) == {"v": 42}
        assert b.tier_hits == 1
        # ...and the local fill makes the next read purely local.
        assert b.get(key) == {"v": 42}
        assert b.tier.gets == 1

    def test_tier_miss_is_a_plain_miss(self, tier_server, tmp_path):
        url = f"http://127.0.0.1:{tier_server.port}"
        c = RunCache(tmp_path, tier=HttpCacheTier(url))
        assert c.get("0b" * 32) is MISS
        assert c.tier_misses == 1

    def test_two_workers_share_compute(self, tier_server, tmp_path):
        # Worker A computes; worker B (fresh L1, same tier) only reads.
        url = f"http://127.0.0.1:{tier_server.port}"
        cells = [cell(SQ, x=i) for i in (21, 22)]
        a = Executor(cache=RunCache(tmp_path / "wa", tier=HttpCacheTier(url)))
        assert a.run(cells) == [441, 484]
        assert a.stats.computed == 2
        b = Executor(cache=RunCache(tmp_path / "wb", tier=HttpCacheTier(url)))
        assert b.run(cells) == [441, 484]
        assert b.stats.computed == 0
        assert b.stats.cache_hits == 2
        assert b.cache.tier_hits == 2


class TestBlobFormatNegotiation:
    """GET/PUT header negotiation for framed RPT1 blobs.

    New peers advertise ``X-Repro-Blob-Accept: rpt1, raw`` and get the
    stored framed bytes verbatim; an Accept-less old peer gets a
    transparent transcode back to a raw pickle it can load directly.
    """

    def _value(self):
        return {"col": np.repeat(np.arange(8, dtype=np.uint64), 2_048)}

    def test_new_peer_gets_framed_bytes_verbatim(self, tier_server):
        tier = HttpCacheTier(f"http://127.0.0.1:{tier_server.port}")
        key = "1a" * 32
        blob = transport.dumps(self._value())
        assert tier.put(key, blob) == "stored"
        assert tier.get(key) == blob
        status, body, headers = _raw(
            tier_server, "GET", f"/v1/cache/{key}",
            headers={HttpCacheTier.ACCEPT_HEADER: "rpt1, raw"},
        )
        assert status == 200
        assert body == blob
        assert headers.get(HttpCacheTier.FORMAT_HEADER) == "rpt1"

    def test_old_peer_gets_a_transcoded_raw_pickle(self, tier_server):
        tier = HttpCacheTier(f"http://127.0.0.1:{tier_server.port}")
        key = "2b" * 32
        value = self._value()
        tier.put(key, transport.dumps(value))
        # No Accept header: the server must not hand back RPT1 framing.
        status, body, headers = _raw(tier_server, "GET",
                                     f"/v1/cache/{key}")
        assert status == 200
        assert headers.get(HttpCacheTier.FORMAT_HEADER) == "raw"
        assert not transport.is_framed(body)
        out = pickle.loads(body)
        assert np.array_equal(out["col"], value["col"])

    def test_legacy_raw_put_serves_both_peer_generations(
        self, tier_server
    ):
        key = "3c" * 32
        raw = pickle.dumps({"legacy": True},
                           protocol=pickle.HIGHEST_PROTOCOL)
        status, _, _ = _raw(tier_server, "PUT", f"/v1/cache/{key}", raw)
        assert status == 201
        # Old peer: raw in, raw out.
        status, body, headers = _raw(tier_server, "GET",
                                     f"/v1/cache/{key}")
        assert status == 200
        assert body == raw
        assert headers.get(HttpCacheTier.FORMAT_HEADER) == "raw"
        # New peer: the tier client decodes raw entries transparently.
        tier = HttpCacheTier(f"http://127.0.0.1:{tier_server.port}")
        assert RunCache.decode_blob(tier.get(key)) == {"legacy": True}

    def test_tier_client_counts_bytes_on_wire(self, tier_server):
        tier = HttpCacheTier(f"http://127.0.0.1:{tier_server.port}")
        key = "4d" * 32
        blob = transport.dumps(self._value())
        tier.put(key, blob)
        assert tier.bytes_sent == len(blob)
        assert tier.get(key) == blob
        assert tier.bytes_received == len(blob)

    def test_federated_round_trip_of_a_framed_numpy_value(
        self, tier_server, tmp_path
    ):
        url = f"http://127.0.0.1:{tier_server.port}"
        a = RunCache(tmp_path / "a", tier=HttpCacheTier(url))
        b = RunCache(tmp_path / "b", tier=HttpCacheTier(url))
        key = "5e" * 32
        value = self._value()
        a.put(key, value)
        out = b.get(key)
        assert out is not MISS
        assert np.array_equal(out["col"], value["col"])
        # The wire carried the framed (compressed) blob, not logical
        # bytes: on-wire size beats the raw pickle by a wide margin.
        raw_len = len(pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        assert b.tier.bytes_received < raw_len / 2


class TestNoCacheServer:
    def test_tier_endpoints_disabled_without_cache(self, tmp_path):
        with ServerThread(cache=None) as server:
            status, _, _ = _raw(server, "GET", f"/v1/cache/{'11' * 32}")
            assert status == 404
            # The client degrades to local-only without raising.
            tier = HttpCacheTier(f"http://127.0.0.1:{server.port}")
            assert tier.get("11" * 32) is None
