"""The sweep endpoints end to end: POST /v1/sweep (plain + NDJSON
stream), the status/cancel routes, /explorer, coalescing, and the
repro_sweep_* metric families.

One tiny real grid (one policy, one workload, 2000-access traces: four
points over two shared cells) keeps the cells cheap while still
exercising the scheme fan-out and the dedup accounting.  Scheduler-only
tests drive submit_sweep directly, the same way test_scheduler.py does
for runs.
"""

import asyncio
import json
import tempfile

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import QueueFull, Scheduler, SweepJob
from repro.serve.server import ReproServer
from repro.sim.cache import RunCache

#: 4 grid points (one policy x four schemes), 2 unique cells.
TINY = {"policies": ["thp"], "workloads": ["svm"], "scale": "quick",
        "trace_len": 2000}


async def _with_server(body, **kwargs):
    with tempfile.TemporaryDirectory(prefix="repro-sweep-test-") as td:
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("cache", RunCache(td))
        server = ReproServer(port=0, **kwargs)
        await server.start()
        try:
            await body(server, ServeClient(port=server.port, timeout=120))
        finally:
            await server.stop()


def run(body, **kwargs):
    asyncio.run(_with_server(body, **kwargs))


def canonical(data: dict) -> bytes:
    return json.dumps(data, sort_keys=True,
                      separators=(",", ":")).encode()


class TestSweepEndpoint:
    def test_cold_then_warm_round_trip(self):
        async def body(server, client):
            cold = await asyncio.to_thread(client.sweep, TINY)
            assert cold.status == 200
            assert cold.sweep_points == 4
            assert cold.sweep_cells == 2
            assert int(cold.headers["x-repro-cells-computed"]) == 2
            data = cold.json
            assert data["points"] == 4
            assert data["unique_cells"] == 2
            assert data["frontier_size"] >= 1
            assert data["frontier_labels"]

            # The identical sweep again: zero new cells, same bytes.
            warm = await asyncio.to_thread(client.sweep, TINY)
            assert warm.status == 200
            assert int(warm.headers["x-repro-cells-computed"]) == 0
            assert warm.body == cold.body

            # Status route: the registered sweep reports every point
            # done, and cancel of a finished sweep is a no-op.
            status = await asyncio.to_thread(
                client.sweep_status, cold.sweep_id
            )
            assert status["state"] == "done"
            assert status["states"] == {"done": 4}
            assert status["frontier_size"] == data["frontier_size"]
            cancelled = await asyncio.to_thread(
                client.sweep_cancel, cold.sweep_id
            )
            assert cancelled["cancelled"] is False

            # Explorer: self-contained HTML with the frontier SVG.
            page = await asyncio.to_thread(
                client._request, "GET", "/explorer"
            )
            assert page.status == 200
            html = page.body.decode()
            assert "<svg" in html and cold.sweep_id in html

            # Metric families: all sweep counters/gauges exposed.
            metrics = await asyncio.to_thread(client.metrics_text)
            for family in (
                'repro_sweeps_total{status="done"} 2',
                "repro_sweep_points_total 8",
                "repro_sweep_cells_total 4",
                "repro_sweep_cells_deduped_total 12",
                "repro_sweep_cells_computed_total 2",
                "repro_sweep_frontier_size",
                "repro_sweep_stream_clients 0",
            ):
                assert family in metrics, family

        run(body)

    def test_stream_replays_cells_and_result(self):
        async def body(server, client):
            plain = await asyncio.to_thread(client.sweep, TINY)
            events = await asyncio.to_thread(
                lambda: list(client.iter_sweep_stream(TINY))
            )
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert kinds.count("sweep-cell") == 4
            assert kinds[-2:] == ["finished", "result"]
            cells = [e for e in events if e["event"] == "sweep-cell"]
            assert [e["done"] for e in cells] == [1, 2, 3, 4]
            assert {e["scheme"] for e in cells} == {
                "paging", "spot", "vrmm", "ds"
            }
            # The streamed result is the same canonical payload the
            # plain response carried.
            assert canonical(events[-1]["data"]) == plain.body

        run(body)

    def test_validation_and_unknown_routes(self):
        async def body(server, client):
            bad = await asyncio.to_thread(
                client.sweep, {"policies": ["nope"]}
            )
            assert bad.status == 400
            assert "unknown policy" in bad.json["error"]

            with pytest.raises(ServeError) as err:
                await asyncio.to_thread(client.sweep_status, "no-such")
            assert err.value.status == 404

            get = await asyncio.to_thread(
                client._request, "GET", "/v1/sweep"
            )
            assert get.status == 405

        run(body)


class TestSweepScheduler:
    def test_identical_sweeps_coalesce(self):
        async def main():
            sched = Scheduler(workers=1)
            job1, c1 = sched.submit_sweep(TINY)
            job2, c2 = sched.submit_sweep(dict(TINY, policies="thp"))
            assert isinstance(job1, SweepJob)
            assert job1 is job2  # same digest despite the spelling
            assert (c1, c2) == (False, True)
            assert sched.m_coalesced.total() == 1
            await sched.start()
            out1 = await job1.outcome
            await sched.stop()
            assert out1.status == "done"
            assert sched.m_jobs.get("done") == 1

        asyncio.run(main())

    def test_full_queue_rejects_sweeps(self):
        async def main():
            sched = Scheduler(queue_depth=1, workers=1)
            sched.submit_sweep(TINY)  # workers not started: queue holds
            with pytest.raises(QueueFull):
                sched.submit_sweep(dict(TINY, seed=1))
            assert sched.m_rejected.total() == 1

        asyncio.run(main())

    def test_registry_bounded(self):
        async def main():
            sched = Scheduler(queue_depth=64, workers=1)
            sched.sweeps_keep = 2
            for seed in range(3):
                sched.submit_sweep(dict(TINY, seed=seed))
            assert len(sched._sweeps) == 2

        asyncio.run(main())

    def test_pre_start_cancel_lands(self):
        async def main():
            sched = Scheduler(workers=1)
            job, _ = sched.submit_sweep(TINY)
            assert sched.cancel_sweep(job.job_id) is job
            assert job.cancel_requested
            await sched.start()
            outcome = await job.outcome
            await sched.stop()
            assert outcome.status == "cancelled"
            assert sched.m_jobs.get("cancelled") == 1

        asyncio.run(main())
