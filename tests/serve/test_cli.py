"""CLI surface of the serving layer: cache commands, size parsing."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_size
from repro.sim.cache import RunCache


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("1048576") == 1 << 20

    def test_suffixes(self):
        assert parse_size("500M") == 500 * (1 << 20)
        assert parse_size("2G") == 2 << 30
        assert parse_size("1k") == 1 << 10

    def test_fractional(self):
        assert parse_size("1.5K") == 1536

    def test_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("-5M")


class TestCacheCommands:
    def test_stats_and_prune_round_trip(self, tmp_path, capsys):
        cache = RunCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02x}" * 32, list(range(1000)))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:     3" in out
        assert main([
            "cache", "prune", "--max-bytes", "0",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "removed 3" in out
        assert len(RunCache(tmp_path)) == 0

    def test_prune_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "prune"])


class TestParserWiring:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8377)
        assert (args.queue_depth, args.workers, args.jobs) == (16, 2, 1)

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "fig11"])
        assert args.experiment == "fig11"
        assert args.scale == "quick"
        assert not args.stream

    def test_bench_serve_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.clients == 8
        assert args.experiment == "fig11"
        assert args.out == "BENCH_serve.json"

    def test_submit_without_server_fails_cleanly(self, capsys):
        # Port 1 is never listening; the command must not raise.
        rc = main(["submit", "fig11", "--port", "1"])
        assert rc == 1
        assert "cannot reach server" in capsys.readouterr().err
