"""Scheduler unit tests: coalescing, admission control, events.

These drive the scheduler directly on an event loop with toy plans —
no sockets — so the concurrency mechanics are tested without HTTP
noise (the server tests cover the wire).
"""

import asyncio
import json
from dataclasses import dataclass

import pytest

from repro.serve.scheduler import (
    BadRequest,
    QueueFull,
    Scheduler,
    UnknownExperiment,
    default_plans_for,
)
from repro.sim.jobs import Plan, cell


def _sq(*, x):
    return x * x


def _boom(*, x):
    raise ValueError(f"bad cell {x}")


SQ = "tests.serve.test_scheduler:_sq"
BOOM = "tests.serve.test_scheduler:_boom"


@dataclass
class ToyResult:
    values: tuple

    def report(self) -> str:
        return f"values={self.values}"


def toy_plans_for(experiment, scale_name, params):
    """A one-plan registry: params pick the cells."""
    params = params or {}
    xs = params.get("xs", (1, 2))
    fn = BOOM if params.get("boom") else SQ
    cells = [cell(fn, x=x) for x in xs]
    return [(experiment, Plan(cells, assemble=lambda rs: ToyResult(tuple(rs))))]


def make(**kwargs):
    kwargs.setdefault("plans_for", toy_plans_for)
    kwargs.setdefault("workers", 1)
    return Scheduler(**kwargs)


class TestCoalescing:
    def test_identical_requests_share_one_job(self):
        async def main():
            sched = make(queue_depth=4)
            # Submit before workers start, so both definitely coalesce.
            job1, c1 = sched.submit("toy", "quick", {"xs": [3]})
            job2, c2 = sched.submit("toy", "quick", {"xs": [3]})
            assert job1 is job2
            assert (c1, c2) == (False, True)
            assert job1.joiners == 1
            await sched.start()
            out1 = await job1.outcome
            out2 = await job2.outcome
            await sched.stop()
            assert out1.body is out2.body  # the same bytes object
            assert json.loads(out1.body)["results"]["toy"]["values"] == [9]
            # One executor invocation for two requests.
            assert sched.totals.computed == 1
            assert sched.m_coalesced.total() == 1
            assert sched.m_jobs.get("done") == 1

        asyncio.run(main())

    def test_different_requests_do_not_coalesce(self):
        async def main():
            sched = make(queue_depth=4)
            job1, _ = sched.submit("toy", "quick", {"xs": [3]})
            job2, c2 = sched.submit("toy", "quick", {"xs": [4]})
            assert job1 is not job2
            assert c2 is False
            await sched.start()
            await job1.outcome
            await job2.outcome
            await sched.stop()
            assert sched.totals.computed == 2

        asyncio.run(main())

    def test_finished_jobs_leave_the_coalescing_map(self):
        async def main():
            sched = make(queue_depth=4)
            await sched.start()
            job1, _ = sched.submit("toy", "quick", {"xs": [5]})
            await job1.outcome
            job2, coalesced = sched.submit("toy", "quick", {"xs": [5]})
            assert job2 is not job1
            assert coalesced is False
            await job2.outcome
            await sched.stop()

        asyncio.run(main())


class TestAdmissionControl:
    def test_full_queue_rejects(self):
        async def main():
            sched = make(queue_depth=1)  # workers not started: nothing drains
            job1, _ = sched.submit("toy", "quick", {"xs": [1]})
            with pytest.raises(QueueFull):
                sched.submit("toy", "quick", {"xs": [2]})
            assert sched.m_rejected.total() == 1
            # Coalescing still accepts duplicates of the queued job.
            _, coalesced = sched.submit("toy", "quick", {"xs": [1]})
            assert coalesced is True
            await sched.start()
            await job1.outcome
            await sched.stop()

        asyncio.run(main())


class TestEvents:
    def test_event_order_and_replay(self):
        async def main():
            sched = make(queue_depth=4)
            job, _ = sched.submit("toy", "quick", {"xs": [1, 2, 3]})
            live = job.subscribe()
            await sched.start()
            await job.outcome
            events = []
            while True:
                event = await live.get()
                if event is None:
                    break
                events.append(event)
            # A late subscriber replays the identical history.
            replay = job.subscribe()
            replayed = []
            while True:
                event = await replay.get()
                if event is None:
                    break
                replayed.append(event)
            await sched.stop()
            kinds = [e["event"] for e in events]
            assert kinds == ["queued", "started", "cell-done", "cell-done",
                            "cell-done", "finished", "result"]
            assert events == replayed
            dones = [e["done"] for e in events if e["event"] == "cell-done"]
            assert dones == [1, 2, 3]
            assert events[-1]["data"]["results"]["toy"]["values"] == [1, 4, 9]

        asyncio.run(main())

    def test_failed_job_reports_failure(self):
        async def main():
            sched = make(queue_depth=4)
            job, _ = sched.submit("toy", "quick", {"xs": [1], "boom": True})
            await sched.start()
            outcome = await job.outcome
            await sched.stop()
            assert outcome.status == "failed"
            assert "bad cell 1" in outcome.error
            assert json.loads(outcome.body)["error"]
            assert sched.m_jobs.get("failed") == 1
            assert job.events[-1]["event"] == "failed"

        asyncio.run(main())

    def test_stop_fails_pending_jobs(self):
        async def main():
            sched = make(queue_depth=4)
            job, _ = sched.submit("toy", "quick", {"xs": [1]})
            await sched.stop()  # never started
            outcome = await job.outcome
            assert outcome.status == "failed"
            assert "shutting down" in outcome.error

        asyncio.run(main())


class TestDefaultPlansFor:
    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperiment):
            default_plans_for("nope", "quick", None)

    def test_unknown_scale(self):
        with pytest.raises(BadRequest):
            default_plans_for("fig11", "galactic", None)

    def test_bad_params(self):
        with pytest.raises(BadRequest):
            default_plans_for("fig11", "quick", {"bogus_kw": 1})

    def test_params_reach_the_plan(self):
        entries = default_plans_for(
            "fig11", "quick", {"policies": ["thp", "ca"], "workloads": ["gups"]}
        )
        [(key, plan)] = entries
        assert key == "fig11"
        assert len(plan.cells) == 2  # gups x {thp, ca}

    def test_key_depends_on_params(self):
        async def main():
            sched = make(queue_depth=4)
            a = sched.plans_for("toy", "quick", {"xs": [1]})
            b = sched.plans_for("toy", "quick", {"xs": [2]})
            ka = sched.request_key("toy", "quick", {"xs": [1]}, a)
            kb = sched.request_key("toy", "quick", {"xs": [2]}, b)
            ka2 = sched.request_key("toy", "quick", {"xs": [1]}, a)
            assert ka != kb
            assert ka == ka2

        asyncio.run(main())


class TestCellMetrics:
    def test_compute_and_queue_histograms_populate(self):
        async def main():
            sched = make(queue_depth=4)
            job, _ = sched.submit("toy", "quick", {"xs": [6, 7, 8]})
            await sched.start()
            await job.outcome
            await sched.stop()
            # Three cells computed inline (jobs=1): three compute-time
            # observations, none queued through a worker pool.
            assert sched.m_cell_compute.hist.count == 3
            assert sched.m_cell_queue_wait.hist.count == 0
            text = sched.registry.render()
            assert "repro_cell_compute_seconds_count 3" in text
            assert "repro_cell_compute_seconds_bucket" in text
            assert "repro_cell_queue_wait_seconds_count 0" in text

        asyncio.run(main())

    def test_tier_gauges_render_zero_without_a_tier(self):
        sched = make(queue_depth=4)
        text = sched.registry.render()
        for name in ("repro_cache_tier_hits", "repro_cache_tier_misses",
                     "repro_cache_tier_stores", "repro_cache_tier_errors"):
            assert f"{name} 0" in text
