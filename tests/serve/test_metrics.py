"""Prometheus text exposition from the serve metrics registry."""

import pytest

from repro.serve.metrics import Counter, Gauge, HistogramMetric, Registry


class TestCounter:
    def test_unlabeled(self):
        c = Counter("x_total", "things")
        c.inc()
        c.inc(n=2)
        assert c.total() == 3
        assert "x_total 3" in c.render()

    def test_labeled_breakout(self):
        c = Counter("http_total", "by code", label="code")
        c.inc("200", 5)
        c.inc("503")
        text = c.render()
        assert 'http_total{code="200"} 5' in text
        assert 'http_total{code="503"} 1' in text
        assert c.get("200") == 5
        assert c.get("404") == 0

    def test_renders_zero_when_untouched(self):
        assert "x_total 0" in Counter("x_total", "h").render()


class TestGauge:
    def test_set_value(self):
        g = Gauge("depth", "queue depth")
        g.set(4)
        assert "depth 4" in g.render()

    def test_callable_backed(self):
        state = {"v": 1.5}
        g = Gauge("ratio", "hit ratio", fn=lambda: state["v"])
        assert "ratio 1.5" in g.render()
        state["v"] = 2.0
        assert g.get() == 2.0


class TestHistogramMetric:
    def test_exposition_shape(self):
        h = HistogramMetric("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = h.render()
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 5.05" in text


class TestRegistry:
    def test_render_all_metrics_with_metadata(self):
        reg = Registry()
        reg.counter("a_total", "a help")
        reg.gauge("b", "b help").set(2)
        text = reg.render()
        assert "# HELP a_total a help" in text
        assert "# TYPE a_total counter" in text
        assert "b 2" in text
        assert text.endswith("\n")

    def test_duplicate_names_rejected(self):
        reg = Registry()
        reg.counter("a", "h")
        with pytest.raises(ValueError):
            reg.counter("a", "again")
