"""Property test: the incremental contiguity map vs a from-scratch rebuild.

The map updates its clusters on every MAX_ORDER free-list event (merge,
split, downward extension, bridge).  The invariant that makes it
trustworthy is simple: at any point, its snapshot must equal what a
cold scan of the buddy allocator's MAX_ORDER free list would produce.
This drives a zone through randomized alloc/free sequences and checks
that equivalence at every step.
"""

import random

import pytest

from repro.errors import OutOfMemoryError
from repro.mm.zone import Zone
from repro.units import order_pages

MAX_ORDER = 5
BLOCK = order_pages(MAX_ORDER)


def rebuild_from_buddy(zone: Zone) -> list[tuple[int, int]]:
    """Cold-scan reference: coalesce the sorted MAX_ORDER free heads."""
    heads = sorted(zone.buddy.iter_free_blocks(MAX_ORDER))
    clusters: list[tuple[int, int]] = []
    for head in heads:
        if clusters and clusters[-1][0] + clusters[-1][1] == head:
            clusters[-1] = (clusters[-1][0], clusters[-1][1] + BLOCK)
        else:
            clusters.append((head, BLOCK))
    return clusters


def assert_map_consistent(zone: Zone) -> None:
    assert sorted(zone.contiguity_map.snapshot()) == rebuild_from_buddy(zone)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_alloc_free_keeps_map_consistent(seed):
    rng = random.Random(seed)
    zone = Zone(0, 0, 256 * BLOCK, max_order=MAX_ORDER)
    assert_map_consistent(zone)
    held: list[tuple[int, int]] = []
    for step in range(600):
        if held and rng.random() < 0.45:
            pfn, order = held.pop(rng.randrange(len(held)))
            zone.free_block(pfn, order)
        else:
            order = rng.choice([0, 0, 1, 2, 3, MAX_ORDER])
            try:
                pfn = zone.alloc_block(order)
            except OutOfMemoryError:
                continue
            held.append((pfn, order))
        assert_map_consistent(zone)
    # Drain everything: one maximal cluster must re-form.
    for pfn, order in held:
        zone.free_block(pfn, order)
    assert_map_consistent(zone)
    assert len(zone.contiguity_map) == 1


def test_targeted_alloc_splits_consistently():
    rng = random.Random(9)
    zone = Zone(0, 0, 64 * BLOCK, max_order=MAX_ORDER)
    taken: list[tuple[int, int]] = []
    for _ in range(120):
        pfn = rng.randrange(0, 64 * BLOCK)
        order = rng.choice([0, 1, MAX_ORDER])
        pfn -= pfn % order_pages(order)
        if zone.alloc_target(pfn, order):
            taken.append((pfn, order))
        assert_map_consistent(zone)
    rng.shuffle(taken)
    for pfn, order in taken:
        zone.free_block(pfn, order)
        assert_map_consistent(zone)
