"""Unit tests for the buddy allocator."""

import numpy as np
import pytest

from repro.errors import BuddyError, OutOfMemoryError
from repro.mm.buddy import BuddyAllocator
from repro.units import order_pages


def make_buddy(n_pages=1024, max_order=5, **kw):
    return BuddyAllocator(0, n_pages, max_order=max_order, **kw)


class TestConstruction:
    def test_all_memory_starts_free(self):
        buddy = make_buddy()
        assert buddy.free_pages == 1024

    def test_seeded_into_max_order_blocks(self):
        buddy = make_buddy(n_pages=128, max_order=5)
        assert len(list(buddy.iter_free_blocks(5))) == 4
        assert all(len(list(buddy.iter_free_blocks(o))) == 0 for o in range(5))

    def test_non_power_of_two_range_is_carved_greedily(self):
        buddy = BuddyAllocator(0, 32 + 8 + 2, max_order=5)
        assert buddy.free_pages == 42
        assert len(list(buddy.iter_free_blocks(5))) == 1
        assert len(list(buddy.iter_free_blocks(3))) == 1
        assert len(list(buddy.iter_free_blocks(1))) == 1

    def test_misaligned_base_rejected(self):
        with pytest.raises(BuddyError):
            BuddyAllocator(3, 64, max_order=4)

    def test_nonzero_aligned_base(self):
        buddy = BuddyAllocator(64, 64, max_order=4)
        pfn = buddy.alloc_block(0)
        assert 64 <= pfn < 128

    def test_empty_range_rejected(self):
        with pytest.raises(BuddyError):
            BuddyAllocator(0, 0)


class TestAllocBlock:
    def test_alloc_reduces_free_pages(self):
        buddy = make_buddy()
        buddy.alloc_block(3)
        assert buddy.free_pages == 1024 - 8

    def test_alloc_returns_aligned_head(self):
        buddy = make_buddy()
        for order in range(6):
            pfn = buddy.alloc_block(order)
            assert pfn % order_pages(order) == 0

    def test_alloc_marks_frames_in_use(self):
        buddy = make_buddy()
        pfn = buddy.alloc_block(2)
        for p in range(pfn, pfn + 4):
            assert buddy.frames.in_use(p)
            assert not buddy.is_free(p)

    def test_split_creates_lower_order_blocks(self):
        buddy = make_buddy(n_pages=32, max_order=5)
        buddy.alloc_block(0)
        sizes = buddy.free_list_sizes()
        assert sizes == [1, 1, 1, 1, 1, 0]

    def test_exhaustion_raises(self):
        buddy = make_buddy(n_pages=32, max_order=5)
        buddy.alloc_block(5)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_block(0)

    def test_bad_order_rejected(self):
        buddy = make_buddy(max_order=5)
        with pytest.raises(BuddyError):
            buddy.alloc_block(6)
        with pytest.raises(BuddyError):
            buddy.alloc_block(-1)

    def test_lifo_reuse(self):
        # Fill memory completely so freed frames cannot coalesce away,
        # then check the most recently freed frame is reused first
        # (Linux-like head insertion).
        buddy = make_buddy(n_pages=8, max_order=3)
        frames = [buddy.alloc_block(0) for _ in range(8)]
        first, second = frames[0], frames[5]
        buddy.free_block(first, 0)
        buddy.free_block(second, 0)
        assert buddy.alloc_block(0) == second


class TestAllocTarget:
    def test_target_inside_free_block_succeeds(self):
        buddy = make_buddy()
        assert buddy.alloc_target(100, 0)
        assert buddy.frames.in_use(100)
        assert buddy.free_pages == 1023

    def test_target_already_allocated_fails(self):
        buddy = make_buddy()
        pfn = buddy.alloc_block(0)
        assert not buddy.alloc_target(pfn, 0)

    def test_target_split_preserves_remaining_memory(self):
        buddy = make_buddy(n_pages=32, max_order=5)
        assert buddy.alloc_target(13, 0)
        assert buddy.free_pages == 31
        # All other frames must still be allocatable.
        for p in range(32):
            if p != 13:
                assert buddy.is_free(p), f"frame {p} lost"

    def test_target_huge_block(self):
        buddy = make_buddy()
        assert buddy.alloc_target(512, 4)
        for p in range(512, 528):
            assert buddy.frames.in_use(p)

    def test_target_misaligned_raises(self):
        buddy = make_buddy()
        with pytest.raises(BuddyError):
            buddy.alloc_target(3, 2)

    def test_target_beyond_range_fails(self):
        buddy = make_buddy(n_pages=64, max_order=5)
        assert not buddy.alloc_target(4096, 0)

    def test_target_in_partially_used_region_fails(self):
        buddy = make_buddy(n_pages=32, max_order=5)
        assert buddy.alloc_target(8, 0)
        # The order-3 block [8,16) is broken: a huge target there fails.
        assert not buddy.alloc_target(8, 3)
        # But an untouched order-3 block still works.
        assert buddy.alloc_target(16, 3)

    def test_consecutive_targets_build_contiguity(self):
        buddy = make_buddy()
        for p in range(40, 72):
            assert buddy.alloc_target(p, 0)
        assert buddy.free_pages == 1024 - 32


class TestFree:
    def test_free_restores_pages(self):
        buddy = make_buddy()
        pfn = buddy.alloc_block(4)
        buddy.free_block(pfn, 4)
        assert buddy.free_pages == 1024

    def test_full_coalescing_restores_max_order_block(self):
        buddy = make_buddy(n_pages=32, max_order=5)
        pfns = [buddy.alloc_block(0) for _ in range(32)]
        for pfn in pfns:
            buddy.free_block(pfn, 0)
        assert len(list(buddy.iter_free_blocks(5))) == 1

    def test_double_free_detected(self):
        buddy = make_buddy()
        pfn = buddy.alloc_block(0)
        buddy.free_block(pfn, 0)
        with pytest.raises(BuddyError):
            buddy.free_block(pfn, 0)

    def test_free_out_of_range_rejected(self):
        buddy = make_buddy(n_pages=64, max_order=5)
        with pytest.raises(BuddyError):
            buddy.free_block(4096, 0)

    def test_coalescing_stops_at_max_order(self):
        buddy = make_buddy(n_pages=64, max_order=4)
        a = buddy.alloc_block(4)
        b = buddy.alloc_block(4)
        buddy.free_block(a, 4)
        buddy.free_block(b, 4)
        # Two adjacent max-order blocks stay separate in the buddy...
        assert len(list(buddy.iter_free_blocks(4))) == 4


class TestAllocPagesBulk:
    def test_zero_pages_is_a_noop(self):
        buddy = make_buddy(n_pages=64, max_order=4)
        before = buddy.free_list_sizes()
        out = buddy.alloc_pages_bulk(0)
        assert len(out) == 0 and out.dtype == np.int64
        assert buddy.free_pages == 64
        assert buddy.free_list_sizes() == before

    def test_matches_sequential_alloc(self):
        # The whole point of the bulk path: same PFN stream and same
        # end state as n alloc_block(0) calls, order for order.
        for n in (1, 7, 16, 17, 64, 100):
            bulk, seq = make_buddy(), make_buddy()
            # Age both identically so free lists are non-trivial.
            for b in (bulk, seq):
                held = [b.alloc_block(0) for _ in range(48)]
                for pfn in held[::3]:
                    b.free_block(pfn, 0)
            got = bulk.alloc_pages_bulk(n).tolist()
            want = [seq.alloc_block(0) for _ in range(n)]
            assert got == want
            assert bulk.free_list_sizes() == seq.free_list_sizes()

    def test_partial_max_order_block_survivors(self):
        # Taking 3 pages out of a fresh order-4 block leaves the 13-page
        # tail carved greedily from its low end: 1 + 4 + 8.
        buddy = make_buddy(n_pages=16, max_order=4)
        out = buddy.alloc_pages_bulk(3)
        assert out.tolist() == [0, 1, 2]
        assert buddy.free_list_sizes() == [1, 0, 1, 1, 0]

    def test_spans_max_order_boundary(self):
        # 24 pages from 16-page max-order blocks: consumes one block
        # entirely and half of the next (seeded lists pop LIFO, so the
        # highest-addressed block goes first).
        buddy = make_buddy(n_pages=64, max_order=4)
        out = buddy.alloc_pages_bulk(24)
        assert out.tolist() == list(range(48, 64)) + list(range(32, 40))
        assert buddy.free_pages == 40
        assert buddy.free_list_sizes() == [0, 0, 0, 1, 2]

    def test_exhaustion_returns_short_never_raises(self):
        buddy = make_buddy(n_pages=32, max_order=4)
        out = buddy.alloc_pages_bulk(100)
        assert len(out) == 32
        assert buddy.free_pages == 0
        assert len(buddy.alloc_pages_bulk(5)) == 0

    def test_bulk_then_free_restores_max_order_blocks(self):
        buddy = make_buddy(n_pages=64, max_order=4)
        out = buddy.alloc_pages_bulk(24)
        for pfn in out.tolist():
            buddy.free_block(pfn, 0)
        assert buddy.free_pages == 64
        assert buddy.free_list_sizes() == [0, 0, 0, 0, 4]


class TestMaxOrderBoundary:
    def test_split_and_remerge_last_block(self):
        # Break the highest max-order block down to a single page at the
        # very end of the managed range, then coalesce it back.
        buddy = make_buddy(n_pages=64, max_order=4)
        last = buddy.end_pfn - 1
        assert buddy.alloc_target(last, 0)
        assert buddy.free_pages == 63
        sizes = buddy.free_list_sizes()
        assert sizes == [1, 1, 1, 1, 3]
        buddy.free_block(last, 0)
        assert buddy.free_list_sizes() == [0, 0, 0, 0, 4]

    def test_merge_does_not_cross_max_order(self):
        # Freeing two buddies at max_order must not merge into a
        # (nonexistent) max_order+1 block.
        buddy = make_buddy(n_pages=32, max_order=4)
        a = buddy.alloc_block(4)
        b = buddy.alloc_block(4)
        buddy.free_block(a, 4)
        buddy.free_block(b, 4)
        assert buddy.free_list_sizes() == [0, 0, 0, 0, 2]

    def test_bulk_drains_every_max_order_block(self):
        # Bulk allocation walking the whole range touches each
        # max-order block exactly once and in list order.
        buddy = make_buddy(n_pages=64, max_order=4)
        out = buddy.alloc_pages_bulk(64)
        assert sorted(out.tolist()) == list(range(64))
        assert buddy.free_pages == 0
        for pfn in range(0, 64, 16):
            buddy.free_block(pfn, 4)
        assert buddy.free_pages == 64


class TestFindFreeBlock:
    def test_find_in_fresh_memory(self):
        buddy = make_buddy(n_pages=64, max_order=5)
        head, order = buddy.find_free_block(45)
        assert head == 32 and order == 5

    def test_find_after_alloc(self):
        buddy = make_buddy(n_pages=64, max_order=5)
        buddy.alloc_target(0, 0)
        head, order = buddy.find_free_block(1)
        assert head == 1 and order == 0

    def test_outside_range_is_none(self):
        buddy = make_buddy(n_pages=64, max_order=5)
        assert buddy.find_free_block(9999) is None


class TestSortedMaxOrder:
    def test_sorted_pop_is_lowest_address(self):
        buddy = make_buddy(n_pages=1024, max_order=5, sorted_max_order=True)
        # Allocate + free in scrambled order, then the next max-order
        # pop must still be the lowest address.
        blocks = [buddy.alloc_block(5) for _ in range(4)]
        for b in reversed(blocks):
            buddy.free_block(b, 5)
        assert buddy.alloc_block(5) == min(blocks)

    def test_unsorted_pop_is_lifo(self):
        buddy = make_buddy(n_pages=1024, max_order=5, sorted_max_order=False)
        blocks = [buddy.alloc_block(5) for _ in range(4)]
        for b in blocks:
            buddy.free_block(b, 5)
        assert buddy.alloc_block(5) == blocks[-1]
