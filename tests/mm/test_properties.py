"""Property-based tests for the buddy allocator and contiguity map.

These drive random allocate/free/target sequences and check the global
invariants that every other layer of the library relies on:

- conservation: free pages + allocated pages == total pages,
- the contiguity map always mirrors the buddy MAX_ORDER list,
- clusters are maximal (never two adjacent clusters),
- full release always coalesces back to the initial state.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.zone import Zone
from repro.units import order_pages

MAX_ORDER = 5
BLOCK = order_pages(MAX_ORDER)
N_PAGES = 2048


def check_invariants(zone: Zone) -> None:
    # 1. Conservation of frames.
    assert zone.free_pages + zone.frames.allocated_pages() == zone.n_pages
    # 2. The map mirrors the buddy MAX_ORDER list exactly.
    list_blocks = sorted(zone.buddy.iter_free_blocks(MAX_ORDER))
    map_blocks = sorted(
        head
        for cluster in zone.contiguity_map
        for head in range(cluster.start_pfn, cluster.end_pfn, BLOCK)
    )
    assert list_blocks == map_blocks
    # 3. Clusters are maximal and disjoint.
    clusters = list(zone.contiguity_map)
    for a, b in zip(clusters, clusters[1:]):
        assert a.end_pfn < b.start_pfn, "adjacent clusters must merge"
        assert a.n_pages % BLOCK == 0


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=120))
    return [
        (
            draw(st.sampled_from(["alloc", "free", "target"])),
            draw(st.integers(min_value=0, max_value=MAX_ORDER)),
            draw(st.integers(min_value=0, max_value=N_PAGES - 1)),
        )
        for _ in range(n_ops)
    ]


@settings(max_examples=60, deadline=None)
@given(ops=op_sequences(), seed=st.integers(min_value=0, max_value=2**16))
def test_random_workload_keeps_invariants(ops, seed):
    zone = Zone(0, 0, N_PAGES, max_order=MAX_ORDER)
    rng = random.Random(seed)
    held: list[tuple[int, int]] = []
    for op, order, pfn_hint in ops:
        if op == "alloc":
            try:
                held.append((zone.alloc_block(order), order))
            except Exception:
                pass
        elif op == "target":
            target = pfn_hint - pfn_hint % order_pages(order)
            if zone.alloc_target(target, order):
                held.append((target, order))
        elif op == "free" and held:
            pfn, o = held.pop(rng.randrange(len(held)))
            zone.free_block(pfn, o)
        check_invariants(zone)
    # Full release returns to one maximal cluster.
    for pfn, o in held:
        zone.free_block(pfn, o)
    check_invariants(zone)
    assert zone.free_pages == N_PAGES
    assert len(zone.contiguity_map) == 1


@settings(max_examples=40, deadline=None)
@given(
    targets=st.lists(
        st.integers(min_value=0, max_value=N_PAGES - 1), min_size=1, max_size=64
    )
)
def test_targeted_allocs_never_overlap(targets):
    zone = Zone(0, 0, N_PAGES, max_order=MAX_ORDER)
    granted: set[int] = set()
    for t in targets:
        if zone.alloc_target(t, 0):
            assert t not in granted, "same frame granted twice"
            granted.add(t)
        else:
            assert t in granted, "free frame refused"
    assert zone.frames.allocated_pages() == len(granted)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    fraction=st.floats(min_value=0.0, max_value=0.6),
)
def test_hog_release_roundtrip(seed, fraction):
    from repro.mm.physmem import PhysicalMemory

    mem = PhysicalMemory([N_PAGES], max_order=MAX_ORDER)
    pinned = mem.hog(fraction, random.Random(seed))
    check_invariants(mem.zones[0])
    mem.release(pinned)
    check_invariants(mem.zones[0])
    assert mem.free_pages == N_PAGES
