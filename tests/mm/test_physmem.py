"""Unit tests for machine-level physical memory (zones, hog, churn)."""

import random

import pytest

from repro.errors import ConfigError, OutOfMemoryError
from repro.mm.free_stats import free_block_histogram
from repro.mm.physmem import PhysicalMemory
from repro.units import MIB, PAGE_SIZE, order_pages


def make_mem(nodes=(1024, 1024), **kw):
    return PhysicalMemory(list(nodes), max_order=5, **kw)


class TestZones:
    def test_zone_layout_is_contiguous(self):
        mem = make_mem()
        assert mem.zones[0].base_pfn == 0
        assert mem.zones[1].base_pfn == 1024
        assert mem.n_pages == 2048

    def test_zone_of(self):
        mem = make_mem()
        assert mem.zone_of(10).node_id == 0
        assert mem.zone_of(1500).node_id == 1
        with pytest.raises(IndexError):
            mem.zone_of(99999)

    def test_no_nodes_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalMemory([])

    def test_unaligned_node_size_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalMemory([100], max_order=5)


class TestAllocationFallback:
    def test_prefers_requested_node(self):
        mem = make_mem()
        pfn = mem.alloc_block(0, preferred_node=1)
        assert mem.zone_of(pfn).node_id == 1

    def test_falls_back_when_node_full(self):
        mem = make_mem(nodes=(32, 1024))
        mem.zones[0].alloc_block(5)  # node 0 now empty
        pfn = mem.alloc_block(0, preferred_node=0)
        assert mem.zone_of(pfn).node_id == 1

    def test_raises_when_all_full(self):
        mem = make_mem(nodes=(32, 32))
        mem.alloc_block(5)
        mem.alloc_block(5)
        with pytest.raises(OutOfMemoryError):
            mem.alloc_block(0)

    def test_targeted_routes_to_owner(self):
        mem = make_mem()
        assert mem.alloc_target(1500, 0)
        assert not mem.zones[1].is_free(1500)


class TestHog:
    def test_hog_pins_requested_fraction(self):
        mem = make_mem()
        pinned = mem.hog(0.25, random.Random(1))
        pinned_pages = sum(order_pages(o) for _, o in pinned)
        assert abs(pinned_pages - 512) <= order_pages(5)

    def test_hog_fragments_clusters(self):
        mem = make_mem(nodes=(2048,))
        assert len(mem.zones[0].contiguity_map) == 1
        mem.hog(0.4, random.Random(7))
        assert len(mem.zones[0].contiguity_map) > 3

    def test_release_restores_memory(self):
        mem = make_mem()
        pinned = mem.hog(0.3, random.Random(3))
        mem.release(pinned)
        assert mem.free_pages == mem.n_pages

    def test_bad_fraction_rejected(self):
        mem = make_mem()
        with pytest.raises(ConfigError):
            mem.hog(1.5, random.Random(0))


class TestChurn:
    def test_churn_restores_all_memory(self):
        mem = make_mem()
        mem.churn(500, random.Random(11), max_block_order=4)
        assert mem.free_pages == mem.n_pages

    def test_churn_randomizes_allocation_order(self):
        # Splitting keeps pages inside one max-order block sequential, so
        # randomization shows up at block granularity: consecutive
        # max-order allocations should no longer be one ascending run.
        mem = make_mem(nodes=(4096,))
        mem.churn(800, random.Random(13), max_block_order=4)
        blocks = [mem.alloc_block(5) for _ in range(16)]
        step = order_pages(5)
        ascending = all(b == a + step for a, b in zip(blocks, blocks[1:]))
        assert not ascending


class TestFreeStats:
    def test_fresh_machine_one_big_run_per_zone(self):
        mem = make_mem()
        hist = free_block_histogram(mem)
        assert hist.total_free_pages == 2048
        assert len(hist.runs) == 2
        assert hist.largest_run_pages() == 1024

    def test_buckets_sum_to_total(self):
        mem = make_mem()
        mem.hog(0.3, random.Random(5))
        hist = free_block_histogram(mem)
        assert sum(hist.bucket_pages.values()) == hist.total_free_pages

    def test_fraction_of_unknown_bucket(self):
        mem = make_mem()
        hist = free_block_histogram(mem)
        assert hist.fraction("nope") == 0.0

    def test_fragmented_machine_has_smaller_runs(self):
        mem = make_mem(nodes=(4096,))
        before = free_block_histogram(mem).largest_run_pages()
        mem.hog(0.4, random.Random(2))
        after = free_block_histogram(mem).largest_run_pages()
        assert after < before

    def test_custom_buckets(self):
        mem = make_mem(nodes=(1024,))
        buckets = (("small", 128 * PAGE_SIZE), ("big", 1 << 62))
        hist = free_block_histogram(mem, buckets=buckets)
        assert hist.fraction("big") == 1.0
