"""Unit tests for the contiguity map (cluster tracking + placement)."""

import pytest

from repro.mm.buddy import BuddyAllocator
from repro.mm.contiguity_map import Cluster, ContiguityMap
from repro.mm.zone import Zone
from repro.units import order_pages


BLOCK = order_pages(5)  # max-order block = 32 pages in these tests


def make_map():
    return ContiguityMap(max_order=5)


def wired_zone(n_pages=1024):
    return Zone(0, 0, n_pages, max_order=5)


class TestClusterTracking:
    def test_single_block_forms_cluster(self):
        cmap = make_map()
        cmap.on_max_order_event(0, True)
        assert len(cmap) == 1
        assert cmap.largest().n_pages == BLOCK

    def test_adjacent_blocks_merge(self):
        cmap = make_map()
        cmap.on_max_order_event(0, True)
        cmap.on_max_order_event(BLOCK, True)
        assert len(cmap) == 1
        assert cmap.largest().n_pages == 2 * BLOCK

    def test_downward_extension_moves_start(self):
        cmap = make_map()
        cmap.on_max_order_event(BLOCK, True)
        cmap.on_max_order_event(0, True)
        (cluster,) = list(cmap)
        assert cluster.start_pfn == 0 and cluster.n_pages == 2 * BLOCK

    def test_bridge_merges_two_clusters(self):
        cmap = make_map()
        cmap.on_max_order_event(0, True)
        cmap.on_max_order_event(2 * BLOCK, True)
        assert len(cmap) == 2
        cmap.on_max_order_event(BLOCK, True)
        assert len(cmap) == 1
        assert cmap.largest().n_pages == 3 * BLOCK

    def test_gap_keeps_clusters_separate(self):
        cmap = make_map()
        cmap.on_max_order_event(0, True)
        cmap.on_max_order_event(10 * BLOCK, True)
        assert len(cmap) == 2

    def test_remove_middle_splits_cluster(self):
        cmap = make_map()
        for i in range(3):
            cmap.on_max_order_event(i * BLOCK, True)
        cmap.on_max_order_event(BLOCK, False)
        sizes = cmap.cluster_sizes()
        assert sizes == [BLOCK, BLOCK]

    def test_remove_edge_shrinks_cluster(self):
        cmap = make_map()
        for i in range(3):
            cmap.on_max_order_event(i * BLOCK, True)
        cmap.on_max_order_event(0, False)
        (cluster,) = list(cmap)
        assert cluster.start_pfn == BLOCK and cluster.n_pages == 2 * BLOCK

    def test_remove_last_block_empties_map(self):
        cmap = make_map()
        cmap.on_max_order_event(0, True)
        cmap.on_max_order_event(0, False)
        assert len(cmap) == 0
        assert cmap.largest() is None

    def test_total_free_pages(self):
        cmap = make_map()
        for i in (0, 1, 5):
            cmap.on_max_order_event(i * BLOCK, True)
        assert cmap.total_free_pages == 3 * BLOCK

    def test_iteration_in_address_order(self):
        cmap = make_map()
        for i in (7, 0, 3):
            cmap.on_max_order_event(i * BLOCK, True)
        starts = [c.start_pfn for c in cmap]
        assert starts == sorted(starts)


class TestPlacement:
    def _populated(self):
        # Clusters: [0, 2 blocks), [4*B, 1 block), [8*B, 4 blocks)
        cmap = make_map()
        for i in (0, 1, 4, 8, 9, 10, 11):
            cmap.on_max_order_event(i * BLOCK, True)
        return cmap

    def test_next_fit_finds_first_fitting(self):
        cmap = self._populated()
        cluster = cmap.next_fit(BLOCK)
        assert cluster.start_pfn == 0

    def test_next_fit_resumes_after_previous(self):
        cmap = self._populated()
        first = cmap.next_fit(BLOCK)
        second = cmap.next_fit(BLOCK)
        assert second.start_pfn > first.start_pfn

    def test_next_fit_wraps_around(self):
        cmap = self._populated()
        for _ in range(3):
            cmap.next_fit(BLOCK)
        wrapped = cmap.next_fit(BLOCK)
        assert wrapped.start_pfn == 0

    def test_next_fit_falls_back_to_largest(self):
        cmap = self._populated()
        cluster = cmap.next_fit(100 * BLOCK)
        assert cluster.n_pages == 4 * BLOCK

    def test_next_fit_empty_map(self):
        assert make_map().next_fit(1) is None

    def test_first_fit_ignores_rover(self):
        cmap = self._populated()
        cmap.next_fit(BLOCK)
        assert cmap.first_fit(BLOCK).start_pfn == 0

    def test_best_fit_prefers_tightest(self):
        cmap = self._populated()
        assert cmap.best_fit(BLOCK).start_pfn == 4 * BLOCK

    def test_best_fit_falls_back_to_largest(self):
        cmap = self._populated()
        assert cmap.best_fit(100 * BLOCK).n_pages == 4 * BLOCK

    def test_search_counter(self):
        cmap = self._populated()
        cmap.next_fit(1)
        cmap.best_fit(1)
        assert cmap.searches == 2


class TestZoneWiring:
    """The map must track the buddy allocator automatically."""

    def test_fresh_zone_single_cluster(self):
        zone = wired_zone(1024)
        assert len(zone.contiguity_map) == 1
        assert zone.largest_cluster_pages() == 1024

    def test_small_allocation_shrinks_cluster(self):
        zone = wired_zone(1024)
        zone.alloc_block(0)
        # One max-order block left the list; cluster shrinks by a block.
        assert zone.largest_cluster_pages() == 1024 - BLOCK

    def test_free_restores_cluster(self):
        zone = wired_zone(1024)
        pfn = zone.alloc_block(0)
        zone.free_block(pfn, 0)
        assert zone.largest_cluster_pages() == 1024

    def test_targeted_alloc_in_middle_splits_cluster(self):
        zone = wired_zone(1024)
        assert zone.alloc_target(512, 0)
        sizes = zone.contiguity_map.cluster_sizes()
        # The broken max-order block leaves [0, 512) and [544, 1024).
        assert sizes == [512, 512 - BLOCK]

    def test_map_consistent_with_buddy_free_list(self):
        zone = wired_zone(1024)
        pfns = [zone.alloc_block(3) for _ in range(20)]
        for pfn in pfns[::2]:
            zone.free_block(pfn, 3)
        blocks_in_list = len(list(zone.buddy.iter_free_blocks(5)))
        assert zone.contiguity_map.total_free_pages == blocks_in_list * BLOCK
