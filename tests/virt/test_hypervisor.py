"""Unit tests for nested paging and 2D introspection."""

import pytest

from repro.errors import VirtualizationError
from repro.sim.config import SystemConfig
from repro.sim.machine import build_machine
from repro.units import HUGE_PAGES
from repro.virt.hypervisor import VirtualMachine
from repro.virt.introspect import (
    entry_is_huge_2d,
    nested_runs,
    pte_contiguous_2d,
    two_d_runs,
)

SMALL = SystemConfig(node_pages=(32 * 1024, 32 * 1024), churn_ops=400)
GUEST_PAGES = 16 * 1024


def make_vm(host_policy="ca", guest_policy="ca", **kw):
    host = build_machine(host_policy, SMALL)
    return VirtualMachine(host, GUEST_PAGES, guest_policy, **kw)


class TestNestedBacking:
    def test_guest_fault_backs_host(self):
        vm = make_vm()
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 2)
        vm.guest_fault(proc, vma.start_vpn)
        gpa = proc.space.translate(vma.start_vpn)
        assert vm.gpa_to_hpa(gpa) is not None
        assert vm.nested_faults >= 1

    def test_nested_mappings_persist_after_guest_exit(self):
        vm = make_vm()
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 2)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        backed_before = vm.qemu.space.resident_pages
        vm.guest_exit_process(proc)
        assert vm.qemu.space.resident_pages == backed_before

    def test_rebacking_is_noop(self):
        vm = make_vm()
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        count = vm.nested_faults
        vm.ensure_backed(proc.space.translate(vma.start_vpn), HUGE_PAGES)
        assert vm.nested_faults == count

    def test_gpa_bounds_checked(self):
        vm = make_vm()
        with pytest.raises(VirtualizationError):
            vm.host_vpn(GUEST_PAGES)

    def test_bad_guest_size_rejected(self):
        host = build_machine("ca", SMALL)
        with pytest.raises(VirtualizationError):
            VirtualMachine(host, GUEST_PAGES + 3, "ca")

    def test_guest_reuse_after_exit_takes_no_new_host_memory(self):
        # Default guest paging reuses freed gPA frames LIFO, so the
        # second process lands on already-backed guest memory.  (A CA
        # guest would move its rover to a fresh cluster instead.)
        vm = make_vm(guest_policy="thp")
        p1 = vm.create_guest_process("g1")
        v1 = vm.guest_mmap(p1, HUGE_PAGES * 4)
        vm.guest_touch_range(p1, v1.start_vpn, v1.n_pages)
        vm.guest_exit_process(p1)
        host_resident = vm.qemu.space.resident_pages
        p2 = vm.create_guest_process("g2")
        v2 = vm.guest_mmap(p2, HUGE_PAGES * 4)
        vm.guest_touch_range(p2, v2.start_vpn, v2.n_pages)
        # The guest buddy reuses freed gPA frames, already backed.
        assert vm.qemu.space.resident_pages == host_resident


class TestTwoDComposition:
    def test_ca_both_dims_yields_few_2d_runs(self):
        vm = make_vm("ca", "ca")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 8)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        runs = two_d_runs(vm, proc)
        assert runs.total_pages == vma.n_pages
        assert len(runs) <= 4

    def test_thp_both_dims_yields_many_2d_runs(self):
        vm = make_vm("thp", "thp")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 8)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        ca_vm = make_vm("ca", "ca")
        ca_proc = ca_vm.create_guest_process("g")
        ca_vma = ca_vm.guest_mmap(ca_proc, HUGE_PAGES * 8)
        ca_vm.guest_touch_range(ca_proc, ca_vma.start_vpn, ca_vma.n_pages)
        assert len(two_d_runs(vm, proc)) > len(two_d_runs(ca_vm, ca_proc))

    def test_2d_translation_matches_walks(self):
        vm = make_vm()
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 2)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        runs = two_d_runs(vm, proc)
        for vpn in (vma.start_vpn, vma.start_vpn + 700, vma.end_vpn - 1):
            gpa = proc.space.translate(vpn)
            hpa = vm.gpa_to_hpa(gpa)
            assert runs.find(vpn).translate(vpn) == hpa

    def test_nested_runs_rebased_to_gpa(self):
        vm = make_vm()
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        for run in nested_runs(vm):
            assert 0 <= run.start_vpn < vm.guest_pages


class TestContiguityBit2D:
    def test_bit_set_when_both_dims_contiguous(self):
        vm = make_vm("ca", "ca")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 4)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert pte_contiguous_2d(vm, proc, vma.start_vpn)

    def test_bit_clear_for_small_mapping(self):
        vm = make_vm("ca", "ca")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, 8)  # below the 32-page threshold
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert not pte_contiguous_2d(vm, proc, vma.start_vpn)

    def test_huge_2d_entry_detection(self):
        vm = make_vm("ca", "ca")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 4)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert entry_is_huge_2d(vm, proc, vma.start_vpn)

    def test_no_huge_2d_entry_for_base_pages(self):
        vm = make_vm("ca", "ca")
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, 64)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert not entry_is_huge_2d(vm, proc, vma.start_vpn)
