"""Unit tests for the shadow-paging extension."""

import pytest

from repro.sim.config import TEST_SCALE, SystemConfig
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_virtualized
from repro.units import HUGE_PAGES, order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.virt.shadow import ShadowPager, attach_shadow_paging
from repro.workloads import make_workload

SMALL = SystemConfig(node_pages=(32 * 1024, 32 * 1024), churn_ops=400)


def make_vm(host="ca", guest="ca"):
    machine = build_machine(host, SMALL)
    guest_pages = sum(SMALL.node_pages)
    guest_pages -= guest_pages % order_pages(SMALL.max_order)
    return VirtualMachine(machine, guest_pages, guest)


class TestShadowSync:
    def test_shadow_mirrors_guest_mapping(self):
        vm = make_vm()
        pager = attach_shadow_paging(vm)
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 2)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert pager.stats.syncs == 2
        # Shadow translations agree with the composed 2D translation.
        assert pager.verify(
            proc, [vma.start_vpn, vma.start_vpn + 700, vma.end_vpn - 1]
        )

    def test_huge_leaf_stays_huge_with_huge_backing(self):
        vm = make_vm()
        pager = attach_shadow_paging(vm)
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES * 2)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        shadow = pager.table_for(proc)
        walk = shadow.walk(vma.start_vpn)
        assert walk.hit and walk.pte.huge
        assert pager.stats.splintered_leaves == 0

    def test_splintering_without_huge_backing(self):
        # THP-off host: nested mappings are 4K, so guest huge leaves
        # splinter in the shadow (Glue's problem, visible here).
        from dataclasses import replace

        machine = build_machine("thp", replace(SMALL, thp=False))
        guest_pages = sum(SMALL.node_pages)
        guest_pages -= guest_pages % order_pages(SMALL.max_order)
        vm = VirtualMachine(machine, guest_pages, "ca", guest_thp=True)
        pager = attach_shadow_paging(vm)
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, HUGE_PAGES)
        vm.guest_touch_range(proc, vma.start_vpn, vma.n_pages)
        assert pager.stats.splintered_leaves == 1
        assert pager.verify(proc, [vma.start_vpn, vma.start_vpn + 13])

    def test_cow_break_resyncs_shadow(self):
        vm = make_vm()
        pager = attach_shadow_paging(vm)
        parent = vm.create_guest_process("p")
        vma = vm.guest_mmap(parent, 64)
        vm.guest_touch_range(parent, vma.start_vpn, 8)
        child = vm.guest_kernel.fork(parent)
        vm.guest_fault(child, vma.start_vpn, write=True)  # COW break
        assert pager.verify(child, [vma.start_vpn])

    def test_guest_exit_drops_table(self):
        vm = make_vm()
        pager = attach_shadow_paging(vm)
        proc = vm.create_guest_process("g")
        vma = vm.guest_mmap(proc, 64)
        vm.guest_touch_range(proc, vma.start_vpn, 8)
        vm.guest_exit_process(proc)
        assert pager.stats.dropped_tables == 1

    def test_unmapped_translates_to_none(self):
        vm = make_vm()
        pager = ShadowPager(vm)
        proc = vm.create_guest_process("g")
        assert pager.translate(proc, 12345) is None


class TestShadowWithRunner:
    def test_full_run_keeps_shadow_consistent(self):
        vm = make_vm()
        pager = attach_shadow_paging(vm)
        wl = make_workload("svm", TEST_SCALE)
        r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
        start = r.vma_start_vpns[0]
        samples = [start, start + 100, start + 1000]
        assert pager.verify(r.process, samples)
        assert pager.stats.syncs >= r.faults.total_faults


class TestExtShadowExperiment:
    def test_experiment_smoke(self):
        from repro.experiments import ext_shadow
        from repro.sim.config import MIB, ScaleProfile

        scale = ScaleProfile(name="smoke", bytes_per_paper_gb=MIB,
                             machine_paper_gb=(128, 128))
        result = ext_shadow.run(scale=scale, workloads=("svm",), trace_len=20_000)
        row = result.rows["svm"]
        # Shadow walks are cheaper than nested walks...
        assert row.shadow_walk_overhead < row.nested_overhead
        # ...but sync costs are real.
        assert row.shadow_sync_overhead > 0
        # SpOT shrinks both steady-state overheads.
        assert row.nested_spot_overhead <= row.nested_overhead
        assert row.shadow_spot_overhead <= row.shadow_walk_overhead
        assert "shadow" in result.report()
