"""Integration tests for the TranslationView + MMU simulator."""

import numpy as np
import pytest

from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig, SystemConfig
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.units import HUGE_PAGES
from repro.virt.hypervisor import VirtualMachine
from repro.workloads import make_workload
from repro.workloads.base import AccessTrace
from tests.policies.conftest import SMALL


def native_state(policy="ca", workload_name="tlb_friendly"):
    from repro.sim.config import TEST_SCALE

    machine = build_machine(policy, SMALL)
    wl = make_workload(workload_name, TEST_SCALE)
    result = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
    return machine, wl, result


class TestTranslationView:
    def test_translate_matches_page_table(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process)
        space = result.process.space
        for vma_start in result.vma_start_vpns:
            assert view.translate(vma_start) == space.translate(vma_start)

    def test_force_4k_disables_huge_entries(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process, force_4k=True)
        trace = wl.trace(1000)
        resolved = view.resolve(trace, result.vma_start_vpns)
        assert not resolved.entry_huge.any()

    def test_resolve_ppn_consistent_with_translate(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process)
        trace = wl.trace(500)
        resolved = view.resolve(trace, result.vma_start_vpns)
        for i in range(0, len(resolved), 97):
            assert resolved.ppn[i] == view.translate(int(resolved.vpn[i]))

    def test_unmapped_trace_rejected(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process)
        bogus = AccessTrace(
            pc=np.zeros(4, dtype=np.int32),
            vma=np.zeros(4, dtype=np.int16),
            page=np.arange(4, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            view.resolve(bogus, [0xDEAD0000])

    def test_segment_covers_anon_vmas(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process)
        trace = wl.trace(500)
        resolved = view.resolve(trace, result.vma_start_vpns)
        assert resolved.in_segment.all()

    def test_contig_flag_respects_threshold(self):
        machine, wl, result = native_state(policy="ca")
        view = TranslationView.native(result.process, contig_threshold=10**9)
        trace = wl.trace(500)
        resolved = view.resolve(trace, result.vma_start_vpns)
        assert not resolved.contig.any()


class TestSimulator:
    def test_counts_are_consistent(self):
        machine, wl, result = native_state()
        view = TranslationView.native(result.process)
        sim = MmuSimulator(view, HardwareConfig())
        res = sim.run(wl.trace(5000), result.vma_start_vpns, workload=wl)
        assert res.accesses == 5000
        assert res.l1_hits + res.l2_hits + res.walks == res.accesses
        assert (
            res.spot_correct + res.spot_mispredict + res.spot_no_prediction
            == res.walks
        )

    def test_spot_loves_ca_hates_thp(self):
        outcomes = {}
        for policy in ("ca", "thp"):
            machine, wl, result = native_state(policy=policy, workload_name="svm")
            view = TranslationView.native(result.process)
            sim = MmuSimulator(view, HardwareConfig())
            res = sim.run(wl.trace(30_000), result.vma_start_vpns, workload=wl)
            outcomes[policy] = res.spot_breakdown()["correct"]
        assert outcomes["ca"] > outcomes["thp"]

    def test_overheads_ordering(self):
        machine, wl, result = native_state(policy="ca", workload_name="svm")
        view = TranslationView.native(result.process)
        sim = MmuSimulator(view, HardwareConfig())
        res = sim.run(wl.trace(30_000), result.vma_start_vpns, workload=wl)
        over = res.overheads()
        assert over["spot"] <= over["paging"] + 1e-12
        assert over["vrmm"] <= over["paging"] + 1e-12
        assert over["ds"] <= over["paging"] + 1e-12
        # cTLB charges only uncovered walks and Utopia's rest hits cost
        # less than any walk, so neither can exceed baseline paging.
        # (seg is exempt: out-of-segment misses pay the 4K-table rate,
        # which can exceed paging's THP-rate baseline.)
        assert over["ctlb"] <= over["paging"] + 1e-12
        assert over["utopia"] <= over["paging"] + 1e-12
        assert over["seg"] >= 0.0

    def test_4k_view_misses_more(self):
        machine, wl, result = native_state(policy="thp", workload_name="svm")
        trace = wl.trace(20_000)
        thp_view = TranslationView.native(result.process)
        res_thp = MmuSimulator(thp_view, HardwareConfig()).run(
            trace, result.vma_start_vpns, workload=wl
        )
        k4_view = TranslationView.native(result.process, force_4k=True)
        res_4k = MmuSimulator(k4_view, HardwareConfig()).run(
            trace, result.vma_start_vpns, workload=wl
        )
        assert res_4k.walks > res_thp.walks

    def test_virtualized_state_simulates(self):
        from repro.sim.config import TEST_SCALE
        from repro.units import order_pages

        host = build_machine("ca", SMALL)
        guest_pages = sum(SMALL.node_pages)
        guest_pages -= guest_pages % order_pages(SMALL.max_order)
        vm = VirtualMachine(host, guest_pages, "ca")
        wl = make_workload("svm", TEST_SCALE)
        r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
        view = TranslationView.virtualized(vm, r.process)
        assert view.virtualized
        res = MmuSimulator(view, HardwareConfig()).run(
            wl.trace(10_000), r.vma_start_vpns, workload=wl
        )
        assert res.walks > 0
        assert res.t_ideal_cycles > 1
