"""Unit tests for the PWC / mechanistic walk simulator."""

import pytest

from repro.hw.pwc import REF_CYCLES, WALK_FIXED_CYCLES, PageWalkCache, WalkSimulator
from repro.hw.walk import WalkLatencyModel


class TestPageWalkCache:
    def test_cold_walk_skips_nothing(self):
        pwc = PageWalkCache()
        assert pwc.deepest_hit(vpn=0x12345, levels=4) == 0

    def test_refill_enables_skips(self):
        pwc = PageWalkCache()
        pwc.fill(0x12345, levels=4)
        # Same 2M region: everything above the leaf level is cached.
        assert pwc.deepest_hit(0x12345, levels=4) == 3

    def test_nearby_pages_share_upper_levels(self):
        pwc = PageWalkCache()
        pwc.fill(0, levels=4)
        # A page in a different 2M region but same 1G region skips less.
        assert 0 < pwc.deepest_hit(1 << 9, levels=4) < 3

    def test_distant_pages_share_nothing(self):
        pwc = PageWalkCache()
        pwc.fill(0, levels=4)
        assert pwc.deepest_hit(1 << 27, levels=4) == 0


class TestWalkSimulator:
    def test_native_cold_walk_references(self):
        sim = WalkSimulator(virtualized=False)
        cycles = sim.walk(0x999000, huge=False)
        assert cycles == WALK_FIXED_CYCLES + 4 * REF_CYCLES

    def test_native_warm_walk_is_cheap(self):
        sim = WalkSimulator(virtualized=False)
        sim.walk(0x999000, huge=False)
        warm = sim.walk(0x999001, huge=False)
        assert warm == WALK_FIXED_CYCLES + 1 * REF_CYCLES

    def test_huge_walk_saves_a_level(self):
        base = WalkSimulator(virtualized=False).walk(0, huge=False)
        huge = WalkSimulator(virtualized=False).walk(0, huge=True)
        assert huge == base - REF_CYCLES

    def test_nested_cold_walk_in_paper_range(self):
        sim = WalkSimulator(virtualized=True)
        cycles = sim.walk(0x123456789, huge=False)
        # Cold 2D walk: up to gl*(nl+1)+nl = 24 references.
        refs = (cycles - WALK_FIXED_CYCLES) / REF_CYCLES
        assert 20 <= refs <= 25

    def test_nested_warm_average_near_measured_avgc(self):
        # A stream of misses across nearby huge pages should average
        # near the paper's ~81-cycle nested-THP walk.
        sim = WalkSimulator(virtualized=True)
        for i in range(2000):
            sim.walk(i * 512, huge=True)
        fixed = WalkLatencyModel().walk_costs().nested_thp
        assert 0.4 * fixed <= sim.stats.avg_cycles <= 1.6 * fixed

    def test_nested_costlier_than_native(self):
        nat = WalkSimulator(virtualized=False)
        virt = WalkSimulator(virtualized=True)
        for i in range(500):
            nat.walk(i * 513, huge=False)
            virt.walk(i * 513, huge=False)
        assert virt.stats.avg_cycles > nat.stats.avg_cycles * 1.5

    def test_five_level_costlier(self):
        four = WalkSimulator(virtualized=True, levels=4)
        five = WalkSimulator(virtualized=True, levels=5)
        for i in range(500):
            four.walk(i * 100_003, huge=False)
            five.walk(i * 100_003, huge=False)
        assert five.stats.avg_cycles > four.stats.avg_cycles

    def test_stats_accumulate(self):
        sim = WalkSimulator()
        for i in range(10):
            sim.walk(i, huge=False)
        assert sim.stats.walks == 10
        assert sim.stats.avg_references > 0


class TestMmuSimIntegration:
    def test_measured_avg_walk_reported(self):
        from repro.hw.mmu_sim import MmuSimulator
        from repro.hw.translation import TranslationView
        from repro.sim.config import TEST_SCALE, HardwareConfig
        from repro.sim.machine import build_machine
        from repro.sim.runner import RunOptions, run_native
        from repro.workloads import make_workload
        from tests.policies.conftest import SMALL

        machine = build_machine("ca", SMALL)
        wl = make_workload("svm", TEST_SCALE)
        r = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
        view = TranslationView.native(r.process)
        sim = MmuSimulator(view, HardwareConfig(), walk_sim=WalkSimulator())
        res = sim.run(wl.trace(20_000), r.vma_start_vpns, workload=wl)
        assert res.measured_avg_walk_cycles is not None
        assert res.measured_avg_walk_cycles > WALK_FIXED_CYCLES
        assert sim.walk_sim.stats.walks == res.walks
