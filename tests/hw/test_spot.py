"""Unit tests for the SpOT prediction table (paper §IV-C mechanics)."""

import pytest

from repro.errors import ConfigError
from repro.hw.spot import CORRECT, MISPREDICT, NO_PREDICTION, SpotPredictor


def offset_walk(spot, pc, vpn, offset, contig=True):
    """Complete one walk where the true mapping has the given offset."""
    return spot.on_walk_complete(pc, vpn, vpn - offset, contig)


class TestConfidence:
    def test_first_two_misses_never_predict(self):
        spot = SpotPredictor()
        assert offset_walk(spot, 1, 100, 7) == NO_PREDICTION  # fill, conf=1
        assert offset_walk(spot, 1, 101, 7) == NO_PREDICTION  # conf 1->2

    def test_third_consistent_miss_predicts_correctly(self):
        spot = SpotPredictor()
        offset_walk(spot, 1, 100, 7)
        offset_walk(spot, 1, 101, 7)
        assert offset_walk(spot, 1, 102, 7) == CORRECT

    def test_offset_change_after_confidence_mispredicts(self):
        spot = SpotPredictor()
        for vpn in range(100, 103):
            offset_walk(spot, 1, vpn, 7)
        assert offset_walk(spot, 1, 500, 9999) == MISPREDICT

    def test_counter_saturates_at_three(self):
        spot = SpotPredictor()
        for vpn in range(100, 120):
            offset_walk(spot, 1, vpn, 7)
        # Two mismatches drop confidence 3 -> 1: prediction throttled,
        # not yet replaced.
        assert offset_walk(spot, 1, 300, 1) == MISPREDICT
        assert offset_walk(spot, 1, 301, 1) == MISPREDICT
        assert offset_walk(spot, 1, 302, 1) == NO_PREDICTION

    def test_offset_replaced_only_at_zero(self):
        spot = SpotPredictor()
        offset_walk(spot, 1, 100, 7)  # conf=1
        # One mismatch: conf 1 -> 0 -> replace with new offset, conf=1.
        offset_walk(spot, 1, 200, 9)
        # The new offset must now build confidence from scratch.
        assert offset_walk(spot, 1, 201, 9) == NO_PREDICTION  # conf 1->2
        assert offset_walk(spot, 1, 202, 9) == CORRECT

    def test_alternating_offsets_get_throttled(self):
        spot = SpotPredictor()
        outcomes = [
            offset_walk(spot, 1, vpn, 7 if vpn % 2 else 9)
            for vpn in range(100, 160)
        ]
        # The confidence counter keeps the damage bounded: flushes
        # (mispredictions) must be a minority of outcomes.
        assert outcomes.count(MISPREDICT) < len(outcomes) / 3


class TestContiguityFilter:
    def test_non_contiguous_translations_never_fill(self):
        spot = SpotPredictor()
        for vpn in range(100, 110):
            assert offset_walk(spot, 1, vpn, 7, contig=False) == NO_PREDICTION
        assert spot.occupancy == 0

    def test_existing_entries_update_even_without_bit(self):
        spot = SpotPredictor()
        offset_walk(spot, 1, 100, 7, contig=True)
        offset_walk(spot, 1, 101, 7, contig=False)  # still bumps conf
        assert offset_walk(spot, 1, 102, 7, contig=False) == CORRECT


class TestTableGeometry:
    def test_lru_within_set(self):
        spot = SpotPredictor(entries=4, ways=4)  # one set
        for pc in range(1, 5):
            offset_walk(spot, pc, 100, pc)
        offset_walk(spot, 99, 100, 99)  # evicts LRU (pc=1)
        assert spot.occupancy == 4
        assert spot.lookup(1) is None

    def test_lookup_refreshes_lru(self):
        spot = SpotPredictor(entries=4, ways=4)
        for pc in range(1, 5):
            offset_walk(spot, pc, 100, pc)
        spot.lookup(1)
        offset_walk(spot, 99, 100, 99)
        assert spot.lookup(1) is not None
        assert spot.lookup(2) is None

    def test_strided_pcs_spread_across_sets(self):
        # Instruction addresses at small strides must not all alias
        # into one set (regression: BT's ten PCs at stride 8).
        spot = SpotPredictor(entries=32, ways=4)
        for pc in range(0x800, 0x800 + 10 * 8, 8):
            offset_walk(spot, pc, 100, 1)
        assert spot.occupancy == 10

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SpotPredictor(entries=10, ways=4)

    def test_prediction_requires_confidence(self):
        spot = SpotPredictor()
        assert spot.predict(1, 100) is None
        offset_walk(spot, 1, 100, 7)
        assert spot.predict(1, 101) is None  # conf == 1
        offset_walk(spot, 1, 101, 7)
        assert spot.predict(1, 102) == 102 - 7


class TestStats:
    def test_breakdown_sums_to_one(self):
        spot = SpotPredictor()
        for vpn in range(100, 150):
            offset_walk(spot, 1, vpn, 7 if vpn < 130 else 11)
        b = spot.stats.breakdown()
        assert abs(sum(b.values()) - 1.0) < 1e-9
        assert spot.stats.total == 50
