"""Unit tests for the set-associative TLB and the hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.hw.tlb import SetAssocTlb, TlbHierarchy
from repro.sim.config import HardwareConfig


class TestSetAssocTlb:
    def test_miss_then_hit(self):
        tlb = SetAssocTlb(8, 2)
        assert not tlb.lookup("a")
        tlb.insert("a")
        assert tlb.lookup("a")
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction_within_set(self):
        tlb = SetAssocTlb(2, 2)  # one set, two ways
        tlb.insert("a")
        tlb.insert("b")
        tlb.insert("c")  # evicts "a" (LRU)
        assert not tlb.lookup("a")
        assert tlb.lookup("b")
        assert tlb.lookup("c")

    def test_hit_refreshes_lru(self):
        tlb = SetAssocTlb(2, 2)
        tlb.insert("a")
        tlb.insert("b")
        tlb.lookup("a")  # "b" becomes LRU
        tlb.insert("c")
        assert tlb.lookup("a")
        assert not tlb.lookup("b")

    def test_reinsert_does_not_grow(self):
        tlb = SetAssocTlb(4, 4)
        tlb.insert("a")
        tlb.insert("a")
        assert tlb.occupancy == 1

    def test_flush(self):
        tlb = SetAssocTlb(8, 2)
        tlb.insert("a")
        tlb.flush()
        assert tlb.occupancy == 0
        assert not tlb.lookup("a")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocTlb(7, 2)  # entries not divisible by ways
        with pytest.raises(ConfigError):
            SetAssocTlb(0, 1)

    def test_capacity_bounded(self):
        tlb = SetAssocTlb(16, 4)
        for i in range(100):
            tlb.insert(i)
        assert tlb.occupancy <= 16


class TestHierarchy:
    def make(self):
        return TlbHierarchy.from_config(HardwareConfig())

    def test_first_access_misses_then_l1_hits(self):
        h = self.make()
        assert h.access(100, False) == "miss"
        assert h.access(100, False) == "l1"

    def test_l2_backs_l1(self):
        h = self.make()
        h.access(100, False)
        # Push through more entries than L1 (16) holds but well within
        # L2 (96): the original entry must survive in the hierarchy.
        for vpn in range(1000, 1000 + 20):
            h.access(vpn, False)
        level = h.access(100, False)
        assert level in ("l1", "l2")  # still somewhere in the hierarchy

    def test_huge_and_base_entries_are_distinct(self):
        h = self.make()
        h.access(0, True)
        assert h.access(0, False) == "miss"

    def test_walk_count_tracks_l2_misses(self):
        h = self.make()
        for vpn in range(10):
            h.access(vpn, False)
        assert h.walk_count == 10

    def test_flush_clears_everything(self):
        h = self.make()
        h.access(5, False)
        h.flush()
        assert h.access(5, False) == "miss"

    def test_huge_entries_increase_reach(self):
        # With 2M entries, 512 consecutive pages share one entry.
        h = self.make()
        misses_4k = sum(
            h.access(vpn, False) == "miss" for vpn in range(1024)
        )
        h2 = self.make()
        misses_2m = sum(
            h2.access(vpn & ~511, True) == "miss" for vpn in range(1024)
        )
        assert misses_2m < misses_4k / 100
