"""Unit tests for the vHC anchor-coalescing TLB."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.vhc import VhcTlb


class TestVhcTlb:
    def test_bad_distance_rejected(self):
        with pytest.raises(ConfigError):
            VhcTlb(distance=100)
        with pytest.raises(ConfigError):
            VhcTlb(distance=0)

    def test_sequential_stream_hits_within_anchor(self):
        tlb = VhcTlb(distance=4096)
        run_start, run_len = 0, 100_000
        for vpn in range(0, 20_000):
            tlb.access(vpn, run_start, run_len)
        # One walk per anchor stride (aligned run).
        assert tlb.stats.walks == 20_000 // 4096 + 1

    def test_unaligned_head_fragment_uses_regular_entries(self):
        tlb = VhcTlb(distance=4096)
        run_start = 1000  # unaligned
        misses_head = 0
        for vpn in range(1000, 4096):
            misses_head += not tlb.access(vpn, run_start, 100_000)
        # The head fragment coalesces at regular (2M) granularity: far
        # more walks than one, far fewer than one per page.
        assert 1 < misses_head <= (4096 - 1000) // 512 + 1

    def test_anchor_reach_capped_by_distance(self):
        tlb = VhcTlb(distance=64)
        for vpn in range(0, 1024):
            tlb.access(vpn, 0, 100_000)
        assert tlb.stats.walks == 1024 // 64
        assert tlb.stats.avg_pages_per_entry == 64.0

    def test_small_runs_fall_back_to_regular(self):
        tlb = VhcTlb(distance=4096)
        # Runs of 8 pages at scattered anchors: no usable anchor base.
        walks = 0
        for base in range(100, 100_000, 10_000):
            for vpn in range(base, base + 8):
                walks += not tlb.access(vpn, base, 8)
        assert walks == 10  # one regular-entry fill per run

    def test_miss_rate_property(self):
        tlb = VhcTlb()
        assert tlb.stats.miss_rate == 0.0
        tlb.access(0, 0, 10)
        assert tlb.stats.miss_rate == 1.0

    def test_alignment_penalty_vs_distance(self):
        """Smaller anchor distances slice runs finer: more walks."""
        walks = {}
        for d in (64, 4096):
            tlb = VhcTlb(distance=d)
            for vpn in range(0, 30_000):
                tlb.access(vpn, 0, 100_000)
            walks[d] = tlb.stats.walks
        assert walks[64] > walks[4096] * 10
