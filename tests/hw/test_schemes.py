"""Unit tests for vRMM, Direct Segments, vHC and the walk model."""

import pytest

from repro.hw.direct_segment import DirectSegment
from repro.hw.hybrid_coalescing import (
    anchor_distance_for,
    anchors_for_run,
    vhc_entries_for_coverage,
)
from repro.hw.rmm import RANGE_FILL, RANGE_HIT, UNCOVERED, RangeTlb, ranges_for_coverage
from repro.hw.walk import WalkLatencyModel
from repro.vm.mapping_runs import MappingRun


class TestRangeTlb:
    def test_fill_then_hit(self):
        tlb = RangeTlb(entries=4)
        assert tlb.on_miss(100, run_start=0, run_len=1000) == RANGE_FILL
        assert tlb.on_miss(500, run_start=0, run_len=1000) == RANGE_HIT

    def test_small_runs_stay_uncovered(self):
        tlb = RangeTlb(entries=4, min_range_pages=32)
        assert tlb.on_miss(5, run_start=0, run_len=8) == UNCOVERED
        assert tlb.stats.uncovered == 1

    def test_lru_capacity(self):
        tlb = RangeTlb(entries=2)
        tlb.on_miss(0, 0, 100)
        tlb.on_miss(1000, 1000, 100)
        tlb.on_miss(2000, 2000, 100)  # evicts range @0
        assert tlb.on_miss(50, 0, 100) == RANGE_FILL  # refill, not hit
        assert tlb.stats.range_hits == 0

    def test_hit_refreshes_lru(self):
        tlb = RangeTlb(entries=2)
        tlb.on_miss(0, 0, 100)
        tlb.on_miss(1000, 1000, 100)
        tlb.on_miss(50, 0, 100)  # hit refreshes range @0
        tlb.on_miss(2000, 2000, 100)  # evicts range @1000
        assert tlb.on_miss(60, 0, 100) == RANGE_HIT

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            RangeTlb(entries=0)

    def test_ranges_for_coverage(self):
        assert ranges_for_coverage([500, 300, 200], 1000, 0.99) == 3
        assert ranges_for_coverage([990, 10], 1000, 0.99) == 1


class TestDirectSegment:
    def test_inside_is_free(self):
        ds = DirectSegment()
        assert ds.on_miss(True)
        assert ds.stats.inside == 1 and ds.stats.outside == 0

    def test_outside_pays(self):
        ds = DirectSegment()
        assert not ds.on_miss(False)
        assert ds.stats.outside == 1
        assert ds.stats.total == 1


class TestHybridCoalescing:
    def test_anchor_distance_power_of_two(self):
        d = anchor_distance_for([100, 200, 300])
        assert d & (d - 1) == 0
        assert d <= 200  # <= average

    def test_empty_runs_distance(self):
        assert anchor_distance_for([]) == 1

    def test_aligned_run_needs_one_anchor(self):
        run = MappingRun(start_vpn=0, start_pfn=0, n_pages=64)
        assert anchors_for_run(run, 64) == 1

    def test_unaligned_run_crosses_anchors(self):
        # The paper's point: an unaligned mapping crosses many anchor
        # strides, inflating the entry count versus one range.
        run = MappingRun(start_vpn=33, start_pfn=0, n_pages=64)
        assert anchors_for_run(run, 64) == 2
        run2 = MappingRun(start_vpn=1, start_pfn=0, n_pages=1024)
        assert anchors_for_run(run2, 64) == 17

    def test_vhc_entries_exceed_ranges(self):
        runs = [
            MappingRun(start_vpn=i * 10_000 + 3, start_pfn=0, n_pages=900)
            for i in range(5)
        ]
        footprint = sum(r.n_pages for r in runs)
        vhc = vhc_entries_for_coverage(runs, footprint, 0.99)
        assert vhc > 5  # more anchors than ranges

    def test_zero_footprint(self):
        assert vhc_entries_for_coverage([], 0) == 0


class TestWalkModel:
    def test_nested_reference_counts(self):
        assert WalkLatencyModel.nested_references(4, 4) == 24  # paper §II
        assert WalkLatencyModel.nested_references(3, 3) == 15

    def test_native_walk_cheaper_than_nested(self):
        costs = WalkLatencyModel().walk_costs()
        assert costs.native_thp < costs.nested_thp
        assert costs.native_4k < costs.nested_4k

    def test_thp_walk_cheaper_than_4k(self):
        costs = WalkLatencyModel().walk_costs()
        assert costs.nested_thp < costs.nested_4k
        assert costs.native_thp < costs.native_4k

    def test_calibrated_to_paper_nested_cost(self):
        # The paper measures ~81 cycles for the average nested walk.
        costs = WalkLatencyModel().walk_costs()
        assert 70 <= costs.nested_thp <= 95

    def test_pwc_reduces_cost(self):
        fast = WalkLatencyModel(pwc_hit_rate=0.9)
        slow = WalkLatencyModel(pwc_hit_rate=0.0)
        assert fast.cycles(24) < slow.cycles(24)
