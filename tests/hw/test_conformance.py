"""The scheme-conformance battery.

One parametrized suite drives every machine in the
:mod:`tests.hw.conformance` registry — SpOT, vRMM, DS, the walk
simulator, the TLB hierarchy, cTLB, Utopia, segmentation and vHC —
through the same checks:

- scalar-vs-batched **bit identity** on outcome counts *and* full end
  state (residency, LRU/dict insertion orders, per-entry payloads,
  stats) over cold, warm-chunked, adversarial and thrashing streams;
- an empty batch is a strict no-op;
- hypothesis-generated traces (well-formed and invariant-violating);
- a pickle round-trip of mid-stream state continues identically.

Machines without a batched form (vHC) run scalar-vs-scalar, which pins
determinism and pickle fidelity under the identical battery.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.hw.conformance import (
    FAMILY_STRATEGIES,
    SCHEME_IDS,
    SCHEMES,
    stream_slice,
)


def drive(spec, ref, vec, stream):
    """Feed both machines one stream; assert counts and state agree."""
    expected = spec.scalar(ref, stream)
    got = (spec.batch or spec.scalar)(vec, stream)
    assert got == expected
    assert spec.state(vec) == spec.state(ref)


@pytest.mark.parametrize("spec", SCHEMES, ids=SCHEME_IDS)
class TestConformance:
    def test_empty_stream_is_a_noop(self, spec):
        ref, vec = spec.factory(), spec.factory()
        before = spec.state(vec)
        drive(spec, ref, vec, spec.stream(np.random.default_rng(0), 0))
        assert spec.state(vec) == before

    def test_cold_random_streams(self, spec):
        for trial in range(4):
            rng = np.random.default_rng(hash(spec.name) % 2**32 + trial)
            drive(spec, spec.factory(), spec.factory(),
                  spec.stream(rng, 800))

    def test_warm_chunked_streams(self, spec):
        """Repeat calls on live machines: warm state must carry over."""
        rng = np.random.default_rng(hash(spec.name) % 2**32 + 99)
        ref, vec = spec.factory(), spec.factory()
        for _ in range(4):
            drive(spec, ref, vec, spec.stream(rng, 400))

    def test_adversarial_streams(self, spec):
        """Invariant-violating inputs must route to the scalar loop."""
        if spec.adversarial is None:
            pytest.skip(f"every input is valid for {spec.name}")
        rng = np.random.default_rng(13)
        for _ in range(6):
            drive(spec, spec.factory(), spec.factory(),
                  spec.adversarial(rng, 300))

    def test_thrash_stream(self, spec):
        """Worst-case conflict/flip pressure on one deterministic stream."""
        drive(spec, spec.factory(), spec.factory(), spec.thrash())

    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_fuzzed_traces(self, spec, data):
        stream = data.draw(FAMILY_STRATEGIES[spec.family]())
        drive(spec, spec.factory(), spec.factory(), stream)

    def test_pickle_roundtrip_mid_stream(self, spec):
        """Snapshot a warm machine; the clone must continue identically
        (and, for batched machines, continue identically *batched*)."""
        rng = np.random.default_rng(hash(spec.name) % 2**32 + 7)
        ref = spec.factory()
        stream = spec.stream(rng, 600)
        first = stream_slice(stream, 0, 300)
        second = stream_slice(stream, 300, 600)
        spec.scalar(ref, first)
        clone = pickle.loads(pickle.dumps(ref))
        assert spec.state(clone) == spec.state(ref)
        drive(spec, ref, clone, second)
