"""Scalar-vs-vector MMU engine differential tests.

The vector engine's claim is *bit-identical* counters, not approximate
agreement.  The per-machine differentials (TLB hierarchy included) live
in the scheme-conformance battery (``tests/hw/test_conformance.py``);
here we pin what the battery cannot: the hash/set-index replication
against CPython directly — the whole construction stands on it — and
the full :class:`MmuSimResult` across engines on real memory states.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.hw import vector_tlb as vt
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import TEST_SCALE, HardwareConfig
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.units import order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.workloads import make_workload
from tests.policies.conftest import SMALL


class TestHashReplication:
    def test_key_hashes_match_cpython(self):
        rng = np.random.default_rng(7)
        base = np.asarray(
            list(rng.integers(0, 2**40, 500)) + [0, 1, 2**30], dtype=np.int64
        )
        huge = np.asarray(rng.random(base.size) < 0.5, dtype=bool)
        got = vt.key_hashes(base, huge)
        for b, h, v in zip(base.tolist(), huge.tolist(), got.tolist()):
            assert v == hash((b, bool(h))) % 2**64

    @pytest.mark.parametrize("n_sets", [1, 2, 3, 4, 6, 16, 256])
    def test_set_indices_match_set_of(self, n_sets):
        rng = np.random.default_rng(11)
        base = np.asarray(rng.integers(0, 2**40, 400), dtype=np.int64)
        huge = np.asarray(rng.random(400) < 0.5, dtype=bool)
        got = vt.set_indices(vt.key_hashes(base, huge), n_sets)
        for b, h, s in zip(base.tolist(), huge.tolist(), got.tolist()):
            assert s == ((hash((b, bool(h))) * 0x9E3779B1) >> 12) % n_sets


def native_state(workload_name="svm"):
    machine = build_machine("thp", SMALL)
    wl = make_workload(workload_name, TEST_SCALE)
    result = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
    return wl, result


def virt_state(workload_name="svm"):
    host = build_machine("ca", SMALL)
    guest_pages = sum(SMALL.node_pages)
    guest_pages -= guest_pages % order_pages(SMALL.max_order)
    vm = VirtualMachine(host, guest_pages, "ca")
    wl = make_workload(workload_name, TEST_SCALE)
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    return vm, wl, r


def run_engine(view, trace, starts, wl, engine):
    sim = MmuSimulator(view, HardwareConfig(), engine=engine)
    return asdict(sim.run(trace, starts, workload=wl))


class TestMmuSimulatorDifferential:
    def test_native_thp(self):
        wl, r = native_state()
        view = TranslationView.native(r.process)
        trace = wl.trace(30_000)
        assert run_engine(view, trace, r.vma_start_vpns, wl, "scalar") == \
            run_engine(view, trace, r.vma_start_vpns, wl, "vector")

    def test_native_4k_forced(self):
        wl, r = native_state()
        view = TranslationView.native(r.process, force_4k=True)
        trace = wl.trace(30_000)
        scalar = run_engine(view, trace, r.vma_start_vpns, wl, "scalar")
        vector = run_engine(view, trace, r.vma_start_vpns, wl, "vector")
        assert scalar == vector
        assert not scalar["huge"]

    def test_virtualized(self):
        vm, wl, r = virt_state()
        view = TranslationView.virtualized(vm, r.process)
        trace = wl.trace(30_000)
        scalar = run_engine(view, trace, r.vma_start_vpns, wl, "scalar")
        vector = run_engine(view, trace, r.vma_start_vpns, wl, "vector")
        assert scalar == vector
        assert scalar["virtualized"]
