"""Scalar-vs-vector MMU engine differential tests.

The vector engine's claim is *bit-identical* counters, not approximate
agreement, so these tests compare every observable — per-access levels,
hit/miss counters, resident TLB contents including LRU order, and the
full :class:`MmuSimResult` — against the scalar reference on the same
streams.  The hash/set-index replication is checked against CPython
directly, since the whole construction stands on it.
"""

import random
from dataclasses import asdict

import numpy as np
import pytest

from repro.hw import vector_tlb as vt
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.tlb import SetAssocTlb, TlbHierarchy
from repro.hw.translation import TranslationView
from repro.sim.config import TEST_SCALE, HardwareConfig
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.units import order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.workloads import make_workload
from tests.policies.conftest import SMALL


def random_stream(rng, n, universe, huge_fraction=1.0):
    base = np.asarray(rng.integers(0, universe, n), dtype=np.int64)
    huge = np.asarray(rng.random(n) < huge_fraction, dtype=bool)
    return base, huge


class TestHashReplication:
    def test_key_hashes_match_cpython(self):
        rng = np.random.default_rng(7)
        base = np.asarray(
            list(rng.integers(0, 2**40, 500)) + [0, 1, 2**30], dtype=np.int64
        )
        huge = np.asarray(rng.random(base.size) < 0.5, dtype=bool)
        got = vt.key_hashes(base, huge)
        for b, h, v in zip(base.tolist(), huge.tolist(), got.tolist()):
            assert v == hash((b, bool(h))) % 2**64

    @pytest.mark.parametrize("n_sets", [1, 2, 3, 4, 6, 16, 256])
    def test_set_indices_match_set_of(self, n_sets):
        rng = np.random.default_rng(11)
        base = np.asarray(rng.integers(0, 2**40, 400), dtype=np.int64)
        huge = np.asarray(rng.random(400) < 0.5, dtype=bool)
        got = vt.set_indices(vt.key_hashes(base, huge), n_sets)
        for b, h, s in zip(base.tolist(), huge.tolist(), got.tolist()):
            assert s == ((hash((b, bool(h))) * 0x9E3779B1) >> 12) % n_sets


def scalar_replay(hier: TlbHierarchy, base, huge):
    levels = {"l1": 0, "l2": 1, "miss": 2}
    return np.asarray(
        [levels[hier.access(int(b), bool(h))] for b, h in zip(base, huge)],
        dtype=np.int8,
    )


GEOMETRIES = [
    # (l1_4k, l1_2m, l2) as (entries, ways); includes a non-power-of-two
    # set count (12/4 -> 3 sets) that exercises the exact fallback.
    ((64, 4), (32, 4), (1536, 6)),
    ((16, 4), (8, 4), (96, 6)),
    ((12, 4), (12, 4), (24, 3)),
]


class TestHierarchyDifferential:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("universe,huge_frac", [(40, 1.0), (600, 0.5), (6, 0.0)])
    def test_simulate_matches_access_loop(self, geometry, universe, huge_frac):
        rng = np.random.default_rng(universe * 7 + int(huge_frac * 10))
        base, huge = random_stream(rng, 4000, universe, huge_frac)
        ref = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        vec = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        expected = scalar_replay(ref, base, huge)
        got = vec.simulate(base, huge)
        assert np.array_equal(got, expected)
        for a, b in ((ref.l1_4k, vec.l1_4k), (ref.l1_2m, vec.l1_2m), (ref.l2, vec.l2)):
            assert (a.hits, a.misses) == (b.hits, b.misses)
            # Same resident keys in the same LRU order, set by set.
            assert [list(s) for s in a._sets] == [list(s) for s in b._sets]

    def test_warm_start_and_repeat_calls(self):
        rng = np.random.default_rng(3)
        geometry = GEOMETRIES[1]
        ref = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        vec = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        for chunk in range(4):
            base, huge = random_stream(rng, 1500, 80, 0.6)
            expected = scalar_replay(ref, base, huge)
            got = vec.simulate(base, huge)
            assert np.array_equal(got, expected), f"chunk {chunk}"
            assert [list(s) for s in ref.l2._sets] == [list(s) for s in vec.l2._sets]

    def test_bursty_and_pingpong_streams(self):
        rng = random.Random(5)
        base_list, huge_list = [], []
        for _ in range(300):
            b = rng.randrange(30)
            for _ in range(rng.randrange(1, 12)):  # runs of repeats
                base_list.append(b)
                huge_list.append(True)
        base_list += [0, 1] * 500  # ping-pong tail
        huge_list += [True, False] * 500
        base = np.asarray(base_list, dtype=np.int64)
        huge = np.asarray(huge_list, dtype=bool)
        geometry = GEOMETRIES[0]
        ref = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        vec = TlbHierarchy(*(SetAssocTlb(e, w) for e, w in geometry))
        assert np.array_equal(vec.simulate(base, huge), scalar_replay(ref, base, huge))


def native_state(workload_name="svm"):
    machine = build_machine("thp", SMALL)
    wl = make_workload(workload_name, TEST_SCALE)
    result = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
    return wl, result


def virt_state(workload_name="svm"):
    host = build_machine("ca", SMALL)
    guest_pages = sum(SMALL.node_pages)
    guest_pages -= guest_pages % order_pages(SMALL.max_order)
    vm = VirtualMachine(host, guest_pages, "ca")
    wl = make_workload(workload_name, TEST_SCALE)
    r = run_virtualized(vm, wl, RunOptions(sample_every=None, exit_after=False))
    return vm, wl, r


def run_engine(view, trace, starts, wl, engine):
    sim = MmuSimulator(view, HardwareConfig(), engine=engine)
    return asdict(sim.run(trace, starts, workload=wl))


class TestMmuSimulatorDifferential:
    def test_native_thp(self):
        wl, r = native_state()
        view = TranslationView.native(r.process)
        trace = wl.trace(30_000)
        assert run_engine(view, trace, r.vma_start_vpns, wl, "scalar") == \
            run_engine(view, trace, r.vma_start_vpns, wl, "vector")

    def test_native_4k_forced(self):
        wl, r = native_state()
        view = TranslationView.native(r.process, force_4k=True)
        trace = wl.trace(30_000)
        scalar = run_engine(view, trace, r.vma_start_vpns, wl, "scalar")
        vector = run_engine(view, trace, r.vma_start_vpns, wl, "vector")
        assert scalar == vector
        assert not scalar["huge"]

    def test_virtualized(self):
        vm, wl, r = virt_state()
        view = TranslationView.virtualized(vm, r.process)
        trace = wl.trace(30_000)
        scalar = run_engine(view, trace, r.vma_start_vpns, wl, "scalar")
        vector = run_engine(view, trace, r.vma_start_vpns, wl, "vector")
        assert scalar == vector
        assert scalar["virtualized"]
