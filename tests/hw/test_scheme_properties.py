"""Hypothesis invariants for the related-work scheme state machines.

The conformance battery proves scalar/batched *identity*; these tests
prove the scalar references themselves honour their design invariants
on arbitrary streams — well-formed and invariant-violating alike
(strategies shared with the battery via :mod:`tests.hw.conformance`):

- **cTLB**: geometry bounds (ways per set, correct set hash), every
  resident coverage interval non-empty and inside its window, and the
  covered/missed/install accounting closed.
- **Utopia**: RestSeg capacity only ever shrinks and exactly accounts
  for the promoted runs; promotion is permanent (once a run rest-hits
  it rest-hits forever); the rest/flex split partitions the stream.
- **Segmentation**: segments only ever grow (never shrink, never
  vanish), the segment count never exceeds ``max_segments`` and equals
  the FILL count, and a rejected run stays outside forever.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.coalesced_tlb import CoalescedTlb, _HASH_MULT
from repro.hw.segmentation import OUTSIDE, SegmentationUnit
from repro.hw.utopia import REST_HIT, UtopiaMapper
from tests.hw.conformance import raw_run_traces, run_traces

ANY_TRACE = st.one_of(run_traces(), raw_run_traces())


def events(stream):
    return list(zip(*(a.tolist() for a in stream)))


class TestCoalescedTlbInvariants:
    @given(stream=ANY_TRACE)
    @settings(max_examples=40, deadline=None)
    def test_geometry_and_coverage(self, stream):
        c = CoalescedTlb(entries=16, ways=4, span_pages=8)
        for v, s, ln in events(stream):
            c.on_miss(v, s, ln)
        for set_idx, entries in enumerate(c._sets):
            assert len(entries) <= c.ways
            for window, (lo, hi) in entries.items():
                assert set_idx == ((window * _HASH_MULT) >> 12) % c.n_sets
                w_lo = window << c.span_order
                assert w_lo <= lo < hi <= w_lo + c.span_pages
        assert c.stats.total == len(stream[0])
        # Every install covers at least the missing page itself.
        assert c.stats.pages_covered_sum >= c.stats.missed
        assert 0.0 <= c.stats.coverage_fraction <= 1.0


class TestUtopiaInvariants:
    @given(stream=ANY_TRACE)
    @settings(max_examples=40, deadline=None)
    def test_capacity_monotone_and_promotion_permanent(self, stream):
        u = UtopiaMapper(restseg_pages=200, promote_after=3)
        prev_free = u.free_pages
        promoted = set()
        for v, s, ln in events(stream):
            if s in promoted:
                assert u.on_miss(v, s, ln) == REST_HIT
            else:
                u.on_miss(v, s, ln)
            assert u.free_pages <= prev_free
            prev_free = u.free_pages
            promoted = set(u._promoted)
        assert u.free_pages == u.restseg_pages - sum(u._promoted.values())
        assert u.free_pages >= 0
        assert u.stats.rest_hits + u.stats.flex_walks == len(stream[0])
        assert u.stats.promotions == len(u._promoted)
        assert u.stats.promoted_pages == sum(u._promoted.values())

    @given(stream=run_traces())
    @settings(max_examples=30, deadline=None)
    def test_promotion_exactly_at_threshold_when_well_formed(self, stream):
        """With consistent run lengths, a promoted run's counter stopped
        exactly at the threshold (counting halts once it rest-hits)."""
        u = UtopiaMapper(restseg_pages=500, promote_after=3)
        for v, s, ln in events(stream):
            u.on_miss(v, s, ln)
        for start in u._promoted:
            assert u._miss_counts[start] == u.promote_after


class TestSegmentationInvariants:
    @given(stream=ANY_TRACE)
    @settings(max_examples=40, deadline=None)
    def test_segments_only_grow(self, stream):
        sg = SegmentationUnit(max_segments=3)
        prev = []
        rejected = set()
        for v, s, ln in events(stream):
            if s in rejected:
                assert sg.on_miss(v, s, ln) == OUTSIDE
            else:
                sg.on_miss(v, s, ln)
            cur = [tuple(seg) for seg in sg._segments]
            assert len(cur) >= len(prev)
            assert len(cur) <= sg.max_segments
            for (old_lo, old_hi), (new_lo, new_hi) in zip(prev, cur):
                assert new_lo <= old_lo and new_hi >= old_hi
            prev = cur
            rejected = set(sg._rejected)
        assert sg.stats.fills == len(sg._segments)
        assert sg.stats.total == len(stream[0])
        for lo, hi in prev:
            assert lo < hi
