"""Scheme-conformance registry: every walk-path machine, one battery.

Each scheme machine in ``repro.hw`` claims the same contract — a
per-event scalar reference and (for all but vHC) a batched form that is
*bit-identical* on counters and end state.  Before this registry every
machine carried its own copy-pasted differential test with its own
stream helpers; now an adapter (:class:`SchemeSpec`) describes how to
build a machine, feed it scalar or batched, and observe everything
(stats, residency, LRU/dict insertion orders), and one parametrized
battery (``test_conformance.py``) runs every registered geometry
through shared empty/cold/warm/adversarial/thrashing streams,
hypothesis trace fuzzing and mid-stream pickle round-trips.

Stream *families* group machines by input shape:

- ``run``  — ``(vpns, run_starts, run_lens)`` miss streams obeying the
  ResolvedTrace invariants (disjoint runs, access inside its own run):
  vRMM, cTLB, Utopia, segmentation, vHC.  Adversarial variants violate
  every invariant at once and must fall back identically.
- ``spot`` — ``(pcs, vpns, ppns, contigs)`` completed-walk streams.
- ``tlb``  — ``(keys, huge)`` access streams: the TLB hierarchy and
  the mechanistic walk simulator.
- ``ds``   — ``(in_segment_mask,)``.

The state observers double as the shared vocabulary for the end-to-end
MmuSimulator tests (``test_walk_vector.py``) and the engine A/B bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from hypothesis import strategies as st

from repro.hw.coalesced_tlb import CoalescedTlb
from repro.hw.direct_segment import DirectSegment
from repro.hw.pwc import WalkSimulator
from repro.hw.rmm import RANGE_FILL, RANGE_HIT, UNCOVERED, RangeTlb
from repro.hw.segmentation import FILL, GROW, INSIDE, OUTSIDE, SegmentationUnit
from repro.hw.spot import CORRECT, MISPREDICT, NO_PREDICTION, SpotPredictor
from repro.hw.tlb import SetAssocTlb, TlbHierarchy
from repro.hw.utopia import REST_HIT, UtopiaMapper
from repro.hw.vhc import VhcTlb

Stream = tuple  # tuple of equal-length numpy arrays


def stream_slice(stream: Stream, lo: int, hi: int) -> Stream:
    return tuple(a[lo:hi] for a in stream)


# -- state observers (full observability: counters + orders) ------------------


def spot_state(p: SpotPredictor):
    return (
        [[(pc, e.offset, e.confidence) for pc, e in s.items()] for s in p._sets],
        vars(p.stats).copy(),
    )


def rmm_state(t: RangeTlb):
    return (list(t._ranges.items()), vars(t.stats).copy())


def ds_state(d: DirectSegment):
    return vars(d.stats).copy()


def walk_state(ws: WalkSimulator):
    cache = ws.pwc._cache
    state = [
        vars(ws.stats).copy(),
        [list(s) for s in cache._sets],
        (cache.hits, cache.misses),
    ]
    if ws.ntlb is not None:
        state.append(
            ([list(s) for s in ws.ntlb._sets], ws.ntlb.hits, ws.ntlb.misses)
        )
    return state


def hier_state(h: TlbHierarchy):
    return [
        ((t.hits, t.misses), [list(s) for s in t._sets])
        for t in (h.l1_4k, h.l1_2m, h.l2)
    ]


def ctlb_state(c: CoalescedTlb):
    return ([list(s.items()) for s in c._sets], vars(c.stats).copy())


def utopia_state(u: UtopiaMapper):
    return (
        list(u._promoted.items()),
        list(u._miss_counts.items()),
        u.free_pages,
        vars(u.stats).copy(),
    )


def seg_state(s: SegmentationUnit):
    return (
        [list(seg) for seg in s._segments],
        list(s._assigned.items()),
        list(s._rejected),
        vars(s.stats).copy(),
    )


def vhc_state(v: VhcTlb):
    return (
        [list(s) for s in v._tlb._sets],
        dict(v._coverage),
        vars(v.stats).copy(),
    )


# -- stream generators, per family --------------------------------------------


def run_stream(rng, n, n_runs=50, max_len=200):
    """Well-formed disjoint runs (the ResolvedTrace invariants)."""
    runs = []
    cur = 0
    for _ in range(max(1, n_runs)):
        cur += int(rng.integers(1, 64))
        ln = int(rng.integers(1, max_len))  # straddles rangeability
        runs.append((cur, ln))
        cur += ln
    idx = rng.integers(0, len(runs), n)
    starts = np.asarray([runs[i][0] for i in idx], dtype=np.int64)
    lens = np.asarray([runs[i][1] for i in idx], dtype=np.int64)
    vpns = starts + (rng.random(n) * lens).astype(np.int64)
    return vpns, starts, lens


def adversarial_run_stream(rng, n):
    """Random garbage: vpns outside runs, inconsistent lengths,
    overlapping runs — everything the run-table validator must reject."""
    vpns = rng.integers(0, 500, n).astype(np.int64)
    starts = rng.integers(0, 500, n).astype(np.int64)
    lens = rng.integers(0, 100, n).astype(np.int64)
    return vpns, starts, lens


def thrash_run_stream():
    """Conflict pressure: a dozen disjoint runs (long/short alternating)
    cycled round-robin, then a two-run ping-pong tail — every access
    lands on a machine whose capacity the working set exceeds."""
    runs = [(k * 1000 + 7, 48 if k % 2 else 8) for k in range(12)]
    vpns, starts, lens = [], [], []
    for i in range(900):
        s, ln = runs[i % len(runs)]
        vpns.append(s + (i * 7) % ln)
        starts.append(s)
        lens.append(ln)
    for i in range(300):
        s, ln = runs[i % 2]
        vpns.append(s + i % ln)
        starts.append(s)
        lens.append(ln)
    return (
        np.asarray(vpns, dtype=np.int64),
        np.asarray(starts, dtype=np.int64),
        np.asarray(lens, dtype=np.int64),
    )


def spot_stream(rng, n, n_pcs=10, n_offsets=3, contig_p=0.7, sticky=0.8):
    """A miss stream with PC reuse and sticky-but-flipping offsets.

    Stickiness creates the match/mismatch runs the confidence closed
    forms collapse; the contig probability interleaves bypass segments.
    """
    pcs = rng.integers(0, n_pcs, n).astype(np.int64) * 4 + 0x400000
    offset_pool = (np.arange(n_offsets, dtype=np.int64) + 1) * 512
    choice = rng.integers(0, n_offsets, n)
    keep = rng.random(n) < sticky
    last = {}
    offs = np.empty(n, dtype=np.int64)
    for i in range(n):
        pc = int(pcs[i])
        if keep[i] and pc in last:
            offs[i] = last[pc]
        else:
            offs[i] = offset_pool[choice[i]]
            last[pc] = offs[i]
    vpns = rng.integers(0, 2**20, n).astype(np.int64)
    ppns = vpns - offs
    contigs = rng.random(n) < contig_p
    return pcs, vpns, ppns, contigs


def thrash_spot_stream():
    """One PC, offsets flipping in short runs, contig bit toggling: every
    eviction, bypassed miss, confidence drain and offset flip lands on
    the same table entry."""
    pcs, vpns, ppns, contigs = [], [], [], []
    vpn = 0
    for block in range(120):
        offset = 512 if block % 3 else 1024
        for _ in range(1 + block % 4):
            pcs.append(0x400010)
            vpns.append(vpn)
            ppns.append(vpn - offset)
            contigs.append(block % 5 != 0)
            vpn += 1
    return (
        np.asarray(pcs, dtype=np.int64),
        np.asarray(vpns, dtype=np.int64),
        np.asarray(ppns, dtype=np.int64),
        np.asarray(contigs, dtype=bool),
    )


def tlb_stream(rng, n, universe=600, huge_frac=0.5):
    keys = rng.integers(0, universe, n).astype(np.int64)
    huge = np.asarray(rng.random(n) < huge_frac, dtype=bool)
    return keys, huge


def thrash_tlb_stream():
    """Bursty repeats over a tiny universe plus a ping-pong tail."""
    rng = np.random.default_rng(5)
    keys, huge = [], []
    for _ in range(300):
        b = int(rng.integers(0, 30))
        for _ in range(int(rng.integers(1, 12))):
            keys.append(b)
            huge.append(True)
    keys += [0, 1] * 500
    huge += [True, False] * 500
    return np.asarray(keys, dtype=np.int64), np.asarray(huge, dtype=bool)


def ds_stream(rng, n, inside_p=0.8):
    return (np.asarray(rng.random(n) < inside_p, dtype=bool),)


def thrash_ds_stream():
    return (np.asarray([True, False] * 600, dtype=bool),)


# -- hypothesis strategies, per family ----------------------------------------


@st.composite
def run_traces(draw):
    """Well-formed run streams (disjoint runs, vpn inside its run)."""
    n_runs = draw(st.integers(1, 6))
    gaps = draw(st.lists(st.integers(1, 50), min_size=n_runs, max_size=n_runs))
    lens = draw(st.lists(st.integers(1, 80), min_size=n_runs, max_size=n_runs))
    runs = []
    cur = 0
    for g, ln in zip(gaps, lens):
        cur += g
        runs.append((cur, ln))
        cur += ln
    events = draw(st.lists(
        st.tuples(st.integers(0, n_runs - 1), st.integers(0, 10**6)),
        max_size=120,
    ))
    starts = np.asarray([runs[i][0] for i, _ in events], dtype=np.int64)
    lns = np.asarray([runs[i][1] for i, _ in events], dtype=np.int64)
    vpns = np.asarray(
        [runs[i][0] + o % runs[i][1] for i, o in events], dtype=np.int64
    )
    return vpns, starts, lns


@st.composite
def raw_run_traces(draw):
    """Arbitrary (possibly invariant-violating) run streams."""
    events = draw(st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 300),
                  st.integers(-5, 100)),
        max_size=80,
    ))
    return (
        np.asarray([e[0] for e in events], dtype=np.int64),
        np.asarray([e[1] for e in events], dtype=np.int64),
        np.asarray([e[2] for e in events], dtype=np.int64),
    )


@st.composite
def spot_traces(draw):
    events = draw(st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 2), st.booleans()),
        max_size=120,
    ))
    pcs = np.asarray([0x400000 + p * 4 for p, _, _ in events], dtype=np.int64)
    vpns = np.arange(len(events), dtype=np.int64) * 3
    offs = np.asarray([(o + 1) * 512 for _, o, _ in events], dtype=np.int64)
    contigs = np.asarray([c for _, _, c in events], dtype=bool)
    return pcs, vpns, vpns - offs, contigs


@st.composite
def tlb_traces(draw):
    events = draw(st.lists(
        st.tuples(st.integers(0, 40), st.booleans()), max_size=120,
    ))
    keys = np.asarray([k for k, _ in events], dtype=np.int64)
    huge = np.asarray([h for _, h in events], dtype=bool)
    return keys, huge


@st.composite
def ds_traces(draw):
    mask = draw(st.lists(st.booleans(), max_size=120))
    return (np.asarray(mask, dtype=bool),)


FAMILY_STRATEGIES = {
    "run": lambda: st.one_of(run_traces(), raw_run_traces()),
    "spot": spot_traces,
    "tlb": tlb_traces,
    "ds": ds_traces,
}


# -- feeds: scalar reference loop vs batched call -----------------------------


def _run_events(stream):
    return zip(*(a.tolist() for a in stream))


def spot_scalar(p, stream):
    counts = {CORRECT: 0, MISPREDICT: 0, NO_PREDICTION: 0}
    for pc, v, pp, cb in _run_events(stream):
        counts[p.on_walk_complete(pc, v, pp, bool(cb))] += 1
    return (counts[CORRECT], counts[MISPREDICT], counts[NO_PREDICTION])


def spot_batch(p, stream):
    return p.on_walks_batch(*stream)


def rmm_scalar(t, stream):
    counts = {RANGE_HIT: 0, RANGE_FILL: 0, UNCOVERED: 0}
    for v, s, ln in _run_events(stream):
        counts[t.on_miss(v, s, ln)] += 1
    return (counts[RANGE_HIT], counts[RANGE_FILL], counts[UNCOVERED])


def rmm_batch(t, stream):
    return t.on_miss_batch(*stream)


def ds_scalar(d, stream):
    (mask,) = stream
    return (sum(0 if d.on_miss(bool(b)) else 1 for b in mask.tolist()),)


def ds_batch(d, stream):
    return (d.on_miss_batch(stream[0]),)


def walk_scalar(ws, stream):
    for v, h in _run_events(stream):
        ws.walk(v, bool(h))
    return ()


def walk_batch(ws, stream):
    ws.walk_batch(*stream)
    return ()


_HIER_LEVELS = {"l1": 0, "l2": 1, "miss": 2}


def hier_scalar(h, stream):
    return [_HIER_LEVELS[h.access(k, bool(hg))] for k, hg in _run_events(stream)]


def hier_batch(h, stream):
    return h.simulate(*stream).tolist()


def ctlb_scalar(c, stream):
    covered = 0
    for v, s, ln in _run_events(stream):
        covered += c.on_miss(v, s, ln)
    return (covered, len(stream[0]) - covered)


def ctlb_batch(c, stream):
    return c.on_miss_batch(*stream)


def utopia_scalar(u, stream):
    rest = 0
    for v, s, ln in _run_events(stream):
        rest += u.on_miss(v, s, ln) == REST_HIT
    return (rest, len(stream[0]) - rest)


def utopia_batch(u, stream):
    return u.on_miss_batch(*stream)


def seg_scalar(sg, stream):
    counts = {INSIDE: 0, GROW: 0, FILL: 0, OUTSIDE: 0}
    for v, s, ln in _run_events(stream):
        counts[sg.on_miss(v, s, ln)] += 1
    return (counts[INSIDE], counts[GROW], counts[FILL], counts[OUTSIDE])


def seg_batch(sg, stream):
    return sg.on_miss_batch(*stream)


def vhc_scalar(v, stream):
    hits = 0
    for vpn, s, ln in _run_events(stream):
        hits += v.access(vpn, s, ln)
    return (hits, len(stream[0]) - hits)


# -- the registry --------------------------------------------------------------


@dataclass(frozen=True)
class SchemeSpec:
    """One machine geometry under the conformance battery."""

    name: str
    family: str  # stream shape: "run" | "spot" | "tlb" | "ds"
    factory: Callable[[], object]
    scalar: Callable[[object, Stream], object]
    #: Batched feed; None for scalar-only machines (vHC), which the
    #: battery then checks for determinism and pickle fidelity only.
    batch: Optional[Callable[[object, Stream], object]]
    state: Callable[[object], object]
    stream: Callable[[np.random.Generator, int], Stream]
    #: Invariant-violating generator; None when every input is valid.
    adversarial: Optional[Callable[[np.random.Generator, int], Stream]] = None
    thrash: Optional[Callable[[], Stream]] = None


def _run_spec(name, factory, scalar, batch, state):
    return SchemeSpec(
        name, "run", factory, scalar, batch, state,
        run_stream, adversarial_run_stream, thrash_run_stream,
    )


SCHEMES = [
    # SpOT across the geometry space: default, non-power-of-two set
    # count (exact set-index fallback), fully associative, no-confidence.
    SchemeSpec("spot-32x4", "spot", lambda: SpotPredictor(32, 4),
               spot_scalar, spot_batch, spot_state,
               spot_stream, None, thrash_spot_stream),
    SchemeSpec("spot-24x4", "spot", lambda: SpotPredictor(24, 4),
               spot_scalar, spot_batch, spot_state,
               spot_stream, None, thrash_spot_stream),
    SchemeSpec("spot-8x8-noconf", "spot",
               lambda: SpotPredictor(8, 8, use_confidence=False),
               spot_scalar, spot_batch, spot_state,
               spot_stream, None, thrash_spot_stream),
    _run_spec("rmm-16", lambda: RangeTlb(16),
              rmm_scalar, rmm_batch, rmm_state),
    _run_spec("rmm-4", lambda: RangeTlb(4),
              rmm_scalar, rmm_batch, rmm_state),
    SchemeSpec("ds", "ds", DirectSegment,
               ds_scalar, ds_batch, ds_state,
               ds_stream, None, thrash_ds_stream),
    SchemeSpec("walk-native4", "tlb", lambda: WalkSimulator(False, 4, 32, 64),
               walk_scalar, walk_batch, walk_state,
               tlb_stream, None, thrash_tlb_stream),
    SchemeSpec("walk-virt5", "tlb", lambda: WalkSimulator(True, 5, 16, 32),
               walk_scalar, walk_batch, walk_state,
               tlb_stream, None, thrash_tlb_stream),
    SchemeSpec("walk-virt-np2", "tlb", lambda: WalkSimulator(True, 4, 12, 12),
               walk_scalar, walk_batch, walk_state,
               tlb_stream, None, thrash_tlb_stream),
    SchemeSpec("hier-default", "tlb",
               lambda: TlbHierarchy(SetAssocTlb(64, 4), SetAssocTlb(32, 4),
                                    SetAssocTlb(1536, 6)),
               hier_scalar, hier_batch, hier_state,
               tlb_stream, None, thrash_tlb_stream),
    SchemeSpec("hier-np2", "tlb",
               lambda: TlbHierarchy(SetAssocTlb(12, 4), SetAssocTlb(12, 4),
                                    SetAssocTlb(24, 3)),
               hier_scalar, hier_batch, hier_state,
               tlb_stream, None, thrash_tlb_stream),
    _run_spec("ctlb-64x4", lambda: CoalescedTlb(64, 4, span_pages=16),
              ctlb_scalar, ctlb_batch, ctlb_state),
    _run_spec("ctlb-24x4-span8", lambda: CoalescedTlb(24, 4, span_pages=8),
              ctlb_scalar, ctlb_batch, ctlb_state),
    _run_spec("utopia", lambda: UtopiaMapper(),
              utopia_scalar, utopia_batch, utopia_state),
    _run_spec("utopia-tight",
              lambda: UtopiaMapper(restseg_pages=256, promote_after=2),
              utopia_scalar, utopia_batch, utopia_state),
    _run_spec("seg-16", lambda: SegmentationUnit(16),
              seg_scalar, seg_batch, seg_state),
    _run_spec("seg-2", lambda: SegmentationUnit(2),
              seg_scalar, seg_batch, seg_state),
    _run_spec("vhc", lambda: VhcTlb(entries=24, ways=4, distance=64),
              vhc_scalar, None, vhc_state),
]

SCHEME_IDS = [s.name for s in SCHEMES]
