"""Differential tests for the batched walk-path machines.

PR 4 extends the vector engine past the TLB into the walk path: SpOT,
vRMM, DS and the mechanistic walk simulator each grew a batched method
claiming *bit-identical* counters and end state versus their per-miss
reference loops.  These tests drive both sides with the same random
streams across the geometry space (table sizes/ways, confidence on/off,
range-TLB sizes, PWC/nTLB sizes, radix depth) and compare every
observable: outcome counts, stats, residency, LRU order, per-entry
offset/confidence, cached ranges and float-accumulated cycles.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.hw.direct_segment import DirectSegment
from repro.hw.mmu_sim import MmuSimulator
from repro.hw.pwc import WalkSimulator
from repro.hw.rmm import RangeTlb
from repro.hw.spot import CORRECT, MISPREDICT, NO_PREDICTION, SpotPredictor
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig
from tests.hw.test_engine_differential import native_state


# -- SpOT ---------------------------------------------------------------------


def spot_state(p: SpotPredictor):
    """Everything observable: residency + LRU order + entry values + stats."""
    return (
        [[(pc, e.offset, e.confidence) for pc, e in s.items()] for s in p._sets],
        vars(p.stats).copy(),
    )


def spot_scalar(p: SpotPredictor, pcs, vpns, ppns, contigs):
    counts = {CORRECT: 0, MISPREDICT: 0, NO_PREDICTION: 0}
    for pc, v, pp, cb in zip(pcs, vpns, ppns, contigs):
        counts[p.on_walk_complete(int(pc), int(v), int(pp), bool(cb))] += 1
    return (counts[CORRECT], counts[MISPREDICT], counts[NO_PREDICTION])


def spot_stream(rng, n, n_pcs=10, n_offsets=3, contig_p=0.7, sticky=0.8):
    """A miss stream with PC reuse and sticky-but-flipping offsets.

    Stickiness creates the match/mismatch runs the confidence closed
    forms collapse; the contig probability interleaves bypass segments.
    """
    pcs = rng.integers(0, n_pcs, n).astype(np.int64) * 4 + 0x400000
    offset_pool = (np.arange(n_offsets, dtype=np.int64) + 1) * 512
    # Per-PC sticky offset choice: keep the previous offset with
    # probability ``sticky``, else redraw.
    choice = rng.integers(0, n_offsets, n)
    keep = rng.random(n) < sticky
    last = {}
    offs = np.empty(n, dtype=np.int64)
    for i in range(n):
        pc = int(pcs[i])
        if keep[i] and pc in last:
            offs[i] = last[pc]
        else:
            offs[i] = offset_pool[choice[i]]
            last[pc] = offs[i]
    vpns = rng.integers(0, 2**20, n).astype(np.int64)
    ppns = vpns - offs
    contigs = rng.random(n) < contig_p
    return pcs, vpns, ppns, contigs


SPOT_GEOMETRIES = [
    (32, 4),  # default (8 sets)
    (16, 4),  # 4 sets
    (24, 4),  # 6 sets: non-power-of-two exact set-index fallback
    (8, 8),   # fully associative
]


class TestSpotBatchDifferential:
    @pytest.mark.parametrize("entries,ways", SPOT_GEOMETRIES)
    @pytest.mark.parametrize("use_confidence", [True, False])
    def test_cold_random_streams(self, entries, ways, use_confidence):
        rng = np.random.default_rng(entries * 10 + ways + int(use_confidence))
        for trial in range(6):
            pcs, vpns, ppns, contigs = spot_stream(
                rng, 1500, n_pcs=6 + trial * 7, contig_p=0.3 + 0.1 * trial
            )
            ref = SpotPredictor(entries, ways, use_confidence=use_confidence)
            vec = SpotPredictor(entries, ways, use_confidence=use_confidence)
            expected = spot_scalar(ref, pcs, vpns, ppns, contigs)
            got = vec.on_walks_batch(pcs, vpns, ppns, contigs)
            assert got == expected, f"trial {trial}"
            assert spot_state(vec) == spot_state(ref), f"trial {trial}"

    def test_warm_chunked_calls(self):
        rng = np.random.default_rng(99)
        ref = SpotPredictor(32, 4)
        vec = SpotPredictor(32, 4)
        for chunk in range(5):
            pcs, vpns, ppns, contigs = spot_stream(rng, 700, n_pcs=20)
            expected = spot_scalar(ref, pcs, vpns, ppns, contigs)
            got = vec.on_walks_batch(pcs, vpns, ppns, contigs)
            assert got == expected, f"chunk {chunk}"
            assert spot_state(vec) == spot_state(ref), f"chunk {chunk}"

    @pytest.mark.parametrize("use_confidence", [True, False])
    def test_single_pc_thrash(self, use_confidence):
        """One PC, offsets flipping in short runs, contig bit toggling.

        The hardest case for the episode bookkeeping: every eviction,
        bypassed miss, confidence drain and offset flip lands on the
        same table entry.
        """
        pc = np.int64(0x400010)
        pcs_l, vpns_l, ppns_l, contig_l = [], [], [], []
        vpn = 0
        for block in range(120):
            offset = 512 if block % 3 else 1024
            for _ in range(1 + block % 4):
                vpns_l.append(vpn)
                ppns_l.append(vpn - offset)
                pcs_l.append(pc)
                contig_l.append(block % 5 != 0)
                vpn += 1
        pcs = np.asarray(pcs_l, dtype=np.int64)
        vpns = np.asarray(vpns_l, dtype=np.int64)
        ppns = np.asarray(ppns_l, dtype=np.int64)
        contigs = np.asarray(contig_l, dtype=bool)
        ref = SpotPredictor(8, 4, use_confidence=use_confidence)
        vec = SpotPredictor(8, 4, use_confidence=use_confidence)
        assert vec.on_walks_batch(pcs, vpns, ppns, contigs) == spot_scalar(
            ref, pcs, vpns, ppns, contigs
        )
        assert spot_state(vec) == spot_state(ref)

    def test_empty_batch_is_a_noop(self):
        p = SpotPredictor(32, 4)
        empty = np.empty(0, dtype=np.int64)
        before = spot_state(p)
        assert p.on_walks_batch(
            empty, empty, empty, np.empty(0, dtype=bool)
        ) == (0, 0, 0)
        assert spot_state(p) == before


# -- vRMM range TLB -----------------------------------------------------------


def rmm_state(t: RangeTlb):
    return (list(t._ranges.items()), vars(t.stats).copy())


def rmm_scalar(t: RangeTlb, vpns, starts, lens):
    outcomes = {"range_hit": 0, "range_fill": 0, "uncovered": 0}
    for v, s, ln in zip(vpns, starts, lens):
        outcomes[t.on_miss(int(v), int(s), int(ln))] += 1
    return (outcomes["range_hit"], outcomes["range_fill"], outcomes["uncovered"])


def rmm_stream(rng, n, n_runs=50, max_len=200, min_range_pages=32):
    """Well-formed disjoint runs (the ResolvedTrace invariants)."""
    runs = []
    cur = 0
    for _ in range(n_runs):
        cur += int(rng.integers(1, 64))
        # Mix lengths straddling the rangeability threshold.
        ln = int(rng.integers(1, max_len))
        runs.append((cur, ln))
        cur += ln
    idx = rng.integers(0, n_runs, n)
    starts = np.asarray([runs[i][0] for i in idx], dtype=np.int64)
    lens = np.asarray([runs[i][1] for i in idx], dtype=np.int64)
    vpns = starts + (rng.random(n) * lens).astype(np.int64)
    return vpns, starts, lens


class TestRangeTlbBatchDifferential:
    @pytest.mark.parametrize("entries", [4, 16, 32])
    def test_cold_well_formed(self, entries):
        rng = np.random.default_rng(entries)
        for trial in range(6):
            vpns, starts, lens = rmm_stream(rng, 1200, n_runs=10 + trial * 20)
            ref = RangeTlb(entries)
            vec = RangeTlb(entries)
            assert vec.on_miss_batch(vpns, starts, lens) == rmm_scalar(
                ref, vpns, starts, lens
            ), f"trial {trial}"
            assert rmm_state(vec) == rmm_state(ref), f"trial {trial}"

    def test_warm_falls_back_identically(self):
        rng = np.random.default_rng(5)
        ref = RangeTlb(16)
        vec = RangeTlb(16)
        for chunk in range(3):
            vpns, starts, lens = rmm_stream(rng, 500, n_runs=40)
            assert vec.on_miss_batch(vpns, starts, lens) == rmm_scalar(
                ref, vpns, starts, lens
            ), f"chunk {chunk}"
            assert rmm_state(vec) == rmm_state(ref), f"chunk {chunk}"

    def test_adversarial_streams_fall_back_identically(self):
        """Invariant-violating inputs must route to the scalar loop."""
        rng = np.random.default_rng(13)
        for trial in range(8):
            # Random garbage: vpns outside runs, inconsistent lengths,
            # overlapping runs — everything _batch_exact must reject.
            vpns = rng.integers(0, 500, 300).astype(np.int64)
            starts = rng.integers(0, 500, 300).astype(np.int64)
            lens = rng.integers(0, 100, 300).astype(np.int64)
            ref = RangeTlb(8)
            vec = RangeTlb(8)
            assert vec.on_miss_batch(vpns, starts, lens) == rmm_scalar(
                ref, vpns, starts, lens
            ), f"trial {trial}"
            assert rmm_state(vec) == rmm_state(ref), f"trial {trial}"

    def test_empty_batch_is_a_noop(self):
        t = RangeTlb(8)
        empty = np.empty(0, dtype=np.int64)
        before = rmm_state(t)
        assert t.on_miss_batch(empty, empty, empty) == (0, 0, 0)
        assert rmm_state(t) == before


# -- Direct segment -----------------------------------------------------------


class TestDirectSegmentBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(3)
        mask = rng.random(2000) < 0.8
        ref = DirectSegment()
        vec = DirectSegment()
        expected = sum(0 if ref.on_miss(bool(b)) else 1 for b in mask)
        assert vec.on_miss_batch(mask) == expected
        assert vars(vec.stats) == vars(ref.stats)

    def test_empty_batch_is_a_noop(self):
        ds = DirectSegment()
        assert ds.on_miss_batch(np.empty(0, dtype=bool)) == 0
        assert vars(ds.stats) == {"inside": 0, "outside": 0}


# -- Walk simulator (PWC + nTLB) ---------------------------------------------


def walk_state(ws: WalkSimulator):
    cache = ws.pwc._cache
    state = [
        vars(ws.stats).copy(),
        [list(s) for s in cache._sets],
        (cache.hits, cache.misses),
    ]
    if ws.ntlb is not None:
        state.append(
            ([list(s) for s in ws.ntlb._sets], ws.ntlb.hits, ws.ntlb.misses)
        )
    return state


def walk_scalar(ws: WalkSimulator, vpns, huges):
    for v, h in zip(vpns, huges):
        ws.walk(int(v), bool(h))


WALK_CONFIGS = [
    # (virtualized, levels, pwc_entries, ntlb_entries)
    (False, 4, 32, 64),
    (True, 4, 32, 64),
    (True, 5, 16, 32),
    (False, 5, 8, 64),
    (True, 4, 12, 12),  # non-power-of-two set counts in both caches
]


class TestWalkSimulatorBatchDifferential:
    @pytest.mark.parametrize("virtualized,levels,pwc_e,ntlb_e", WALK_CONFIGS)
    def test_cold_random_streams(self, virtualized, levels, pwc_e, ntlb_e):
        rng = np.random.default_rng(levels * 100 + pwc_e)
        for universe, huge_frac in [(2**14, 0.0), (2**22, 0.5), (2**30, 1.0)]:
            vpns = rng.integers(0, universe, 1500).astype(np.int64)
            huges = rng.random(1500) < huge_frac
            ref = WalkSimulator(virtualized, levels, pwc_e, ntlb_e)
            vec = WalkSimulator(virtualized, levels, pwc_e, ntlb_e)
            walk_scalar(ref, vpns, huges)
            vec.walk_batch(vpns, huges)
            assert walk_state(vec) == walk_state(ref), (universe, huge_frac)

    def test_warm_chunked_calls(self):
        rng = np.random.default_rng(21)
        ref = WalkSimulator(True, 4, 32, 64)
        vec = WalkSimulator(True, 4, 32, 64)
        for chunk in range(4):
            vpns = rng.integers(0, 2**20, 600).astype(np.int64)
            huges = rng.random(600) < 0.4
            walk_scalar(ref, vpns, huges)
            vec.walk_batch(vpns, huges)
            assert walk_state(vec) == walk_state(ref), f"chunk {chunk}"

    def test_empty_batch_is_a_noop(self):
        ws = WalkSimulator(True)
        before = walk_state(ws)
        ws.walk_batch(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        assert walk_state(ws) == before


# -- End-to-end through MmuSimulator -----------------------------------------


HW_CONFIGS = [
    HardwareConfig(),
    HardwareConfig(spot_enabled=False),
    HardwareConfig(rmm_enabled=False, ds_enabled=False),
    HardwareConfig(spot_confidence=False, spot_entries=16),
    # All schemes off: the vector engine's empty-walk-consumer early
    # return must still agree on every TLB counter.
    HardwareConfig(spot_enabled=False, rmm_enabled=False, ds_enabled=False),
]


@pytest.fixture(scope="module")
def native():
    wl, r = native_state()
    return wl, r, wl.trace(20_000)


class TestMmuSimulatorWalkPath:
    @pytest.mark.parametrize("hw", HW_CONFIGS, ids=lambda h: (
        f"spot={h.spot_enabled}-rmm={h.rmm_enabled}-ds={h.ds_enabled}"
        f"-conf={h.spot_confidence}"
    ))
    def test_scheme_switches_differential(self, native, hw):
        wl, r, trace = native
        view = TranslationView.native(r.process, force_4k=True)
        results = {}
        states = {}
        for engine in ("scalar", "vector"):
            sim = MmuSimulator(view, hw, engine=engine)
            results[engine] = asdict(sim.run(trace, r.vma_start_vpns, workload=wl))
            states[engine] = (
                spot_state(sim.spot) if sim.spot else None,
                rmm_state(sim.rmm) if sim.rmm else None,
                vars(sim.ds.stats).copy() if sim.ds else None,
            )
        assert results["scalar"] == results["vector"]
        assert states["scalar"] == states["vector"]
        if not hw.spot_enabled:
            assert results["vector"]["spot_correct"] == 0
            assert results["vector"]["spot_no_prediction"] == 0

    def test_with_walk_simulator(self, native):
        wl, r, trace = native
        view = TranslationView.native(r.process, force_4k=True)
        results = {}
        wstates = {}
        for engine in ("scalar", "vector"):
            ws = WalkSimulator(virtualized=False)
            sim = MmuSimulator(view, HardwareConfig(), walk_sim=ws, engine=engine)
            results[engine] = asdict(sim.run(trace, r.vma_start_vpns, workload=wl))
            wstates[engine] = walk_state(ws)
        assert results["scalar"] == results["vector"]
        assert results["vector"]["measured_avg_walk_cycles"] is not None
        assert wstates["scalar"] == wstates["vector"]
