"""End-to-end engine differential for the MmuSimulator walk path.

The per-machine scalar-vs-batched differentials (SpOT, vRMM, DS, the
walk simulator, cTLB, Utopia, segmentation, vHC) live in the scheme
conformance battery — ``tests/hw/test_conformance.py`` over the
:mod:`tests.hw.conformance` registry.  These tests cover the layer
above: :class:`MmuSimulator` wiring every scheme machine into both
engines with a bit-identical :class:`MmuSimResult` and end state,
across the ``HardwareConfig`` switch matrix and with the mechanistic
walk simulator attached.
"""

from dataclasses import asdict

import pytest

from repro.hw.mmu_sim import MmuSimulator
from repro.hw.pwc import WalkSimulator
from repro.hw.translation import TranslationView
from repro.sim.config import HardwareConfig
from tests.hw.conformance import (
    ctlb_state,
    rmm_state,
    seg_state,
    spot_state,
    utopia_state,
    walk_state,
)
from tests.hw.test_engine_differential import native_state

HW_CONFIGS = [
    HardwareConfig(),
    HardwareConfig(spot_enabled=False),
    HardwareConfig(rmm_enabled=False, ds_enabled=False),
    HardwareConfig(spot_confidence=False, spot_entries=16),
    # Tight geometries for the related-work schemes: small span,
    # instant promotion, two segments — maximal divergence pressure.
    HardwareConfig(ctlb_entries=16, ctlb_span_pages=8,
                   utopia_restseg_pages=512, utopia_promote_after=1,
                   seg_max_segments=2),
    HardwareConfig(ctlb_enabled=False, utopia_enabled=False,
                   seg_enabled=False),
    # All schemes off: the vector engine's empty-walk-consumer early
    # return must still agree on every TLB counter.
    HardwareConfig(spot_enabled=False, rmm_enabled=False, ds_enabled=False,
                   ctlb_enabled=False, utopia_enabled=False,
                   seg_enabled=False),
]

HW_IDS = [
    "default", "no-spot", "no-rmm-ds", "small-noconf",
    "tight-new-schemes", "no-new-schemes", "all-off",
]


def sim_states(sim: MmuSimulator):
    """Every scheme machine's observable state (None when disabled)."""
    return (
        spot_state(sim.spot) if sim.spot else None,
        rmm_state(sim.rmm) if sim.rmm else None,
        vars(sim.ds.stats).copy() if sim.ds else None,
        ctlb_state(sim.ctlb) if sim.ctlb else None,
        utopia_state(sim.utopia) if sim.utopia else None,
        seg_state(sim.seg) if sim.seg else None,
    )


@pytest.fixture(scope="module")
def native():
    wl, r = native_state()
    return wl, r, wl.trace(20_000)


class TestMmuSimulatorWalkPath:
    @pytest.mark.parametrize("hw", HW_CONFIGS, ids=HW_IDS)
    def test_scheme_switches_differential(self, native, hw):
        wl, r, trace = native
        view = TranslationView.native(r.process, force_4k=True)
        results = {}
        states = {}
        for engine in ("scalar", "vector"):
            sim = MmuSimulator(view, hw, engine=engine)
            results[engine] = asdict(sim.run(trace, r.vma_start_vpns, workload=wl))
            states[engine] = sim_states(sim)
        assert results["scalar"] == results["vector"]
        assert states["scalar"] == states["vector"]
        if not hw.spot_enabled:
            assert results["vector"]["spot_correct"] == 0
            assert results["vector"]["spot_no_prediction"] == 0
        if not hw.ctlb_enabled:
            assert results["vector"]["ctlb_uncovered"] == 0
        if not hw.utopia_enabled:
            assert results["vector"]["utopia_rest"] == 0
            assert results["vector"]["utopia_flex"] == 0
        if not hw.seg_enabled:
            assert results["vector"]["seg_outside"] == 0

    def test_new_scheme_counters_cover_all_walks(self, native):
        """Defaults-on schemes partition the walk stream."""
        wl, r, trace = native
        view = TranslationView.native(r.process, force_4k=True)
        sim = MmuSimulator(view, HardwareConfig(), engine="vector")
        res = sim.run(trace, r.vma_start_vpns, workload=wl)
        assert res.utopia_rest + res.utopia_flex == res.walks
        assert sim.ctlb.stats.total == res.walks
        assert sim.seg.stats.total == res.walks
        assert 0 <= res.ctlb_uncovered <= res.walks
        assert 0 <= res.seg_outside <= res.walks

    def test_with_walk_simulator(self, native):
        wl, r, trace = native
        view = TranslationView.native(r.process, force_4k=True)
        results = {}
        wstates = {}
        for engine in ("scalar", "vector"):
            ws = WalkSimulator(virtualized=False)
            sim = MmuSimulator(view, HardwareConfig(), walk_sim=ws, engine=engine)
            results[engine] = asdict(sim.run(trace, r.vma_start_vpns, workload=wl))
            wstates[engine] = walk_state(ws)
        assert results["scalar"] == results["vector"]
        assert results["vector"]["measured_avg_walk_cycles"] is not None
        assert wstates["scalar"] == wstates["vector"]
