"""Property-based tests of SpOT's confidence automaton.

A reference model of the per-entry state machine (§IV-C) is driven with
random miss sequences alongside the real predictor; outcomes must agree
exactly.  Separately, invariants: outcomes partition all misses, the
table never exceeds capacity, and the filter keeps non-contiguous
translations out.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.spot import CONF_FEED, CONF_MAX, SpotPredictor


class ModelEntry:
    def __init__(self, offset):
        self.offset = offset
        self.conf = 1


def model_step(entry, actual_offset, contig):
    """Reference transition: returns (outcome, entry_or_none)."""
    if entry is None:
        if contig:
            return "no_prediction", ModelEntry(actual_offset)
        return "no_prediction", None
    fed = entry.conf >= CONF_FEED
    match = entry.offset == actual_offset
    if match:
        entry.conf = min(CONF_MAX, entry.conf + 1)
    else:
        entry.conf -= 1
        if entry.conf <= 0:
            entry.offset = actual_offset
            entry.conf = 1
    if fed and match:
        return "correct", entry
    if fed:
        return "mispredict", entry
    return "no_prediction", entry


@st.composite
def miss_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    return [
        (
            draw(st.integers(min_value=0, max_value=3)),  # offset choice
            draw(st.booleans()),  # contiguity bit
        )
        for _ in range(n)
    ]


@settings(max_examples=100, deadline=None)
@given(seq=miss_sequences())
def test_single_pc_matches_reference_model(seq):
    spot = SpotPredictor(entries=4, ways=4)
    entry = None
    pc = 0x1234
    for i, (offset_choice, contig) in enumerate(seq):
        vpn = 1000 + i
        offset = offset_choice * 100 + 7
        outcome = spot.on_walk_complete(pc, vpn, vpn - offset, contig)
        expected, entry = model_step(entry, offset, contig)
        assert outcome == expected, f"step {i}: {outcome} != {expected}"


@settings(max_examples=60, deadline=None)
@given(
    seq=miss_sequences(),
    n_pcs=st.integers(min_value=1, max_value=12),
)
def test_outcomes_partition_and_capacity(seq, n_pcs):
    spot = SpotPredictor(entries=8, ways=2)
    for i, (offset_choice, contig) in enumerate(seq):
        pc = (i * 7919) % n_pcs  # spread misses over PCs
        vpn = 5000 + i
        spot.on_walk_complete(pc, vpn, vpn - offset_choice, contig)
        assert spot.occupancy <= 8
    stats = spot.stats
    assert stats.correct + stats.mispredict + stats.no_prediction == len(seq)


@settings(max_examples=40, deadline=None)
@given(seq=miss_sequences())
def test_filter_blocks_all_fills_without_contig(seq):
    spot = SpotPredictor()
    for i, (offset_choice, _) in enumerate(seq):
        vpn = 100 + i
        spot.on_walk_complete(i % 5, vpn, vpn - offset_choice, False)
    assert spot.occupancy == 0
    assert spot.stats.correct == 0 and spot.stats.mispredict == 0
