"""Profiler rate derivation and the fixed-bucket histogram."""

import math

import pytest

from repro.metrics.profiling import Histogram, Profiler, Timer


class TestProfilerRates:
    def test_rate_from_time_and_events(self):
        p = Profiler()
        p.add("walk", 2.0, events=10)
        assert p.rate("walk") == 5.0

    def test_zero_duration_section_is_finite(self):
        # Warm-cache serve sections can finish inside one perf_counter
        # tick: events recorded, zero seconds.  Must not raise or go inf.
        p = Profiler()
        p.add("warm", 0.0)
        p.count("warm", 1000)
        assert p.rate("warm") == 0.0
        assert math.isfinite(p.rate("warm"))

    def test_count_only_section_appears_in_summary(self):
        p = Profiler()
        p.add("timed", 1.0, events=2)
        p.count("untimed", 7)
        out = p.as_dict()
        assert out["untimed"] == {
            "seconds": 0.0, "events": 7, "per_second": 0.0,
        }
        assert out["timed"]["per_second"] == 2.0

    def test_unknown_section_rates_zero(self):
        assert Profiler().rate("nope") == 0.0

    def test_timer_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.seconds >= 0.0


class TestHistogram:
    def test_observations_bucketed_cumulatively(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.cumulative() == [
            (1.0, 1), (2.0, 2), (4.0, 3), (math.inf, 4),
        ]

    def test_quantiles_interpolate(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)
        assert 0.0 < h.quantile(0.5) <= 1.0
        assert h.quantile(0.0) == 0.0 if h.count == 0 else True

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0
        assert Histogram().mean() == 0.0

    def test_overflow_saturates_to_last_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0  # finite, never inf

    def test_negative_clamps_to_zero(self):
        h = Histogram(buckets=(1.0,))
        h.observe(-3.0)
        assert h.total == 0.0
        assert h.count == 1

    def test_as_dict_shape(self):
        h = Histogram()
        h.observe(0.01)
        d = h.as_dict()
        assert d["count"] == 1
        assert set(d) == {"count", "sum", "mean", "p50", "p95", "p99"}

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
