"""Unit tests for the metric helpers (contiguity, perf model, USL)."""

import pytest

from repro.metrics.contiguity import (
    ContiguitySample,
    average_samples,
    coverage_of_k_largest,
    geomean,
    mappings_for_coverage,
    sample_contiguity,
)
from repro.metrics.faults import percentile
from repro.metrics.perf_model import PerfModel, WalkCosts
from repro.metrics.usl import estimate_usl
from repro.vm.mapping_runs import MappingRuns


class TestCoverage:
    def test_k_largest_coverage(self):
        sizes = [500, 300, 100, 50, 50]
        assert coverage_of_k_largest(sizes, 1000, 2) == 0.8
        assert coverage_of_k_largest(sizes, 1000, 100) == 1.0

    def test_coverage_capped_at_one(self):
        assert coverage_of_k_largest([2000], 1000, 1) == 1.0

    def test_empty_footprint(self):
        assert coverage_of_k_largest([10], 0, 1) == 0.0
        assert mappings_for_coverage([10], 0) == 0

    def test_mappings_for_coverage(self):
        sizes = [500, 300, 100, 50, 50]
        assert mappings_for_coverage(sizes, 1000, 0.5) == 1
        assert mappings_for_coverage(sizes, 1000, 0.8) == 2
        assert mappings_for_coverage(sizes, 1000, 0.99) == 5

    def test_unreachable_coverage_visible(self):
        # Runs cover only half the footprint: one past the run count.
        assert mappings_for_coverage([500], 1000, 0.99) == 2

    def test_accepts_mapping_runs(self):
        runs = MappingRuns()
        runs.add(0, 0, n_pages=90)
        runs.add(1000, 500, n_pages=10)
        assert mappings_for_coverage(runs, 100, 0.89) == 1
        assert coverage_of_k_largest(runs, 100, 1) == 0.9

    def test_sample_and_average(self):
        runs = MappingRuns()
        runs.add(0, 0, n_pages=100)
        s1 = sample_contiguity(runs, 100, touched_pages=50)
        assert s1.coverage_32 == 1.0 and s1.mappings_99 == 1
        s2 = ContiguitySample(100, 100, 0.5, 0.6, 3, 4)
        avg = average_samples([s1, s2])
        assert avg.coverage_32 == pytest.approx(0.75)
        assert avg.mappings_99 == 2

    def test_average_of_nothing(self):
        assert average_samples([]).footprint_pages == 0

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 1.0]) < 1e-3  # floored, not crashing


class TestPercentile:
    def test_p99_of_uniform(self):
        values = list(range(1, 101))
        assert percentile(values, 99.0) == 99

    def test_empty(self):
        assert percentile([], 99.0) == 0.0

    def test_bad_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150.0)

    def test_p0_and_p100(self):
        assert percentile([5.0, 1.0, 3.0], 100.0) == 5.0
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0


class TestPerfModel:
    def test_table_iv_paging(self):
        model = PerfModel(t_ideal_cycles=1_000_000)
        over = model.paging_overhead(1000, virtualized=True, huge=True)
        assert over == pytest.approx(1000 * 81.0 / 1e6)

    def test_spot_overhead_components(self):
        model = PerfModel(t_ideal_cycles=1_000_000)
        base = model.spot_overhead(no_predictions=100, mispredictions=0)
        with_flush = model.spot_overhead(no_predictions=0, mispredictions=100)
        # Mispredictions cost the walk plus the 20-cycle flush.
        assert with_flush > base
        assert with_flush == pytest.approx(100 * (81.0 + 20.0) / 1e6)

    def test_perfect_spot_is_free(self):
        model = PerfModel(t_ideal_cycles=1_000_000)
        assert model.spot_overhead(0, 0) == 0.0

    def test_ds_uses_4k_cost(self):
        model = PerfModel(t_ideal_cycles=1_000_000)
        assert model.ds_overhead(10) == pytest.approx(10 * 120.0 / 1e6)

    def test_bad_ideal_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(t_ideal_cycles=0).paging_overhead(1, True, True)

    def test_walk_cost_selection(self):
        costs = WalkCosts()
        assert costs.walk_cost(True, True) == costs.nested_thp
        assert costs.walk_cost(False, False) == costs.native_4k


class TestUsl:
    def test_table_vii_equations(self):
        est = estimate_usl(
            instructions=1_000_000,
            branches=58_700,
            dtlb_misses=2_500,
            loads=250_000,
            cycles=1_200_000,
            walk_cycles=81.0,
        )
        loads_per_cycle = 250_000 / 1_200_000
        assert est.spectre_usl_per_instruction == pytest.approx(
            58_700 * 20.0 * loads_per_cycle / 1_000_000
        )
        assert est.spot_usl_per_instruction == pytest.approx(
            2_500 * 81.0 * loads_per_cycle / 1_000_000
        )

    def test_spot_usl_below_spectre_in_paper_regime(self):
        # Paper Table VII regime: branches ~5.9%/ins, misses ~0.25%/ins.
        est = estimate_usl(
            instructions=10**6,
            branches=58_700,
            dtlb_misses=2_500,
            loads=250_000,
            cycles=1_250_000,
        )
        assert est.spot_usl_per_instruction < est.spectre_usl_per_instruction

    def test_percent_rendering(self):
        est = estimate_usl(10**6, 10_000, 100, 250_000, 10**6)
        pct = est.as_percentages()
        assert pct["branches/instructions(%)"] == pytest.approx(1.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimate_usl(0, 1, 1, 1, 1)
