"""FaultPlan / FaultInjector unit tests: parsing, hashing, the trace."""

import pytest

from repro.chaos import SITES, FaultInjector, FaultPlan
from repro.chaos.faults import _hash01
from repro.errors import ConfigError


class TestFaultPlan:
    def test_uniform_covers_all_sites(self):
        plan = FaultPlan.uniform(0.25, seed=7)
        assert plan.seed == 7
        assert {site for site, _ in plan.probabilities} == set(SITES)
        assert all(p == 0.25 for _, p in plan.probabilities)
        assert plan.p("cache.read") == 0.25

    def test_unlisted_site_has_zero_probability(self):
        plan = FaultPlan((("cache.read", 0.5),))
        assert plan.p("cache.read") == 0.5
        assert plan.p("pool.worker") == 0.0

    def test_parse_bare_probability(self):
        plan = FaultPlan.parse("0.2", seed=3)
        assert plan.seed == 3
        assert plan.p("serve.body") == 0.2

    def test_parse_site_list(self):
        plan = FaultPlan.parse("cache.read=0.1,pool.worker=0.3")
        assert plan.p("cache.read") == 0.1
        assert plan.p("pool.worker") == 0.3
        assert plan.p("cache.write") == 0.0

    @pytest.mark.parametrize("spec", ["", "not-a-number", "cache.read",
                                      "cache.read=oops"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultPlan((("disk.melt", 0.5),))

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_out_of_range_probability_rejected(self, p):
        with pytest.raises(ConfigError, match="must be in"):
            FaultPlan((("cache.read", p),))

    def test_as_dict_round_trips_the_spec(self):
        plan = FaultPlan.parse("cache.read=0.1,clock=1.0", seed=11)
        assert plan.as_dict() == {
            "seed": 11,
            "probabilities": {"cache.read": 0.1, "clock": 1.0},
        }


class TestHashDecisions:
    def test_hash01_is_uniform_enough(self):
        values = [_hash01(0, "cache.read", f"tok{i}") for i in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # A seeded hash over distinct tokens should land near p for
        # any threshold; 2000 draws keeps this far from flaky.
        hits = sum(1 for v in values if v < 0.3)
        assert 450 < hits < 750

    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultPlan.uniform(0.4, seed=5))
        b = FaultInjector(FaultPlan.uniform(0.4, seed=5))
        tokens = [f"cell{i}" for i in range(100)]
        for site in SITES:
            assert [a.decide(site, t) for t in tokens] == \
                   [b.decide(site, t) for t in tokens]

    def test_different_seed_differs(self):
        a = FaultInjector(FaultPlan.uniform(0.4, seed=0))
        b = FaultInjector(FaultPlan.uniform(0.4, seed=1))
        tokens = [f"cell{i}" for i in range(200)]
        assert [a.decide("cache.read", t) for t in tokens] != \
               [b.decide("cache.read", t) for t in tokens]

    def test_decision_independent_of_evaluation_order(self):
        # The hash decision for (site, token) must not depend on what
        # was evaluated before it — this is what makes traces stable
        # under pool-harvest reordering.
        plan = FaultPlan.uniform(0.5, seed=9)
        forward = FaultInjector(plan)
        backward = FaultInjector(plan)
        tokens = [f"t{i}" for i in range(50)]
        fwd = {t: forward.decide("pool.worker", t) for t in tokens}
        bwd = {t: backward.decide("pool.worker", t)
               for t in reversed(tokens)}
        assert fwd == bwd

    def test_zero_probability_never_fires(self):
        inj = FaultInjector(FaultPlan.uniform(0.0))
        assert not any(inj.decide(s, f"t{i}")
                       for s in SITES for i in range(50))

    def test_unit_probability_always_fires(self):
        inj = FaultInjector(FaultPlan.uniform(1.0))
        assert all(inj.decide(s, f"t{i}") for s in SITES for i in range(50))


class TestTrace:
    def test_fire_records_and_decide_does_not(self):
        inj = FaultInjector(FaultPlan.uniform(1.0))
        assert inj.decide("cache.read", "k") is True
        assert inj.records == []
        record = inj.fire("cache.read", "k")
        assert record is not None
        assert (record.site, record.token, record.recovered) == \
               ("cache.read", "k", None)
        assert len(inj.records) == 1

    def test_miss_returns_none(self):
        inj = FaultInjector(FaultPlan.uniform(0.0))
        assert inj.fire("cache.read", "k") is None
        assert inj.records == []

    def test_recover_and_unrecovered(self):
        inj = FaultInjector(FaultPlan.uniform(1.0))
        a = inj.fire("cache.read", "k1")
        b = inj.fire("pool.worker", "k2#a0")
        inj.recover(a, "quarantined")
        assert [r.token for r in inj.unrecovered()] == ["k2#a0"]
        inj.recover(b, "retry_1")
        assert inj.unrecovered() == []
        assert inj.recovered_by_site() == {"cache.read": 1, "pool.worker": 1}

    def test_fired_by_site_counts(self):
        inj = FaultInjector(FaultPlan.uniform(1.0))
        inj.fire("cache.read", "a")
        inj.fire("cache.read", "b")
        inj.fire("clock", "c")
        assert inj.fired_by_site() == {"cache.read": 2, "clock": 1}

    def test_trace_is_canonically_sorted(self):
        inj = FaultInjector(FaultPlan.uniform(1.0))
        inj.fire("pool.worker", "z")
        inj.fire("cache.read", "b")
        inj.fire("cache.read", "a")
        trace = inj.trace()
        assert [(r["site"], r["token"]) for r in trace] == [
            ("cache.read", "a"), ("cache.read", "b"), ("pool.worker", "z"),
        ]
        # seq still records actual firing order.
        assert sorted(r["seq"] for r in trace) == [0, 1, 2]
