"""Clock / FakeClock tests: advancing fake time drives every waiter."""

import asyncio

import pytest

from repro.chaos import CLOCK, Clock, FakeClock


class TestRealClock:
    def test_monotonic_advances(self):
        clock = Clock()
        a = clock.monotonic()
        clock.sleep_sync(0.001)
        assert clock.monotonic() > a

    def test_default_instance_is_a_clock(self):
        assert isinstance(CLOCK, Clock)
        assert not isinstance(CLOCK, FakeClock)

    def test_wait_for_passes_result_through(self):
        async def main():
            async def value():
                return 42

            return await Clock().wait_for(value(), timeout=5)

        assert asyncio.run(main()) == 42


class TestFakeClock:
    def test_starts_at_start_and_advances(self):
        fake = FakeClock(start=100.0)
        assert fake.monotonic() == 100.0
        assert fake.wall() == 100.0
        fake.advance(2.5)
        assert fake.monotonic() == 102.5

    def test_sleep_sync_jumps_time_without_blocking(self):
        fake = FakeClock()
        before = fake.monotonic()
        fake.sleep_sync(3600.0)  # returns immediately
        assert fake.monotonic() == before + 3600.0

    def test_sleep_wakes_on_advance(self):
        async def main():
            fake = FakeClock()
            woke = []

            async def sleeper():
                await fake.sleep(5.0)
                woke.append(fake.monotonic())

            task = asyncio.create_task(sleeper())
            await asyncio.sleep(0)
            assert fake.pending == 1
            fake.advance(4.0)
            await asyncio.sleep(0)
            assert not woke  # deadline not reached yet
            fake.advance(2.0)
            await asyncio.wait_for(task, timeout=5)
            assert woke == [1006.0]
            assert fake.pending == 0

        asyncio.run(main())

    def test_sleep_zero_does_not_park(self):
        async def main():
            fake = FakeClock()
            await fake.sleep(0)  # must complete without advance()

        asyncio.run(main())

    def test_wait_for_returns_result_before_deadline(self):
        async def main():
            fake = FakeClock()

            async def quick():
                return "done"

            result = await fake.wait_for(quick(), timeout=10.0)
            assert result == "done"
            assert fake.pending == 0  # timer cleaned up

        asyncio.run(main())

    def test_wait_for_times_out_on_advance(self):
        async def main():
            fake = FakeClock()
            never = asyncio.get_running_loop().create_future()

            async def waiter():
                await fake.wait_for(never, timeout=30.0)

            task = asyncio.create_task(waiter())
            await asyncio.sleep(0)
            assert fake.pending == 1
            fake.advance(31.0)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(task, timeout=5)
            assert never.cancelled()  # the guarded awaitable is cancelled

        asyncio.run(main())
