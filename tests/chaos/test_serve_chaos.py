"""Serve-layer fault injection over real sockets: dropped accepts,
stalled bodies, and the chaos counters surfaced on ``/metrics``.
"""

import asyncio

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.serve.client import ServeError
from tests.serve.test_server import run


def _seed_where(site, p, fired, clean, limit=1000):
    """A seed whose hash decisions fire exactly on ``fired`` tokens.

    Searching is deterministic — the decisions are pure functions of
    the seed — so the test pins real behaviour, not luck.
    """
    for seed in range(limit):
        injector = FaultInjector(FaultPlan(((site, p),), seed=seed))
        if all(injector.decide(site, t) for t in fired) and \
                not any(injector.decide(site, t) for t in clean):
            return seed
    raise AssertionError(f"no seed under {limit} fires exactly {fired}")


class TestAcceptFaults:
    def test_dropped_connection_is_retried_to_success(self):
        # conn0 (the first request) is dropped; conn1 (the retry) and
        # conn2 (the metrics scrape) get through.
        seed = _seed_where("serve.accept", 0.5,
                           fired=["conn0"],
                           clean=["conn1", "conn2", "conn3"])
        injector = FaultInjector(
            FaultPlan((("serve.accept", 0.5),), seed=seed)
        )

        async def body(server, client):
            resp = await asyncio.to_thread(
                client.run_with_retries, "toy", "quick", {"xs": [4]}
            )
            assert resp.status == 200
            assert resp.json["results"]["toy"]["values"] == [16]
            [record] = injector.records
            assert record.site == "serve.accept"
            assert record.token == "conn0"
            assert record.recovered == "dropped_for_retry"
            metrics = await asyncio.to_thread(client.metrics_text)
            assert "repro_connections_dropped_total 1" in metrics
            assert ('repro_chaos_faults_total{site="serve.accept"} 1'
                    in metrics)
            assert ('repro_chaos_recovered_total{site="serve.accept"} 1'
                    in metrics)

        run(body, injector=injector)


class TestBodyFaults:
    def test_stalled_body_answers_408_and_retries_give_up_cleanly(self):
        injector = FaultInjector(FaultPlan((("serve.body", 1.0),)))

        async def body(server, client):
            resp = await asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [2]}
            )
            assert resp.status == 408
            assert "timed out" in resp.json["error"]
            # A bounded retrier gets a definite error, never a hang.
            with pytest.raises(ServeError, match="gave up after 2"):
                await asyncio.to_thread(
                    lambda: client.run_with_retries(
                        "toy", attempts=2, backoff=0.001
                    )
                )
            # GETs carry no body, so the fault site stays clear and the
            # server keeps answering health and metrics.
            health = await asyncio.to_thread(client.healthz)
            assert health["status"] == "ok"
            metrics = await asyncio.to_thread(client.metrics_text)
            assert 'repro_responses_total{code="408"} 3' in metrics
            assert ('repro_chaos_faults_total{site="serve.body"} 3'
                    in metrics)
            assert all(r.recovered == "timeout_408"
                       for r in injector.records)

        run(body, injector=injector)


class TestChaosMetricsSurface:
    def test_hardening_gauges_render_without_an_injector(self):
        async def body(server, client):
            metrics = await asyncio.to_thread(client.metrics_text)
            assert "repro_cells_worker_crashes 0" in metrics
            assert "repro_cells_cell_retries 0" in metrics
            assert "repro_cache_corrupt_evictions 0" in metrics
            assert "repro_cache_write_failures 0" in metrics
            # No injector: the chaos counters are absent entirely.
            assert "repro_chaos_faults_total" not in metrics

        run(body)
