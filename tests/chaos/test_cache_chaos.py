"""RunCache hardening: corrupt entries become quarantined misses.

The first class is the satellite regression for real on-disk damage
(garbage bytes, truncation, unreadable entries); the second drives the
same machinery through injected ``cache.read``/``cache.write`` faults
and checks results stay correct; the third flips bytes *inside* framed
RPT1 blobs — the transport's CRC/digest coverage must turn every flip
into the same quarantine path raw-pickle garbage takes.
"""

import pickle

import numpy as np

from repro.chaos import FaultInjector, FaultPlan
from repro.sim import transport
from repro.sim.cache import MISS, RunCache
from repro.sim.jobs import Executor, cell

DOUBLE = "tests.chaos.test_cache_chaos:_double"


def _double(*, x):
    return x * 2


def make_cache(tmp_path, **kwargs):
    return RunCache(tmp_path / "cache", salt="s1", **kwargs)


class TestCorruptEntries:
    def test_garbage_bytes_become_a_quarantined_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}

        cache.path_for(key).write_bytes(b"\x00garbage not a pickle\xff")
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1
        # The entry is gone from the serving path but parked for autopsy.
        assert not cache.path_for(key).exists()
        assert cache.quarantine_path_for(key).exists()
        # Once quarantined it is a plain miss, not another eviction.
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1
        assert cache.stats()["corrupt_evictions"] == 1
        assert cache.stats()["quarantined"] == 1

    def test_truncated_pickle_is_quarantined(self, tmp_path):
        cache = make_cache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, list(range(100)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1
        assert cache.quarantine_path_for(key).exists()

    def test_entry_that_unpickles_to_an_error_is_quarantined(self, tmp_path):
        # Valid pickle stream, but loading raises (here: a stream that
        # ends with an opcode needing more data).
        cache = make_cache(tmp_path)
        key = "ef" + "0" * 62
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_bytes(pickle.dumps([1, 2, 3])[:-1])
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1

    def test_unreadable_entry_is_quarantined(self, tmp_path):
        # A directory where the entry file should be: open() raises
        # IsADirectoryError (OSError), the non-FileNotFoundError branch.
        cache = make_cache(tmp_path)
        key = "12" + "0" * 62
        cache.path_for(key).mkdir(parents=True)
        assert cache.get(key) is MISS
        assert cache.corrupt_evictions == 1

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get("34" + "0" * 62) is MISS
        assert cache.misses == 1
        assert cache.corrupt_evictions == 0

    def test_put_survives_unwritable_root(self, tmp_path):
        blocker = tmp_path / "cache"
        blocker.write_text("a file where the cache dir should be")
        cache = RunCache(blocker, salt="s1")
        cache.put("ab" + "0" * 62, {"x": 1})  # must not raise
        assert cache.write_failures == 1
        assert cache.stores == 0


class TestInjectedCacheFaults:
    def test_read_faults_quarantine_and_recompute(self, tmp_path):
        warm = make_cache(tmp_path)
        Executor(cache=warm).run([cell(DOUBLE, x=x) for x in range(4)])
        assert warm.stores == 4

        injector = FaultInjector(FaultPlan((("cache.read", 1.0),)))
        cache = make_cache(tmp_path, injector=injector)
        executor = Executor(cache=cache, injector=injector)
        results = executor.run([cell(DOUBLE, x=x) for x in range(4)])
        assert results == [0, 2, 4, 6]  # corruption never reaches callers
        assert cache.corrupt_evictions == 4
        assert executor.stats.computed == 4
        assert injector.fired_by_site() == {"cache.read": 4}
        assert {r.recovered for r in injector.records} == {"quarantined"}

    def test_read_fault_on_absent_entry_is_already_a_miss(self, tmp_path):
        injector = FaultInjector(FaultPlan((("cache.read", 1.0),)))
        cache = make_cache(tmp_path, injector=injector)
        assert cache.get("ab" + "0" * 62) is MISS
        [record] = injector.records
        assert record.recovered == "already_miss"
        assert cache.corrupt_evictions == 0

    def test_write_faults_drop_stores_but_not_results(self, tmp_path):
        injector = FaultInjector(FaultPlan((("cache.write", 1.0),)))
        cache = make_cache(tmp_path, injector=injector)
        executor = Executor(cache=cache, injector=injector)
        results = executor.run([cell(DOUBLE, x=x) for x in range(3)])
        assert results == [0, 2, 4]
        assert cache.stores == 0
        assert cache.write_failures == 3
        assert {r.recovered for r in injector.records} == {"dropped_write"}
        # Nothing was cached, so a clean re-run recomputes everything.
        clean = make_cache(tmp_path)
        clean_exec = Executor(cache=clean)
        assert clean_exec.run([cell(DOUBLE, x=0)]) == [0]
        assert clean_exec.stats.cache_hits == 0

    def test_same_seed_faults_the_same_keys(self, tmp_path):
        plan = FaultPlan((("cache.read", 0.5),), seed=13)
        traces = []
        for run in ("a", "b"):
            warm = make_cache(tmp_path / run)
            Executor(cache=warm).run([cell(DOUBLE, x=x) for x in range(8)])
            injector = FaultInjector(plan)
            cache = make_cache(tmp_path / run, injector=injector)
            assert Executor(cache=cache, injector=injector).run(
                [cell(DOUBLE, x=x) for x in range(8)]
            ) == [x * 2 for x in range(8)]
            traces.append(sorted((r.site, r.token, r.recovered)
                                 for r in injector.records))
        assert traces[0] == traces[1]
        assert traces[0]  # the 0.5 plan fired at least once over 8 keys


NP_CELL = "tests.chaos.test_cache_chaos:_np_result"


def _np_result(*, n):
    return {
        "col": np.repeat(np.arange(n, dtype=np.uint64), 4096),
        "meta": n,
    }


class TestFramedBlobCorruption:
    """Satellite: zlib/frame corruption quarantines like unpickling."""

    KEY = "ab" + "0" * 62

    def _warm(self, tmp_path):
        cache = make_cache(tmp_path)
        value = _np_result(n=16)
        cache.put(self.KEY, value)
        blob = cache.path_for(self.KEY).read_bytes()
        assert transport.is_framed(blob)
        return cache, value, blob

    def test_byte_flips_anywhere_in_a_framed_entry_quarantine(
        self, tmp_path
    ):
        cache, value, blob = self._warm(tmp_path)
        rng = np.random.default_rng(42)
        positions = sorted(
            {0, 5, 47, 48, 60, len(blob) - 1}
            | set(rng.integers(0, len(blob), 24).tolist())
        )
        for i, pos in enumerate(positions, start=1):
            bad = bytearray(blob)
            bad[pos] ^= 0xFF
            cache.path_for(self.KEY).parent.mkdir(
                parents=True, exist_ok=True
            )
            cache.path_for(self.KEY).write_bytes(bytes(bad))
            cache.quarantine_path_for(self.KEY).unlink(missing_ok=True)
            assert cache.get(self.KEY) is MISS, f"flip at byte {pos}"
            assert cache.corrupt_evictions == i, f"flip at byte {pos}"
            assert cache.quarantine_path_for(self.KEY).exists()

    def test_pristine_framed_entry_still_round_trips(self, tmp_path):
        cache, value, blob = self._warm(tmp_path)
        out = cache.get(self.KEY)
        assert out["meta"] == value["meta"]
        assert np.array_equal(out["col"], value["col"])

    def test_injected_read_fault_differential_with_numpy_cells(
        self, tmp_path
    ):
        """The cache.read fault site flips a byte inside framed entries;
        the run must still produce results identical to a clean pass."""
        cells = [cell(NP_CELL, n=n) for n in (2, 3)]
        clean = Executor().run(cells)

        warm = make_cache(tmp_path)
        Executor(cache=warm).run(cells)
        injector = FaultInjector(FaultPlan((("cache.read", 1.0),)))
        cache = make_cache(tmp_path, injector=injector)
        executor = Executor(cache=cache, injector=injector)
        chaotic = executor.run(cells)
        assert cache.corrupt_evictions == len(cells)
        assert {r.recovered for r in injector.records} == {"quarantined"}
        assert executor.stats.computed == len(cells)
        for a, b in zip(clean, chaotic):
            assert a["meta"] == b["meta"]
            assert np.array_equal(a["col"], b["col"])

    def test_legacy_raw_pickle_entries_still_load(self, tmp_path):
        cache = make_cache(tmp_path)
        value = {"legacy": list(range(32))}
        cache.write_blob(
            self.KEY,
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )
        assert cache.get(self.KEY) == value
        assert cache.corrupt_evictions == 0
        stats = cache.stats()
        assert stats["raw_entries"] == 1
        assert stats["framed_entries"] == 0
