"""Differential chaos: faults may cost retries, never change bytes.

Runs the same cell grid clean and under ``FaultPlan.uniform(0.2)``
across several seeds, through one shared cache directory, and asserts
the canonical JSON of the results is byte-identical every time, with
zero unhandled exceptions and every fired fault recovered.
"""

import json

from repro.chaos import FaultInjector, FaultPlan
from repro.sim.cache import RunCache
from repro.sim.jobs import Executor, Plan, cell, run_plans

MIX = "tests.chaos.test_differential:_mix"

#: Sites a single-process executor grid actually passes through.
GRID_SITES = ("cache.read", "cache.write", "pool.submit", "pool.worker",
              "clock")


def _mix(*, a, b):
    # Non-trivial but pure: floats exercise exact byte comparison.
    return {"sum": a + b, "ratio": a / b, "tag": f"{a}/{b}"}


def grid_plans():
    return [
        Plan([cell(MIX, a=a, b=b) for b in (2, 3, 5)],
             assemble=lambda rs: list(rs))
        for a in (1, 4, 9, 16)
    ]


def canonical(results) -> bytes:
    return json.dumps(results, sort_keys=True,
                      separators=(",", ":")).encode()


def run_grid(cache_dir, injector=None, jobs=1):
    cache = RunCache(cache_dir, salt="diff", injector=injector)
    executor = Executor(jobs=jobs, cache=cache, injector=injector,
                        max_attempts=8, backoff_base=0.001)
    return canonical(run_plans(grid_plans(), executor))


class TestDifferentialChaos:
    def test_chaos_results_are_byte_identical_to_clean(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = run_grid(cache_dir)          # cold: populates the cache
        assert run_grid(cache_dir) == clean  # warm clean

        total_fired = 0
        for seed in (0, 1, 2):
            injector = FaultInjector(
                FaultPlan.uniform(0.2, seed=seed, sites=GRID_SITES)
            )
            assert run_grid(cache_dir, injector) == clean, f"seed {seed}"
            assert injector.unrecovered() == [], f"seed {seed}"
            total_fired += len(injector.records)
            # Repair dropped writes so every seed starts warm.
            run_grid(cache_dir)
        # 0.2 across five sites and 12 cells: some seed must fire.
        assert total_fired > 0

    def test_chaos_through_the_pool_is_still_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = run_grid(cache_dir)
        injector = FaultInjector(
            FaultPlan.uniform(0.2, seed=3, sites=GRID_SITES)
        )
        assert run_grid(cache_dir, injector, jobs=2) == clean
        assert injector.unrecovered() == []

    def test_same_seed_same_trace_different_seed_different_faults(
            self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_grid(cache_dir)

        def trace_for(seed):
            injector = FaultInjector(
                FaultPlan.uniform(0.2, seed=seed, sites=GRID_SITES)
            )
            run_grid(cache_dir, injector)
            run_grid(cache_dir)  # repair
            return sorted((r.site, r.token, r.recovered)
                          for r in injector.records)

        seeds = {seed: trace_for(seed) for seed in (7, 8)}
        assert trace_for(7) == seeds[7]          # reproducible
        assert seeds[7] != seeds[8]              # seed actually matters
