"""Chaos suite: fault plans, injected failures, determinism-under-fault."""
