"""Property-based fuzzing of the HTTP front end.

Contract under test: whatever bytes arrive, ``_read_request`` either
returns a parsed request, raises ``_HttpError`` (with a 400/413 the
handler turns into a response), or raises ``IncompleteReadError`` /
``TimeoutError`` (client gone / stalled).  Nothing else — no hangs, no
unhandled exceptions — and a live server survives a barrage of
malformed connections with ``/healthz`` still answering afterwards.
"""

import asyncio
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.server import (
    MAX_HEADER_LINE,
    ReproServer,
    _HttpError,
)

#: The only ways _read_request may end, besides returning a request.
ALLOWED_ERRORS = (_HttpError, asyncio.IncompleteReadError,
                  asyncio.TimeoutError)


def parse(raw: bytes) -> str:
    """Feed ``raw`` to the parser; classify the outcome (or re-raise)."""

    async def main():
        server = ReproServer(port=0, read_timeout=5.0)
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        try:
            method, target, headers, body = await asyncio.wait_for(
                server._read_request(reader), timeout=10
            )
        except _HttpError as exc:
            assert exc.status in (400, 413), exc.status
            return f"http_{exc.status}"
        except (asyncio.IncompleteReadError, ConnectionError):
            return "disconnect"
        assert isinstance(method, str) and isinstance(target, str)
        assert isinstance(headers, dict) and isinstance(body, bytes)
        return "request"

    return asyncio.run(main())


# -- strategies -------------------------------------------------------

header_name = st.text(
    st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=":"),
    min_size=1, max_size=16,
)
header_value = st.text(
    st.characters(min_codepoint=32, max_codepoint=126), max_size=32
)


@st.composite
def structured_requests(draw):
    """Almost-valid requests: plausible shape, hostile details."""
    method = draw(st.sampled_from(["GET", "POST", "G E T", "", "\x00"]))
    target = draw(st.one_of(
        st.just("/v1/run"),
        st.text(st.characters(min_codepoint=33, max_codepoint=126),
                max_size=64),
        st.just("/" + "a" * 4096),  # over MAX_TARGET
    ))
    version = draw(st.sampled_from(
        ["HTTP/1.1", "HTTP/1.0", "HTTP/9.9", "FTP/1.0", ""]
    ))
    headers = draw(st.lists(st.tuples(header_name, header_value),
                            max_size=6))
    body = draw(st.binary(max_size=64))
    length = draw(st.one_of(
        st.none(),
        st.just(len(body)),             # honest
        st.integers(-5, 200),           # lying
        st.just(10**9),                 # oversized
        st.just("banana"),              # non-numeric
    ))
    lines = [f"{method} {target} {version}".encode("latin-1", "replace")]
    for name, value in headers:
        lines.append(f"{name}: {value}".encode("latin-1", "replace"))
    if length is not None:
        lines.append(f"Content-Length: {length}".encode())
    return b"\r\n".join(lines) + b"\r\n\r\n" + body


class TestParserFuzz:
    @given(st.binary(max_size=512))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes_stay_inside_the_contract(self, raw):
        parse(raw)  # classification asserts the contract

    @given(structured_requests())
    @settings(max_examples=150, deadline=None)
    def test_structured_hostile_requests(self, raw):
        parse(raw)

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_truncated_bodies_read_as_disconnect(self, prefix):
        raw = (b"POST /v1/run HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"
               + prefix)
        assert parse(raw) == "disconnect"

    def test_known_outcomes(self):
        ok = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
        assert parse(ok) == "request"
        assert parse(b"") == "disconnect"
        assert parse(b"nonsense\r\n\r\n") == "http_400"
        assert parse(b"GET /x HTTP/1.1\r\n" +
                     b"A" * (MAX_HEADER_LINE + 1) + b"\r\n\r\n") == "http_400"
        assert parse(b"GET /" + b"a" * 3000 +
                     b" HTTP/1.1\r\n\r\n") == "http_400"
        assert parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"
                     ) == "http_400"
        assert parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
                     ) == "http_400"
        too_big = 1 << 21
        assert parse(f"POST /x HTTP/1.1\r\nContent-Length: {too_big}"
                     f"\r\n\r\n".encode()) == "http_413"
        # 64+ headers
        raw = b"GET /x HTTP/1.1\r\n" + b"".join(
            b"h%d: v\r\n" % i for i in range(70)
        ) + b"\r\n"
        assert parse(raw) == "http_400"


class TestLiveServerSurvivesAbuse:
    def test_malformed_barrage_then_healthz(self):
        async def body(server, client):
            rng = random.Random(1234)
            statuses = []
            for case in range(40):
                kind = rng.randrange(4)
                if kind == 0:    # garbage line (terminated, so the
                    # parser answers instead of waiting for more bytes)
                    payload = bytes(rng.randrange(256) for _ in range(
                        rng.randrange(1, 200)
                    )).replace(b"\n", b"") + b"\r\n"
                elif kind == 1:  # oversized declared body
                    payload = (b"POST /v1/run HTTP/1.1\r\n"
                               b"Content-Length: 99999999\r\n\r\n")
                elif kind == 2:  # truncated body, then disconnect
                    payload = (b"POST /v1/run HTTP/1.1\r\n"
                               b"Content-Length: 50\r\n\r\nshort")
                else:            # disconnect mid-request-line
                    payload = b"POST /v1/ru"
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(payload)
                await writer.drain()
                if kind in (2, 3):
                    writer.close()  # client walks away mid-request
                    await writer.wait_closed()
                    continue
                data = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                await writer.wait_closed()
                if data:
                    statuses.append(int(data.split(b" ", 2)[1]))
            assert statuses, "no connection got an answer"
            assert set(statuses) <= {400, 413}
            # The server is still healthy and still serves real work.
            health = await asyncio.to_thread(client.healthz)
            assert health["status"] == "ok"
            resp = await asyncio.to_thread(
                client.run, "toy", "quick", {"xs": [3]}
            )
            assert resp.status == 200
            assert resp.json["results"]["toy"]["values"] == [9]

        from tests.serve.test_server import run

        run(body)

    def test_stalled_body_times_out_with_408(self):
        from repro.chaos import FakeClock
        from repro.serve.server import READ_TIMEOUT
        from tests.serve.test_server import run

        async def body(server, client):
            fake = server.clock
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /v1/run HTTP/1.1\r\n"
                         b"Content-Length: 50\r\n\r\nonly-part")
            await writer.drain()
            # Wait (on real time) until the read has parked on the fake
            # clock, then jump past the deadline — no real sleeping.
            for _ in range(200):
                if fake.pending >= 1:
                    break
                await asyncio.sleep(0.01)
            assert fake.pending >= 1
            fake.advance(READ_TIMEOUT + 1)
            data = await asyncio.wait_for(reader.read(), timeout=10)
            assert data.startswith(b"HTTP/1.1 408 ")
            writer.close()
            await writer.wait_closed()

        run(body, clock=FakeClock())
