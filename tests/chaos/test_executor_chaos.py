"""Executor hardening: crashed workers and broken pools never change
results — only the stats and the fault trace.
"""

import pytest

from repro.chaos import FakeClock, FaultInjector, FaultPlan
from repro.sim.jobs import Executor, WorkerCrashLoop, cell

TRIPLE = "tests.chaos.test_executor_chaos:_triple"


def _triple(*, x):
    return x * 3


def cells(n):
    return [cell(TRIPLE, x=x) for x in range(n)]


def make(injector, **kwargs):
    kwargs.setdefault("backoff_base", 0.001)
    return Executor(injector=injector, **kwargs)


class TestWorkerCrashes:
    def test_crashes_are_retried_to_the_right_answer(self):
        injector = FaultInjector(FaultPlan((("pool.worker", 0.5),), seed=2))
        executor = make(injector, max_attempts=8)
        assert executor.run(cells(8)) == [x * 3 for x in range(8)]
        assert executor.stats.worker_crashes > 0
        assert executor.stats.cell_retries == executor.stats.worker_crashes
        assert injector.unrecovered() == []
        assert all(r.recovered.startswith("retry_")
                   for r in injector.records if r.site == "pool.worker")

    def test_exhausted_budget_raises_crash_loop(self):
        injector = FaultInjector(FaultPlan((("pool.worker", 1.0),)))
        executor = make(injector, max_attempts=3)
        with pytest.raises(WorkerCrashLoop, match="lost 3 worker"):
            executor.run(cells(1))
        assert executor.stats.worker_crashes == 3
        assert executor.stats.cell_retries == 2
        # The final, unanswered crash stays in the trace as unrecovered —
        # exactly what chaos-soak flags as a bug if it ever happens there.
        assert len(injector.unrecovered()) == 1

    def test_backoff_reads_the_injected_clock(self):
        injector = FaultInjector(FaultPlan((("pool.worker", 0.6),), seed=4))
        clock = FakeClock()
        executor = Executor(injector=injector, clock=clock,
                            max_attempts=10, backoff_base=0.5)
        assert executor.run(cells(6)) == [x * 3 for x in range(6)]
        assert executor.stats.cell_retries > 0
        # Every backoff "slept" on fake time: real wall time untouched,
        # fake time advanced by the summed exponential delays.
        assert clock.monotonic() > 1000.0

    def test_clock_faults_absorb_the_backoff_jump(self):
        injector = FaultInjector(FaultPlan(
            (("pool.worker", 0.6), ("clock", 1.0)), seed=4
        ))
        clock = FakeClock()
        executor = Executor(injector=injector, clock=clock,
                            max_attempts=10, backoff_base=0.5)
        assert executor.run(cells(6)) == [x * 3 for x in range(6)]
        jumps = [r for r in injector.records if r.site == "clock"]
        assert jumps
        assert {r.recovered for r in jumps} == {"jump_absorbed"}
        assert clock.monotonic() == 1000.0  # no backoff ever slept


class TestPoolFaults:
    def test_submit_fault_degrades_to_serial(self):
        injector = FaultInjector(FaultPlan((("pool.submit", 1.0),)))
        executor = make(injector, jobs=4)
        assert executor.run(cells(5)) == [x * 3 for x in range(5)]
        assert executor.stats.pool_failures == 1
        assert executor.stats.retried_serial == 5
        assert executor.stats.computed == 5
        [record] = injector.records
        assert (record.site, record.recovered) == ("pool.submit",
                                                   "serial_retry")

    def test_worker_faults_on_the_real_pool_path(self):
        injector = FaultInjector(FaultPlan((("pool.worker", 0.5),), seed=2))
        executor = make(injector, jobs=2, max_attempts=8)
        assert executor.run(cells(8)) == [x * 3 for x in range(8)]
        assert executor.stats.worker_crashes > 0
        assert injector.unrecovered() == []

    def test_serial_and_pool_traces_match(self):
        # Hash-based decisions: the same plan faults the same cells
        # whether the batch runs in-process or through the pool.
        plan = FaultPlan((("pool.worker", 0.5),), seed=2)
        traces = []
        for jobs in (1, 2):
            injector = FaultInjector(plan)
            executor = make(injector, jobs=jobs, max_attempts=8)
            assert executor.run(cells(8)) == [x * 3 for x in range(8)]
            traces.append(sorted((r.site, r.token, r.recovered)
                                 for r in injector.records))
        assert traces[0] == traces[1]
        assert traces[0]


class TestDisabledInjection:
    def test_none_injector_is_the_clean_path(self):
        executor = Executor()
        assert executor.run(cells(4)) == [x * 3 for x in range(4)]
        assert executor.stats.worker_crashes == 0
        assert executor.stats.cell_retries == 0
        assert executor.stats.pool_failures == 0
