"""End-to-end soak tests: a real (small) experiment grid under faults,
plus the CLI wiring of ``repro chaos-soak`` and the chaos flags.
"""

import json

import pytest

from repro.chaos.soak import QUICK_EXPERIMENTS, run_soak, write_trace
from repro.cli import build_parser, make_injector


@pytest.fixture(scope="module")
def soak_report(tmp_path_factory):
    # One real soak shared by the assertions below (four grid passes of
    # fig9 at quick scale; serve phase exercised by chaos-soak in CI).
    # The plan fires on *every* cache access — deterministic whatever
    # the cell keys hash to under this commit's code salt — and leaves
    # pool.worker alone so no retry budget can be exhausted.
    return run_soak(
        experiments=("fig9",),
        plan_spec="cache.read=1.0,cache.write=1.0", seed=1, jobs=1,
        serve=False,
        cache_dir=tmp_path_factory.mktemp("soak"),
    )


class TestRunSoak:
    def test_verdict_and_grid_identity(self, soak_report):
        assert soak_report["identical_grid"] is True
        assert soak_report["trace_deterministic"] is True
        assert soak_report["unrecovered"] == {}
        assert soak_report["ok"] is True

    def test_faults_actually_fired_and_were_recovered(self, soak_report):
        assert soak_report["total_faults_fired"] > 0
        fired = soak_report["faults_fired"]
        assert set(fired) == {"grid_a", "grid_b"}
        # Same plan + seed + warm state: both chaos passes fire alike.
        assert fired["grid_a"] == fired["grid_b"]
        assert fired["grid_a"]["cache.read"] >= 1
        assert fired["grid_a"]["cache.write"] >= 1
        for records in soak_report["trace"].values():
            assert all(r["recovered"] is not None for r in records)
            assert {r["recovered"] for r in records} <= {
                "quarantined", "already_miss", "dropped_write",
            }

    def test_report_is_json_ready_and_persistable(self, soak_report,
                                                  tmp_path):
        path = write_trace(soak_report, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["ok"] is True
        assert loaded["plan"]["seed"] == 1
        assert loaded["plan"]["probabilities"] == {
            "cache.read": 1.0, "cache.write": 1.0,
        }

    def test_quick_grid_is_a_subset_of_the_registry(self):
        from repro.cli import EXPERIMENTS

        assert set(QUICK_EXPERIMENTS) <= set(EXPERIMENTS)


class TestCliWiring:
    def test_chaos_soak_parser_defaults(self):
        args = build_parser().parse_args(["chaos-soak", "--quick"])
        assert args.quick is True
        assert args.plan == "0.2"
        assert args.seed == 0
        assert args.skip_serve is False
        assert args.out == "CHAOS_TRACE.json"

    @pytest.mark.parametrize("command", ["run", "suite", "serve"])
    def test_chaos_flags_everywhere(self, command):
        argv = [command] + (["fig9"] if command == "run" else [])
        argv += ["--chaos-plan", "cache.read=0.5", "--chaos-seed", "9"]
        args = build_parser().parse_args(argv)
        assert args.chaos_plan == "cache.read=0.5"
        assert args.chaos_seed == 9
        injector = make_injector(args)
        assert injector is not None
        assert injector.plan.seed == 9
        assert injector.plan.p("cache.read") == 0.5

    def test_no_chaos_flags_means_no_injector(self):
        args = build_parser().parse_args(["run", "fig9"])
        assert make_injector(args) is None
