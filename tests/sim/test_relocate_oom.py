"""Regression: relocation under memory exhaustion must fail, not raise.

``relocate_leaf`` allocates the destination before tearing anything
down; when the machine is fully committed it must report failure and
leave the mapping untouched (Ranger treats that as "evacuation
deferred"), not propagate :class:`OutOfMemoryError` into the policy.
"""

from repro.errors import OutOfMemoryError
from repro.sim.machine import build_machine
from repro.vm.flags import DEFAULT_ANON
from tests.policies.conftest import SMALL


def exhaust(machine) -> list[int]:
    taken = []
    while True:
        try:
            taken.append(machine.mem.alloc_block(0))
        except OutOfMemoryError:
            return taken


def test_relocate_leaf_survives_oom():
    machine = build_machine("ca", SMALL)
    kernel = machine.kernel
    process = kernel.create_process("victim")
    vma = kernel.mmap(process, 16, flags=DEFAULT_ANON)
    kernel.touch_range(process, vma.start_vpn, 16)
    vpn = vma.start_vpn
    before = process.space.translate(vpn)
    assert before is not None

    taken = exhaust(machine)
    assert machine.mem.free_pages == 0
    shootdowns = kernel.tlb_shootdowns

    assert kernel.relocate_leaf(process, vpn) is False
    # The mapping is untouched: same frame, no shootdown charged.
    assert process.space.translate(vpn) == before
    assert kernel.tlb_shootdowns == shootdowns

    # With memory back, the same call succeeds and actually moves it.
    for pfn in taken[: 4 * 512]:
        machine.mem.free_block(pfn, 0)
    assert kernel.relocate_leaf(process, vpn) is True
    after = process.space.translate(vpn)
    assert after is not None and after != before
