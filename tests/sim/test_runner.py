"""Integration tests for the workload runners."""

import pytest

from repro.sim.config import TEST_SCALE
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.units import order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.workloads import make_workload
from tests.policies.conftest import SMALL


def native(policy="ca", name="svm", options=None):
    machine = build_machine(policy, SMALL)
    wl = make_workload(name, TEST_SCALE)
    return machine, wl, run_native(machine, wl, options or RunOptions())


class TestRunNative:
    def test_runs_to_completion_and_exits(self):
        machine, wl, result = native()
        assert result.workload == "svm"
        assert result.footprint_pages == wl.footprint_pages
        assert result.process is None  # exited
        # All anonymous memory was released on exit; page cache persists.
        cached = machine.kernel.page_cache.resident_pages
        used = machine.mem.n_pages - machine.mem.free_pages
        assert used >= cached

    def test_touched_pages_match_plan(self):
        machine, wl, result = native()
        assert result.touched_pages == wl.footprint_pages

    def test_exit_after_false_keeps_process(self):
        machine, wl, result = native(options=RunOptions(exit_after=False))
        assert result.process is not None
        assert result.process.resident_pages > 0
        assert len(result.vma_start_vpns) == len(wl.vma_plans)

    def test_samples_collected(self):
        machine, wl, result = native(options=RunOptions(sample_every=4))
        assert len(result.samples) > 3
        # Touched pages are monotonic through the allocation phase.
        touched = [s.touched_pages for s in result.samples]
        assert touched == sorted(touched)

    def test_no_sampling_still_has_final(self):
        machine, wl, result = native(options=RunOptions(sample_every=None))
        assert result.final.footprint_pages > 0
        assert result.samples  # at least the final sample

    def test_fault_summary_present(self):
        machine, wl, result = native()
        assert result.faults.total_faults > 0
        assert result.fault_latencies_us
        assert result.software.fault_us > 0

    def test_file_workload_populates_cache(self):
        machine, wl, result = native(name="pagerank")
        assert machine.kernel.page_cache.resident_pages > 0

    def test_scratch_file_persists(self):
        machine = build_machine("ca", SMALL)
        wl = make_workload("svm", TEST_SCALE)
        before = machine.kernel.page_cache.resident_pages
        run_native(machine, wl, RunOptions(scratch_file_pages=64))
        assert machine.kernel.page_cache.resident_pages >= before + 64

    def test_consecutive_runs_share_input_files(self):
        machine = build_machine("ca", SMALL)
        wl = make_workload("pagerank", TEST_SCALE)
        run_native(machine, wl, RunOptions(sample_every=None))
        files_after_first = len(list(machine.kernel.page_cache.iter_files()))
        run_native(machine, wl, RunOptions(sample_every=None))
        assert len(list(machine.kernel.page_cache.iter_files())) == files_after_first


class TestScratchCounter:
    """Scratch-file naming is per-kernel state, not process-global."""

    def test_counter_is_per_kernel(self):
        a = build_machine("ca", SMALL).kernel
        b = build_machine("ca", SMALL).kernel
        assert [a.next_scratch_id(), a.next_scratch_id()] == [1, 2]
        # A machine built later starts from 1 regardless of a's history.
        assert b.next_scratch_id() == 1

    def test_scratch_names_identical_across_machines(self):
        # Two identically-specced machines must produce identically
        # named scratch files even when run back to back in one process
        # — this is what makes run cells pure functions of their spec.
        names = []
        for _ in range(2):
            machine = build_machine("ca", SMALL)
            wl = make_workload("svm", TEST_SCALE)
            run_native(machine, wl, RunOptions(scratch_file_pages=32))
            run_native(machine, wl, RunOptions(scratch_file_pages=32))
            names.append(
                sorted(f.name for f in machine.kernel.page_cache.iter_files())
            )
        assert names[0] == names[1]


class TestRunVirtualized:
    def make_vm(self, policy="ca"):
        host = build_machine(policy, SMALL)
        guest_pages = sum(SMALL.node_pages)
        if host.policy.prefaults:
            # An eager host backs the whole VM at creation: the guest
            # must fit in what the host has left after boot reserve.
            guest_pages //= 2
        guest_pages -= guest_pages % order_pages(host.config.max_order)
        return VirtualMachine(host, guest_pages, policy)

    def test_runs_and_reports_2d(self):
        vm = self.make_vm()
        wl = make_workload("svm", TEST_SCALE)
        result = run_virtualized(vm, wl, RunOptions(sample_every=8))
        assert result.virtualized
        assert result.policy == "ca+ca"
        # The 2D footprint is the resident set: touched pages rounded
        # up to the huge mappings THP installed.
        assert result.final.footprint_pages >= wl.footprint_pages
        assert result.final.touched_pages == wl.footprint_pages
        assert result.run_sizes

    def test_guest_exit_keeps_nested_mappings(self):
        vm = self.make_vm()
        wl = make_workload("svm", TEST_SCALE)
        run_virtualized(vm, wl, RunOptions(sample_every=None))
        assert vm.qemu.space.resident_pages > 0

    def test_eager_guest_prefaults_gpa(self):
        vm = self.make_vm("eager")
        wl = make_workload("svm", TEST_SCALE)
        result = run_virtualized(vm, wl, RunOptions(sample_every=None))
        # The whole VMA capacity is backed, not just the touched part.
        assert result.resident_pages >= result.touched_pages
