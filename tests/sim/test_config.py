"""Unit tests for scale profiles and machine configuration."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    EAGER_MAX_ORDER,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.units import MIB, order_pages


class TestScaleProfile:
    def test_paper_gb_to_pages(self):
        scale = ScaleProfile(bytes_per_paper_gb=4 * MIB)
        assert scale.paper_gb_pages(1) == 1024
        assert scale.paper_gb_pages(0.5) == 512

    def test_minimum_one_page(self):
        scale = ScaleProfile(bytes_per_paper_gb=4 * MIB)
        assert scale.paper_gb_pages(1e-9) == 1

    def test_node_pages_aligned(self):
        scale = ScaleProfile(bytes_per_paper_gb=MIB, machine_paper_gb=(3, 5))
        for pages in scale.node_pages(max_order=10):
            assert pages % order_pages(10) == 0


class TestSystemConfig:
    def test_from_scale(self):
        scale = ScaleProfile(bytes_per_paper_gb=4 * MIB, machine_paper_gb=(8, 8))
        cfg = SystemConfig.from_scale(scale)
        assert len(cfg.node_pages) == 2
        assert cfg.node_pages[0] == 8 * 1024

    def test_from_scale_node_override(self):
        scale = ScaleProfile(bytes_per_paper_gb=4 * MIB)
        cfg = SystemConfig.from_scale(scale, node_pages=(2048,))
        assert cfg.node_pages == (2048,)

    def test_for_policy_eager_raises_max_order(self):
        cfg = SystemConfig(node_pages=(32 * 1024,))
        eager = cfg.for_policy("eager")
        assert eager.max_order == EAGER_MAX_ORDER
        assert eager.node_pages[0] % order_pages(EAGER_MAX_ORDER) == 0

    def test_for_policy_ca_sorts_list(self):
        cfg = SystemConfig(node_pages=(1024,))
        assert cfg.for_policy("ca").sorted_max_order
        assert not cfg.for_policy("thp").sorted_max_order

    def test_for_policy_ingens_disables_thp(self):
        cfg = SystemConfig(node_pages=(1024,))
        assert not cfg.for_policy("ingens").thp
        assert cfg.for_policy("ca").thp

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(node_pages=())
        with pytest.raises(ConfigError):
            SystemConfig(node_pages=(1024,), max_order=0)


class TestHardwareConfig:
    def test_broadwell_matches_table_ii(self):
        hw = HardwareConfig.broadwell()
        assert hw.l1_4k_entries == 64
        assert hw.l1_2m_entries == 32
        assert hw.l2_entries == 1536
        assert hw.l2_ways == 6

    def test_scaled_default_is_smaller(self):
        assert HardwareConfig().l2_entries < HardwareConfig.broadwell().l2_entries
