"""Edge cases for the kernel's batched frame-span accounting helpers.

The columnar engine charges and releases physical frames in spans
(`_account_frame_span` / `_put_frame_span` / `_free_aligned_span`).
These must tolerate degenerate inputs — zero-page spans are produced
naturally when a batched fault claims nothing or an uninstall yields an
empty stretch — and must stay bit-identical to the per-frame reference.
"""

from repro.sim.config import SystemConfig
from repro.sim.machine import build_machine

TINY = SystemConfig(node_pages=(4 * 1024, 4 * 1024), churn_ops=0, engine="columnar")


def fresh_kernel():
    machine = build_machine("thp", TINY, aged=False)
    return machine, machine.kernel


class TestZeroPageSpans:
    def test_account_zero_span_is_a_noop(self):
        machine, kernel = fresh_kernel()
        zone = machine.mem.zone_of(0)
        before = zone.frames.mapcount.copy()
        kernel._account_frame_span(0, 0, owner=7)
        assert (zone.frames.mapcount == before).all()

    def test_put_zero_span_is_a_noop(self):
        machine, kernel = fresh_kernel()
        free_before = machine.mem.free_pages
        kernel._put_frame_span(0, 0)
        assert machine.mem.free_pages == free_before

    def test_free_aligned_zero_span_is_a_noop(self):
        machine, kernel = fresh_kernel()
        zone = machine.mem.zone_of(0)
        free_before = machine.mem.free_pages
        kernel._free_aligned_span(zone, 0, 0)
        assert machine.mem.free_pages == free_before

    def test_put_span_at_node_boundary_pfn(self):
        # A zero-length span whose pfn sits exactly at a node boundary
        # must not consult the next zone at all.
        machine, kernel = fresh_kernel()
        boundary = machine.mem.zone_of(0).end_pfn
        free_before = machine.mem.free_pages
        kernel._put_frame_span(boundary, 0)
        assert machine.mem.free_pages == free_before


class TestSpanRoundTrip:
    def test_account_then_put_restores_free_memory(self):
        machine, kernel = fresh_kernel()
        pfns = machine.mem.alloc_pages_bulk(96)
        assert len(pfns) == 96
        base = int(pfns[0])
        # The bulk stream is contiguous from a fresh block head.
        assert pfns.tolist() == list(range(base, base + 96))
        free_mid = machine.mem.free_pages
        kernel._account_frame_span(base, 96, owner=3)
        zone = machine.mem.zone_of(base)
        i = zone.frames.index(base)
        assert (zone.frames.mapcount[i:i + 96] == 1).all()
        assert (zone.frames.owner[i:i + 96] == 3).all()
        kernel._put_frame_span(base, 96)
        assert machine.mem.free_pages == free_mid + 96
        assert (zone.frames.mapcount[i:i + 96] == 0).all()

    def test_put_span_matches_per_frame_reference(self):
        results = []
        for batched in (True, False):
            machine, kernel = fresh_kernel()
            pfns = machine.mem.alloc_pages_bulk(40)
            base = int(pfns[0])
            kernel._account_frame_span(base, 40, owner=1)
            if batched:
                kernel._put_frame_span(base, 40)
            else:
                for p in range(base, base + 40):
                    kernel._put_frame(p, 0)
            zone = machine.mem.zone_of(base)
            results.append((machine.mem.free_pages, zone.buddy.free_list_sizes()))
        assert results[0] == results[1]

    def test_cow_shared_tail_survives_span_put(self):
        # Frames still mapped elsewhere (mapcount > 1) must not be freed
        # by a span put — the per-frame fallback path.
        machine, kernel = fresh_kernel()
        pfns = machine.mem.alloc_pages_bulk(16)
        base = int(pfns[0])
        kernel._account_frame_span(base, 16, owner=1)
        kernel._account_frame_span(base + 8, 8, owner=2)  # share the tail
        free_mid = machine.mem.free_pages
        kernel._put_frame_span(base, 16)
        # Only the unshared head [base, base+8) was actually freed.
        assert machine.mem.free_pages == free_mid + 8
        zone = machine.mem.zone_of(base)
        i = zone.frames.index(base)
        assert (zone.frames.mapcount[i:i + 8] == 0).all()
        assert (zone.frames.mapcount[i + 8:i + 16] == 1).all()
