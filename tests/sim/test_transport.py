"""The RPT1 transport's contract: canonical frames, exact round-trips,
delta refs, and every-byte corruption coverage.

The run cache, the chain checkpoints, the executor's pool path and the
serve tier all ride this format, so these tests pin the properties
those layers assume:

- *round-trip* — ``loads(dumps(x)) == x`` over arbitrary dtypes,
  shapes (empty and 1-element columns included), and mixed payloads,
  with every reconstructed array writable;
- *canonical* — equal content yields byte-equal blobs (the property
  delta detection is built on);
- *delta* — a delta blob resolves through its store to the same object
  and carries the same logical digest as the full framing;
- *corruption* — flipping ANY single byte of a blob raises
  :class:`TransportError` (the chaos quarantine contract).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sim import transport

DTYPES = (
    np.uint8, np.int16, np.uint32, np.int64, np.float32, np.float64,
    np.bool_,
)


def _arrays():
    return hnp.arrays(
        dtype=st.sampled_from(DTYPES),
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=0,
                               max_side=64),
        elements=st.integers(min_value=0, max_value=1),
    )


def _assert_equal(a, b):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b, equal_nan=True)
    else:
        assert a == b


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_arrays(), min_size=0, max_size=4))
    def test_arrays_round_trip(self, arrays):
        obj = {"cols": arrays, "tag": "x"}
        out = transport.loads(transport.dumps(obj))
        assert out["tag"] == "x"
        assert len(out["cols"]) == len(arrays)
        for a, b in zip(arrays, out["cols"]):
            _assert_equal(a, b)
            assert b.flags.writeable

    @pytest.mark.parametrize("arr", [
        np.array([], dtype=np.float64),
        np.array([7], dtype=np.uint8),
        np.zeros(100_000, dtype=np.uint64),
        np.arange(50_000, dtype=np.int32),
        np.full(9_999, np.nan),
        np.random.default_rng(7).integers(0, 256, 300_000).astype(np.uint8),
    ])
    def test_edge_columns(self, arr):
        out = transport.loads(transport.dumps({"a": arr}))["a"]
        _assert_equal(arr, out)
        assert out.flags.writeable
        out[...] = 0  # mutable in place, like a resumed VM column

    def test_plain_objects_round_trip(self):
        obj = {"n": 3, "s": "text", "b": b"\x00" * 4096, "t": (1, 2)}
        assert transport.loads(transport.dumps(obj)) == obj

    def test_non_contiguous_arrays_survive_inband(self):
        base = np.arange(10_000, dtype=np.int64)
        view = base[::2]
        out = transport.loads(transport.dumps({"v": view}))["v"]
        _assert_equal(np.ascontiguousarray(view), out)

    def test_dumps_is_canonical(self):
        obj = {"a": np.zeros(100_000, dtype=np.uint64), "b": list(range(50))}
        assert transport.dumps(obj) == transport.dumps(obj)

    def test_incompressible_buffers_stay_raw(self):
        noise = np.random.default_rng(0).integers(
            0, 2**64, 200_000, dtype=np.uint64
        )
        blob = transport.dumps({"noise": noise})
        info = transport.blob_info(blob)
        assert info["codec_frames"].get("raw", 0) >= 1
        # No compression attempt means no size blow-up either.
        assert len(blob) < noise.nbytes * 1.01 + 4096

    def test_runs_compress_hard(self):
        runs = np.repeat(
            np.arange(40, dtype=np.uint64), 25_000
        )  # 8 MB, 40 runs
        blob = transport.dumps({"runs": runs})
        assert len(blob) < runs.nbytes / 100
        _assert_equal(runs, transport.loads(blob)["runs"])


class TestDelta:
    def _obj(self):
        rng = np.random.default_rng(1)
        return {
            "stable": np.repeat(np.arange(32, dtype=np.uint64), 8_192),
            "noise": rng.integers(0, 2**64, 65_536, dtype=np.uint64),
            "hot": np.zeros(262_144, dtype=np.uint8),
        }

    def test_unchanged_buffers_become_refs(self):
        obj = self._obj()
        store = transport.BufferStore()
        base = store.add_blob(transport.dumps(obj))
        obj["hot"] = obj["hot"].copy()
        obj["hot"][123] = 9
        delta = transport.dumps(obj, store=store, base=base)
        info = transport.blob_info(delta)
        assert info["ref_frames"] >= 2  # stable + noise unchanged
        assert len(delta) < len(transport.dumps(obj))

    def test_delta_digest_and_loads_match_full(self):
        obj = self._obj()
        store = transport.BufferStore()
        base = store.add_blob(transport.dumps(obj))
        obj["hot"] = obj["hot"].copy()
        obj["hot"][0] = 1
        delta = transport.dumps(obj, store=store, base=base)
        full = transport.dumps(obj)
        assert transport.blob_digest(delta) == transport.blob_digest(full)
        store.add_blob(delta)
        out_d = transport.loads(delta, store=store)
        out_f = transport.loads(full)
        for k in obj:
            _assert_equal(out_d[k], out_f[k])
            assert out_d[k].flags.writeable

    def test_ref_chains_flatten_to_the_terminal_blob(self):
        obj = self._obj()
        store = transport.BufferStore()
        prev = store.add_blob(transport.dumps(obj))
        # Five generations of deltas; "stable" never changes.
        for gen in range(5):
            obj["hot"] = obj["hot"].copy()
            obj["hot"][gen] = gen + 1
            blob = transport.dumps(obj, store=store, base=prev)
            prev = store.add_blob(blob)
        out = transport.loads(blob, store=store)
        _assert_equal(out["stable"], self._obj()["stable"])
        # Later deltas stay ref-only for the unchanged columns: the
        # chain's tail blobs are all tiny.
        assert len(blob) < 16 * 1024

    def test_loading_a_delta_without_its_store_fails(self):
        obj = self._obj()
        store = transport.BufferStore()
        base = store.add_blob(transport.dumps(obj))
        delta = transport.dumps(obj, store=store, base=base)
        with pytest.raises(transport.TransportError):
            transport.loads(delta)

    def test_identical_consecutive_states_stay_resolvable(self):
        # An unchanged stage deltas to an all-refs blob whose logical
        # digest EQUALS the base's; registering it must not shadow the
        # base's resolvable frames in the store.
        obj = self._obj()
        store = transport.BufferStore()
        base = store.add_blob(transport.dumps(obj))
        delta = transport.dumps(obj, store=store, base=base)
        assert transport.blob_digest(delta) == base
        same = store.add_blob(delta)
        assert same == base
        out = transport.loads(delta, store=store)
        for k in obj:
            _assert_equal(out[k], obj[k])
        # And a further delta against the all-refs generation still
        # resolves (refs flattened through to the original frames).
        again = transport.dumps(obj, store=store, base=same)
        store.add_blob(again)
        out2 = transport.loads(again, store=store)
        for k in obj:
            _assert_equal(out2[k], obj[k])

    def test_dumps_against_unknown_base_fails(self):
        with pytest.raises(transport.TransportError):
            transport.dumps({"x": 1}, store=transport.BufferStore(),
                            base="ab" * 32)


class TestCorruption:
    def test_every_single_byte_flip_is_detected(self):
        obj = {
            "a": np.arange(300, dtype=np.uint32),
            "b": np.zeros(2_000, dtype=np.uint8),
            "c": b"xyz" * 60,
        }
        blob = transport.dumps(obj)
        for i in range(len(blob)):
            bad = bytearray(blob)
            bad[i] ^= 0xFF
            with pytest.raises(transport.TransportError):
                transport.loads(bytes(bad))

    def test_truncation_is_detected(self):
        blob = transport.dumps({"a": np.arange(1_000)})
        for cut in (0, 3, 47, 48, len(blob) // 2, len(blob) - 1):
            with pytest.raises(transport.TransportError):
                transport.loads(blob[:cut])

    def test_raw_pickle_is_not_framed(self):
        raw = pickle.dumps({"x": 1}, protocol=pickle.HIGHEST_PROTOCOL)
        assert not transport.is_framed(raw)
        with pytest.raises(transport.TransportError):
            transport.loads(raw)


class TestIntrospection:
    def test_blob_info_shape(self):
        blob = transport.dumps({"a": np.zeros(100_000, dtype=np.uint64)})
        info = transport.blob_info(blob)
        assert info["version"] == transport.VERSION
        assert info["logical_bytes"] > 800_000
        assert info["stored_bytes"] == len(blob)
        assert info["digest"] == transport.blob_digest(blob)

    def test_peek_logical_bytes(self):
        blob = transport.dumps({"a": np.zeros(4_096, dtype=np.uint8)})
        assert transport.peek_logical_bytes(blob[:48]) == (
            transport.blob_info(blob)["logical_bytes"]
        )
        assert transport.peek_logical_bytes(b"\x80\x04junk" * 10) is None
        assert transport.peek_logical_bytes(b"RPT") is None
