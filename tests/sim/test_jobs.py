"""Tests for the run-cell orchestrator and the content-addressed cache."""

import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.sim.cache import (
    MISS,
    RunCache,
    code_version_salt,
    default_cache_dir,
    encode_spec,
    spec_digest,
)
from repro.sim.config import QUICK_SCALE, ScaleProfile
from repro.sim.jobs import Cell, Executor, Plan, cell, execute, run_plans


def _square(*, x):
    return x * x


def _concat(*, items, sep):
    return sep.join(items)


def _die_in_worker(*, x):
    """Kills worker processes hard; returns normally in the main one."""
    import multiprocessing
    import os

    if multiprocessing.parent_process() is not None:
        os._exit(13)  # simulate an OOM-killed / segfaulted worker
    return x + 100


def _stage(prev=None, *, inc):
    """Chain-stage toy: dep values arrive positionally, state accumulates."""
    return (prev or 0) + inc


def _join(*parts, sep):
    return sep.join(str(p) for p in parts)


SQ = "tests.sim.test_jobs:_square"
CAT = "tests.sim.test_jobs:_concat"
DIE = "tests.sim.test_jobs:_die_in_worker"
STAGE = "tests.sim.test_jobs:_stage"
JOIN = "tests.sim.test_jobs:_join"


def _chain(incs) -> list:
    """A linear chain of ``_stage`` cells, one per increment."""
    cells = []
    prev: tuple = ()
    for inc in incs:
        c = cell(STAGE, deps=prev, inc=inc)
        cells.append(c)
        prev = (c,)
    return cells


class TestSpecEncoding:
    def test_primitives_pass_through(self):
        assert encode_spec({"a": 1, "b": 0.5, "c": None, "d": True}) == {
            "a": 1, "b": 0.5, "c": None, "d": True,
        }

    def test_tuples_become_lists(self):
        assert encode_spec(("svm", ("a", 1))) == ["svm", ["a", 1]]

    def test_dataclass_tagged_with_type(self):
        out = encode_spec(QUICK_SCALE)
        assert out["__dataclass__"].endswith("ScaleProfile")
        assert out["name"] == "quick"

    def test_numpy_scalar(self):
        np = pytest.importorskip("numpy")
        assert encode_spec(np.int64(7)) == 7

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            encode_spec(object())

    def test_digest_stable_and_salted(self):
        spec = {"fn": SQ, "kwargs": {"x": 3}}
        assert spec_digest(spec, "s1") == spec_digest(spec, "s1")
        assert spec_digest(spec, "s1") != spec_digest(spec, "s2")

    def test_digest_changes_with_spec(self):
        a = cell(SQ, x=3)
        b = cell(SQ, x=4)
        assert a.key("salt") != b.key("salt")

    def test_kwarg_order_canonical(self):
        assert cell(CAT, sep="-", items=("a",)) == cell(CAT, items=("a",), sep="-")

    def test_code_salt_nonempty_and_cached(self):
        assert code_version_salt()
        assert code_version_salt() == code_version_salt()


class TestCell:
    def test_resolve_and_execute(self):
        c = cell(SQ, x=5)
        assert c.resolve()(x=5) == 25
        assert execute([c]) == [25]

    def test_bad_ref_rejected(self):
        with pytest.raises(ConfigError):
            Cell(fn="no.colon.here").resolve()


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("k" * 64) is MISS
        cache.put("k" * 64, {"v": 1})
        assert cache.get("k" * 64) == {"v": 1}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("a" * 64, [1, 2])
        cache.path_for("a" * 64).write_bytes(b"not a pickle")
        assert cache.get("a" * 64) is MISS

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("a" * 64, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a" * 64) is MISS

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"


class TestExecutor:
    def test_serial_order_preserved(self):
        cells = [cell(SQ, x=i) for i in (3, 1, 2)]
        assert Executor().run(cells) == [9, 1, 4]

    def test_within_batch_dedup(self):
        ex = Executor()
        out = ex.run([cell(SQ, x=2), cell(SQ, x=2), cell(SQ, x=3)])
        assert out == [4, 4, 9]
        assert ex.stats.computed == 2
        assert ex.stats.deduped == 1

    def test_cache_hit_skips_compute(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = Executor(cache=cache)
        assert cold.run([cell(SQ, x=6)]) == [36]
        warm = Executor(cache=RunCache(tmp_path))
        assert warm.run([cell(SQ, x=6)]) == [36]
        assert warm.stats.cache_hits == 1
        assert warm.stats.computed == 0

    def test_spec_change_invalidates(self, tmp_path):
        cache = RunCache(tmp_path)
        Executor(cache=cache).run([cell(SQ, x=6)])
        ex = Executor(cache=RunCache(tmp_path))
        ex.run([cell(SQ, x=7)])
        assert ex.stats.cache_hits == 0
        assert ex.stats.computed == 1

    def test_salt_change_invalidates(self, tmp_path):
        a = RunCache(tmp_path, salt="one")
        Executor(cache=a).run([cell(SQ, x=6)])
        ex = Executor(cache=RunCache(tmp_path, salt="two"))
        ex.run([cell(SQ, x=6)])
        assert ex.stats.cache_hits == 0
        assert ex.stats.computed == 1

    def test_parallel_matches_serial(self, tmp_path):
        cells = [cell(CAT, items=("a", "b", str(i)), sep="-") for i in range(6)]
        serial = Executor().run(cells)
        parallel = Executor(jobs=2, cache=RunCache(tmp_path)).run(cells)
        assert serial == parallel

    def test_progress_callback_fires_per_unique_cell(self, tmp_path):
        events = []
        cache = RunCache(tmp_path)
        Executor(cache=cache).run([cell(SQ, x=4)])
        ex = Executor(
            cache=RunCache(tmp_path),
            progress=lambda event, c: events.append((event, dict(c.kwargs))),
        )
        out = ex.run([cell(SQ, x=4), cell(SQ, x=5), cell(SQ, x=5)])
        assert out == [16, 25, 25]
        # One hit, one compute; the deduped twin fires nothing.
        assert sorted(events) == [
            ("cache_hit", {"x": 4}), ("computed", {"x": 5}),
        ]


class TestDagExecutor:
    """Dependency-aware scheduling: chains, diamonds, resume."""

    def test_chain_deps_feed_positionally(self):
        chain = _chain([1, 2, 4])
        ex = Executor()
        # Only the tail is requested; the prefix is computed implicitly.
        assert ex.run([chain[-1]]) == [7]
        assert ex.stats.computed == 3
        assert ex.stats.submitted == 1

    def test_chain_prefix_is_part_of_the_key(self):
        tail_a = cell(STAGE, deps=(cell(STAGE, inc=1),), inc=9)
        tail_b = cell(STAGE, deps=(cell(STAGE, inc=2),), inc=9)
        assert tail_a.kwargs == tail_b.kwargs
        assert tail_a.key("s") != tail_b.key("s")

    def test_diamond_shared_dep_computes_once(self):
        base = cell(STAGE, inc=5)
        left = cell(STAGE, deps=(base,), inc=1)
        right = cell(STAGE, deps=(base,), inc=2)
        top = cell(JOIN, deps=(left, right), sep="-")
        ex = Executor()
        assert ex.run([top]) == ["6-7"]
        assert ex.stats.computed == 4

    def test_requested_dep_and_dependent_both_returned(self):
        s1 = cell(STAGE, inc=3)
        s2 = cell(STAGE, deps=(s1,), inc=4)
        ex = Executor()
        assert ex.run([s1, s2]) == [3, 7]
        assert ex.stats.computed == 2

    def test_final_stage_hit_never_consults_the_chain(self, tmp_path):
        chain = _chain([1, 2])
        Executor(cache=RunCache(tmp_path)).run([chain[-1]])
        warm = Executor(cache=RunCache(tmp_path))
        assert warm.run([chain[-1]]) == [3]
        assert warm.stats.cache_hits == 1
        assert warm.stats.computed == 0  # stage 1 never even loaded

    def test_interrupted_chain_resumes_from_checkpoint(self, tmp_path):
        chain = _chain([1, 2, 4, 8])
        # "Killed" after two stages...
        first = Executor(cache=RunCache(tmp_path))
        first.run([chain[1]])
        assert first.stats.computed == 2
        # ...the rerun recomputes only the unfinished suffix.
        resumed = Executor(cache=RunCache(tmp_path))
        assert resumed.run([chain[-1]]) == [15]
        assert resumed.stats.cache_hits == 1  # stage 2's checkpoint
        assert resumed.stats.computed == 2    # stages 3 and 4 only

    def test_parallel_dag_matches_serial(self, tmp_path):
        cells = []
        for i in range(3):
            s1 = cell(STAGE, inc=i)
            s2 = cell(STAGE, deps=(s1,), inc=10)
            cells.extend([s1, s2])
        serial = Executor().run(cells)
        with Executor(jobs=2, cache=RunCache(tmp_path)) as ex:
            parallel = ex.run(cells)
        assert serial == parallel == [0, 10, 1, 11, 2, 12]

    def test_pool_persists_across_runs_until_close(self, tmp_path):
        ex = Executor(jobs=2, cache=RunCache(tmp_path))
        with ex:
            ex.run([cell(SQ, x=2), cell(SQ, x=3)])
            pool = ex._pool
            assert pool is not None
            ex.run([cell(SQ, x=4), cell(SQ, x=5)])
            assert ex._pool is pool  # warm workers reused
        assert ex._pool is None

    def test_histograms_observe_compute_and_queue(self, tmp_path):
        with Executor(jobs=2, cache=RunCache(tmp_path)) as ex:
            ex.run([cell(SQ, x=i) for i in range(4)])
        assert ex.compute_hist.count == 4
        assert ex.queue_wait_hist.count == 4
        assert ex.queue_wait_hist.total >= 0.0

    def test_serial_observes_compute_only(self):
        ex = Executor()
        ex.run([cell(SQ, x=9)])
        assert ex.compute_hist.count == 1
        assert ex.queue_wait_hist.count == 0


class TestBrokenPoolFallback:
    def test_crashed_workers_fall_back_to_serial(self, tmp_path):
        # Every pooled cell kills its worker; the executor must survive,
        # recompute serially in-process, and report the degradation.
        cells = [cell(DIE, x=1), cell(DIE, x=2), cell(DIE, x=3)]
        ex = Executor(jobs=2, cache=RunCache(tmp_path))
        assert ex.run(cells) == [101, 102, 103]
        assert ex.stats.pool_failures == 1
        assert ex.stats.retried_serial == 3
        assert ex.stats.computed == 3
        # The fallback results were cached like any others.
        warm = Executor(cache=RunCache(tmp_path))
        assert warm.run(cells) == [101, 102, 103]
        assert warm.stats.cache_hits == 3

    def test_cell_exceptions_still_propagate(self):
        with pytest.raises(ConfigError):
            Executor(jobs=2).run([
                Cell(fn="no.colon.here"), Cell(fn="also.none"),
            ])

    def test_stats_merge_includes_fallback_counters(self):
        from repro.sim.jobs import ExecutorStats

        a = ExecutorStats(pool_failures=1, retried_serial=2)
        b = ExecutorStats(pool_failures=1, retried_serial=3, computed=4)
        a.merge(b)
        assert a.pool_failures == 2
        assert a.retried_serial == 5
        assert a.computed == 4


class TestCacheLifecycle:
    def _fill(self, tmp_path, n=4, size=1000):
        import os
        import time as _time

        cache = RunCache(tmp_path)
        now = _time.time()
        for i in range(n):
            key = f"{i:02x}" * 32
            cache.put(key, "v" * size)
            # Stamp distinct ages, oldest first.
            os.utime(cache.path_for(key), (now - 1000 + i, now - 1000 + i))
        return cache

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = self._fill(tmp_path, n=3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        # Entries are framed RPT1 blobs; the "v" * 1000 payload
        # compresses, so logical (pre-compression) bytes exceed stored.
        assert stats["framed_entries"] == 3
        assert stats["raw_entries"] == 0
        assert stats["logical_bytes"] > 3 * 1000
        assert stats["compression_ratio"] > 1.0
        assert stats["oldest_mtime"] < stats["newest_mtime"]

    def test_stats_format_breakdown_counts_legacy_raw_entries(self, tmp_path):
        import pickle as _pickle

        cache = self._fill(tmp_path, n=2)
        legacy_key = "ee" * 32
        cache.write_blob(
            legacy_key, _pickle.dumps({"legacy": True},
                                      protocol=_pickle.HIGHEST_PROTOCOL)
        )
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["framed_entries"] == 2
        assert stats["raw_entries"] == 1
        # Raw entries count their stored size as logical size.
        assert stats["logical_bytes"] >= stats["raw_bytes"]

    def test_empty_cache_stats(self, tmp_path):
        stats = RunCache(tmp_path / "nothing-here").stats()
        assert stats == {
            "root": str(tmp_path / "nothing-here"), "entries": 0,
            "total_bytes": 0, "oldest_mtime": None, "newest_mtime": None,
            "corrupt_evictions": 0, "write_failures": 0, "quarantined": 0,
            "quarantined_bytes": 0, "tier_hits": 0, "tier_misses": 0,
            "tier_stores": 0, "tier_errors": 0,
            "framed_entries": 0, "framed_bytes": 0,
            "framed_logical_bytes": 0, "raw_entries": 0, "raw_bytes": 0,
            "logical_bytes": 0, "compression_ratio": 1.0,
        }

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path, n=4)
        entry = cache.stats()["total_bytes"] // 4
        summary = cache.prune(max_bytes=2 * entry)
        assert summary["removed"] == 2
        assert summary["remaining_entries"] == 2
        # The two oldest are gone, the two newest survive.
        assert cache.get("00" * 32) is MISS
        assert cache.get("01" * 32) is MISS
        assert cache.get("02" * 32) == "v" * 1000
        assert cache.get("03" * 32) == "v" * 1000

    def test_reads_refresh_lru_position(self, tmp_path):
        cache = self._fill(tmp_path, n=3)
        # Touch the oldest entry: a get() bumps its mtime to now.
        assert cache.get("00" * 32) == "v" * 1000
        entry = cache.stats()["total_bytes"] // 3
        cache.prune(max_bytes=entry)
        # The recently-read entry survived; the stale middle ones died.
        assert cache.get("00" * 32) == "v" * 1000
        assert cache.get("01" * 32) is MISS
        assert cache.get("02" * 32) is MISS

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = self._fill(tmp_path, n=2)
        summary = cache.prune(max_bytes=0)
        assert summary["removed"] == 2
        assert summary["remaining_bytes"] == 0
        assert len(cache) == 0

    def test_prune_noop_under_budget(self, tmp_path):
        cache = self._fill(tmp_path, n=2)
        summary = cache.prune(max_bytes=10 ** 9)
        assert summary["removed"] == 0
        assert len(cache) == 2

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunCache(tmp_path).prune(max_bytes=-1)

    def test_prune_tolerates_concurrent_reader_and_pruner(
        self, tmp_path, monkeypatch
    ):
        # Regression: prune() used to unlink straight off its scan-time
        # listing, so a file removed by a concurrent pruner raised and
        # a file a concurrent get() had just refreshed was evicted on
        # its stale mtime.  Race both between the scan and the walk.
        import os
        import time as _time

        cache = self._fill(tmp_path, n=4)
        real_entries = cache._entries

        def racy_entries():
            entries = real_entries()
            # Another pruner removes the oldest after our scan...
            cache.path_for("00" * 32).unlink()
            # ...and a concurrent get() refreshes the second-oldest.
            now = _time.time()
            os.utime(cache.path_for("01" * 32), (now, now))
            return entries

        monkeypatch.setattr(cache, "_entries", racy_entries)
        summary = cache.prune(max_bytes=0)
        # No crash; the vanished entry's bytes counted as freed, the
        # hot (just-read) entry survived, the cold tail was evicted.
        assert summary["removed"] == 2
        assert cache.get("01" * 32) == "v" * 1000
        assert cache.get("02" * 32) is MISS
        assert cache.get("03" * 32) is MISS


class TestPlans:
    def test_plan_assembles_in_cell_order(self):
        plan = Plan([cell(SQ, x=2), cell(SQ, x=3)], assemble=tuple)
        assert plan.run() == (4, 9)

    def test_run_plans_slices_and_shares(self, tmp_path):
        shared = cell(SQ, x=9)
        plans = [
            Plan([shared, cell(SQ, x=1)], assemble=list),
            Plan([shared], assemble=list),
        ]
        ex = Executor(cache=RunCache(tmp_path))
        out = run_plans(plans, ex)
        assert out == [[81, 1], [81]]
        # The shared cell computes once; its twin is deduped in-batch.
        assert ex.stats.computed == 2
        assert ex.stats.deduped == 1


SMOKE = ScaleProfile(
    name="smoke", bytes_per_paper_gb=1 << 20, machine_paper_gb=(128, 128)
)


class TestSimCellsDeterministic:
    """Real simulation cells are pure functions of their spec."""

    def test_native_cell_repeatable_and_cacheable(self, tmp_path):
        from repro.experiments.serialize import to_jsonable

        c = cell(
            "repro.experiments.common:run_cell_native",
            workload="svm", policy="ca", scale=SMOKE,
        )
        blob = lambda r: json.dumps(to_jsonable(r), sort_keys=True)
        first = blob(execute([c])[0])
        again = blob(execute([c])[0])
        warm = blob(Executor(cache=RunCache(tmp_path)).run([c])[0])
        hit = Executor(cache=RunCache(tmp_path))
        cached = blob(hit.run([c])[0])
        assert first == again == warm == cached
        assert hit.stats.cache_hits == 1
