"""Kernel ``fast``/``columnar`` vs ``scalar`` engine differential tests.

The batched fault/promotion paths must be *observably identical* to the
per-page reference: same fault counts and latencies, same mapping runs,
same policy decisions, same free memory.  Anything less and the bench's
speedup numbers compare different systems.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.sim.config import PAPER_SCALE, TEST_SCALE, SystemConfig
from repro.sim.machine import build_machine
from repro.vm.flags import DEFAULT_ANON
from repro.workloads import make_workload

ENGINES = ("scalar", "fast", "columnar")


def run_alloc_phase(policy: str, engine: str):
    config = SystemConfig(
        node_pages=(32 * 1024, 32 * 1024), churn_ops=400, engine=engine
    )
    machine = build_machine(policy, config)
    kernel = machine.kernel
    wl = make_workload("svm", TEST_SCALE)
    process = kernel.create_process(wl.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in wl.vma_plans
    ]
    for step in wl.alloc_steps():
        if step.kind != "anon":
            continue
        kernel.touch_range(
            process, vmas[step.index].start_vpn + step.start_page, step.n_pages
        )
    return machine, kernel, process


def digest(machine, kernel, process) -> dict:
    return {
        "major_faults": kernel.major_faults,
        "minor_faults": kernel.minor_faults,
        "tlb_shootdowns": kernel.tlb_shootdowns,
        "free_pages": machine.mem.free_pages,
        "latencies": [round(v, 6) for v in kernel.fault_latencies_us()],
        "runs": process.space.runs.sizes_desc(),
        "resident": process.resident_pages,
        "policy_stats": dict(sorted(vars(machine.policy.stats).items())),
    }


@pytest.mark.parametrize("policy", ["thp", "ingens", "ca"])
def test_alloc_phase_identical(policy):
    digests = {
        engine: digest(*run_alloc_phase(policy, engine)) for engine in ENGINES
    }
    assert digests["scalar"] == digests["fast"]
    assert digests["scalar"] == digests["columnar"]


def test_fork_identical():
    results = {}
    for engine in ENGINES:
        machine, kernel, parent = run_alloc_phase("ca", engine)
        child = kernel.fork(parent)
        first_vma = next(iter(child.space.iter_vmas()))
        kernel.touch_range(child, first_vma.start_vpn, 64)
        results[engine] = {
            "parent_runs": parent.space.runs.sizes_desc(),
            "child_runs": child.space.runs.sizes_desc(),
            "minor_faults": kernel.minor_faults,
            "free_pages": machine.mem.free_pages,
        }
    assert results["scalar"] == results["fast"]
    assert results["scalar"] == results["columnar"]


# -- property sweep: arbitrary touch patterns --------------------------------


def run_touch_pattern(policy: str, engine: str, pattern):
    """Drive an arbitrary (start, length) touch sequence on one VMA."""
    config = SystemConfig(
        node_pages=(8 * 1024, 8 * 1024), churn_ops=100, engine=engine
    )
    machine = build_machine(policy, config)
    kernel = machine.kernel
    process = kernel.create_process("prop")
    vma = kernel.mmap(process, 4096, flags=DEFAULT_ANON, name="heap")
    for start, n_pages in pattern:
        kernel.touch_range(process, vma.start_vpn + start, n_pages)
    return machine, kernel, process


touch_patterns = st.lists(
    st.tuples(st.integers(0, 4095), st.integers(1, 600)).map(
        lambda t: (t[0], min(t[1], 4096 - t[0]))
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=12, deadline=None)
@given(policy=st.sampled_from(["thp", "ingens", "ca"]), pattern=touch_patterns)
def test_engines_identical_under_random_touches(policy, pattern):
    digests = [
        digest(*run_touch_pattern(policy, engine, pattern)) for engine in ENGINES
    ]
    assert digests[0] == digests[1] == digests[2]


# -- paper-scale OOM edge ----------------------------------------------------


def drive_to_oom(engine: str):
    """Run a paper-profile workload into a machine far too small for it."""
    tiny = replace(PAPER_SCALE, machine_paper_gb=(1, 1))
    config = SystemConfig.from_scale(tiny, churn_ops=0, engine=engine)
    machine = build_machine("thp", config, aged=False)
    kernel = machine.kernel
    wl = make_workload("svm", PAPER_SCALE)
    process = kernel.create_process(wl.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in wl.vma_plans
    ]
    steps = 0
    with pytest.raises(OutOfMemoryError):
        for step in wl.alloc_steps():
            if step.kind != "anon":
                continue
            kernel.touch_range(
                process, vmas[step.index].start_vpn + step.start_page, step.n_pages
            )
            steps += 1
    return {
        "steps": steps,
        "major_faults": kernel.major_faults,
        "free_pages": machine.mem.free_pages,
        "resident": process.resident_pages,
    }


def test_paper_scale_oom_edge_identical():
    # A paper-footprint workload against a 2 paper-GB machine must die
    # with a clean OutOfMemoryError at the very same fault in every
    # engine — the batched paths must not overrun or underrun the buddy.
    results = {engine: drive_to_oom(engine) for engine in ENGINES}
    assert results["scalar"] == results["fast"]
    assert results["scalar"] == results["columnar"]
    assert results["scalar"]["steps"] > 0
