"""Kernel ``fast`` vs ``scalar`` engine differential tests.

The batched fault/promotion paths must be *observably identical* to the
per-page reference: same fault counts and latencies, same mapping runs,
same policy decisions, same free memory.  Anything less and the bench's
speedup numbers compare different systems.
"""

import pytest

from repro.sim.config import TEST_SCALE, SystemConfig
from repro.sim.machine import build_machine
from repro.vm.flags import DEFAULT_ANON
from repro.workloads import make_workload


def run_alloc_phase(policy: str, engine: str):
    config = SystemConfig(
        node_pages=(32 * 1024, 32 * 1024), churn_ops=400, engine=engine
    )
    machine = build_machine(policy, config)
    kernel = machine.kernel
    wl = make_workload("svm", TEST_SCALE)
    process = kernel.create_process(wl.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in wl.vma_plans
    ]
    for step in wl.alloc_steps():
        if step.kind != "anon":
            continue
        kernel.touch_range(
            process, vmas[step.index].start_vpn + step.start_page, step.n_pages
        )
    return machine, kernel, process


def digest(machine, kernel, process) -> dict:
    return {
        "major_faults": kernel.major_faults,
        "minor_faults": kernel.minor_faults,
        "tlb_shootdowns": kernel.tlb_shootdowns,
        "free_pages": machine.mem.free_pages,
        "latencies": [round(v, 6) for v in kernel.fault_latencies_us()],
        "runs": process.space.runs.sizes_desc(),
        "resident": process.resident_pages,
        "policy_stats": dict(sorted(vars(machine.policy.stats).items())),
    }


@pytest.mark.parametrize("policy", ["thp", "ingens", "ca"])
def test_alloc_phase_identical(policy):
    digests = {
        engine: digest(*run_alloc_phase(policy, engine))
        for engine in ("scalar", "fast")
    }
    assert digests["scalar"] == digests["fast"]


def test_fork_identical():
    results = {}
    for engine in ("scalar", "fast"):
        machine, kernel, parent = run_alloc_phase("ca", engine)
        child = kernel.fork(parent)
        first_vma = next(iter(child.space.iter_vmas()))
        kernel.touch_range(child, first_vma.start_vpn, 64)
        results[engine] = {
            "parent_runs": parent.space.runs.sizes_desc(),
            "child_runs": child.space.runs.sizes_desc(),
            "minor_faults": kernel.minor_faults,
            "free_pages": machine.mem.free_pages,
        }
    assert results["scalar"] == results["fast"]
