"""Tests for the multi-programmed interleaving API."""

import pytest

from repro.sim.config import TEST_SCALE
from repro.sim.machine import build_machine
from repro.sim.multiprog import guest_instances, interleave, native_instances
from repro.units import order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.workloads import make_workload
from tests.policies.conftest import SMALL


class TestNativeInterleave:
    def test_two_instances_complete(self):
        machine = build_machine("ca", SMALL)
        workloads = [make_workload("svm", TEST_SCALE, seed=i) for i in range(2)]
        instances = native_instances(machine, workloads)
        interleave(instances, sample_every=8)
        for instance, wl in zip(instances, workloads):
            assert instance.final.footprint_pages >= wl.footprint_pages
            assert len(instance.samples) > 1

    def test_daemons_invoked(self):
        machine = build_machine("ranger", SMALL)
        calls = []
        workloads = [make_workload("svm", TEST_SCALE)]
        instances = native_instances(machine, workloads)
        interleave(instances, sample_every=4, daemons=lambda: calls.append(1))
        assert calls

    def test_instances_isolated(self):
        machine = build_machine("ca", SMALL)
        workloads = [make_workload("svm", TEST_SCALE, seed=i) for i in range(2)]
        instances = native_instances(machine, workloads)
        interleave(instances, sample_every=8)
        procs = list(machine.kernel.iter_processes())
        runs_a = procs[0].space.runs.snapshot()
        runs_b = procs[1].space.runs.snapshot()
        pfns_a = {(r.start_pfn, r.end_pfn) for r in runs_a}
        for rb in runs_b:
            for sa, ea in pfns_a:
                assert rb.end_pfn <= sa or rb.start_pfn >= ea

    def test_uneven_stream_lengths(self):
        machine = build_machine("thp", SMALL)
        workloads = [
            make_workload("svm", TEST_SCALE),
            make_workload("tlb_friendly", TEST_SCALE),
        ]
        instances = native_instances(machine, workloads)
        interleave(instances, sample_every=16)
        for instance, wl in zip(instances, workloads):
            assert instance.final.touched_pages >= 0
            assert instance.final.footprint_pages >= wl.footprint_pages


class TestGuestInterleave:
    def test_two_vms(self):
        host = build_machine("ca", SMALL)
        top = order_pages(SMALL.max_order)
        vm_pages = (sum(SMALL.node_pages) // 2) // top * top
        vms = [VirtualMachine(host, vm_pages, "ca", name=f"vm{i}") for i in range(2)]
        workloads = [make_workload("svm", TEST_SCALE, seed=i) for i in range(2)]
        instances = guest_instances(vms, workloads)
        interleave(instances, sample_every=16)
        for instance, wl in zip(instances, workloads):
            assert instance.final.footprint_pages >= wl.footprint_pages
