"""Documentation consistency: the README's code must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _code_blocks(language: str) -> list[str]:
    text = README.read_text()
    return re.findall(rf"```{language}\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_quickstart_snippet_runs(self):
        blocks = [b for b in _code_blocks("python") if "run_native" in b]
        assert blocks, "README lost its quickstart snippet"
        # Executing the snippet verbatim must work end to end.
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_documented_modules_exist(self):
        import importlib

        text = README.read_text()
        for module in re.findall(r"python -m (repro\.experiments\.\w+)", text):
            importlib.import_module(module)

    def test_documented_docs_exist(self):
        root = README.parent
        for rel in re.findall(r"\]\((docs/[\w.-]+\.md)\)", README.read_text()):
            assert (root / rel).exists(), f"README links missing doc {rel}"

    def test_examples_listed_exist(self):
        root = README.parent
        for rel in re.findall(r"`(examples/[\w.-]+\.py)`", README.read_text()):
            assert (root / rel).exists(), f"README lists missing {rel}"

    def test_design_and_experiments_docs_exist(self):
        root = README.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md", "LICENSE", "CONTRIBUTING.md"):
            assert (root / name).exists()
