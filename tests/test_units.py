"""Unit tests for address-space units and helpers."""

import pytest

from repro import units


class TestSizes:
    def test_page_constants(self):
        assert units.PAGE_SIZE == 4096
        assert units.HUGE_PAGES == 512
        assert units.HUGE_SIZE == 2 * units.MIB

    def test_pages_rounds_up(self):
        assert units.pages(1) == 1
        assert units.pages(4096) == 1
        assert units.pages(4097) == 2
        assert units.pages(units.GIB) == 262144

    def test_bytes_of(self):
        assert units.bytes_of(512) == 2 * units.MIB


class TestAlignment:
    def test_align_down(self):
        assert units.align_down(1000, 512) == 512
        assert units.align_down(512, 512) == 512
        assert units.align_down(0, 512) == 0

    def test_align_up(self):
        assert units.align_up(1, 512) == 512
        assert units.align_up(512, 512) == 512

    def test_is_aligned(self):
        assert units.is_aligned(1024, 512)
        assert not units.is_aligned(1025, 512)


class TestOrders:
    def test_order_pages(self):
        assert units.order_pages(0) == 1
        assert units.order_pages(9) == 512
        assert units.order_pages(10) == 1024

    def test_order_for_pages(self):
        assert units.order_for_pages(1) == 0
        assert units.order_for_pages(2) == 1
        assert units.order_for_pages(3) == 2
        assert units.order_for_pages(512) == 9
        assert units.order_for_pages(513) == 10

    def test_order_for_zero_rejected(self):
        with pytest.raises(ValueError):
            units.order_for_pages(0)


class TestHumanPages:
    def test_rendering(self):
        assert units.human_pages(1) == "4.0K"
        assert units.human_pages(512) == "2.0M"
        assert units.human_pages(262144) == "1.0G"
        assert units.human_pages(0) == "0B"


class TestErrorsHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors

        for name in (
            "OutOfMemoryError", "BuddyError", "MappingError",
            "AddressSpaceError", "ConfigError", "VirtualizationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_flags_writable(self):
        from repro.vm.flags import VmaFlags

        assert (VmaFlags.READ | VmaFlags.WRITE).writable
        assert not VmaFlags.READ.writable
