"""Sweep outcomes through the archival paths (satellite coverage).

The sweep explorer leans on two older pieces of plumbing:
``experiments.serialize`` archives outcomes next to EXPERIMENTS.md and
``experiments.charts`` renders grid-shaped data in the terminal.  These
tests pin the contract the sweep layer now depends on: a full sweep
outcome round-trips byte-stably through save/load, and the charts
render policy x scheme grids without mangling shape.
"""

import json

import pytest

from repro.experiments.charts import (
    bar_chart,
    grouped_bar_chart,
    stacked_fraction_chart,
)
from repro.experiments.serialize import (
    load_result,
    save_result,
    to_jsonable,
)
from repro.sim.jobs import Executor
from repro.sweep.grid import GridPoint
from repro.sweep.runner import SweepRun
from tests.sweep.fakes import ToySpec


@pytest.fixture(scope="module")
def outcome() -> dict:
    executor = Executor(jobs=1)
    try:
        return SweepRun(spec=ToySpec(), executor=executor).run()
    finally:
        executor.close()


class TestSerializeRoundTrip:
    def test_outcome_is_a_fixed_point(self, outcome):
        # A sweep outcome is already plain data: serialization must be
        # the identity, so archived and served bytes never diverge.
        assert to_jsonable(outcome) == outcome

    def test_save_load_byte_stable(self, outcome, tmp_path):
        first = save_result(tmp_path / "sweep.json", "sweep", outcome,
                            scale="quick")
        loaded = load_result(first)
        assert loaded["experiment"] == "sweep"
        assert loaded["meta"] == {"scale": "quick"}
        assert loaded["result"] == outcome
        # Re-archiving the loaded payload changes nothing.
        second = save_result(tmp_path / "again.json", "sweep",
                             loaded["result"], scale="quick")
        assert first.read_bytes() == second.read_bytes()

    def test_grid_point_dataclass_serializes(self):
        point = GridPoint(policy="ca", scheme="spot", workload="svm")
        assert to_jsonable(point) == point.as_dict()

    def test_tuple_keyed_grid_flattens(self):
        # The (workload, policy) tuple keys the figure experiments use
        # flatten to the same "w|p" spelling sweep CDFs use natively.
        grid = {("svm", "ca"): 0.1, ("svm", "thp"): 0.2}
        out = to_jsonable(grid)
        assert out == {"svm|ca": 0.1, "svm|thp": 0.2}
        json.dumps(out)


class TestGridShapedCharts:
    def test_frontier_bar_chart(self, outcome):
        labels = [m["label"] for m in outcome["frontier"]]
        values = [m["overhead"] for m in outcome["frontier"]]
        chart = bar_chart(labels, values, title="frontier", log=True)
        lines = chart.splitlines()
        assert lines[0] == "frontier"
        assert lines[-1].endswith("(log scale)")
        assert len(lines) == len(labels) + 2
        for label in labels:
            assert any(label in line for line in lines)

    def test_policy_by_scheme_grouped_chart(self, outcome):
        # Pivot the flat cell list into the grid the explorer shows:
        # one group per policy, one series per scheme.
        policies = [f"p{i}" for i in range(3)]
        series = {
            scheme: [
                next(m["overhead"] for m in outcome["cells"]
                     if m["point"]["policy"] == policy
                     and m["point"]["scheme"] == scheme)
                for policy in policies
            ]
            for scheme in ("paging", "spot")
        }
        chart = grouped_bar_chart(policies, series, title="overheads")
        lines = chart.splitlines()
        assert lines[0] == "overheads"
        # One header line per group plus one bar line per series.
        assert sum(1 for l in lines if l.endswith(":")) == 3
        assert sum(1 for l in lines if "|" in l) == 3 * 2

    def test_source_breakdown_stacks_to_width(self):
        chart = stacked_fraction_chart(
            ["p0", "p1"],
            {"computed": [4, 0], "cached": [0, 4], "shared": [2, 2]},
            width=30,
        )
        bars = [l for l in chart.splitlines() if l.rstrip().endswith("|")]
        assert len(bars) == 2
        for bar in bars:
            fill = bar.split("| ", 1)[1].rstrip("|")
            assert len(fill) == 30
