"""Smoke tests for the experiment drivers.

Each driver runs with a reduced configuration (small scale, workload
and policy subsets) and must produce well-formed results and a
printable report.  Shape assertions live in ``benchmarks/``; here we
check plumbing.
"""

import pytest

from repro.experiments import (
    fig1,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table5,
    table6,
    table7,
)
from repro.sim.config import MIB, ScaleProfile

#: Small-but-sufficient scale: machines hold one workload comfortably.
SMOKE = ScaleProfile(name="smoke", bytes_per_paper_gb=MIB, machine_paper_gb=(128, 128))
ONE = ("svm",)
TWO = ("svm", "pagerank")


class TestContiguityExperiments:
    def test_fig1b(self):
        r = fig1.run_fig1b(scale=SMOKE, runs=3)
        assert set(r.coverage_by_run) == {"eager", "ca"}
        assert all(len(s) == 3 for s in r.coverage_by_run.values())
        assert "run3" in r.report()

    def test_fig1c(self):
        r = fig1.run_fig1c(scale=SMOKE, steady_epochs=3)
        assert set(r.series_by_policy) == {"ranger", "ca"}
        assert "cov32" in r.report()

    def test_fig7(self):
        r = fig7.run(scale=SMOKE, workloads=ONE, policies=("thp", "ca"),
                     steady_epochs=2)
        assert r.row("svm", "ca").final.total_runs >= 1
        assert r.mappings_99("ca") >= 1
        assert "svm" in r.report()

    def test_fig8(self):
        r = fig8.run(scale=SMOKE, pressures=(0.0, 0.3), workloads=ONE,
                     policies=("thp", "ca"))
        c32, c128, m99 = r.geomean_row(0.3, "ca")
        assert 0 < c32 <= 1 and 0 < c128 <= 1 and m99 >= 1
        assert "hog-30" in r.report()

    def test_fig9(self):
        r = fig9.run(scale=SMOKE, workloads=ONE)
        assert set(r.histograms) == {"thp", "ca"}
        assert "huge" in r.report()

    def test_fig10(self):
        r = fig10.run(scale=SMOKE, policies=("thp", "ca"))
        assert len(r.series) == 4
        assert all(series for series in r.series.values())

    def test_fig11(self):
        r = fig11.run(scale=SMOKE, workloads=ONE, policies=("thp", "ca"))
        assert r.normalized[("svm", "thp")] == pytest.approx(1.0)
        assert "mean" in r.report()

    def test_fig12(self):
        r = fig12.run(scale=SMOKE, workloads=ONE, policies=("ca",))
        assert ("svm", "ca") in r.runs
        assert r.mean_coverage_32("ca") > 0


class TestTableExperiments:
    def test_table1(self):
        r = table1.run(scale=SMOKE, workloads=ONE, policies=("ca",))
        row = r.row("svm", "ca")
        assert row.ranges >= 1
        assert row.vhc_entries >= row.ranges
        assert "geomean" in r.report()

    def test_table5(self):
        r = table5.run(scale=SMOKE, workloads=ONE, policies=("thp", "eager"))
        assert r.rows["thp"].total_faults > r.rows["eager"].total_faults
        assert "p99" in r.report()

    def test_table6(self):
        r = table6.run(scale=SMOKE, workloads=ONE, policies=("thp", "eager"))
        assert ("svm", "eager") in r.bloat
        assert r.touched["svm"] > 0
        assert "MB" in r.report()

    def test_table7(self):
        r = table7.run(scale=SMOKE, workloads=TWO, trace_len=20_000)
        g = r.geomean_row()
        assert g["spot_usl_per_instruction"] >= 0
        assert "geomean" in r.report()


class TestHardwareExperiments:
    def test_fig13(self):
        r = fig13.run(scale=SMOKE, workloads=ONE, trace_len=20_000)
        for bar in fig13.BARS:
            assert ("svm", bar) in r.overheads
            assert r.overheads[("svm", bar)] >= 0
        assert "mean" in r.report()

    def test_fig14(self):
        r = fig14.run(scale=SMOKE, workloads=ONE, trace_len=20_000)
        assert abs(sum(r.breakdown["svm"].values()) - 1.0) < 1e-9
        assert "correct" in r.report()


class TestExtensionExperiments:
    def test_ext_vhc(self):
        from repro.experiments import ext_vhc

        r = ext_vhc.run(scale=SMOKE, workloads=ONE, trace_len=20_000)
        row = r.rows["svm"]
        assert 0 <= row.vhc_miss_rate <= 1
        assert row.anchor_distance >= 1
        assert "anchor" in r.report()

    def test_ext_multivm(self):
        from repro.experiments import ext_multivm

        r = ext_multivm.run(scale=SMOKE, host_policies=("ca",))
        assert ("ca", 0) in r.mappings_99
        assert "vm" in r.report()
