"""Tests for the small result-object helpers experiments expose."""

import pytest

from repro.experiments.fig1 import Fig1bResult, Fig1cResult
from repro.experiments.fig13 import BARS, Fig13Result
from repro.experiments.table1 import Table1Result, Table1Row


class TestFig1Helpers:
    def test_fig1b_decay(self):
        r = Fig1bResult(coverage_by_run={"eager": [1.0, 0.6], "ca": [1.0, 0.9]})
        assert r.decay("eager") == pytest.approx(0.4)
        assert r.decay("ca") == pytest.approx(0.1)
        assert "run2" in r.report()

    def test_fig1c_allocation_end_coverage(self):
        r = Fig1cResult(series_by_policy={
            "ca": [(100, 0.5), (200, 0.8), (200, 0.9)],
        })
        # The first sample at peak touched pages is the allocation end.
        assert r.coverage_at_allocation_end("ca") == pytest.approx(0.8)


class TestFig13Helpers:
    def test_mean_over_workloads(self):
        r = Fig13Result()
        for wl, v in (("a", 0.1), ("b", 0.3)):
            for bar in BARS:
                r.overheads[(wl, bar)] = v
        assert r.mean("SpOT") == pytest.approx(0.2)


class TestTable1Helpers:
    def test_row_lookup_and_missing(self):
        r = Table1Result(rows=[Table1Row("svm", "ca", 3, 9)])
        assert r.row("svm", "ca").vhc_entries == 9
        with pytest.raises(KeyError):
            r.row("svm", "thp")

    def test_geomean(self):
        r = Table1Result(rows=[
            Table1Row("a", "ca", 2, 4),
            Table1Row("b", "ca", 8, 16),
        ])
        g_ranges, g_vhc = r.geomean("ca")
        assert g_ranges == pytest.approx(4.0)
        assert g_vhc == pytest.approx(8.0)
