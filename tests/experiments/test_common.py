"""Unit tests for the shared experiment plumbing."""

import pytest

from repro.experiments import common
from repro.sim.config import TEST_SCALE


class TestFormatTable:
    def test_alignment(self):
        out = common.format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert lines[0].endswith("bb")
        assert lines[1].startswith("-")
        # Columns right-justified: the widest cell sets the width.
        assert lines[2].index("1") >= 2

    def test_empty_rows(self):
        out = common.format_table(("x",), [])
        assert "x" in out

    def test_pct(self):
        assert common.pct(0.1234) == "12.3%"
        assert common.pct(0) == "0.0%"


class TestGeomean:
    def test_basic(self):
        assert common.geomean([2, 8]) == pytest.approx(4.0)

    def test_empty(self):
        assert common.geomean([]) == 0.0

    def test_zero_floored(self):
        assert common.geomean([0.0, 4.0]) > 0


class TestBuilders:
    def test_native_machine_applies_policy_config(self):
        m = common.native_machine("ca", TEST_SCALE)
        assert m.config.sorted_max_order
        assert m.policy.name == "ca"

    def test_virtual_machine_spans_host(self):
        vm = common.virtual_machine("thp", "ca", TEST_SCALE)
        assert vm.guest_pages == sum(vm.host.config.node_pages)
        assert vm.guest_kernel.policy.name == "ca"
        assert vm.host.policy.name == "thp"

    def test_workload_builder(self):
        wl = common.workload("svm", TEST_SCALE, seed=3)
        assert wl.seed == 3

    def test_suite_is_table_iii_order(self):
        assert common.SUITE == ("svm", "pagerank", "hashjoin", "xsbench", "bt")


class TestResultDescribe:
    def test_run_result_describe(self):
        from repro.metrics.contiguity import ContiguitySample
        from repro.sim.results import RunResult

        r = RunResult(
            workload="svm", policy="ca", virtualized=True,
            footprint_pages=100,
            final=ContiguitySample(100, 100, 0.5, 0.9, 7, 9),
        )
        text = r.describe()
        assert "svm" in text and "virt" in text and "7" in text


class TestKernelTick:
    def test_tick_fires_every_n_faults(self):
        from repro.policies.base import PlacementPolicy
        from repro.sim.config import SystemConfig
        from repro.sim.machine import Machine

        class CountingPolicy(PlacementPolicy):
            name = "counting"
            ticks = 0

            def tick(self, kernel):
                type(self).ticks += 1

        cfg = SystemConfig(node_pages=(4096,), tick_every_faults=8,
                           churn_ops=0, reserve_fraction=0.0)
        machine = Machine(cfg, CountingPolicy(), aged=False)
        kern = machine.kernel
        proc = kern.create_process("t")
        vma = kern.mmap(proc, 64)
        for i in range(32):
            kern.fault(proc, vma.start_vpn + i)
        assert CountingPolicy.ticks == 4
