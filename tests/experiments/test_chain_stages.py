"""Stage-checkpointed chains must be indistinguishable from monolithic.

Every aging-VM chain experiment now splits into per-workload stages
whose VM state is pickled, digested and cached between cells
(:mod:`repro.experiments.common`).  These tests pin the contract:

- *determinism* — the staged plan's assembled result serializes
  byte-identically to the monolithic single-cell chain, for every
  chain experiment;
- *checkpoint stability* — re-running a stage reproduces the same
  state digest bit for bit (the cache key of every downstream stage
  depends on it transitively);
- *resume* — executing a chain prefix, then the full chain against the
  same cache, recomputes only the unfinished suffix;
- *picklability* — a shadow-paging VM survives the checkpoint
  round-trip with its pager hooks intact.

Two-workload chains at the smoke scale keep this fast while still
crossing a checkpoint boundary.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments import common
from repro.experiments.serialize import to_jsonable
from repro.sim.cache import RunCache
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor

SMOKE = ScaleProfile(
    name="smoke", bytes_per_paper_gb=1 << 20, machine_paper_gb=(128, 128)
)
WORKLOADS = ("svm", "pagerank")
TRACE_LEN = 5_000

#: (module name, plan kwargs) for every chain experiment.
CHAIN_EXPERIMENTS = (
    "fig13",
    "fig14",
    "table7",
    "ext_shadow",
    "ext_vhc",
)


def _blob(result) -> str:
    return json.dumps(to_jsonable(result), sort_keys=True)


def _plan(name: str, staged: bool):
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    return module.plan(
        scale=SMOKE, workloads=WORKLOADS, trace_len=TRACE_LEN, staged=staged
    )


class TestStagedMatchesMonolithic:
    @pytest.mark.parametrize("name", CHAIN_EXPERIMENTS)
    def test_byte_identical(self, name):
        staged = _plan(name, staged=True).run(Executor())
        monolithic = _plan(name, staged=False).run(Executor())
        assert _blob(staged) == _blob(monolithic)


class TestCheckpoints:
    def test_state_digest_is_reproducible(self):
        plan = _plan("fig14", staged=True)
        first = Executor().run(plan.cells)
        again = Executor().run(plan.cells)
        assert [s.state_digest for s in first] == [
            s.state_digest for s in again
        ]
        assert all(s.state == t.state for s, t in zip(first, again))

    def test_checkpoint_round_trips_a_shadow_vm(self):
        from repro.virt.shadow import attach_shadow_paging

        vm = common.virtual_machine("ca", "ca", SMOKE)
        pager = attach_shadow_paging(vm)
        blob, digest = common.checkpoint_vm(vm)
        assert digest == common.checkpoint_vm(vm)[1]
        revived = pickle.loads(blob)
        # The pager rode along, hooks and all.
        assert revived.shadow_pager is not None
        assert (revived.shadow_pager.stats.splintered_leaves
                == pager.stats.splintered_leaves)

    def test_stage_payloads_unwrap_in_order(self):
        stages = [
            common.ChainStage(payload=i, state=b"", state_digest="")
            for i in range(3)
        ]
        assert common.stage_payloads(stages) == [0, 1, 2]


class TestResume:
    def test_killed_chain_recomputes_only_the_suffix(self, tmp_path):
        plan = _plan("ext_vhc", staged=True)
        assert len(plan.cells) == len(WORKLOADS)
        # The "crash": only the first stage completed before the kill.
        interrupted = Executor(cache=RunCache(tmp_path))
        interrupted.run(plan.cells[:1])
        assert interrupted.stats.computed == 1
        # The rerun resumes from its checkpoint.
        resumed = Executor(cache=RunCache(tmp_path))
        result = plan.assemble(resumed.run(plan.cells))
        assert resumed.stats.cache_hits == 1
        assert resumed.stats.computed == len(WORKLOADS) - 1
        # And the resumed result is the monolithic result, bit for bit.
        assert _blob(result) == _blob(_plan("ext_vhc", staged=False).run(
            Executor()
        ))

    def test_fig13_fig14_table7_share_the_ca_chain(self, tmp_path):
        # The three CA+CA consumers build identical stage cells, so a
        # suite run computes that chain once.
        cache = RunCache(tmp_path)
        Executor(cache=cache).run(_plan("fig14", staged=True).cells)
        for name in ("fig13", "table7"):
            ex = Executor(cache=RunCache(tmp_path))
            plan = _plan(name, staged=True)
            plan.assemble(ex.run(plan.cells))
            # Every CA+CA stage is a hit; only other cells compute.
            assert ex.stats.cache_hits >= len(WORKLOADS)
