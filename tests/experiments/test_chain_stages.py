"""Stage-checkpointed chains must be indistinguishable from monolithic.

Every aging-VM chain experiment now splits into per-workload stages
whose VM state is framed (RPT1 delta checkpoints), digested and cached
between cells (:mod:`repro.experiments.common`).  These tests pin the
contract:

- *determinism* — the staged plan's assembled result serializes
  byte-identically to the monolithic single-cell chain, for every
  chain experiment;
- *checkpoint stability* — re-running a stage reproduces the same
  state digest bit for bit (the cache key of every downstream stage
  depends on it transitively);
- *resume* — executing a chain prefix, then the full chain against the
  same cache, recomputes only the unfinished suffix;
- *picklability* — a shadow-paging VM survives the checkpoint
  round-trip with its pager hooks intact.

Two-workload chains at the smoke scale keep this fast while still
crossing a checkpoint boundary.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import common
from repro.experiments.serialize import to_jsonable
from repro.sim import transport
from repro.sim.cache import RunCache
from repro.sim.config import ScaleProfile
from repro.sim.jobs import Executor

SMOKE = ScaleProfile(
    name="smoke", bytes_per_paper_gb=1 << 20, machine_paper_gb=(128, 128)
)
WORKLOADS = ("svm", "pagerank")
TRACE_LEN = 5_000

#: (module name, plan kwargs) for every chain experiment.
CHAIN_EXPERIMENTS = (
    "fig13",
    "fig14",
    "table7",
    "ext_shadow",
    "ext_vhc",
)


def _blob(result) -> str:
    return json.dumps(to_jsonable(result), sort_keys=True)


def _plan(name: str, staged: bool):
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    return module.plan(
        scale=SMOKE, workloads=WORKLOADS, trace_len=TRACE_LEN, staged=staged
    )


class TestStagedMatchesMonolithic:
    @pytest.mark.parametrize("name", CHAIN_EXPERIMENTS)
    def test_byte_identical(self, name):
        staged = _plan(name, staged=True).run(Executor())
        monolithic = _plan(name, staged=False).run(Executor())
        assert _blob(staged) == _blob(monolithic)


class TestCheckpoints:
    def test_state_digest_is_reproducible(self):
        plan = _plan("fig14", staged=True)
        first = Executor().run(plan.cells)
        again = Executor().run(plan.cells)
        assert [s.state_digest for s in first] == [
            s.state_digest for s in again
        ]
        assert all(s.state == t.state for s, t in zip(first, again))

    def test_checkpoint_round_trips_a_shadow_vm(self):
        from repro.virt.shadow import attach_shadow_paging

        vm = common.virtual_machine("ca", "ca", SMOKE)
        pager = attach_shadow_paging(vm)
        blob, digest = common.checkpoint_vm(vm)
        assert transport.is_framed(blob)
        assert digest == common.checkpoint_vm(vm)[1]
        revived = transport.loads(blob)
        # The pager rode along, hooks and all.
        assert revived.shadow_pager is not None
        assert (revived.shadow_pager.stats.splintered_leaves
                == pager.stats.splintered_leaves)

    def test_delta_checkpoint_digest_matches_full(self):
        """A stage written as a delta carries the same logical digest —
        and resumes to the same VM — as the full framing of the same
        state, for every kernel engine."""
        for engine in ("fast", "scalar", "columnar"):
            vm = common.virtual_machine("ca", "ca", SMOKE, engine=engine)
            blob0, digest0 = common.checkpoint_vm(vm)
            stage0 = common.ChainStage(
                payload=None, state=blob0, state_digest=digest0
            )
            # Age the VM one workload past the checkpoint.
            from repro.sim.runner import RunOptions, run_virtualized
            from repro.workloads import make_workload

            r = run_virtualized(
                vm, make_workload("svm", SMOKE),
                RunOptions(sample_every=None, exit_after=False),
            )
            vm.guest_exit_process(r.process)
            vm.guest_kernel.drop_caches()
            delta_blob, delta_digest = common.checkpoint_vm(vm, (stage0,))
            full_blob, full_digest = common.checkpoint_vm(vm)
            assert delta_digest == full_digest, engine
            assert len(delta_blob) <= len(full_blob), engine
            # Both resume to the same logical state.
            stage1 = common.ChainStage(
                payload=None, state=delta_blob, state_digest=delta_digest,
                base_digest=digest0,
            )
            resumed_delta = common.resume_vm(stage0, stage1)
            resumed_full = transport.loads(full_blob)
            assert (common.checkpoint_vm(resumed_delta)[1]
                    == common.checkpoint_vm(resumed_full)[1]), engine

    def test_stage_payloads_unwrap_in_order(self):
        stages = [
            common.ChainStage(payload=i, state=b"", state_digest="")
            for i in range(3)
        ]
        assert common.stage_payloads(stages) == [0, 1, 2]


class TestResume:
    def test_killed_chain_recomputes_only_the_suffix(self, tmp_path):
        plan = _plan("ext_vhc", staged=True)
        assert len(plan.cells) == len(WORKLOADS)
        # The "crash": only the first stage completed before the kill.
        interrupted = Executor(cache=RunCache(tmp_path))
        interrupted.run(plan.cells[:1])
        assert interrupted.stats.computed == 1
        # The rerun resumes from its checkpoint.
        resumed = Executor(cache=RunCache(tmp_path))
        result = plan.assemble(resumed.run(plan.cells))
        assert resumed.stats.cache_hits == 1
        assert resumed.stats.computed == len(WORKLOADS) - 1
        # And the resumed result is the monolithic result, bit for bit.
        assert _blob(result) == _blob(_plan("ext_vhc", staged=False).run(
            Executor()
        ))

    def test_fig13_fig14_table7_share_the_ca_chain(self, tmp_path):
        # The three CA+CA consumers build identical stage cells, so a
        # suite run computes that chain once.
        cache = RunCache(tmp_path)
        Executor(cache=cache).run(_plan("fig14", staged=True).cells)
        for name in ("fig13", "table7"):
            ex = Executor(cache=RunCache(tmp_path))
            plan = _plan(name, staged=True)
            plan.assemble(ex.run(plan.cells))
            # Every CA+CA stage is a hit; only other cells compute.
            assert ex.stats.cache_hits >= len(WORKLOADS)
