"""Every experiment's result type survives the serialize/cache paths.

One shared orchestrator pass runs a reduced plan for each of the 17
result types (same scale and subsets as the smoke tests), then each
result must:

- round-trip through ``to_jsonable`` + ``json.dumps``;
- come back byte-identical from the content-addressed cache on a warm
  pass with zero cells recomputed.
"""

import json

import pytest

from repro.experiments import (
    ext_multivm,
    ext_shadow,
    ext_vhc,
    fig1,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table5,
    table6,
    table7,
)
from repro.experiments.serialize import to_jsonable
from repro.sim.cache import RunCache
from repro.sim.config import MIB, ScaleProfile
from repro.sim.jobs import Executor, run_plans

SMOKE = ScaleProfile(name="smoke", bytes_per_paper_gb=MIB, machine_paper_gb=(128, 128))
ONE = ("svm",)
TWO = ("svm", "pagerank")

#: result_key -> reduced plan factory (mirrors the smoke-test configs).
PLANS = {
    "fig1b": lambda: fig1.plan_fig1b(scale=SMOKE, runs=3),
    "fig1c": lambda: fig1.plan_fig1c(scale=SMOKE, steady_epochs=3),
    "fig7": lambda: fig7.plan(SMOKE, ONE, ("thp", "ca"), steady_epochs=2),
    "fig8": lambda: fig8.plan(SMOKE, (0.0, 0.3), ("thp", "ca"), ONE),
    "fig9": lambda: fig9.plan(SMOKE, workloads=ONE),
    "fig10": lambda: fig10.plan(SMOKE, policies=("thp", "ca")),
    "fig11": lambda: fig11.plan(SMOKE, ONE, ("thp", "ca")),
    "fig12": lambda: fig12.plan(SMOKE, ONE, ("ca",)),
    "fig13": lambda: fig13.plan(SMOKE, ONE, trace_len=20_000),
    "fig14": lambda: fig14.plan(SMOKE, ONE, trace_len=20_000),
    "table1": lambda: table1.plan(SMOKE, ONE, ("ca",)),
    "table5": lambda: table5.plan(SMOKE, ONE, ("thp", "eager")),
    "table6": lambda: table6.plan(SMOKE, ONE, ("thp", "eager")),
    "table7": lambda: table7.plan(SMOKE, TWO, trace_len=20_000),
    "ext_shadow": lambda: ext_shadow.plan(SMOKE, ONE, trace_len=20_000),
    "ext_multivm": lambda: ext_multivm.plan(SMOKE, host_policies=("ca",)),
    "ext_vhc": lambda: ext_vhc.plan(SMOKE, ONE, trace_len=20_000),
}


def _blobs(cache: RunCache | None) -> tuple[dict[str, str], Executor]:
    executor = Executor(cache=cache)
    results = run_plans([factory() for factory in PLANS.values()], executor)
    blobs = {
        key: json.dumps(to_jsonable(result), sort_keys=True)
        for key, result in zip(PLANS, results)
    }
    return blobs, executor


@pytest.fixture(scope="module")
def cold_pass(tmp_path_factory):
    root = tmp_path_factory.mktemp("cells")
    blobs, executor = _blobs(RunCache(root))
    return root, blobs, executor.stats


@pytest.mark.parametrize("key", sorted(PLANS))
def test_result_roundtrips(cold_pass, key):
    _, blobs, _ = cold_pass
    parsed = json.loads(blobs[key])
    assert parsed  # non-empty result payload
    assert json.dumps(parsed, sort_keys=True) == blobs[key]


def test_warm_pass_is_byte_identical_and_all_cached(cold_pass):
    root, cold_blobs, cold_stats = cold_pass
    warm_blobs, warm = _blobs(RunCache(root))
    assert warm_blobs == cold_blobs
    assert warm.stats.computed == 0
    assert warm.stats.cache_hits > 0
    assert (
        warm.stats.cache_hits + warm.stats.deduped == cold_stats.submitted
    )
