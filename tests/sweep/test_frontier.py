"""Pareto exactness, metric extraction and CDF shape — all on fakes."""

import json

import pytest

from repro.sweep.frontier import (
    contiguity_cdf,
    pareto_frontier,
    point_metrics,
    walk_costs,
    walk_cycle_summary,
)
from repro.sweep.grid import SCHEMES, GridPoint
from tests.sweep.fakes import toy_native, toy_sim


def m(label: str, x: float, y: float) -> dict:
    return {"label": label, "overhead": x, "bloat_fraction": y}


class TestParetoFrontier:
    def test_dominated_points_drop(self):
        front = pareto_frontier([
            m("a", 0.1, 0.5), m("b", 0.5, 0.1),
            m("dominated", 0.5, 0.5), m("worst", 0.9, 0.9),
        ])
        assert [p["label"] for p in front] == ["a", "b"]

    def test_single_best_dominates_all(self):
        front = pareto_frontier([
            m("best", 0.1, 0.1), m("a", 0.2, 0.2), m("b", 0.3, 0.15),
        ])
        assert [p["label"] for p in front] == ["best"]

    def test_duplicates_all_survive(self):
        front = pareto_frontier([m("a", 0.2, 0.2), m("b", 0.2, 0.2)])
        assert [p["label"] for p in front] == ["a", "b"]

    def test_partial_tie_dominates(self):
        # Equal x, strictly better y: "lo" dominates "hi".
        front = pareto_frontier([m("hi", 0.2, 0.4), m("lo", 0.2, 0.1)])
        assert [p["label"] for p in front] == ["lo"]

    def test_ordering_is_ascending_xy(self):
        front = pareto_frontier([
            m("right", 0.9, 0.0), m("left", 0.0, 0.9), m("mid", 0.4, 0.4),
        ])
        assert [p["label"] for p in front] == ["left", "mid", "right"]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestPointMetrics:
    def test_extraction(self):
        native = toy_native(workload="w", policy="p1")
        sims = toy_sim(workload="w", policy="p1")
        point = GridPoint(policy="p1", scheme="vrmm", workload="w")
        out = point_metrics(point, native, sims, walk_costs())
        assert out["label"] == "w/p1/vrmm"
        assert out["overhead"] == out["overheads"]["vrmm"]
        assert set(out["overheads"]) == set(SCHEMES)
        assert out["bloat_fraction"] == pytest.approx(
            native.bloat_pages / native.touched_pages
        )
        assert out["mappings_99"] == 63
        assert "spot_breakdown" not in out
        json.dumps(out)  # fully serializable

    def test_spot_carries_breakdown(self):
        point = GridPoint(policy="p0", scheme="spot", workload="w")
        out = point_metrics(point, toy_native(workload="w", policy="p0"),
                            toy_sim(workload="w", policy="p0"))
        assert out["spot_breakdown"] == {"l1_range_hits": 0.75,
                                         "l2_walks": 0.25}

    def test_unknown_scheme_raises(self):
        point = GridPoint(policy="p0", scheme="telepathy", workload="w")
        with pytest.raises(KeyError):
            point_metrics(point, toy_native(workload="w", policy="p0"),
                          toy_sim(workload="w", policy="p0"))


class TestContiguityCdf:
    def test_monotonic_and_capped(self):
        cdf = contiguity_cdf(toy_native(workload="w", policy="p0"))
        coverages = [row["coverage"] for row in cdf]
        assert coverages == sorted(coverages)
        assert all(0.0 <= c <= 1.0 for c in coverages)
        # 600/1000 covered by the single largest mapping.
        assert cdf[0] == {"mappings": 1, "coverage": 0.6}

    def test_stops_once_fully_covered(self):
        native = toy_native(workload="w", policy="p0")
        native.run_sizes = (1000,)
        cdf = contiguity_cdf(native)
        assert cdf[-1]["coverage"] == 1.0
        assert len(cdf) == 1  # no padded tail after full coverage


class TestWalkCycleSummary:
    def test_summary_fields(self):
        sims = toy_sim(workload="w", policy="p2")
        out = walk_cycle_summary(sims, walk_costs())
        assert out["walks"] == 40
        assert out["measured_avg_walk_cycles"] == 22.0
        assert out["native_4k_walk_cycles"] > 0

    def test_measured_omitted_when_absent(self):
        sims = toy_sim(workload="w", policy="p0")
        sims[0].measured_avg_walk_cycles = None
        assert "measured_avg_walk_cycles" not in walk_cycle_summary(sims)
