"""SweepSpec validation, expansion, dedup and digest identity."""

import pytest

from repro.sweep.grid import (
    BASE_SCHEMES,
    MAX_POINTS,
    SCHEMES,
    GridPoint,
    SweepSpec,
    SweepValidationError,
)


def spec(**overrides) -> SweepSpec:
    base = {"policies": ["thp", "ca"], "workloads": ["svm", "pagerank"]}
    base.update(overrides)
    return SweepSpec.from_request(base)


class TestValidation:
    def test_defaults_fill_in(self):
        # The default scheme axis stays the paper's own comparison;
        # the related-work schemes are opt-in (default-off guard).
        s = SweepSpec.from_request({})
        assert s.policies == ("thp", "ca")
        assert s.schemes == BASE_SCHEMES
        assert s.scale == "quick"
        assert set(BASE_SCHEMES) < set(SCHEMES)

    def test_new_schemes_opt_in(self):
        s = spec(schemes=list(SCHEMES))
        assert s.schemes == SCHEMES
        # ... and can be excluded point-wise like any axis value.
        s = spec(schemes=list(SCHEMES), exclude=[{"scheme": "utopia"}])
        assert all(p.scheme != "utopia" for p in s.points())

    @pytest.mark.parametrize("field,value,fragment", [
        ("policies", ["nope"], "unknown policy"),
        ("schemes", ["sep"], "unknown scheme"),
        ("workloads", ["webserver"], "unknown workload"),
        ("policies", [], "non-empty list"),
        ("scale", "galactic", "unknown scale"),
        ("trace_len", 0, "trace_len"),
        ("trace_len", 10_000_000, "trace_len"),
        ("hog", 1.5, "hog"),
        ("hog", -0.1, "hog"),
        ("include", "policy=ca", "list of axis filters"),
        ("include", [{"flavor": "ca"}], "filter axis"),
        ("include", [{}], "empty include filter"),
    ])
    def test_bad_values_rejected(self, field, value, fragment):
        with pytest.raises(SweepValidationError, match=fragment):
            spec(**{field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(SweepValidationError, match="unknown sweep field"):
            SweepSpec.from_request({"policies": ["thp"], "colour": "red"})

    def test_non_object_body_rejected(self):
        with pytest.raises(SweepValidationError, match="must be an object"):
            SweepSpec.from_request([1, 2, 3])

    def test_filters_must_leave_points(self):
        with pytest.raises(SweepValidationError, match="exclude every"):
            spec(include=[{"policy": "thp"}], exclude=[{"policy": "thp"}])

    def test_cap_enforced(self):
        # The public axes cannot reach the cap, so exercise points()
        # directly through the frozen constructor.
        wide = SweepSpec(
            policies=tuple(f"p{i}" for i in range(32)),
            schemes=tuple(f"s{i}" for i in range(8)),
            workloads=("w0", "w1", "w2"),
        )
        assert len(wide.points()) > MAX_POINTS


class TestExpansion:
    def test_workload_major_order(self):
        s = spec(schemes=["paging", "spot"])
        labels = [p.label for p in s.points()]
        assert labels[:4] == [
            "svm/thp/paging", "svm/thp/spot",
            "svm/ca/paging", "svm/ca/spot",
        ]
        assert len(labels) == 2 * 2 * 2

    def test_scheme_axis_shares_cells(self):
        s = spec()  # 2 policies x 4 schemes x 2 workloads = 16 points
        points, cells, refs = s.expand()
        assert len(points) == 16
        # One (native, sim) pair per (policy, workload): 2*2*2 = 8.
        assert len(cells) == 8
        assert len(refs) == len(points)
        # All four schemes of one (workload, policy) share both cells.
        by_pair = {}
        for p, r in zip(points, refs):
            by_pair.setdefault((p.workload, p.policy), set()).add(r)
        assert all(len(rs) == 1 for rs in by_pair.values())

    def test_expanded_scheme_axis_still_shares_cells(self):
        # All seven schemes: 2 policies x 7 schemes x 2 workloads = 28
        # points, still one (native, sim) cell pair per (policy,
        # workload) — the new schemes read their own overhead columns
        # off the same shared simulations.
        s = spec(schemes=list(SCHEMES))
        points, cells, refs = s.expand()
        assert len(points) == 2 * len(SCHEMES) * 2
        assert len(cells) == 8
        by_pair = {}
        for p, r in zip(points, refs):
            by_pair.setdefault((p.workload, p.policy), set()).add(r)
        assert all(len(rs) == 1 for rs in by_pair.values())
        # The base grid's cells are the *same* cells: widening the
        # scheme axis adds zero new simulation work.
        import json

        from repro.sim.cache import encode_spec

        def keys(cs):
            return {json.dumps(encode_spec(c.spec()), sort_keys=True)
                    for c in cs}

        assert keys(cells) == keys(spec().expand()[1])

    def test_include_exclude(self):
        s = spec(include=[{"policy": "ca"}],
                 exclude=[{"scheme": "paging"}, {"workload": "pagerank"}])
        points = s.points()
        assert points  # ca x (non-paging schemes) x svm
        assert all(p.policy == "ca" for p in points)
        assert all(p.scheme != "paging" for p in points)
        assert all(p.workload == "svm" for p in points)

    def test_conjunctive_clause(self):
        s = spec(exclude=[{"policy": "ca", "scheme": "ds"}])
        labels = [p.label for p in s.points()]
        assert "svm/ca/ds" not in labels
        assert "svm/ca/spot" in labels and "svm/thp/ds" in labels


class TestDigest:
    def test_spelling_invariance(self):
        a = SweepSpec.from_request({"policies": "thp,ca",
                                    "workloads": ["svm"]})
        b = SweepSpec.from_request({"policies": ["THP", "ca", "thp"],
                                    "workloads": ["svm"]})
        assert a == b
        assert a.digest("salt") == b.digest("salt")

    @pytest.mark.parametrize("change", [
        {"seed": 7}, {"trace_len": 123}, {"hog": 0.5},
        {"workloads": ["svm"]}, {"schemes": ["spot"]},
    ])
    def test_work_changes_move_the_digest(self, change):
        assert spec().digest("s") != spec(**change).digest("s")

    def test_salt_moves_the_digest(self):
        assert spec().digest("a") != spec().digest("b")


class TestGridPoint:
    def test_matches(self):
        p = GridPoint(policy="ca", scheme="spot", workload="svm")
        assert p.matches((("policy", "ca"), ("scheme", "spot")))
        assert not p.matches((("policy", "ca"), ("scheme", "ds")))
        assert p.as_dict() == {"policy": "ca", "scheme": "spot",
                               "workload": "svm"}
