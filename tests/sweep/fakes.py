"""Shared fakes for the sweep tests.

The runner only needs a spec that expands to (points, cells, refs) and
cell results shaped like ``RunResult`` / ``[MmuSimResult]``, so these
toy stand-ins keep the unit tests off the real simulator.  Everything
lives at module level and is addressed by import path so the executor's
process pool (and the run cache's pickles) can resolve it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sweep.grid import GridPoint, SCHEMES

NATIVE = "tests.sweep.fakes:toy_native"
SIM = "tests.sweep.fakes:toy_sim"


@dataclass
class FakeFinal:
    coverage_32: float
    coverage_128: float
    mappings_99: int
    total_runs: int


@dataclass
class FakeNative:
    touched_pages: int
    bloat_pages: int
    resident_pages: int
    run_sizes: tuple
    final: FakeFinal


@dataclass
class FakeSim:
    accesses: int
    l1_hits: int
    l2_hits: int
    walks: int
    miss_rate: float
    base: float
    measured_avg_walk_cycles: float | None = None

    #: Per-scheme counters point_metrics reads for coverage extras.
    ctlb_uncovered: int = 10
    utopia_rest: int = 30
    seg_outside: int = 5

    def overheads(self, costs) -> dict:
        return {
            "paging": self.base,
            "spot": self.base / 2,
            "vrmm": self.base / 4,
            "ds": self.base / 8,
            "ctlb": self.base / 3,
            "utopia": self.base / 5,
            "seg": self.base / 1.5,
        }

    def spot_breakdown(self) -> dict:
        return {"l1_range_hits": 0.75, "l2_walks": 0.25}


def _rank(policy: str) -> int:
    """Deterministic per-policy knob (p0 -> 0, p1 -> 1, ...)."""
    return int("".join(ch for ch in policy if ch.isdigit()) or 0)


def toy_native(*, workload, policy, seed=0):
    r = _rank(policy)
    return FakeNative(
        touched_pages=1000,
        bloat_pages=100 * (3 - r),
        resident_pages=1000 + 100 * (3 - r),
        run_sizes=(600, 300, 50 + r, 25, 25),
        final=FakeFinal(
            coverage_32=0.9 + 0.01 * r,
            coverage_128=0.99,
            mappings_99=64 - r,
            total_runs=5,
        ),
    )


def toy_sim(*, workload, policy, trace_len=1000):
    r = _rank(policy)
    return [FakeSim(
        accesses=trace_len,
        l1_hits=trace_len - 100,
        l2_hits=60,
        walks=40,
        miss_rate=40 / trace_len,
        base=0.4 / (r + 1),
        measured_avg_walk_cycles=20.0 + r,
    )]


class ToySpec:
    """SweepSpec stand-in: same expand()/as_dict() surface, toy cells.

    The scheme axis fans out over shared cells exactly like the real
    spec: every scheme of one policy reads the same (native, sim) pair.
    """

    def __init__(self, policies=("p0", "p1", "p2"),
                 schemes=("paging", "spot"), workload="w",
                 trace_len=1000):
        self.policies = tuple(policies)
        self.schemes = tuple(schemes)
        assert set(self.schemes) <= set(SCHEMES)
        self.workload = workload
        self.trace_len = trace_len

    def as_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "schemes": list(self.schemes),
            "workloads": [self.workload],
            "trace_len": self.trace_len,
        }

    def points(self):
        return [
            GridPoint(policy=p, scheme=s, workload=self.workload)
            for p in self.policies for s in self.schemes
        ]

    def expand(self):
        from repro.sim.jobs import cell

        points = self.points()
        cells = []
        index = {}
        refs = []
        for point in points:
            pair = []
            for path, kwargs in (
                (NATIVE, {"workload": point.workload,
                          "policy": point.policy}),
                (SIM, {"workload": point.workload,
                       "policy": point.policy,
                       "trace_len": self.trace_len}),
            ):
                key = (path, tuple(sorted(kwargs.items())))
                if key not in index:
                    index[key] = len(cells)
                    cells.append(cell(path, **kwargs))
                pair.append(index[key])
            refs.append(tuple(pair))
        return points, cells, refs
