"""SweepRun execution: determinism, waves, sources, cancel/resume.

Toy cells (tests.sweep.fakes) keep the scheduling behaviour under test
without the simulator; one integration test at the end runs a tiny real
spec end to end against a warm cache.
"""

import json

import pytest

from repro.sim.cache import RunCache
from repro.sim.jobs import Executor
from repro.sweep.runner import (
    CANCELLED,
    DONE,
    PENDING,
    SweepCancelled,
    SweepRun,
    run_sweep,
)
from tests.sweep.fakes import ToySpec


def canonical(outcome: dict) -> bytes:
    return json.dumps(outcome, sort_keys=True,
                      separators=(",", ":")).encode()


def run_toy(executor: Executor, wave_points: int = 16, **spec_kwargs):
    run = SweepRun(spec=ToySpec(**spec_kwargs), executor=executor,
                   wave_points=wave_points)
    return run.run(), run


class TestDeterminism:
    def test_serial_and_parallel_bytes_match(self):
        serial = Executor(jobs=1)
        parallel = Executor(jobs=2)
        try:
            out1, _ = run_toy(serial, wave_points=2)
            out2, _ = run_toy(parallel, wave_points=16)
        finally:
            serial.close()
            parallel.close()
        assert canonical(out1) == canonical(out2)

    def test_outcome_shape(self):
        executor = Executor(jobs=1)
        try:
            out, run = run_toy(executor)
        finally:
            executor.close()
        assert out["points"] == 6  # 3 policies x 2 schemes
        assert out["unique_cells"] == 6  # (native, sim) per policy
        assert len(out["cells"]) == 6
        assert out["frontier_size"] == len(out["frontier"]) >= 1
        assert out["frontier_labels"] == [
            m["label"] for m in out["frontier"]
        ]
        assert set(out["contiguity_cdf"]) == {"w|p0", "w|p1", "w|p2"}
        assert set(out["walk_cycles"]) == {"w|p0", "w|p1", "w|p2"}
        assert all(s == DONE for s in run.states)


class TestWavesAndSources:
    def test_events_in_point_order(self):
        events = []
        executor = Executor(jobs=1)
        try:
            run = SweepRun(spec=ToySpec(), executor=executor,
                           on_event=events.append, wave_points=2)
            run.run()
        finally:
            executor.close()
        assert [e["event"] for e in events] == ["sweep-cell"] * 6
        assert [e["done"] for e in events] == list(range(1, 7))
        assert all(e["total"] == 6 for e in events)
        labels = [f'{e["workload"]}/{e["policy"]}/{e["scheme"]}'
                  for e in events]
        assert labels == [p.label for p in run.points]

    def test_scheme_fanout_marked_shared_across_waves(self):
        # wave_points=1: the second scheme of each policy lands in a
        # later wave with both its cells already resolved -> "shared".
        executor = Executor(jobs=1)
        try:
            _, run = run_toy(executor, wave_points=1)
        finally:
            executor.close()
        assert run.sources == ["computed", "shared"] * 3

    def test_warm_cache_marks_cached(self, tmp_path):
        for expected in ("computed", "cached"):
            executor = Executor(jobs=1, cache=RunCache(tmp_path))
            try:
                _, run = run_toy(executor)
            finally:
                executor.close()
            assert set(run.sources) == {expected}

    def test_status_snapshot(self):
        executor = Executor(jobs=1)
        try:
            _, run = run_toy(executor)
        finally:
            executor.close()
        status = run.status()
        assert status["points"] == 6
        assert status["states"] == {DONE: 6}
        assert status["cells"][0]["point"] == run.points[0].as_dict()


class TestCancelResume:
    def test_cancel_before_run_is_sticky(self):
        events = []
        executor = Executor(jobs=1)
        try:
            run = SweepRun(spec=ToySpec(), executor=executor,
                           on_event=events.append)
            run.cancel()
            with pytest.raises(SweepCancelled):
                run.run()
        finally:
            executor.close()
        assert executor.stats.computed == 0
        assert set(run.states) == {CANCELLED}
        assert events[-1]["event"] == "sweep-cancelled"
        assert events[-1]["done"] == 0

    def test_mid_run_cancel_then_resume_from_cache(self, tmp_path):
        cache_kwargs = {"cache": RunCache(tmp_path)}
        executor = Executor(jobs=1, **cache_kwargs)
        holder = {}

        def cancel_after_first(event):
            if event.get("event") == "sweep-cell":
                holder["run"].cancel()

        try:
            run = SweepRun(spec=ToySpec(), executor=executor,
                           on_event=cancel_after_first, wave_points=2)
            holder["run"] = run
            with pytest.raises(SweepCancelled, match="2/6"):
                run.run()
            computed_before_resume = executor.stats.computed
            assert run.states[:2] == [DONE, DONE]
            assert CANCELLED in run.states or PENDING in run.states

            # Resume = a fresh run over the same spec and warm cache:
            # the finished wave replays for free.
            resumed = SweepRun(spec=ToySpec(), executor=executor)
            outcome = resumed.run()
        finally:
            executor.close()
        assert all(s == DONE for s in resumed.states)
        # Only the cells the cancelled run never reached were computed.
        assert (executor.stats.computed
                == computed_before_resume + 4)  # 2 of 3 policies' pairs

        # And the resumed outcome matches an uninterrupted clean run.
        clean_exec = Executor(jobs=1)
        try:
            clean, _ = run_toy(clean_exec)
        finally:
            clean_exec.close()
        assert canonical(outcome) == canonical(clean)


class TestRunSweepStats:
    def test_stats_deltas(self, tmp_path):
        executor = Executor(jobs=1, cache=RunCache(tmp_path))
        try:
            _, cold, _ = run_sweep(ToySpec(), executor)
            _, warm, _ = run_sweep(ToySpec(), executor)
        finally:
            executor.close()
        assert cold.computed == 6
        assert warm.computed == 0
        assert warm.cache_hits == 6
        assert warm.as_dict()["computed"] == 0


class TestRealSpec:
    def test_tiny_real_grid_end_to_end(self, tmp_path):
        from repro.sweep.grid import SweepSpec

        spec = SweepSpec.from_request({
            "policies": ["thp"], "workloads": ["svm"],
            "scale": "quick", "trace_len": 2000,
        })
        executor = Executor(jobs=1, cache=RunCache(tmp_path))
        try:
            out1, cold, _ = run_sweep(spec, executor)
            out2, warm, _ = run_sweep(spec, executor)
        finally:
            executor.close()
        assert out1["points"] == 4  # one policy, all four schemes
        assert out1["unique_cells"] == 2
        assert cold.computed == 2
        assert warm.computed == 0
        assert canonical(out1) == canonical(out2)
        assert out1["frontier_size"] >= 1
        # The frontier minimizes overhead: the paging baseline can only
        # appear if it is also a bloat optimum, and every frontier
        # member's overhead column must exist in its overheads map.
        for member in out1["frontier"]:
            assert member["overhead"] == pytest.approx(
                member["overheads"][member["point"]["scheme"]]
            )
