"""Tests for trace persistence and the ASCII chart helpers."""

import numpy as np
import pytest

from repro.experiments.charts import bar_chart, grouped_bar_chart, stacked_fraction_chart
from repro.sim.config import TEST_SCALE
from repro.workloads import make_workload
from repro.workloads.traceio import load_trace, save_trace


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        wl = make_workload("svm", TEST_SCALE)
        trace = wl.trace(2000)
        path = save_trace(tmp_path / "svm_trace", trace, workload=wl)
        assert path.suffix == ".npz"
        loaded, meta = load_trace(path)
        assert np.array_equal(loaded.pc, trace.pc)
        assert np.array_equal(loaded.vma, trace.vma)
        assert np.array_equal(loaded.page, trace.page)
        assert meta["workload"] == "svm"
        assert meta["footprint_pages"] == wl.footprint_pages

    def test_extra_metadata(self, tmp_path):
        wl = make_workload("bt", TEST_SCALE)
        path = save_trace(tmp_path / "t.npz", wl.trace(100), note="calibration")
        _, meta = load_trace(path)
        assert meta["note"] == "calibration"

    def test_version_check(self, tmp_path):
        import json

        wl = make_workload("svm", TEST_SCALE)
        trace = wl.trace(10)
        np.savez(
            tmp_path / "bad.npz",
            pc=trace.pc, vma=trace.vma, page=trace.page,
            meta=np.frombuffer(
                json.dumps({"format_version": 999}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError):
            load_trace(tmp_path / "bad.npz")

    def test_loaded_trace_drives_simulator(self, tmp_path):
        from repro.hw.mmu_sim import MmuSimulator
        from repro.hw.translation import TranslationView
        from repro.sim.config import HardwareConfig
        from repro.sim.machine import build_machine
        from repro.sim.runner import RunOptions, run_native
        from tests.policies.conftest import SMALL

        machine = build_machine("ca", SMALL)
        wl = make_workload("svm", TEST_SCALE)
        r = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
        path = save_trace(tmp_path / "t", wl.trace(5000), workload=wl)
        trace, _ = load_trace(path)
        view = TranslationView.native(r.process)
        res = MmuSimulator(view, HardwareConfig()).run(
            trace, r.vma_start_vpns, workload=wl
        )
        assert res.accesses == 5000


class TestCharts:
    def test_bar_chart_basic(self):
        out = bar_chart(["a", "bb"], [0.5, 1.0], title="T", fmt="{:.1f}")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[2] and "1.0" in lines[2]
        # The max value gets the longest bar.
        assert lines[2].count("█") > lines[1].count("█")

    def test_bar_chart_log_scale(self):
        out = bar_chart(["x", "y"], [0.001, 10.0], log=True)
        assert "(log scale)" in out
        # Both bars visible despite 4 orders of magnitude.
        assert all("█" in line for line in out.splitlines()[:2])

    def test_bar_chart_zero_values(self):
        out = bar_chart(["z"], [0.0])
        assert "z" in out

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_grouped_chart(self):
        out = grouped_bar_chart(
            ["g1", "g2"], {"s1": [1.0, 2.0], "s2": [0.5, 0.1]}
        )
        assert "g1:" in out and "g2:" in out and "s2" in out

    def test_stacked_chart_sums_to_width(self):
        out = stacked_fraction_chart(
            ["w"], {"a": [0.5], "b": [0.3], "c": [0.2]}, width=20
        )
        bar_line = out.splitlines()[0]
        inner = bar_line.split("| ", 1)[1].rstrip("|")
        assert len(inner.rstrip()) <= 20
        assert "a" in out.splitlines()[-1]  # legend

    def test_stacked_too_many_parts(self):
        with pytest.raises(ValueError):
            stacked_fraction_chart(
                ["w"], {str(i): [0.25] for i in range(5)}
            )

    def test_fig13_chart_renders(self):
        from repro.experiments.fig13 import BARS, Fig13Result

        r = Fig13Result()
        for i, bar in enumerate(BARS):
            r.overheads[("svm", bar)] = 10.0 / (i + 1)
        out = r.chart()
        assert "Fig 13" in out and "SpOT" in out

    def test_fig14_chart_renders(self):
        from repro.experiments.fig14 import Fig14Result

        r = Fig14Result(breakdown={
            "svm": {"correct": 0.9, "mispredict": 0.02, "no_prediction": 0.08}
        })
        out = r.chart()
        assert "Fig 14" in out and "correct" in out
