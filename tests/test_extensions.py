"""Tests for the optional/extension features.

Covers the paper's "future work" items implemented here: CA paging
reservation (§III-D), the dynamic contiguity-bit threshold (§IV-C),
5-level paging (intro), the SpOT confidence ablation switch, and the
CLI.
"""

import pytest

from repro.errors import MappingError
from repro.hw.spot import CORRECT, MISPREDICT, NO_PREDICTION, SpotPredictor
from repro.metrics.contiguity import suggest_contig_threshold
from repro.policies.ca import CAPaging
from repro.sim.machine import Machine, build_machine
from repro.units import HUGE_PAGES
from repro.vm.mapping_runs import MappingRuns
from repro.vm.page_table import PageTable
from tests.policies.conftest import SMALL


class TestCaReservation:
    def _run_interleaved(self, reserve: bool):
        machine = build_machine("ca", SMALL, reserve=reserve)
        machine.hog(0.3)  # make contiguous blocks scarce
        kern = machine.kernel
        proc = kern.create_process("t")
        vmas = [kern.mmap(proc, HUGE_PAGES * 12) for _ in range(3)]
        for i in range(12):
            for vma in vmas:
                kern.fault(proc, vma.start_vpn + i * HUGE_PAGES)
        return machine, proc, vmas

    def test_reservation_reduces_interference(self):
        runs = {}
        for reserve in (False, True):
            _, proc, _ = self._run_interleaved(reserve)
            runs[reserve] = len(proc.space.runs)
        assert runs[True] <= runs[False]

    def test_reservation_released_on_munmap(self):
        machine, proc, vmas = self._run_interleaved(True)
        policy = machine.kernel.policy
        assert policy._reservations
        for vma in vmas:
            machine.kernel.munmap(proc, vma)
        assert not policy._reservations

    def test_reservation_default_off(self):
        policy = CAPaging()
        assert not policy.reserve


class TestDynamicThreshold:
    def test_empty_runs_default(self):
        assert suggest_contig_threshold(MappingRuns()) == 32

    def test_threshold_tracks_median(self):
        small = suggest_contig_threshold([16] * 10)
        big = suggest_contig_threshold([100_000] * 10)
        assert small < big
        assert big <= 512  # clamped

    def test_threshold_is_power_of_two(self):
        for sizes in ([100], [5000, 80, 9], [3]):
            t = suggest_contig_threshold(sizes)
            assert t & (t - 1) == 0

    def test_auto_threshold_in_view(self):
        from repro.hw.translation import TranslationView
        from repro.sim.config import TEST_SCALE
        from repro.sim.runner import RunOptions, run_native
        from repro.workloads import make_workload

        machine = build_machine("ca", SMALL)
        wl = make_workload("svm", TEST_SCALE)
        r = run_native(machine, wl, RunOptions(sample_every=None, exit_after=False))
        view = TranslationView.native(r.process, contig_threshold="auto")
        assert isinstance(view.contig_threshold, int)
        assert view.contig_threshold >= 8


class TestFiveLevelPaging:
    def test_five_level_walk_depth(self):
        pt = PageTable(levels=5)
        pt.map(0, 0)
        assert pt.walk(0).levels == 5
        pt.map(HUGE_PAGES, 512, order=9)
        assert pt.walk(HUGE_PAGES).levels == 4  # huge leaf saves a level

    def test_five_level_translates(self):
        pt = PageTable(levels=5)
        vpn = 1 << 44  # beyond 4-level reach at 9 bits/level
        pt.map(vpn, 7)
        assert pt.translate(vpn) == 7

    def test_huge_slot_probe_five_levels(self):
        pt = PageTable(levels=5)
        assert pt.huge_slot_free(0)
        pt.map(3, 30)
        assert not pt.huge_slot_free(0)

    def test_too_few_levels_rejected(self):
        with pytest.raises(MappingError):
            PageTable(levels=2)

    def test_nested_5level_walk_is_costlier(self):
        from repro.hw.walk import WalkLatencyModel

        model = WalkLatencyModel()
        refs4 = model.nested_references(4, 4)
        refs5 = model.nested_references(5, 5)
        assert refs4 == 24 and refs5 == 35
        assert model.cycles(refs5) > model.cycles(refs4)


class TestSpotConfidenceAblation:
    def test_no_confidence_predicts_immediately(self):
        spot = SpotPredictor(use_confidence=False)
        spot.on_walk_complete(1, 100, 93, True)  # fill
        assert spot.on_walk_complete(1, 101, 94, True) == CORRECT

    def test_no_confidence_flushes_on_every_offset_change(self):
        spot = SpotPredictor(use_confidence=False)
        spot.on_walk_complete(1, 100, 93, True)
        outcomes = [
            spot.on_walk_complete(1, vpn, vpn - (7 if vpn % 2 else 9), True)
            for vpn in range(101, 121)
        ]
        # Alternating offsets: without the counter, every miss is fed
        # and (almost) every one flushes.
        assert outcomes.count(MISPREDICT) >= len(outcomes) - 2

    def test_confidence_beats_no_confidence_on_irregular(self):
        flushes = {}
        for use in (True, False):
            spot = SpotPredictor(use_confidence=use)
            for vpn in range(100, 400):
                spot.on_walk_complete(1, vpn, vpn - (7 if vpn % 3 else 9), True)
            flushes[use] = spot.stats.mispredict
        assert flushes[True] < flushes[False]

    def test_predict_without_confidence(self):
        spot = SpotPredictor(use_confidence=False)
        spot.on_walk_complete(1, 100, 93, True)
        assert spot.predict(1, 200) == 193


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table7" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["run", "fig99"]) == 2

    def test_parser_rejects_bad_scale(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7", "--scale", "galactic"])

    def test_experiment_registry_matches_modules(self):
        import importlib

        from repro.cli import EXPERIMENTS

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run") or hasattr(module, "run_fig1b")
