"""Tests for result serialization and the CLI JSON flag."""

import json

import pytest

from repro.experiments.serialize import load_result, save_result, to_jsonable
from repro.metrics.contiguity import ContiguitySample
from repro.sim.results import RunResult


class TestToJsonable:
    def test_dataclass(self):
        sample = ContiguitySample(10, 100, 0.5, 0.9, 3, 4)
        out = to_jsonable(sample)
        assert out["coverage_32"] == 0.5
        assert out["mappings_99"] == 3

    def test_tuple_keys_flattened(self):
        out = to_jsonable({("svm", "ca"): 1, ("bt", "thp"): 2})
        assert out == {"svm|ca": 1, "bt|thp": 2}

    def test_numpy_scalars(self):
        import numpy as np

        out = to_jsonable({"x": np.int64(7), "y": np.float64(0.25)})
        assert out == {"x": 7, "y": 0.25}
        assert isinstance(out["x"], int)

    def test_nested_run_result(self):
        r = RunResult(
            workload="svm", policy="ca", virtualized=False,
            footprint_pages=100,
        )
        r.samples.append(ContiguitySample(1, 100, 0.1, 0.2, 3, 4))
        out = to_jsonable(r)
        assert out["workload"] == "svm"
        assert out["samples"][0]["coverage_128"] == 0.2
        json.dumps(out)  # fully serializable

    def test_plain_object_falls_back_to_vars(self):
        class Thing:
            def __init__(self):
                self.a = 1
                self._hidden = 2

        assert to_jsonable(Thing()) == {"a": 1}


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        sample = ContiguitySample(10, 100, 0.5, 0.9, 3, 4)
        path = save_result(tmp_path / "r.json", "fig_test", sample, scale="quick")
        payload = load_result(path)
        assert payload["experiment"] == "fig_test"
        assert payload["meta"]["scale"] == "quick"
        assert payload["result"]["mappings_99"] == 3


class TestCliJson:
    def test_run_with_json_dir(self, tmp_path, capsys):
        from repro.cli import main

        # fig9 is the fastest whole experiment at quick scale.
        assert main(["run", "fig9", "--json", str(tmp_path)]) == 0
        payload = load_result(tmp_path / "fig9.json")
        assert payload["experiment"] == "fig9"
        assert "histograms" in payload["result"]
