"""Workload interface: VMA plans, fault orders, and access traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.sim.config import ScaleProfile
from repro.units import HUGE_PAGES, align_up


@dataclass(frozen=True)
class VmaPlan:
    """One anonymous area the workload mmaps.

    ``touched_fraction < 1`` models allocator arenas that are reserved
    but never fully used — demand paging backs only the touched part
    while eager paging backs it all (the source of Table VI's bloat).
    """

    name: str
    n_pages: int
    touched_fraction: float = 1.0

    @property
    def touched_pages(self) -> int:
        touched = int(self.n_pages * self.touched_fraction)
        return max(1, min(self.n_pages, touched))


@dataclass(frozen=True)
class FilePlan:
    """One input file read through the page cache."""

    name: str
    n_pages: int


@dataclass(frozen=True)
class AllocStep:
    """One step of the allocation phase.

    ``kind`` is ``"anon"`` (touch a VMA range, causing demand faults)
    or ``"file"`` (read a file range through the page cache).  Steps
    interleave anonymous faults with readahead like real loaders do
    (paper §III-C).
    """

    kind: str
    index: int  # VMA index or file index
    start_page: int
    n_pages: int


@dataclass(frozen=True)
class TraceSite:
    """One logical memory instruction in the steady-state loop.

    ``pattern`` selects how the site walks its VMA's touched range:
    ``"seq"`` (streaming), ``"uniform"`` (random probes), ``"zipf"``
    (power-law skew, graph-vertex style) or ``"strip"`` (random start,
    short sequential read — XSBench-style grid lookups).
    """

    pc: int
    vma: int
    pattern: str
    weight: float
    stride: int = 1
    zipf_a: float = 1.4
    strip_len: int = 8


@dataclass
class AccessTrace:
    """A generated memory access stream (structure-of-arrays)."""

    pc: np.ndarray  # int32 instruction identifiers
    vma: np.ndarray  # int16 VMA indices
    page: np.ndarray  # int64 page offsets inside the VMA's touched range

    def __len__(self) -> int:
        return len(self.pc)


class Workload:
    """Base class for the synthetic paper workloads.

    Subclasses define ``name``, ``paper_gb``, ``threads`` and the three
    plan methods.  Everything here is deterministic given ``seed``.
    """

    name = "base"
    paper_gb = 1.0
    threads = 1
    #: Nominal instructions per memory access (feeds T_ideal; ~4 is a
    #: typical instruction mix with ~25% loads/stores).
    instructions_per_access = 4.0
    #: Branch fraction of the instruction stream (Table VII input).
    branch_fraction = 0.0587

    def __init__(self, scale: ScaleProfile, seed: int = 0):
        self.scale = scale
        self.seed = seed
        self._vmas = self._build_vma_plans()
        self._files = self._build_file_plans()

    # -- subclass hooks ------------------------------------------------------

    def _build_vma_plans(self) -> list[VmaPlan]:
        raise NotImplementedError

    def _build_file_plans(self) -> list[FilePlan]:
        return []

    def trace_sites(self) -> Sequence[TraceSite]:
        raise NotImplementedError

    # -- derived plans -----------------------------------------------------------

    @property
    def vma_plans(self) -> list[VmaPlan]:
        return self._vmas

    @property
    def file_plans(self) -> list[FilePlan]:
        return self._files

    @property
    def footprint_pages(self) -> int:
        """Touched anonymous pages (the paper's footprint notion)."""
        return sum(v.touched_pages for v in self._vmas)

    def scaled(self, paper_gb: float, huge_aligned: bool = True) -> int:
        """Scale a paper size (GB) to simulated pages."""
        n = self.scale.paper_gb_pages(paper_gb)
        return align_up(n, HUGE_PAGES) if huge_aligned else n

    def alloc_steps(self) -> Iterator[AllocStep]:
        """Default allocation phase.

        Touches every VMA front to back in chunks, interleaving the
        file reads; multithreaded workloads partition each VMA across
        threads and interleave the partitions (concurrent first-touch
        faulting, §III-C).
        """
        chunk = HUGE_PAGES * 2
        streams: list[list[AllocStep]] = []
        for vma_idx, plan in enumerate(self._vmas):
            for part_start, part_pages in self._partitions(plan.touched_pages):
                steps = [
                    AllocStep("anon", vma_idx, p, min(chunk, part_start + part_pages - p))
                    for p in range(part_start, part_start + part_pages, chunk)
                ]
                streams.append(steps)
        for file_idx, plan in enumerate(self._files):
            steps = [
                AllocStep("file", file_idx, p, min(chunk, plan.n_pages - p))
                for p in range(0, plan.n_pages, chunk)
            ]
            streams.append(steps)
        yield from _round_robin(streams)

    def _partitions(self, n_pages: int) -> list[tuple[int, int]]:
        if self.threads <= 1:
            return [(0, n_pages)]
        per = -(-n_pages // self.threads)
        return [
            (start, min(per, n_pages - start))
            for start in range(0, n_pages, per)
        ]

    # -- trace generation ------------------------------------------------------------

    def trace(self, n_accesses: int, seed: int | None = None) -> AccessTrace:
        """Generate the steady-state access stream."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        sites = list(self.trace_sites())
        weights = np.array([s.weight for s in sites], dtype=float)
        weights /= weights.sum()
        choice = rng.choice(len(sites), size=n_accesses, p=weights)
        pc = np.empty(n_accesses, dtype=np.int32)
        vma = np.empty(n_accesses, dtype=np.int16)
        page = np.empty(n_accesses, dtype=np.int64)
        for i, site in enumerate(sites):
            mask = choice == i
            k = int(mask.sum())
            if k == 0:
                continue
            pc[mask] = site.pc
            vma[mask] = site.vma
            page[mask] = self._pattern_pages(site, k, rng)
        return AccessTrace(pc=pc, vma=vma, page=page)

    def _pattern_pages(self, site: TraceSite, k: int, rng) -> np.ndarray:
        span = self._vmas[site.vma].touched_pages
        if site.pattern == "seq":
            start = int(rng.integers(0, span))
            return (start + np.arange(k, dtype=np.int64) * site.stride) % span
        if site.pattern == "uniform":
            return rng.integers(0, span, size=k, dtype=np.int64)
        if site.pattern == "zipf":
            ranks = rng.zipf(site.zipf_a, size=k).astype(np.int64)
            return (ranks - 1) % span
        if site.pattern == "strip":
            n_strips = -(-k // site.strip_len)
            starts = rng.integers(0, span, size=n_strips, dtype=np.int64)
            pages = (
                starts[:, None] + np.arange(site.strip_len, dtype=np.int64)
            ).reshape(-1)[:k]
            return pages % span
        raise ValueError(f"unknown trace pattern {site.pattern!r}")

    # -- nominal instruction stream (perf model / Table VII inputs) ---------------

    def instruction_count(self, n_accesses: int) -> int:
        """Nominal instructions executed while issuing ``n_accesses``."""
        return int(n_accesses * self.instructions_per_access)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.footprint_pages} pages)"


def _round_robin(streams: list[list[AllocStep]]) -> Iterator[AllocStep]:
    """Interleave step streams (concurrent threads / loader + reader)."""
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining:
        for i, stream in enumerate(streams):
            if cursors[i] < len(stream):
                yield stream[cursors[i]]
                cursors[i] += 1
                remaining -= 1
