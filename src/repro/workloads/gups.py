"""GUPS: giant updates per second (random-access worst case).

Not part of the paper's Table III suite, but the standard adversarial
microbenchmark in the address-translation literature: one huge table,
uniformly random read-modify-write updates, essentially zero locality.
Useful for stress-testing the predictors — with CA paging the table is
a handful of runs and SpOT still locks on; with default paging it is
the nightmare case for every scheme.
"""

from __future__ import annotations

from repro.workloads.base import TraceSite, VmaPlan, Workload


class Gups(Workload):
    """HPCC RandomAccess-style update kernel."""

    name = "gups"
    paper_gb = 64.0
    threads = 8
    branch_fraction = 0.03  # tight unrolled update loop
    #: Updates are cheap (xor + index math), but the page-level trace
    #: still under-samples the surrounding instruction stream.
    instructions_per_access = 12.0

    def _build_vma_plans(self):
        return [
            VmaPlan("table", self.scaled(self.paper_gb * 0.94)),
            VmaPlan("stream", self.scaled(self.paper_gb * 0.06)),
        ]

    def trace_sites(self):
        return [
            # The update: uniform random over the whole table.
            TraceSite(pc=0xB00, vma=0, pattern="uniform", weight=0.80),
            # The random-number stream being consumed.
            TraceSite(pc=0xB10, vma=1, pattern="seq", weight=0.20),
        ]
