"""hashjoin microbenchmark (102 GB, 10 threads) — Table III.

The classic two-table hash join: a build table is populated, then the
probe side streams while hashing *uniformly at random* into the build
table.  Random probes are the paper's worst case for SpOT (the only
workload with visible mispredictions, up to ~4%, Fig. 14): consecutive
misses from the probe instruction land in different contiguous
mappings, so offsets keep changing and the confidence counters throttle
speculation.

The build arena is heavily over-reserved (TCMalloc bloat) — this is the
workload whose eager-paging bloat reaches ~47% in Table VI and which
spans NUMA nodes under pre-allocation.
"""

from __future__ import annotations

from repro.workloads.base import TraceSite, VmaPlan, Workload


class HashJoin(Workload):
    """Multithreaded hash join microbenchmark."""

    name = "hashjoin"
    paper_gb = 102.0
    threads = 10
    branch_fraction = 0.045  # tight probe loops

    def _build_vma_plans(self):
        return [
            # Hash build table: arena reserved ~2x what gets touched.
            VmaPlan("build", self.scaled(self.paper_gb * 0.62), 0.53),
            VmaPlan("probe", self.scaled(self.paper_gb * 0.30), 0.97),
            VmaPlan("output", self.scaled(self.paper_gb * 0.08), 0.9),
        ]

    #: Instructions per traced reference: hashing + chain compares per
    #: probe plus the tuple processing the page-level trace elides.
    instructions_per_access = 80.0

    def trace_sites(self):
        return [
            # The probe instruction: uniform random over the build table.
            TraceSite(pc=0x600, vma=0, pattern="uniform", weight=0.12),
            # Probe-side stream.
            TraceSite(pc=0x610, vma=1, pattern="seq", weight=0.74),
            # Output append.
            TraceSite(pc=0x620, vma=2, pattern="seq", weight=0.14),
        ]
