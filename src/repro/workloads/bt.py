"""NPB BT class E (167 GB, serial) — Table III.

Block-tridiagonal CFD solver: several equally sized solution arrays are
swept with regular strides.  Its distinguishing property in the paper
is sheer size: the footprint does not fit one NUMA node, and CA
paging's contiguity drops when irregular faults compete for the last
free blocks of the first node right before spilling to the second
(§VI-A) — BT is the workload where CA needs ~931 ranges (Table I).
"""

from __future__ import annotations

from repro.workloads.base import TraceSite, VmaPlan, Workload


class BT(Workload):
    """Serial NPB BT-style stencil solver."""

    name = "bt"
    paper_gb = 167.0
    threads = 1
    branch_fraction = 0.04  # loop-heavy numeric code
    #: Instructions per traced reference: block-tridiagonal flops.
    instructions_per_access = 20.0

    def _build_vma_plans(self):
        share = self.paper_gb / 5
        return [
            VmaPlan(f"field{i}", self.scaled(share), 0.999) for i in range(5)
        ]

    def alloc_steps(self):
        """BT's initialization faults irregularly across its arrays.

        The arrays are initialized plane-by-plane in an interleaved
        order, so first-touch faults alternate between the five VMAs —
        the fault pattern that stresses CA paging at the NUMA spill
        point (§VI-A).
        """
        from repro.units import HUGE_PAGES
        from repro.workloads.base import AllocStep, _round_robin

        chunk = HUGE_PAGES
        streams = [
            [
                AllocStep("anon", i, p, min(chunk, plan.touched_pages - p))
                for p in range(0, plan.touched_pages, chunk)
            ]
            for i, plan in enumerate(self.vma_plans)
        ]
        return _round_robin(streams)

    def trace_sites(self):
        sites = []
        for i in range(5):
            sites.append(
                TraceSite(pc=0x800 + 16 * i, vma=i, pattern="seq", weight=0.18)
            )
            sites.append(
                TraceSite(
                    pc=0x808 + 16 * i, vma=i, pattern="seq", weight=0.02,
                    stride=96,  # plane-crossing stride
                )
            )
        return sites
