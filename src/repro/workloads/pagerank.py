"""Ligra PageRank on the friendster graph (78 GB, serial) — Table III.

CSR graph processing: the edge array is streamed front to back every
iteration while vertex data is hit with power-law random accesses
(high-degree vertices dominate).  The graph is loaded from a large
input file through the page cache, interleaved with heap population —
the condition that lets scattered page-cache pages fragment memory
across consecutive runs (Fig. 1b).
"""

from __future__ import annotations

from repro.workloads.base import FilePlan, TraceSite, VmaPlan, Workload


class PageRank(Workload):
    """Serial Ligra-style PageRank."""

    name = "pagerank"
    paper_gb = 78.0
    threads = 1

    #: Instructions per traced reference: rank arithmetic per edge.
    instructions_per_access = 8.0

    def _build_vma_plans(self):
        # The friendster edge array dominates (CSR: ~40 B/edge); vertex
        # data (ranks, degrees, offsets: ~20 B/vertex) is a small slice
        # of the footprint, like the real dataset.
        return [
            VmaPlan("edges", self.scaled(self.paper_gb * 0.88), 0.97),
            VmaPlan("vertices", self.scaled(self.paper_gb * 0.06), 0.95),
            VmaPlan("frontier", self.scaled(self.paper_gb * 0.06), 0.9),
        ]

    def _build_file_plans(self):
        return [FilePlan("friendster", self.scaled(self.paper_gb * 0.6))]

    def trace_sites(self):
        return [
            # Edge array streaming: dominant, highly predictable.
            TraceSite(pc=0x500, vma=0, pattern="seq", weight=0.55),
            # Vertex ranks: power-law random (hub vertices hot).
            TraceSite(pc=0x510, vma=1, pattern="zipf", weight=0.33, zipf_a=1.2),
            # Frontier bitmap updates.
            TraceSite(pc=0x520, vma=2, pattern="seq", weight=0.12, stride=3),
        ]
