"""Trace persistence: save and replay access traces.

Traces are the expensive, randomness-bearing half of a hardware
experiment; persisting them makes runs exactly reproducible across
machines and lets users capture a trace once and sweep hardware
parameters over it (the BadgerTrap-log workflow).  Format: a ``.npz``
with the three trace arrays plus a metadata record.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.workloads.base import AccessTrace, Workload

#: Format marker for compatibility checks.
FORMAT_VERSION = 1


def save_trace(path: str | Path, trace: AccessTrace,
               workload: Workload | None = None, **extra_meta) -> Path:
    """Write a trace (and optional provenance metadata) to ``path``.

    Returns the written path (``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = {"format_version": FORMAT_VERSION, **extra_meta}
    if workload is not None:
        meta.update(
            workload=workload.name,
            seed=workload.seed,
            footprint_pages=workload.footprint_pages,
            scale=workload.scale.name,
        )
    np.savez_compressed(
        path,
        pc=trace.pc,
        vma=trace.vma,
        page=trace.page,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


def load_trace(path: str | Path) -> tuple[AccessTrace, dict]:
    """Read a trace and its metadata back."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {meta.get('format_version')!r} "
                f"in {path}"
            )
        trace = AccessTrace(
            pc=data["pc"].astype(np.int32),
            vma=data["vma"].astype(np.int16),
            page=data["page"].astype(np.int64),
        )
    return trace, meta
