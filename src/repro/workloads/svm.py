"""Liblinear SVM on kdd12 (29 GB, serial) — Table III.

Linear classification over a huge sparse dataset: the feature matrix
is scanned in long streams while the model vector is hit with skewed
random accesses (frequent features are hot).  A small fraction of
misses lands on scattered bookkeeping allocations *outside* the main
mappings and keeps hitting from the same instructions — the paper calls
this out as the reason SpOT's win on SVM is smaller (§VI-B).
"""

from __future__ import annotations

from repro.workloads.base import FilePlan, TraceSite, VmaPlan, Workload


class SVM(Workload):
    """Serial liblinear-style training run."""

    name = "svm"
    paper_gb = 29.0
    threads = 1
    branch_fraction = 0.066  # branchy sparse traversal

    #: Instructions per traced reference: sparse dot products.
    instructions_per_access = 6.0

    def _build_vma_plans(self):
        return [
            # Sparse feature matrix (dominant area; arena slightly oversized).
            VmaPlan("features", self.scaled(self.paper_gb * 0.91), 0.97),
            # Model/weight vectors (~8 B per feature: a small slice).
            VmaPlan("model", self.scaled(self.paper_gb * 0.05), 0.95),
            # Scattered bookkeeping (libc arenas, index maps): the
            # irregular tail responsible for SVM's residual misses.
            VmaPlan("misc", self.scaled(self.paper_gb * 0.04), 0.9),
        ]

    def _build_file_plans(self):
        # The kdd12 dataset is parsed from disk while the heap fills.
        return [FilePlan("kdd12", self.scaled(self.paper_gb * 0.5))]

    def trace_sites(self):
        return [
            TraceSite(pc=0x400, vma=0, pattern="seq", weight=0.48),
            TraceSite(pc=0x404, vma=0, pattern="seq", weight=0.10, stride=7),
            TraceSite(pc=0x410, vma=1, pattern="zipf", weight=0.30, zipf_a=1.3),
            # Irregular misses from few instructions outside the main
            # mappings (~4% of TLB misses in the paper).
            TraceSite(pc=0x420, vma=2, pattern="uniform", weight=0.12),
        ]
