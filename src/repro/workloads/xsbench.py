"""XSBench (122 GB, 10 threads) — Table III.

The Monte Carlo neutron-transport kernel: each lookup picks a random
(energy, material) point and reads a short sequential strip of
cross-section data from the huge nuclide grid.  Random starts make the
TLB suffer; the strip reads give SpOT repeated misses inside the same
contiguous mapping, so with CA paging predictions succeed.

XSBench's allocation phase is a large share of its total runtime, which
is why post-allocation defragmentation (Ranger) is too late for it
(Fig. 1c) while CA paging has the contiguity at first touch.
"""

from __future__ import annotations

from repro.workloads.base import FilePlan, TraceSite, VmaPlan, Workload


class XSBench(Workload):
    """Multithreaded Monte Carlo cross-section lookup kernel."""

    name = "xsbench"
    paper_gb = 122.0
    threads = 10

    def _build_vma_plans(self):
        return [
            VmaPlan("unionized_grid", self.scaled(self.paper_gb * 0.78)),
            VmaPlan("nuclide_grids", self.scaled(self.paper_gb * 0.18)),
            VmaPlan("index", self.scaled(self.paper_gb * 0.04)),
        ]

    def _build_file_plans(self):
        return [FilePlan("xs_input", self.scaled(self.paper_gb * 0.05))]

    #: Instructions per traced reference: cross-section interpolation math.
    instructions_per_access = 25.0

    def trace_sites(self):
        return [
            # Grid lookups: random start + sequential strip of gridpoints.
            TraceSite(pc=0x700, vma=0, pattern="strip", weight=0.58, strip_len=48),
            TraceSite(pc=0x710, vma=1, pattern="strip", weight=0.38, strip_len=24),
            TraceSite(pc=0x720, vma=2, pattern="uniform", weight=0.04),
        ]
