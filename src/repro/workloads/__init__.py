"""Synthetic workload generators.

Each workload reproduces the three properties of its paper counterpart
that the experiments depend on (Table III):

- the *VMA layout* (how many areas, their relative sizes, how densely
  they are touched — this drives contiguity and bloat),
- the *fault order* (sequential vs multithread-interleaved first
  touches, anonymous faults interleaved with page-cache readahead),
- the *access-pattern class* of the steady state (sequential scans,
  power-law graph walks, uniform hash probes, gridded lookups), which
  drives TLB miss rates and SpOT predictability.

Footprints are scaled from the paper's gigabytes through a
:class:`~repro.sim.config.ScaleProfile`.
"""

from repro.workloads.base import AccessTrace, AllocStep, FilePlan, TraceSite, VmaPlan, Workload
from repro.workloads.bt import BT
from repro.workloads.gups import Gups
from repro.workloads.hashjoin import HashJoin
from repro.workloads.pagerank import PageRank
from repro.workloads.svm import SVM
from repro.workloads.tlb_friendly import TlbFriendly
from repro.workloads.xsbench import XSBench

#: The paper's benchmark suite (Table III), in its order.
PAPER_SUITE = (SVM, PageRank, HashJoin, XSBench, BT)
#: Extra workloads shipped beyond the paper's suite.
EXTRA_WORKLOADS = (TlbFriendly, Gups)


def make_workload(name: str, scale, seed: int = 0) -> Workload:
    """Instantiate a workload by its short name."""
    registry = {cls.name: cls for cls in PAPER_SUITE}
    registry.update({cls.name: cls for cls in EXTRA_WORKLOADS})
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(scale, seed=seed)


__all__ = [
    "AccessTrace",
    "AllocStep",
    "BT",
    "EXTRA_WORKLOADS",
    "FilePlan",
    "Gups",
    "HashJoin",
    "PAPER_SUITE",
    "PageRank",
    "SVM",
    "TlbFriendly",
    "TraceSite",
    "VmaPlan",
    "Workload",
    "XSBench",
    "make_workload",
]
