"""TLB-friendly control workload (the paper's Spec2017 sanity check).

§VI-A: "We also run a set of TLB friendly workloads from Spec2017 and
find that the execution time is not affected by CA paging."  This
workload has a small footprint with near-perfect locality; it exists to
verify that CA paging adds no overhead when there is nothing to gain.
"""

from __future__ import annotations

from repro.workloads.base import TraceSite, VmaPlan, Workload


class TlbFriendly(Workload):
    """Small, cache-resident, stream-dominated control workload."""

    name = "tlb_friendly"
    paper_gb = 2.0
    threads = 1

    def _build_vma_plans(self):
        return [
            VmaPlan("heap", self.scaled(self.paper_gb * 0.8)),
            VmaPlan("stack", self.scaled(self.paper_gb * 0.2)),
        ]

    def trace_sites(self):
        return [
            TraceSite(pc=0x900, vma=0, pattern="seq", weight=0.85),
            TraceSite(pc=0x910, vma=1, pattern="seq", weight=0.15),
        ]
