"""Exception hierarchy for the contiguity reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class OutOfMemoryError(ReproError):
    """The physical allocator could not satisfy a request."""


class BuddyError(ReproError):
    """Inconsistent buddy-allocator operation (double free, bad order...)."""


class MappingError(ReproError):
    """Invalid page-table operation (remap, unmap of absent page...)."""


class AddressSpaceError(ReproError):
    """Invalid VMA operation (overlap, fault outside any VMA...)."""


class ConfigError(ReproError):
    """Invalid simulator configuration."""


class VirtualizationError(ReproError):
    """Invalid hypervisor / nested-paging operation."""
