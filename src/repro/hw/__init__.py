"""Hardware emulation: TLBs and the translation schemes of Fig. 13.

The paper emulates SpOT/vRMM/DS by instrumenting real TLB misses with
BadgerTrap and feeding counts into the linear model of Table IV.  We do
the trace-driven equivalent:

- :mod:`repro.hw.tlb` — set-associative L1/L2 TLB hierarchy,
- :mod:`repro.hw.translation` — a vectorized view of the effective
  (1D or 2D) translations of a memory state,
- :mod:`repro.hw.walk` — page-walk latency model (native/nested, MMU
  caches) that derives the AvgC constants,
- :mod:`repro.hw.spot` — the SpOT prediction table (§IV),
- :mod:`repro.hw.rmm` — vRMM range TLB + range-table coverage,
- :mod:`repro.hw.direct_segment` — DS dual direct mode,
- :mod:`repro.hw.hybrid_coalescing` — vHC anchor-entry model (Table I),
- :mod:`repro.hw.coalesced_tlb` — run-coalescing TLB (Ban & Cheng),
- :mod:`repro.hw.utopia` — Utopia hybrid restrictive/flexible mappings,
- :mod:`repro.hw.segmentation` — per-VM base/limit segmentation,
- :mod:`repro.hw.mmu_sim` — the simulator gluing it all together.
"""

from repro.hw.coalesced_tlb import CoalescedTlb, ctlb_entries_for_coverage
from repro.hw.direct_segment import DirectSegment
from repro.hw.hybrid_coalescing import anchor_distance_for, vhc_entries_for_coverage
from repro.hw.mmu_sim import MmuSimResult, MmuSimulator
from repro.hw.rmm import RangeTlb
from repro.hw.segmentation import SegmentationUnit
from repro.hw.spot import SpotPredictor
from repro.hw.tlb import SetAssocTlb, TlbHierarchy
from repro.hw.translation import TranslationView
from repro.hw.utopia import UtopiaMapper
from repro.hw.walk import WalkLatencyModel

__all__ = [
    "CoalescedTlb",
    "DirectSegment",
    "MmuSimResult",
    "MmuSimulator",
    "RangeTlb",
    "SegmentationUnit",
    "SetAssocTlb",
    "SpotPredictor",
    "TlbHierarchy",
    "TranslationView",
    "UtopiaMapper",
    "WalkLatencyModel",
    "anchor_distance_for",
    "ctlb_entries_for_coverage",
    "vhc_entries_for_coverage",
]
