"""vHC as a working TLB scheme: anchored coalescing on the access path.

The paper evaluates virtualized Hybrid Coalescing only structurally
(Table I's anchor-entry counts) and argues in §IV-A that its *virtual
alignment* restriction wastes CA paging's unaligned contiguity.  This
module implements the mechanism so that argument can be measured:

- the OS picks a per-process **anchor distance** ``d`` (a power of two,
  from average contiguity — :func:`repro.hw.hybrid_coalescing.anchor_distance_for`);
- every ``d``-aligned virtual address can hold an *anchor entry*
  recording how far contiguity extends from the anchor (capped at
  ``d`` — the next anchor takes over);
- the TLB caches anchor entries: one entry covers up to ``d`` pages,
  but only from an aligned start, so an unaligned run of length ``n``
  needs ``~n/d + 1`` entries and its head/tail fragments coalesce
  poorly.

``simulate_vhc`` replays a resolved trace against an anchor TLB and
returns miss counts comparable to the baseline simulator's, enabling
the extension experiment ``ext_vhc``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.translation import ResolvedTrace
from repro.hw.tlb import SetAssocTlb


@dataclass
class VhcStats:
    """Anchor-TLB counters."""

    accesses: int = 0
    hits: int = 0
    walks: int = 0
    #: Pages covered by the entries installed (coalescing efficiency).
    pages_per_entry_sum: int = 0
    entries_installed: int = 0

    @property
    def miss_rate(self) -> float:
        return self.walks / max(1, self.accesses)

    @property
    def avg_pages_per_entry(self) -> float:
        return self.pages_per_entry_sum / max(1, self.entries_installed)


class VhcTlb:
    """A TLB of anchored coalesced entries."""

    def __init__(self, entries: int = 96, ways: int = 6, distance: int = 64):
        if distance <= 0 or distance & (distance - 1):
            raise ConfigError(f"anchor distance must be a power of two, got {distance}")
        self.distance = distance
        self._tlb = SetAssocTlb(entries, ways)
        # anchor base -> pages covered from the anchor.
        self._coverage: dict[int, int] = {}
        self.stats = VhcStats()

    #: Pages covered by one *regular* (non-anchor) hybrid-TLB entry:
    #: a 2 MiB entry when the mapping allows, modelled optimistically.
    REGULAR_SPAN = 512

    def access(self, vpn: int, run_start: int, run_len: int) -> bool:
        """One translation request; returns True on a hit.

        ``run_start``/``run_len`` describe the contiguous mapping run
        backing ``vpn`` (what the modified page walker would find and
        coalesce into the anchor entry on a miss).  Hybrid TLBs hold
        both anchor entries and regular entries; the *head fragment* of
        an unaligned run (pages before its first usable anchor) can
        only be cached by regular entries — the alignment penalty.
        """
        self.stats.accesses += 1
        anchor = vpn & ~(self.distance - 1)
        if self._tlb.lookup(anchor) and vpn < anchor + self._coverage.get(anchor, 0):
            self.stats.hits += 1
            return True
        region = ("page", vpn & ~(self.REGULAR_SPAN - 1))
        if self._tlb.lookup(region):
            self.stats.hits += 1
            return True
        # Miss: the (augmented, costlier) walk resolves and coalesces.
        self.stats.walks += 1
        run_end = run_start + run_len
        if run_start <= anchor < run_end:
            # Usable anchor: contiguity extends from the anchor itself.
            coverage = max(1, min(run_end, anchor + self.distance) - anchor)
            self._tlb.insert(anchor)
            self._coverage[anchor] = coverage
            self.stats.entries_installed += 1
            self.stats.pages_per_entry_sum += coverage
        else:
            # Head fragment / tiny run: fall back to a regular entry.
            self._tlb.insert(region)
            self.stats.entries_installed += 1
            self.stats.pages_per_entry_sum += min(self.REGULAR_SPAN, max(1, run_len))
        return False


def simulate_vhc(resolved: ResolvedTrace, distance: int,
                 entries: int = 96, ways: int = 6) -> VhcStats:
    """Replay a resolved trace against an anchor TLB."""
    tlb = VhcTlb(entries=entries, ways=ways, distance=distance)
    vpns = resolved.vpn.tolist()
    starts = resolved.run_start.tolist()
    lens = resolved.run_len.tolist()
    for i in range(len(vpns)):
        tlb.access(vpns[i], starts[i], lens[i])
    return tlb.stats
