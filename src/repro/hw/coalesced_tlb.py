"""Coalesced TLB: one entry covers a whole contiguity run (Ban & Cheng).

The design (arXiv 1908.08774) observes that real mappings exhibit
*diverse* contiguity — a few huge runs plus many short ones — and
coalesces a variable-length run of contiguous translations into a
single TLB entry instead of requiring aligned 2/4/8-page groups.  We
model the last-level coalescing structure: entries are indexed by an
aligned *span window* of ``span_pages`` pages, and each entry records
the sub-interval of its window actually covered by one contiguous run
(runs shorter than the window coalesce partially; runs crossing many
windows occupy one entry per window).

A last-level TLB miss whose window entry is resident *and* covers the
page is a coalesced hit (no walk cost beyond the entry lookup); any
other miss pays the full walk and installs the intersection of its run
with its window.  The overhead model charges only uncovered misses —
the same only-uncovered-misses accounting vRMM gets (§V of the source
paper), making the two range-exploiting designs directly comparable.

Like every scheme machine, the scalar :meth:`CoalescedTlb.on_miss` is
the reference; :meth:`CoalescedTlb.on_miss_batch` replays an entire
miss stream in numpy, bit-identical on counters *and* end state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Knuth multiplicative mix — must match the scalar set index exactly.
_HASH_MULT = 0x9E3779B1


@dataclass
class CtlbStats:
    """Coalesced-TLB counters."""

    covered: int = 0
    missed: int = 0
    #: Pages covered summed over all installs (coalescing quality).
    pages_covered_sum: int = 0

    @property
    def total(self) -> int:
        return self.covered + self.missed

    @property
    def coverage_fraction(self) -> float:
        return self.covered / max(1, self.total)

    @property
    def avg_pages_per_install(self) -> float:
        return self.pages_covered_sum / max(1, self.missed)


class CoalescedTlb:
    """Set-associative LRU TLB of run-coalesced entries.

    Parameters
    ----------
    entries, ways:
        Geometry of the coalescing structure (entries / ways sets).
    span_pages:
        Aligned window one entry can cover; must be a power of two.
    """

    def __init__(self, entries: int = 64, ways: int = 4, span_pages: int = 16):
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError(
                f"bad coalesced-TLB geometry: {entries} entries / {ways} ways"
            )
        if span_pages <= 0 or span_pages & (span_pages - 1):
            raise ValueError(f"span must be a power of two, got {span_pages}")
        self.entries = entries
        self.ways = ways
        self.n_sets = entries // ways
        self.span_pages = span_pages
        self.span_order = span_pages.bit_length() - 1
        # Per set: window id -> (cov_start, cov_end) in LRU order
        # (dict order, LRU first) — the coverage IS the entry payload,
        # so residency order and coverage can never disagree.
        self._sets: list[dict[int, tuple[int, int]]] = [
            {} for _ in range(self.n_sets)
        ]
        self.stats = CtlbStats()

    def _set_of(self, window: int) -> dict[int, tuple[int, int]]:
        return self._sets[((window * _HASH_MULT) >> 12) % self.n_sets]

    def _clip(self, window: int, run_start: int, run_len: int) -> tuple[int, int]:
        """Coverage installed for a miss: run ∩ window."""
        lo = window << self.span_order
        return (max(run_start, lo), min(run_start + run_len, lo + self.span_pages))

    def on_miss(self, vpn: int, run_start: int, run_len: int) -> bool:
        """One last-level TLB miss; True when the entry coalesces it."""
        window = vpn >> self.span_order
        s = self._set_of(window)
        cov = s.pop(window, None)
        if cov is not None and cov[0] <= vpn < cov[1]:
            s[window] = cov  # LRU refresh
            self.stats.covered += 1
            return True
        if cov is None and len(s) >= self.ways:
            del s[next(iter(s))]
        cstart, cend = self._clip(window, run_start, run_len)
        if not cstart <= vpn < cend:
            cstart, cend = vpn, vpn + 1  # page outside its claimed run
        s[window] = (cstart, cend)
        self.stats.missed += 1
        self.stats.pages_covered_sum += cend - cstart
        return False

    # -- batched miss path (the vector engine) -------------------------------

    def on_miss_batch(
        self,
        vpns: np.ndarray,
        run_starts: np.ndarray,
        run_lens: np.ndarray,
    ) -> tuple[int, int]:
        """Batched :meth:`on_miss`; returns (covered, missed).

        Every access — covered or not — moves its window key to MRU, so
        window *residency* is a pure function of the stream and one
        warm-prefixed :func:`~repro.hw.vector_tlb.simulate_level` call
        resolves it.  Coverage then closes per window: since runs are
        disjoint and each access lies inside its own run, a resident
        window covers an access iff the run last installed in it equals
        the access's own run — true for every access except the first
        of each maximal equal-run segment (the previous segment's run
        differs), while the leading warm-covered prefix of the first
        segment checks the warm entry's interval directly (state from
        earlier batches need not match this batch's run table).
        Streams violating the run invariants fall back to the scalar
        loop (same results, just not batched).
        """
        n = int(len(vpns))
        if n == 0:
            return (0, 0)
        vpns = np.ascontiguousarray(vpns, dtype=np.int64)
        run_starts = np.ascontiguousarray(run_starts, dtype=np.int64)
        run_lens = np.ascontiguousarray(run_lens, dtype=np.int64)

        from repro.hw.rmm import exact_run_table

        if exact_run_table(vpns, run_starts, run_lens) is None:
            covered = missed = 0
            for v, s, ln in zip(
                vpns.tolist(), run_starts.tolist(), run_lens.tolist()
            ):
                if self.on_miss(v, s, ln):
                    covered += 1
                else:
                    missed += 1
            return (covered, missed)

        from repro.hw import vector_tlb as vt

        windows = vpns >> self.span_order
        sets = vt.set_indices(windows.astype(np.uint64), self.n_sets)

        # Warm prefix: replay current residents LRU→MRU first so the
        # stack-distance machinery sees the live state.
        warm_cov = [dict(s) for s in self._sets]
        warm_keys = [w for s in warm_cov for w in s]
        if warm_keys:
            warm_windows = np.asarray(warm_keys, dtype=np.int64)
            warm_sets = vt.set_indices(
                warm_windows.astype(np.uint64), self.n_sets
            )
            all_windows = np.concatenate([warm_windows, windows])
            all_sets = np.concatenate([warm_sets, sets])
        else:
            all_windows, all_sets = windows, sets
        hit_mask, residents = vt.simulate_level(
            all_windows, all_sets, self.n_sets, self.ways
        )
        key_hit = hit_mask[len(warm_keys):]

        # Group the stream by window; segment boundaries where the run
        # changes within a group.
        order = np.argsort(windows, kind="stable")
        w_sorted = windows[order]
        rs_sorted = run_starts[order]
        hit_sorted = key_hit[order]
        group_first = np.concatenate(([True], w_sorted[1:] != w_sorted[:-1]))
        seg_first = group_first | np.concatenate(
            ([True], rs_sorted[1:] != rs_sorted[:-1])
        )
        covered_sorted = hit_sorted & ~seg_first

        # First-segment fix-up for windows resident before the batch:
        # their leading accesses may be covered by the warm entry.
        warm_all = {w: cov for s in warm_cov for w, cov in s.items()}
        if warm_all:
            group_starts = np.flatnonzero(group_first)
            group_ends = np.append(group_starts[1:], n)
            warm_arr = np.asarray(sorted(warm_all), dtype=np.int64)
            pos = np.searchsorted(w_sorted, warm_arr)
            for w, p in zip(warm_arr.tolist(), pos.tolist()):
                if p >= n or int(w_sorted[p]) != w:
                    continue  # warm window not accessed in this batch
                g = int(np.searchsorted(group_starts, p, side="right")) - 1
                lo, hi = int(group_starts[g]), int(group_ends[g])
                seg_hi = lo + 1
                while seg_hi < hi and not seg_first[seg_hi]:
                    seg_hi += 1
                cstart, cend = warm_all[w]
                v_seg = vpns[order[lo:seg_hi]]
                wcov = (
                    hit_sorted[lo:seg_hi]
                    & (cstart <= v_seg)
                    & (v_seg < cend)
                )
                miss_at = np.flatnonzero(~wcov)
                first_miss = int(miss_at[0]) if miss_at.size else seg_hi - lo
                fixed = covered_sorted[lo:seg_hi]
                fixed[:first_miss] = True
                if first_miss < seg_hi - lo:
                    fixed[first_miss] = False  # the installing miss
                # Positions after the install are governed by residency
                # alone (the installed run is the segment's own run),
                # which covered_sorted already encodes.

        covered_mask = np.empty(n, dtype=bool)
        covered_mask[order] = covered_sorted
        miss_mask = ~covered_mask
        missed = int(miss_mask.sum())
        covered = n - missed

        # Install accounting: every miss installs run ∩ window.
        lo = (vpns >> self.span_order) << self.span_order
        clip_len = np.minimum(run_starts + run_lens, lo + self.span_pages) - np.maximum(
            run_starts, lo
        )
        pages_sum = int(clip_len[miss_mask].sum())

        # Final coverage per window = clip of the *last* miss's run
        # (windows with no miss keep their warm coverage).
        final_cov: dict[int, tuple[int, int]] = {}
        miss_sorted_pos = np.flatnonzero(~covered_sorted)
        if miss_sorted_pos.size:
            w_miss = w_sorted[miss_sorted_pos]
            last_of_group = np.concatenate((w_miss[1:] != w_miss[:-1], [True]))
            for p in miss_sorted_pos[last_of_group].tolist():
                i = int(order[p])
                window = int(windows[i])
                cstart, cend = self._clip(
                    window, int(run_starts[i]), int(run_lens[i])
                )
                final_cov[window] = (cstart, cend)

        self._sets = [
            {
                w: final_cov.get(w) or warm_all[w]
                for w in map(int, residents[set_idx])
            }
            for set_idx in range(self.n_sets)
        ]
        self.stats.covered += covered
        self.stats.missed += missed
        self.stats.pages_covered_sum += pages_sum
        return (covered, missed)


def ctlb_entries_for_coverage(
    runs: list, footprint_pages: int,
    coverage: float = 0.99, span_pages: int = 16,
) -> int:
    """Table I-style column: coalesced entries to map 99% of a footprint.

    One run occupies one entry per aligned ``span_pages`` window it
    overlaps — the same alignment restriction vHC's anchors pay, at the
    coalescing span instead of the dynamic anchor distance.  Runs are
    taken largest-first, mirroring the paper's methodology for ranges.
    """
    from repro.hw.hybrid_coalescing import anchors_for_run

    if footprint_pages <= 0:
        return 0
    goal = coverage * footprint_pages
    covered = 0
    entries = 0
    for run in sorted(runs, key=lambda r: r.n_pages, reverse=True):
        entries += anchors_for_run(run, span_pages)
        covered += run.n_pages
        if covered >= goal:
            return entries
    return entries + 1
