"""Per-VM base/limit segmentation baseline (Teabe et al.).

Full segmentation for virtualized systems (arXiv 2006.00380) gives
each VM a handful of contiguous physical segments; an address inside a
segment translates with one base+limit computation — no walk at all —
and anything the segments cannot absorb falls back to nested paging.

The model: the unit of placement is an effective 2D contiguity run.
The first miss to an unseen run tries to absorb it into the VM's
segment set — growing an existing segment when the run overlaps or
abuts one, else claiming a fresh segment while fewer than
``max_segments`` exist.  A run that cannot be absorbed at first touch
is *rejected permanently* (segments only ever grow over neighbouring
space, they are never re-packed around scattered mappings), so every
later miss to it pays the nested 4K walk — the same residual-overhead
accounting DS gets for out-of-segment accesses.

First-touch-decides makes the scheme batch-exact with no stream
preconditions: an access's outcome depends only on its run's absorbed/
rejected status, which :meth:`SegmentationUnit.on_miss_batch` resolves
by replaying just the *distinct* runs (in first-appearance order)
through the scalar classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INSIDE = "inside"
GROW = "grow"
FILL = "fill"
OUTSIDE = "outside"


@dataclass
class SegStats:
    """Segmentation counters."""

    inside: int = 0
    grows: int = 0
    fills: int = 0
    outside: int = 0

    @property
    def total(self) -> int:
        return self.inside + self.grows + self.fills + self.outside

    @property
    def inside_fraction(self) -> float:
        return (self.inside + self.grows + self.fills) / max(1, self.total)


class SegmentationUnit:
    """Base/limit segment set with first-touch run placement."""

    def __init__(self, max_segments: int = 16):
        if max_segments < 1:
            raise ValueError(f"need at least one segment, got {max_segments}")
        self.max_segments = max_segments
        #: ``[start, end)`` per segment, in creation order; grown in place.
        self._segments: list[list[int]] = []
        #: run_start -> segment index, in first-touch order.
        self._assigned: dict[int, int] = {}
        #: Permanently rejected run starts, in rejection order.
        self._rejected: dict[int, None] = {}
        self.stats = SegStats()

    def on_miss(self, vpn: int, run_start: int, run_len: int) -> str:
        """One last-level TLB miss; OUTSIDE pays the fallback walk."""
        if run_start in self._assigned:
            self.stats.inside += 1
            return INSIDE
        if run_start in self._rejected:
            self.stats.outside += 1
            return OUTSIDE
        run_end = run_start + max(1, run_len)
        for k, seg in enumerate(self._segments):
            if run_start <= seg[1] and run_end >= seg[0]:
                # Overlaps or abuts: grow the segment over the run.
                seg[0] = min(seg[0], run_start)
                seg[1] = max(seg[1], run_end)
                self._assigned[run_start] = k
                self.stats.grows += 1
                return GROW
        if len(self._segments) < self.max_segments:
            self._segments.append([run_start, run_end])
            self._assigned[run_start] = len(self._segments) - 1
            self.stats.fills += 1
            return FILL
        self._rejected[run_start] = None
        self.stats.outside += 1
        return OUTSIDE

    @property
    def segment_pages(self) -> int:
        """Pages currently spanned by the segment set."""
        return sum(end - start for start, end in self._segments)

    # -- batched miss path (the vector engine) -------------------------------

    def on_miss_batch(
        self,
        vpns: np.ndarray,
        run_starts: np.ndarray,
        run_lens: np.ndarray,
    ) -> tuple[int, int, int, int]:
        """Batched :meth:`on_miss`; returns (inside, grows, fills, outside).

        Exact for *every* stream: outcomes depend only on each run's
        first touch (which this replays through the scalar classifier,
        preserving stream order among distinct runs) — later accesses
        to the same run are INSIDE if it was absorbed, OUTSIDE if not.
        Scalar state (segment geometry, assignment and rejection
        orders) is touched only by those first-touch calls, so it ends
        bit-identical by construction.  Later accesses of an absorbed
        run are INSIDE regardless of their own (possibly inconsistent)
        run geometry — exactly like the scalar path, which ignores
        geometry once a run is assigned.
        """
        n = int(len(vpns))
        if n == 0:
            return (0, 0, 0, 0)
        run_starts = np.ascontiguousarray(run_starts, dtype=np.int64)
        run_lens = np.ascontiguousarray(run_lens, dtype=np.int64)
        vpns = np.ascontiguousarray(vpns, dtype=np.int64)

        order = np.argsort(run_starts, kind="stable")
        s_sorted = run_starts[order]
        group_first = np.concatenate(([True], s_sorted[1:] != s_sorted[:-1]))
        group_starts = np.flatnonzero(group_first)
        group_ends = np.append(group_starts[1:], n)
        by_stream = np.argsort(order[group_starts], kind="stable")

        inside = grows = fills = outside = 0
        for g in by_stream.tolist():
            lo, hi = int(group_starts[g]), int(group_ends[g])
            start = int(s_sorted[lo])
            size = hi - lo
            if start in self._assigned:
                self.stats.inside += size
                inside += size
                continue
            if start in self._rejected:
                self.stats.outside += size
                outside += size
                continue
            first = int(order[lo:hi].min())
            outcome = self.on_miss(
                int(vpns[first]), start, int(run_lens[first])
            )
            if outcome == GROW:
                grows += 1
            elif outcome == FILL:
                fills += 1
            else:
                outside += 1
            if outcome == OUTSIDE:
                self.stats.outside += size - 1
                outside += size - 1
            else:
                self.stats.inside += size - 1
                inside += size - 1
        return (inside, grows, fills, outside)
