"""Direct Segments, dual direct mode (Gandhi et al., the DS baseline).

One [base, limit, offset] segment per VM translates gVA→hPA directly
for the primary region; paging handles the rest.  Translation inside
the segment is free (no TLB, no walk); misses outside pay a nested
4K-table walk (Table IV's ``O_DS``).  The price is rigidity: the
segment is reserved at VM boot and paging (demand allocation, COW,
reclaim) is disabled inside it — which is the paper's argument for
CA+SpOT despite DS's near-zero overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DsStats:
    """Direct-segment counters."""

    inside: int = 0
    outside: int = 0

    @property
    def total(self) -> int:
        return self.inside + self.outside


class DirectSegment:
    """Dual-direct-mode segment check on the TLB miss path."""

    def __init__(self) -> None:
        self.stats = DsStats()

    def on_miss(self, in_segment: bool) -> bool:
        """One last-level TLB miss; True when the segment covered it."""
        if in_segment:
            self.stats.inside += 1
            return True
        self.stats.outside += 1
        return False

    def on_miss_batch(self, in_segment: np.ndarray) -> int:
        """Batched :meth:`on_miss`: a pure mask reduction.

        Returns the number of misses *outside* the segment (the ones
        that pay a nested 4K walk).
        """
        n = int(in_segment.size)
        inside = int(np.count_nonzero(in_segment))
        self.stats.inside += inside
        self.stats.outside += n - inside
        return n - inside
