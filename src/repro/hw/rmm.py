"""vRMM: virtualized Redundant Memory Mappings (the paper's comparison).

RMM caches [base, limit, offset] *range translations* in a
fully-associative range TLB, redundant to paging.  Virtualized, the
ranges must be full 2D (gVA→hPA) translations — the paper argues the
hardware for that (nested B-tree range walks, range intersection) is
expensive, and uses a 32-entry range TLB with flat range tables in its
emulation (§V).

The overhead model (Table IV) assumes the nested range-table walk is
hidden in the background, so only misses *uncovered by any range* pay a
page walk.  Ranges are the effective 2D runs at least
``min_range_pages`` long (small scattered mappings stay paged —
SVM/BT's residual overhead).
"""

from __future__ import annotations

from dataclasses import dataclass


RANGE_HIT = "range_hit"
RANGE_FILL = "range_fill"
UNCOVERED = "uncovered"


@dataclass
class RmmStats:
    """Range TLB counters."""

    range_hits: int = 0
    range_fills: int = 0
    uncovered: int = 0

    @property
    def covered(self) -> int:
        return self.range_hits + self.range_fills

    @property
    def total(self) -> int:
        return self.covered + self.uncovered


class RangeTlb:
    """Fully-associative LRU range TLB (Table II: 32 entries)."""

    def __init__(self, entries: int = 32, min_range_pages: int = 32):
        if entries <= 0:
            raise ValueError(f"range TLB needs at least one entry, got {entries}")
        self.entries = entries
        self.min_range_pages = min_range_pages
        # run start_vpn -> (end_vpn) in LRU order (dict order).
        self._ranges: dict[int, int] = {}
        self.stats = RmmStats()

    def on_miss(self, vpn: int, run_start: int, run_len: int) -> str:
        """One last-level TLB miss.

        ``run_start``/``run_len`` describe the effective 2D run backing
        the page (0 length when the page is outside any run big enough
        to be a range).
        """
        hit_start = None
        for start, end in self._ranges.items():
            if start <= vpn < end:
                hit_start = start
                break
        if hit_start is not None:
            # LRU refresh.
            end = self._ranges.pop(hit_start)
            self._ranges[hit_start] = end
            self.stats.range_hits += 1
            return RANGE_HIT
        if run_len >= self.min_range_pages:
            if len(self._ranges) >= self.entries:
                del self._ranges[next(iter(self._ranges))]
            self._ranges[run_start] = run_start + run_len
            self.stats.range_fills += 1
            return RANGE_FILL
        self.stats.uncovered += 1
        return UNCOVERED


def ranges_for_coverage(run_sizes: list[int], footprint_pages: int,
                        coverage: float = 0.99) -> int:
    """Table I left column: ranges needed to map 99% of the footprint.

    A vRMM range is one contiguous 2D mapping; counting largest-first
    mirrors the paper's methodology.
    """
    from repro.metrics.contiguity import mappings_for_coverage

    return mappings_for_coverage(run_sizes, footprint_pages, coverage)
