"""vRMM: virtualized Redundant Memory Mappings (the paper's comparison).

RMM caches [base, limit, offset] *range translations* in a
fully-associative range TLB, redundant to paging.  Virtualized, the
ranges must be full 2D (gVA→hPA) translations — the paper argues the
hardware for that (nested B-tree range walks, range intersection) is
expensive, and uses a 32-entry range TLB with flat range tables in its
emulation (§V).

The overhead model (Table IV) assumes the nested range-table walk is
hidden in the background, so only misses *uncovered by any range* pay a
page walk.  Ranges are the effective 2D runs at least
``min_range_pages`` long (small scattered mappings stay paged —
SVM/BT's residual overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


RANGE_HIT = "range_hit"
RANGE_FILL = "range_fill"
UNCOVERED = "uncovered"


def exact_run_table(
    vpns: np.ndarray, run_starts: np.ndarray, run_lens: np.ndarray
):
    """The unique sorted ``(starts, lens)`` run table when the stream
    satisfies the batched schemes' shared invariants, else None.

    Every batched per-miss machine that reasons per *run* instead of per
    access (vRMM, the coalesced TLB, Utopia) relies on the same three
    stream properties: each access lies inside its own run, equal run
    starts imply equal lengths, and runs are disjoint.  All three hold
    by construction for a :class:`~repro.hw.translation.ResolvedTrace`;
    adversarial streams return None and the callers fall back to their
    scalar loops.
    """
    if not ((run_starts <= vpns) & (vpns < run_starts + run_lens)).all():
        return None
    order = np.argsort(run_starts, kind="stable")
    s = run_starts[order]
    ln = run_lens[order]
    same = s[1:] == s[:-1]
    if (ln[1:][same] != ln[:-1][same]).any():
        return None  # one start, two lengths
    first = np.concatenate(([True], ~same))
    su = s[first]
    lu = ln[first]
    if (su[1:] < su[:-1] + lu[:-1]).any():
        return None  # overlapping runs
    return su, lu


@dataclass
class RmmStats:
    """Range TLB counters."""

    range_hits: int = 0
    range_fills: int = 0
    uncovered: int = 0

    @property
    def covered(self) -> int:
        return self.range_hits + self.range_fills

    @property
    def total(self) -> int:
        return self.covered + self.uncovered


class RangeTlb:
    """Fully-associative LRU range TLB (Table II: 32 entries)."""

    def __init__(self, entries: int = 32, min_range_pages: int = 32):
        if entries <= 0:
            raise ValueError(f"range TLB needs at least one entry, got {entries}")
        self.entries = entries
        self.min_range_pages = min_range_pages
        # run start_vpn -> (end_vpn) in LRU order (dict order).
        self._ranges: dict[int, int] = {}
        self.stats = RmmStats()

    def on_miss(self, vpn: int, run_start: int, run_len: int) -> str:
        """One last-level TLB miss.

        ``run_start``/``run_len`` describe the effective 2D run backing
        the page (0 length when the page is outside any run big enough
        to be a range).
        """
        hit_start = None
        for start, end in self._ranges.items():
            if start <= vpn < end:
                hit_start = start
                break
        if hit_start is not None:
            # LRU refresh.
            end = self._ranges.pop(hit_start)
            self._ranges[hit_start] = end
            self.stats.range_hits += 1
            return RANGE_HIT
        if run_len >= self.min_range_pages:
            if len(self._ranges) >= self.entries:
                del self._ranges[next(iter(self._ranges))]
            self._ranges[run_start] = run_start + run_len
            self.stats.range_fills += 1
            return RANGE_FILL
        self.stats.uncovered += 1
        return UNCOVERED

    # -- batched miss path (the vector engine) -------------------------------

    def on_miss_batch(
        self,
        vpns: np.ndarray,
        run_starts: np.ndarray,
        run_lens: np.ndarray,
    ) -> tuple[int, int, int]:
        """Batched :meth:`on_miss`; returns (hits, fills, uncovered).

        When every access lies inside its own run and the runs form a
        consistent disjoint set (always true for a
        :class:`~repro.hw.translation.ResolvedTrace`), a miss hits the
        range TLB iff its *own* run is resident, so the whole stream
        reduces to fully-associative LRU over ``run_start`` keys —
        resolved in one :func:`~repro.hw.vector_tlb.simulate_level`
        call over the rangeable (``run_len >= min_range_pages``)
        subset; shorter runs are never filled, so they are uncovered
        and perturb nothing.  Warm or inconsistent streams fall back to
        the per-miss loop (same results, just not batched).
        """
        n = int(len(vpns))
        if n == 0:
            return (0, 0, 0)
        vpns = np.ascontiguousarray(vpns, dtype=np.int64)
        run_starts = np.ascontiguousarray(run_starts, dtype=np.int64)
        run_lens = np.ascontiguousarray(run_lens, dtype=np.int64)
        runs = self._batch_exact(vpns, run_starts, run_lens)
        if self._ranges or runs is None:
            hits = fills = uncovered = 0
            for v, s, ln in zip(
                vpns.tolist(), run_starts.tolist(), run_lens.tolist()
            ):
                outcome = self.on_miss(v, s, ln)
                if outcome == RANGE_HIT:
                    hits += 1
                elif outcome == RANGE_FILL:
                    fills += 1
                else:
                    uncovered += 1
            return (hits, fills, uncovered)

        from repro.hw import vector_tlb as vt

        rangeable = run_lens >= self.min_range_pages
        n_rangeable = int(rangeable.sum())
        uncovered = n - n_rangeable
        hits = fills = 0
        if n_rangeable:
            starts = run_starts[rangeable]
            hit_mask, residents = vt.simulate_level(
                starts,
                np.zeros(n_rangeable, dtype=np.int32),
                1,
                self.entries,
            )
            hits = int(hit_mask.sum())
            fills = n_rangeable - hits
            # End VPN of each resident range, via the unique run table
            # (at most ``entries`` lookups).
            su, lu = runs
            pos = np.searchsorted(su, np.asarray(residents[0], dtype=np.int64))
            ends = (su[pos] + lu[pos]).tolist()
            self._ranges = dict(zip(residents[0], ends))
        self.stats.range_hits += hits
        self.stats.range_fills += fills
        self.stats.uncovered += uncovered
        return (hits, fills, uncovered)

    #: Shared stream validator (kept as an attribute for back-compat).
    _batch_exact = staticmethod(exact_run_table)


def ranges_for_coverage(run_sizes: list[int], footprint_pages: int,
                        coverage: float = 0.99) -> int:
    """Table I left column: ranges needed to map 99% of the footprint.

    A vRMM range is one contiguous 2D mapping; counting largest-first
    mirrors the paper's methodology.
    """
    from repro.metrics.contiguity import mappings_for_coverage

    return mappings_for_coverage(run_sizes, footprint_pages, coverage)
