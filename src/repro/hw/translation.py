"""Vectorized view of a memory state's effective translations.

The MMU simulator needs, for every trace access: the backing frame, the
TLB entry granularity (4K or 2M), whether the translation belongs to a
large contiguous mapping (the SpOT contiguity bit in both dimensions),
and whether it falls into the direct segment.  This module resolves a
whole numpy trace in a few ``searchsorted`` passes so the sequential
TLB loop stays lean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import HUGE_ORDER, HUGE_PAGES
from repro.virt.hypervisor import VirtualMachine
from repro.virt.introspect import two_d_runs
from repro.vm.mapping_runs import MappingRuns
from repro.vm.process import Process
from repro.workloads.base import AccessTrace


@dataclass
class ResolvedTrace:
    """Per-access attributes the TLB loop consumes."""

    pc: np.ndarray
    vpn: np.ndarray
    ppn: np.ndarray
    entry_base: np.ndarray
    entry_huge: np.ndarray
    contig: np.ndarray
    in_segment: np.ndarray
    range_covered: np.ndarray
    run_start: np.ndarray
    run_len: np.ndarray

    def __len__(self) -> int:
        return len(self.vpn)


class TranslationView:
    """Effective translations of one process (native 1D or virtualized 2D).

    Parameters
    ----------
    runs:
        Mapping runs: gVA→hPA for virtualized states, VA→PA natively.
    huge_regions:
        Sorted array of 2 MiB-region base VPNs for which hardware can
        cache a single 2 MiB TLB entry (guest leaf huge *and* backed by
        one huge nested leaf — splintering otherwise).
    segment_bounds:
        ``(start_vpn, end_vpn)`` ranges covered by the direct segment.
    """

    def __init__(
        self,
        runs: MappingRuns,
        huge_regions: np.ndarray,
        segment_bounds: list[tuple[int, int]],
        contig_threshold: int = 32,
        range_min_pages: int = 32,
        virtualized: bool = False,
    ):
        snapshot = runs.snapshot()
        self.starts = np.array([r.start_vpn for r in snapshot], dtype=np.int64)
        self.ends = np.array([r.end_vpn for r in snapshot], dtype=np.int64)
        self.ppns = np.array([r.start_pfn for r in snapshot], dtype=np.int64)
        self.lengths = (self.ends - self.starts).astype(np.int32)
        self.huge_regions = np.asarray(huge_regions, dtype=np.int64)
        self.segment_bounds = segment_bounds
        self.contig_threshold = contig_threshold
        self.range_min_pages = range_min_pages
        self.virtualized = virtualized

    # -- constructors -----------------------------------------------------

    @classmethod
    def native(cls, process: Process, contig_threshold=32,
               force_4k: bool = False) -> "TranslationView":
        """View of a native process's page tables.

        ``contig_threshold="auto"`` derives the SpOT contiguity-bit
        threshold from the process's run-length statistics (§IV-C's
        dynamic-adjustment suggestion).
        """
        if contig_threshold == "auto":
            from repro.metrics.contiguity import suggest_contig_threshold

            contig_threshold = suggest_contig_threshold(process.space.runs)
        huge = (
            np.empty(0, dtype=np.int64)
            if force_4k
            else np.array(
                sorted(
                    vpn
                    for vpn, pte in process.space.page_table.iter_leaves()
                    if pte.huge
                ),
                dtype=np.int64,
            )
        )
        return cls(
            process.space.runs,
            huge,
            segment_bounds=_anon_bounds(process),
            contig_threshold=contig_threshold,
            virtualized=False,
        )

    @classmethod
    def virtualized(cls, vm: VirtualMachine, process: Process,
                    contig_threshold=32,
                    force_4k: bool = False) -> "TranslationView":
        """2D (gVA→hPA) view of a guest process.

        A 2 MiB TLB entry is possible only where the guest leaf is huge
        and the whole region stays contiguous through the nested
        dimension (one 2D run covers it); otherwise the entry
        splinters to 4 KiB.  ``contig_threshold="auto"`` derives the
        threshold from the 2D run statistics.
        """
        runs = two_d_runs(vm, process)
        if contig_threshold == "auto":
            from repro.metrics.contiguity import suggest_contig_threshold

            contig_threshold = suggest_contig_threshold(runs)
        huge_list: list[int] = []
        if not force_4k:
            for vpn, pte in process.space.page_table.iter_leaves():
                if not pte.huge:
                    continue
                run = runs.find(vpn)
                if run and run.start_vpn <= vpn and run.end_vpn >= vpn + HUGE_PAGES:
                    huge_list.append(vpn)
        return cls(
            runs,
            np.array(sorted(huge_list), dtype=np.int64),
            segment_bounds=_anon_bounds(process),
            contig_threshold=contig_threshold,
            virtualized=True,
        )

    # -- scalar queries (tests / schemes) --------------------------------------

    def translate(self, vpn: int) -> int | None:
        """Backing frame of one page, or None."""
        i = int(np.searchsorted(self.starts, vpn, side="right")) - 1
        if i < 0 or vpn >= self.ends[i]:
            return None
        return int(self.ppns[i] + (vpn - self.starts[i]))

    def run_length_at(self, vpn: int) -> int:
        """Length of the effective run covering ``vpn`` (0 if unmapped)."""
        i = int(np.searchsorted(self.starts, vpn, side="right")) - 1
        if i < 0 or vpn >= self.ends[i]:
            return 0
        return int(self.lengths[i])

    # -- vectorized resolution ---------------------------------------------------

    #: ``resolve`` swaps per-access binary searches for direct lookup
    #: tables when the trace's vpn footprint is compact enough to index
    #: (tables this size build in microseconds and fit in cache).
    _LUT_SPAN_CAP = 1 << 22

    def resolve(self, trace: AccessTrace, vma_start_vpns: list[int]) -> ResolvedTrace:
        """Resolve a trace into per-access attributes (numpy, no loops)."""
        base = np.asarray(vma_start_vpns, dtype=np.int64)
        vpn = base[trace.vma] + trace.page
        vmin = int(vpn.min()) if vpn.size else 0
        span = (int(vpn.max()) - vmin + 1) if vpn.size else 0
        region = vpn & ~np.int64(HUGE_PAGES - 1)

        if 0 < span <= self._LUT_SPAN_CAP:
            rel = (vpn - vmin).astype(np.int32)
            # Step function #{starts <= v}: one count per bucket, then a
            # prefix sum.  Starts below the window land in bucket 0 and
            # count for every v; starts above it land in the sentinel
            # bucket no lookup reaches.
            d = np.zeros(span + 1, dtype=np.int32)
            np.add.at(d, np.clip(self.starts - vmin, 0, span), 1)
            idx = np.cumsum(d, dtype=np.int32)[rel] - 1

            rbase = vmin >> HUGE_ORDER
            rsize = ((vmin + span - 1) >> HUGE_ORDER) - rbase + 1
            lut_huge = np.zeros(rsize, dtype=bool)
            if len(self.huge_regions):
                hr = (self.huge_regions >> HUGE_ORDER) - rbase
                lut_huge[hr[(hr >= 0) & (hr < rsize)]] = True
            entry_huge = lut_huge[(vpn >> HUGE_ORDER) - rbase]

            # Segment coverage as a +1/-1 fence diff over the window.
            d2 = np.zeros(span + 1, dtype=np.int32)
            for lo, hi in self.segment_bounds:
                d2[min(max(lo - vmin, 0), span)] += 1
                d2[min(max(hi - vmin, 0), span)] -= 1
            in_segment = np.cumsum(d2, dtype=np.int32)[rel] > 0
        else:
            idx = np.searchsorted(self.starts, vpn, side="right") - 1
            if len(self.huge_regions):
                pos = np.searchsorted(self.huge_regions, region)
                pos_c = np.clip(pos, 0, len(self.huge_regions) - 1)
                entry_huge = self.huge_regions[pos_c] == region
            else:
                entry_huge = np.zeros(len(vpn), dtype=bool)
            # Segment bounds are disjoint intervals: a page is inside one
            # iff its insertion point into the flattened edge list is odd.
            if self.segment_bounds:
                edges = np.asarray(
                    [e for b in sorted(self.segment_bounds) for e in b],
                    dtype=np.int64,
                )
                in_segment = (np.searchsorted(edges, vpn, side="right") & 1) == 1
            else:
                in_segment = np.zeros(len(vpn), dtype=bool)

        idx_clipped = np.clip(idx, 0, max(0, len(self.starts) - 1))
        starts = self.starts[idx_clipped]
        bad = (idx < 0) | (len(self.starts) == 0)
        if len(self.starts):
            bad |= vpn >= self.ends[idx_clipped]
        if bad.any():
            missing = vpn[bad]
            raise ValueError(
                f"trace touches {len(missing)} unmapped pages "
                f"(first vpn {int(missing[0]):#x}) — run the workload first"
            )
        ppn = self.ppns[idx_clipped] + (vpn - starts)
        run_len = self.lengths[idx_clipped]
        contig = run_len >= self.contig_threshold
        range_covered = run_len >= self.range_min_pages
        entry_base = np.where(entry_huge, region, vpn)

        return ResolvedTrace(
            pc=trace.pc,
            vpn=vpn,
            ppn=ppn,
            entry_base=entry_base,
            entry_huge=entry_huge,
            contig=contig,
            in_segment=in_segment,
            range_covered=range_covered,
            run_start=starts,
            run_len=run_len,
        )


def _anon_bounds(process: Process) -> list[tuple[int, int]]:
    """Direct-segment coverage: the process's anonymous areas.

    The paper's DS baseline backs the primary region (all heap
    allocations, steered there by the modified TCMalloc) with one dual
    direct segment.
    """
    return [
        (vma.start_vpn, vma.end_vpn)
        for vma in process.space.iter_vmas()
        if vma.file is None
    ]
