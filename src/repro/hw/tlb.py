"""Set-associative TLBs and the two-level hierarchy of Table II.

Keys are ``(base_vpn, huge)`` pairs: a 2 MiB entry covers its whole
512-page region under one tag.  Replacement is true LRU within a set
(dict insertion order re-touched on hit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class SetAssocTlb:
    """One set-associative translation buffer."""

    __slots__ = ("n_sets", "ways", "_sets", "hits", "misses")

    def __init__(self, entries: int, ways: int):
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(
                f"invalid TLB geometry: {entries} entries, {ways} ways"
            )
        self.n_sets = entries // ways
        self.ways = ways
        self._sets: list[dict] = [dict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, key) -> dict:
        # Mix the hash before picking a set: Python hashes integers to
        # themselves, so aligned keys (anchor bases, page numbers)
        # would otherwise alias into a single set.
        return self._sets[((hash(key) * 0x9E3779B1) >> 12) % self.n_sets]

    def lookup(self, key) -> bool:
        """Probe for ``key``; refreshes LRU position on a hit."""
        s = self._set_of(key)
        if key in s:
            # Move to MRU position (dicts preserve insertion order).
            del s[key]
            s[key] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key) -> None:
        """Fill ``key``, evicting the LRU way when the set is full."""
        s = self._set_of(key)
        if key in s:
            del s[key]
        elif len(s) >= self.ways:
            del s[next(iter(s))]  # oldest = LRU
        s[key] = None

    def flush(self) -> None:
        """Invalidate everything (context switch / shootdown)."""
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(s) for s in self._sets)


class TlbHierarchy:
    """Split L1 (4K / 2M) + unified L2 (the paper's L2 STLB).

    ``access`` returns ``"l1"``, ``"l2"`` or ``"miss"``; only ``"miss"``
    triggers a page walk (the paper's instrumentation point).  Fills
    propagate to both levels.
    """

    def __init__(self, l1_4k: SetAssocTlb, l1_2m: SetAssocTlb, l2: SetAssocTlb):
        self.l1_4k = l1_4k
        self.l1_2m = l1_2m
        self.l2 = l2

    @classmethod
    def from_config(cls, hw) -> "TlbHierarchy":
        """Build from a :class:`~repro.sim.config.HardwareConfig`."""
        return cls(
            SetAssocTlb(hw.l1_4k_entries, hw.l1_4k_ways),
            SetAssocTlb(hw.l1_2m_entries, hw.l1_2m_ways),
            SetAssocTlb(hw.l2_entries, hw.l2_ways),
        )

    def access(self, base_vpn: int, huge: bool) -> str:
        """One translation request; fills on miss resolution."""
        l1 = self.l1_2m if huge else self.l1_4k
        key = (base_vpn, huge)
        if l1.lookup(key):
            return "l1"
        if self.l2.lookup(key):
            l1.insert(key)
            return "l2"
        # The page walk resolved the translation: fill both levels.
        self.l2.insert(key)
        l1.insert(key)
        return "miss"

    def flush(self) -> None:
        """Invalidate all levels."""
        self.l1_4k.flush()
        self.l1_2m.flush()
        self.l2.flush()

    # -- batched access (the vector engine) ----------------------------------

    def simulate(self, base_vpn: np.ndarray, huge: np.ndarray) -> np.ndarray:
        """Replay a whole access stream at once, exactly.

        Equivalent to calling :meth:`access` per element: returns the
        per-access level (0 = L1 hit, 1 = L2 hit, 2 = walk) and leaves
        every counter and every set's resident keys + LRU order as the
        sequential replay would.  Set-associative LRU outcomes are a
        pure function of the access stream (hits and fills both move
        the key to MRU), which is what lets the whole stream be decided
        up front — see :mod:`repro.hw.vector_tlb`.
        """
        from repro.hw import vector_tlb as vt

        m = len(base_vpn)
        levels = np.zeros(m, dtype=np.int8)
        if m == 0:
            return levels
        hashes = vt.key_hashes(base_vpn, huge)
        codes = np.left_shift(base_vpn, 1)
        np.bitwise_or(codes, huge, out=codes, casting="unsafe")
        huge_mask = huge if huge.dtype == bool else huge.astype(bool)
        n_huge = int(huge_mask.sum())
        l1_hit = np.zeros(m, dtype=bool)
        for l1, idx in (
            (self.l1_4k, None if n_huge == 0 else np.flatnonzero(~huge_mask)),
            (self.l1_2m, None if n_huge == m else np.flatnonzero(huge_mask)),
        ):
            if idx is None:
                # This level takes the whole stream: skip the gathers.
                sets = vt.set_indices(hashes, l1.n_sets)
                l1_hit = self._level_hits(l1, codes, sets)
            elif idx.size == 0:
                continue
            else:
                sets = vt.set_indices(hashes[idx], l1.n_sets)
                l1_hit[idx] = self._level_hits(l1, codes[idx], sets)
        miss_idx = np.flatnonzero(~l1_hit)
        sets = vt.set_indices(hashes[miss_idx], self.l2.n_sets)
        l2_hit = self._level_hits(self.l2, codes[miss_idx], sets)
        levels[miss_idx] = np.where(l2_hit, np.int8(1), np.int8(2))
        return levels

    @staticmethod
    def _level_hits(tlb: SetAssocTlb, codes: np.ndarray, sets: np.ndarray) -> np.ndarray:
        """Hit mask of one level's stream; updates counters and contents.

        Pre-existing residents behave exactly like a warmup prefix that
        accessed each of them in LRU→MRU order (that replay rebuilds the
        same occupancy and recency without evicting), so they are
        prepended for the outcome computation and dropped from the
        accounting.
        """
        from repro.hw import vector_tlb as vt

        warm_codes: list[int] = []
        warm_sets: list[int] = []
        for s, resident in enumerate(tlb._sets):
            for key in resident:
                warm_codes.append((key[0] << 1) | int(bool(key[1])))
                warm_sets.append(s)
        skip = len(warm_codes)
        if skip:
            codes = np.concatenate(
                [np.asarray(warm_codes, dtype=np.int64), codes]
            )
            sets = np.concatenate([np.asarray(warm_sets, dtype=np.int32), sets])
        hits, resident = vt.simulate_level(codes, sets, tlb.n_sets, tlb.ways)
        hits = hits[skip:]
        n_hits = int(hits.sum())
        tlb.hits += n_hits
        tlb.misses += hits.size - n_hits
        for s, keys in zip(tlb._sets, resident):
            s.clear()
            for code in keys:
                s[(code >> 1, bool(code & 1))] = None
        return hits

    @property
    def walk_count(self) -> int:
        """Translation requests that required a page walk."""
        return self.l2.misses
