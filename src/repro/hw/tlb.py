"""Set-associative TLBs and the two-level hierarchy of Table II.

Keys are ``(base_vpn, huge)`` pairs: a 2 MiB entry covers its whole
512-page region under one tag.  Replacement is true LRU within a set
(dict insertion order re-touched on hit).
"""

from __future__ import annotations

from repro.errors import ConfigError


class SetAssocTlb:
    """One set-associative translation buffer."""

    __slots__ = ("n_sets", "ways", "_sets", "hits", "misses")

    def __init__(self, entries: int, ways: int):
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(
                f"invalid TLB geometry: {entries} entries, {ways} ways"
            )
        self.n_sets = entries // ways
        self.ways = ways
        self._sets: list[dict] = [dict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, key) -> dict:
        # Mix the hash before picking a set: Python hashes integers to
        # themselves, so aligned keys (anchor bases, page numbers)
        # would otherwise alias into a single set.
        return self._sets[((hash(key) * 0x9E3779B1) >> 12) % self.n_sets]

    def lookup(self, key) -> bool:
        """Probe for ``key``; refreshes LRU position on a hit."""
        s = self._set_of(key)
        if key in s:
            # Move to MRU position (dicts preserve insertion order).
            del s[key]
            s[key] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key) -> None:
        """Fill ``key``, evicting the LRU way when the set is full."""
        s = self._set_of(key)
        if key in s:
            del s[key]
        elif len(s) >= self.ways:
            del s[next(iter(s))]  # oldest = LRU
        s[key] = None

    def flush(self) -> None:
        """Invalidate everything (context switch / shootdown)."""
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(s) for s in self._sets)


class TlbHierarchy:
    """Split L1 (4K / 2M) + unified L2 (the paper's L2 STLB).

    ``access`` returns ``"l1"``, ``"l2"`` or ``"miss"``; only ``"miss"``
    triggers a page walk (the paper's instrumentation point).  Fills
    propagate to both levels.
    """

    def __init__(self, l1_4k: SetAssocTlb, l1_2m: SetAssocTlb, l2: SetAssocTlb):
        self.l1_4k = l1_4k
        self.l1_2m = l1_2m
        self.l2 = l2

    @classmethod
    def from_config(cls, hw) -> "TlbHierarchy":
        """Build from a :class:`~repro.sim.config.HardwareConfig`."""
        return cls(
            SetAssocTlb(hw.l1_4k_entries, hw.l1_4k_ways),
            SetAssocTlb(hw.l1_2m_entries, hw.l1_2m_ways),
            SetAssocTlb(hw.l2_entries, hw.l2_ways),
        )

    def access(self, base_vpn: int, huge: bool) -> str:
        """One translation request; fills on miss resolution."""
        l1 = self.l1_2m if huge else self.l1_4k
        key = (base_vpn, huge)
        if l1.lookup(key):
            return "l1"
        if self.l2.lookup(key):
            l1.insert(key)
            return "l2"
        # The page walk resolved the translation: fill both levels.
        self.l2.insert(key)
        l1.insert(key)
        return "miss"

    def flush(self) -> None:
        """Invalidate all levels."""
        self.l1_4k.flush()
        self.l1_2m.flush()
        self.l2.flush()

    @property
    def walk_count(self) -> int:
        """Translation requests that required a page walk."""
        return self.l2.misses
