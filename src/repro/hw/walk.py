"""Page-walk latency model: where the AvgC constants come from.

A native x86-64 walk references up to 4 page-table levels; a nested
walk references every guest level *and*, for each guest level plus the
final gPA, a full nested walk — up to ``gl·(nl+1) + nl`` memory
references (24 for 4-level tables, the paper's §II figure).  Huge pages
cut one level off each dimension.  MMU caches (PWC) absorb a fraction
of the upper-level references; the remainder hit the cache hierarchy at
some average cost.

Defaults are calibrated so the nested THP walk averages ~81 cycles —
the number the paper measures on Broadwell (§VI-B) — and the other
configurations scale mechanistically from the reference counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.perf_model import WalkCosts


@dataclass(frozen=True)
class WalkLatencyModel:
    """Mechanistic AvgC derivation.

    Parameters
    ----------
    cycles_per_reference:
        Average cost of one page-table memory reference that misses the
        MMU caches (a mix of L2/LLC hits).
    pwc_hit_rate:
        Fraction of references absorbed by paging-structure caches.
    """

    cycles_per_reference: float = 9.0
    pwc_hit_rate: float = 0.55

    @staticmethod
    def native_references(levels: int) -> int:
        """References of a native walk (one per level)."""
        return levels

    @staticmethod
    def nested_references(guest_levels: int, nested_levels: int) -> int:
        """References of a 2D walk: gl·(nl+1) + nl (24 for 4+4)."""
        return guest_levels * (nested_levels + 1) + nested_levels

    def cycles(self, references: int) -> float:
        """Average walk latency for a given reference count."""
        effective = references * (1.0 - self.pwc_hit_rate)
        return effective * self.cycles_per_reference

    def walk_costs(self) -> WalkCosts:
        """Derive the Table IV AvgC set.

        4K tables walk 4 levels per dimension; THP leaves cut the last
        level (3 per dimension).
        """
        # The flat additions model the TLB-miss fixed costs (queueing,
        # fill) that dominate short native walks; with the defaults the
        # derived nested-THP cost lands at the paper's ~81 cycles.
        return WalkCosts(
            native_4k=self.cycles(self.native_references(4)) + 25.0,
            native_thp=self.cycles(self.native_references(3)) + 20.0,
            nested_4k=self.cycles(self.nested_references(4, 4)),
            nested_thp=self.cycles(self.nested_references(3, 3)) + 20.0,
        )
