"""Utopia: hybrid restrictive/flexible virtual-to-physical mappings.

Utopia (arXiv 2211.12205) splits physical memory into two mapping
regions: *RestSegs*, where the virtual-to-physical mapping is
restricted enough that translation needs no page walk (a set-index-like
computation plus a small tag check), and *FlexSegs*, conventional
flexibly-mapped memory that pays the full (nested) walk.  Hot data
migrates into RestSegs so most misses translate at near-segment cost.

The model here maps the design onto this repo's run-granular memory
state: an effective 2D contiguity run is the migration unit.  Every
last-level TLB miss to a run still in flexible memory pays the full
walk and bumps the run's miss counter; when a run's counter reaches
``promote_after`` it is promoted into the RestSeg — if the RestSeg has
capacity left (``restseg_pages``; promotion is permanent, RestSegs are
never evicted in steady state).  Misses to promoted runs cost only the
restrictive translation (``WalkCosts.utopia_rest_cycles``).

The scalar :meth:`UtopiaMapper.on_miss` is the reference;
:meth:`UtopiaMapper.on_miss_batch` resolves a whole miss stream at
once: promotion decisions depend only on per-run miss counts and the
order in which runs reach the promotion threshold, both computable in
closed form from the stream (capacity is monotone decreasing, so a run
that cannot promote at threshold can never promote later).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

REST_HIT = "rest_hit"
FLEX_WALK = "flex_walk"


@dataclass
class UtopiaStats:
    """Hybrid-mapping counters."""

    rest_hits: int = 0
    flex_walks: int = 0
    promotions: int = 0
    promoted_pages: int = 0

    @property
    def total(self) -> int:
        return self.rest_hits + self.flex_walks

    @property
    def rest_fraction(self) -> float:
        return self.rest_hits / max(1, self.total)


class UtopiaMapper:
    """Promotion state machine over contiguity runs.

    Parameters
    ----------
    restseg_pages:
        Total restrictive-region capacity, in pages.
    promote_after:
        Flexible misses a run must absorb before it is promoted.
    """

    def __init__(self, restseg_pages: int = 1 << 18, promote_after: int = 4):
        if restseg_pages < 0:
            raise ValueError(f"negative RestSeg capacity: {restseg_pages}")
        if promote_after < 1:
            raise ValueError(f"promote_after must be >= 1, got {promote_after}")
        self.restseg_pages = restseg_pages
        self.promote_after = promote_after
        #: run_start -> run_len, in promotion order (dict order).
        self._promoted: dict[int, int] = {}
        #: run_start -> flexible misses seen, in first-touch order.
        self._miss_counts: dict[int, int] = {}
        self.free_pages = restseg_pages
        self.stats = UtopiaStats()

    def on_miss(self, vpn: int, run_start: int, run_len: int) -> str:
        """One last-level TLB miss; REST_HIT when the run is promoted."""
        if run_start in self._promoted:
            self.stats.rest_hits += 1
            return REST_HIT
        self.stats.flex_walks += 1
        count = self._miss_counts.get(run_start, 0) + 1
        self._miss_counts[run_start] = count
        if count >= self.promote_after and 0 < run_len <= self.free_pages:
            self._promoted[run_start] = run_len
            self.free_pages -= run_len
            self.stats.promotions += 1
            self.stats.promoted_pages += run_len
        return FLEX_WALK

    # -- batched miss path (the vector engine) -------------------------------

    def on_miss_batch(
        self,
        vpns: np.ndarray,
        run_starts: np.ndarray,
        run_lens: np.ndarray,
    ) -> tuple[int, int]:
        """Batched :meth:`on_miss`; returns (rest_hits, flex_walks).

        Per run the outcome stream is closed-form: accesses before the
        promotion point are flexible walks, accesses after are
        restrictive hits.  A run's only possible promotion point is the
        miss where its counter first reaches ``promote_after`` —
        capacity never grows, so a run refused there is refused forever
        — and admission replays the candidates in stream order against
        the running capacity, exactly as the scalar loop would.
        Streams violating the run invariants (inconsistent lengths,
        access outside its run) fall back to the per-miss loop.
        """
        n = int(len(vpns))
        if n == 0:
            return (0, 0)
        vpns = np.ascontiguousarray(vpns, dtype=np.int64)
        run_starts = np.ascontiguousarray(run_starts, dtype=np.int64)
        run_lens = np.ascontiguousarray(run_lens, dtype=np.int64)

        from repro.hw.rmm import exact_run_table

        if exact_run_table(vpns, run_starts, run_lens) is None:
            rest = flex = 0
            for v, s, ln in zip(
                vpns.tolist(), run_starts.tolist(), run_lens.tolist()
            ):
                if self.on_miss(v, s, ln) == REST_HIT:
                    rest += 1
                else:
                    flex += 1
            return (rest, flex)

        # Distinct runs in first-appearance order.
        order = np.argsort(run_starts, kind="stable")
        s_sorted = run_starts[order]
        group_first = np.concatenate(([True], s_sorted[1:] != s_sorted[:-1]))
        group_starts = np.flatnonzero(group_first)
        group_ends = np.append(group_starts[1:], n)
        first_pos = order[group_starts]
        by_stream = np.argsort(first_pos, kind="stable")

        rest = flex = 0
        candidates = []  # (promotion stream position, run_start, run_len, size)
        for g in by_stream.tolist():
            lo, hi = int(group_starts[g]), int(group_ends[g])
            start = int(s_sorted[lo])
            size = hi - lo
            if start in self._promoted:
                rest += size
                continue
            length = int(run_lens[order[lo]])
            c0 = self._miss_counts.get(start, 0)
            # A run already past the threshold was refused for capacity
            # before; capacity is monotone, so it re-candidates at its
            # first miss and is refused again — need clamps to 1.
            need = max(1, self.promote_after - c0)
            if need > size:
                # Never reaches the threshold in this batch.
                flex += size
                self._miss_counts[start] = c0 + size
                continue
            # Insert the key now so ``_miss_counts`` keeps first-touch
            # order (the admission loop below only updates values).
            self._miss_counts[start] = c0
            positions = np.sort(order[lo:hi])
            candidates.append((int(positions[need - 1]), start, length, size, need))

        # Admit candidates in stream order against the running capacity.
        for pos, start, length, size, need in sorted(candidates):
            c0 = self._miss_counts.get(start, 0)
            if 0 < length <= self.free_pages:
                self._promoted[start] = length
                self.free_pages -= length
                self.stats.promotions += 1
                self.stats.promoted_pages += length
                # The promoting miss itself is still a flexible walk;
                # counting stops at the threshold.
                self._miss_counts[start] = c0 + need
                flex += need
                rest += size - need
            else:
                self._miss_counts[start] = c0 + size
                flex += size

        self.stats.rest_hits += rest
        self.stats.flex_walks += flex
        return (rest, flex)
