"""Exact vectorized set-associative LRU simulation.

The MMU simulator's vector engine rests on one structural fact: a TLB
access moves its key to the MRU position *whether it hits or misses*
(a hit refreshes, a miss fills), so set membership over time is a pure
function of the access stream — never of the hit/miss outcomes.  The
resident keys of a ``ways``-way set are therefore always the ``ways``
most recently accessed distinct keys, and an access hits iff fewer
than ``ways`` distinct keys were touched in its set since the previous
access to the same key (the classic LRU stack-distance criterion).

That criterion is computed without simulating anything, in four
vectorized stages per set-associative level:

1. cold keys (no previous occurrence) miss;
2. a reuse gap of fewer than ``ways`` intervening accesses cannot span
   ``ways`` distinct keys — sure hit;
3. fewer than ``ways`` *runs* of equal keys inside the gap bounds the
   distinct count the same way — sure hit;
4. the remaining ambiguous windows are scanned backward in lockstep,
   counting only positions whose key does not recur before the access
   under test (each distinct key in a window is counted exactly once,
   at its last occurrence there) and stopping at ``ways``; once few
   windows remain, each is finished with one slice reduction.

Set indices replicate :meth:`SetAssocTlb._set_of` bit for bit, which
requires the CPython ``hash((base_vpn, huge))`` value; the xxHash-based
tuple hash (CPython >= 3.8) is reproduced in wrapping uint64 arithmetic.
"""

from __future__ import annotations

import numpy as np

# CPython's tuple-hash constants (pyhash.h, 64-bit build).
_XXPRIME_1 = np.uint64(11400714785074694791)
_XXPRIME_2 = np.uint64(14029467366897019727)
_XXPRIME_5 = np.uint64(2870177450012600261)
#: Golden-ratio multiplier from :meth:`SetAssocTlb._set_of`.
_SET_MIX = np.uint64(0x9E3779B1)

#: Lockstep scans hand the last few unresolved windows to per-window
#: slice reductions (the long tail would otherwise pay per-round
#: dispatch overhead on near-empty arrays).
_SCAN_TAIL = 256


def tuple2_hashes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """``hash((int(a), int(b)))`` per element, as wrapping uint64.

    Exact for lane values in ``[0, 2**61 - 1)`` (where ``hash(int)`` is
    the identity — page numbers, PCs, walk levels and bools all are) on
    64-bit CPython >= 3.8.  Every 2-tuple set-index replication (TLB
    keys, PWC level prefixes, nTLB table pages) shares this helper.
    """
    acc = first.astype(np.uint64)
    acc *= _XXPRIME_2
    acc += _XXPRIME_5
    hi = acc >> np.uint64(33)
    acc <<= np.uint64(31)
    acc |= hi
    acc *= _XXPRIME_1
    lane = second.astype(np.uint64)
    lane *= _XXPRIME_2
    acc += lane
    np.right_shift(acc, np.uint64(33), out=hi)
    acc <<= np.uint64(31)
    acc |= hi
    acc *= _XXPRIME_1
    acc += np.uint64(2) ^ (_XXPRIME_5 ^ np.uint64(3527539))
    # CPython reserves -1 for errors.
    acc[acc == np.uint64(0xFFFFFFFFFFFFFFFF)] = np.uint64(1546275796)
    return acc


def key_hashes(base_vpn: np.ndarray, huge: np.ndarray) -> np.ndarray:
    """``hash((int(b), bool(h)))`` per element (see :func:`tuple2_hashes`)."""
    return tuple2_hashes(base_vpn, huge)


def set_indices(hashes: np.ndarray, n_sets: int) -> np.ndarray:
    """The set each key maps to, matching :meth:`SetAssocTlb._set_of`.

    Also exact for *unhashed* integer keys (``SpotPredictor._set_of``
    multiplies the raw PC): pass the keys themselves as ``hashes``.

    Python evaluates ``((hash * 0x9E3779B1) >> 12) % n_sets`` in exact
    integer arithmetic; for power-of-two set counts (every geometry in
    :class:`~repro.sim.config.HardwareConfig`) the result depends only
    on bits 12.. of the product modulo 2**64, so wrapping uint64
    arithmetic reproduces it.  Other set counts take an exact per-key
    fallback.
    """
    if n_sets & (n_sets - 1) == 0:
        mixed = hashes * _SET_MIX
        mixed >>= np.uint64(12)
        mixed &= np.uint64(n_sets - 1)
        return mixed.astype(np.int32)
    signed = hashes.astype(np.int64)
    return np.fromiter(
        (((int(v) * 0x9E3779B1) >> 12) % n_sets for v in signed),
        dtype=np.int32,
        count=signed.size,
    )


def _set_grouped_order(sets: np.ndarray, n_sets: int) -> np.ndarray:
    """Stable permutation grouping accesses by set (time order within)."""
    if n_sets == 1:
        return np.arange(sets.size, dtype=np.int64)
    if n_sets <= 16:
        # A handful of linear passes beats a comparison sort.
        return np.concatenate(
            [np.flatnonzero(sets == s) for s in range(n_sets)]
        )
    return np.argsort(sets, kind="stable")


def _ambiguous_hits(
    q: np.ndarray, prev: np.ndarray, nxt: np.ndarray, ways: int
) -> np.ndarray:
    """Resolve the ambiguous windows; returns the hitting subset of ``q``.

    All arrays are in set-grouped positions.  Each window ``(prev[i],
    i)`` is scanned backward one position per lockstep round; position
    ``j`` counts toward the distinct total iff its key does not recur
    before ``i`` (``nxt[j] >= i``).  Reaching ``ways`` decides a miss,
    exhausting the window decides a hit.
    """
    hits = []
    i_arr = q.astype(np.int32)
    p1 = prev[q] + 1  # window floor
    cnt = np.zeros(q.size, dtype=np.int32)
    j = i_arr - 1
    while i_arr.size > _SCAN_TAIL:
        # Scan a few positions between compactions: dead lanes keep
        # scanning but the `j >= p1` guard stops their counts (a lane
        # past its floor gathers a wrapped-around position — harmless,
        # the guard discards it).
        for _ in range(4):
            ok = nxt[j] >= i_arr
            ok &= j >= p1
            cnt += ok
            j -= np.int32(1)
        missed = cnt >= ways
        ended = j < p1
        dead = missed | ended
        if dead.any():
            done_hit = ended & ~missed
            if done_hit.any():
                hits.append(i_arr[done_hit].astype(np.int64))
            live = ~dead
            i_arr = i_arr[live]
            p1 = p1[live]
            cnt = cnt[live]
            j = j[live]
    # Tail: one slice reduction per remaining window (no early stop
    # needed — only a handful of windows are left).
    tail = [
        int(i_arr[t])
        for t in range(i_arr.size)
        if int(cnt[t]) + int((nxt[int(p1[t]):int(j[t]) + 1] >= i_arr[t]).sum())
        < ways
    ]
    hits.append(np.asarray(tail, dtype=np.int64))
    return np.concatenate(hits) if hits else np.zeros(0, dtype=np.int64)


def simulate_level(
    codes: np.ndarray, sets: np.ndarray, n_sets: int, ways: int
) -> tuple[np.ndarray, list[list[int]]]:
    """Exact replay of one set-associative LRU level.

    ``codes`` are packed keys (``(base_vpn << 1) | huge``) in access
    order; ``sets`` their set indices.  Returns the boolean hit mask in
    the same order plus each set's post-stream resident codes in
    LRU→MRU order — both identical to replaying the stream through
    :meth:`SetAssocTlb.lookup`/``insert``.
    """
    m = codes.size
    if m == 0:
        return np.zeros(0, dtype=bool), [[] for _ in range(n_sets)]
    order = _set_grouped_order(sets, n_sets)
    c = codes[order]
    s = sets[order]

    # Previous / next occurrence of the same key, in grouped positions
    # (a key always maps to one set, so key-sorting respects groups).
    # Packing the position into the key's low bits makes a plain sort
    # stable for free and keeps numpy on its fast unstable path; the
    # stable argsort fallback covers keys too wide to pack.
    shift = m.bit_length()
    pos = np.arange(m, dtype=np.int64)
    if int(c.min()) >= 0 and int(c.max()) < (1 << (62 - shift)):
        sp = c << shift
        sp |= pos
        sp.sort()
        o2 = (sp & np.int64((1 << shift) - 1)).astype(np.int32)
        sp >>= shift
        same = sp[1:] == sp[:-1]
    else:
        o2 = np.argsort(c, kind="stable").astype(np.int32)
        co = c[o2]
        same = co[1:] == co[:-1]
    o2_lo = o2[:-1][same]
    o2_hi = o2[1:][same]
    prev = np.full(m, -1, dtype=np.int32)
    prev[o2_hi] = o2_lo
    nxt = np.full(m, m, dtype=np.int32)
    nxt[o2_lo] = o2_hi

    # A reuse gap below `ways` cannot span `ways` distinct keys; the
    # max() keeps cold keys (prev == -1) out at small positions.
    pos32 = pos.astype(np.int32)
    hit = prev >= np.maximum(pos32 - ways, 0)

    q = np.flatnonzero((prev >= 0) & ~hit)
    if q.size:
        # Runs of equal keys inside the reuse window bound its distinct
        # count; window starts (prev+1) always begin a run because the
        # key at prev cannot repeat inside its own reuse window.
        bound = np.empty(m, dtype=bool)
        bound[0] = True
        np.not_equal(c[1:], c[:-1], out=bound[1:])
        bound[1:] |= s[1:] != s[:-1]
        rpre = np.cumsum(bound, dtype=np.int32)
        runs = rpre[q - 1] - rpre[prev[q]]
        ok = runs < ways
        hit[q[ok]] = True
        q = q[~ok]
    if q.size:
        hit[_ambiguous_hits(q, prev, nxt, ways)] = True

    # Post-stream residents: each set's last `ways` distinct keys, in
    # last-access order = each key's final occurrence (nxt == m).
    last_pos = np.flatnonzero(nxt == m)
    ls = s[last_pos]
    by_set = last_pos[_set_grouped_order(ls, n_sets)]
    counts = np.bincount(ls, minlength=n_sets)
    ends = np.cumsum(counts)
    resident = []
    for k in range(n_sets):
        grp = by_set[max(ends[k] - ways, ends[k] - counts[k]):ends[k]]
        resident.append(c[grp].tolist())

    out = np.empty(m, dtype=bool)
    out[order] = hit
    return out, resident
