"""Paging-structure caches (PWC) and a mechanistic walk simulator.

The fixed AvgC constants of :mod:`repro.hw.walk` reproduce the paper's
*measured averages*; this module derives them mechanistically instead,
the way Bhargava et al. (the paper's ref [1], the original 2D-walk
analysis) model it:

- a **PWC** caches upper-level page-table entries keyed by the virtual
  address prefix, letting a walk skip the levels it has cached;
- under nested paging, each guest-level reference is itself a guest-
  physical access that needs translating, served by a **nested TLB**
  (nTLB) caching gPA→hPA translations of page-table pages; misses there
  pay a nested sub-walk.

:class:`WalkSimulator` charges each last-level TLB miss its actual
reference count given the PWC/nTLB state, so average walk cost becomes
a per-workload *output* instead of an input.  ``MmuSimulator`` accepts
one through :class:`~repro.sim.config.HardwareConfig` replacement of
the fixed-cost model in experiments that want it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.tlb import SetAssocTlb
from repro.vm.page_table import LEVEL_BITS

#: Cost of one page-table memory reference that misses all MMU caches
#: (an L2/LLC mix, as in the fixed model).
REF_CYCLES = 9.0
#: Fixed TLB-miss handling cost (queueing, fill) added per walk.
WALK_FIXED_CYCLES = 18.0


class PageWalkCache:
    """Caches interior page-table entries by (level, VA prefix).

    ``deepest_hit`` returns how many upper levels a walk may skip: a
    hit at level L means the walker can start from level L-1.
    """

    def __init__(self, entries: int = 32, ways: int = 4):
        self._cache = SetAssocTlb(entries, ways)

    @staticmethod
    def _key(vpn: int, level: int) -> tuple[int, int]:
        # The prefix that selects the level-(level-1) table.
        return (level, vpn >> (LEVEL_BITS * (level - 1)))

    def deepest_hit(self, vpn: int, levels: int) -> int:
        """Levels skippable for this walk (0 = walk from the root)."""
        for level in range(2, levels + 1):
            # Prefer the deepest (closest to the leaf) cached entry.
            if self._cache.lookup(self._key(vpn, level)):
                return levels - level + 1
        return 0

    def fill(self, vpn: int, levels: int) -> None:
        """Install the interior entries this walk traversed."""
        for level in range(2, levels + 1):
            self._cache.insert(self._key(vpn, level))


@dataclass
class WalkStats:
    """Aggregate reference counts across simulated walks."""

    walks: int = 0
    references: int = 0
    cycles: float = 0.0

    @property
    def avg_cycles(self) -> float:
        """Measured average walk latency (the AvgC analogue)."""
        return self.cycles / self.walks if self.walks else 0.0

    @property
    def avg_references(self) -> float:
        return self.references / self.walks if self.walks else 0.0


class WalkSimulator:
    """Mechanistic per-miss walk costing with PWC and nTLB.

    Parameters
    ----------
    virtualized:
        Nested (2D) walks when True; native walks otherwise.
    levels:
        Radix depth per dimension (4 default, 5 for LA57).
    """

    def __init__(
        self,
        virtualized: bool = False,
        levels: int = 4,
        pwc_entries: int = 32,
        ntlb_entries: int = 64,
        ref_cycles: float = REF_CYCLES,
    ):
        self.virtualized = virtualized
        self.levels = levels
        self.ref_cycles = ref_cycles
        self.pwc = PageWalkCache(pwc_entries)
        # nTLB: translations of guest page-table pages (gPA -> hPA).
        self.ntlb = SetAssocTlb(ntlb_entries, 4) if virtualized else None
        self.stats = WalkStats()

    def walk(self, vpn: int, huge: bool) -> float:
        """Charge one last-level TLB miss; returns its cycles."""
        levels = self.levels - (1 if huge else 0)
        skipped = self.pwc.deepest_hit(vpn, levels)
        guest_refs = levels - skipped
        refs = 0
        for step in range(guest_refs):
            refs += 1  # the guest-dimension reference itself
            if self.ntlb is not None:
                # Translating the guest table page's gPA: nTLB hit is
                # free, a miss pays a nested sub-walk (host levels).
                key = (vpn >> (LEVEL_BITS * step), step)
                if not self.ntlb.lookup(key):
                    refs += self.levels - (1 if huge else 0)
                    self.ntlb.insert(key)
        if self.virtualized:
            # The final gPA of the data page also needs translating.
            refs += 1
        self.pwc.fill(vpn, levels)
        cycles = WALK_FIXED_CYCLES + refs * self.ref_cycles
        self.stats.walks += 1
        self.stats.references += refs
        self.stats.cycles += cycles
        return cycles
