"""Paging-structure caches (PWC) and a mechanistic walk simulator.

The fixed AvgC constants of :mod:`repro.hw.walk` reproduce the paper's
*measured averages*; this module derives them mechanistically instead,
the way Bhargava et al. (the paper's ref [1], the original 2D-walk
analysis) model it:

- a **PWC** caches upper-level page-table entries keyed by the virtual
  address prefix, letting a walk skip the levels it has cached;
- under nested paging, each guest-level reference is itself a guest-
  physical access that needs translating, served by a **nested TLB**
  (nTLB) caching gPA→hPA translations of page-table pages; misses there
  pay a nested sub-walk.

:class:`WalkSimulator` charges each last-level TLB miss its actual
reference count given the PWC/nTLB state, so average walk cost becomes
a per-workload *output* instead of an input.  ``MmuSimulator`` accepts
one through :class:`~repro.sim.config.HardwareConfig` replacement of
the fixed-cost model in experiments that want it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.tlb import SetAssocTlb
from repro.vm.page_table import LEVEL_BITS

#: Cost of one page-table memory reference that misses all MMU caches
#: (an L2/LLC mix, as in the fixed model).
REF_CYCLES = 9.0
#: Fixed TLB-miss handling cost (queueing, fill) added per walk.
WALK_FIXED_CYCLES = 18.0


class PageWalkCache:
    """Caches interior page-table entries by (level, VA prefix).

    ``deepest_hit`` returns how many upper levels a walk may skip: a
    hit at level L means the walker can start from level L-1.
    """

    def __init__(self, entries: int = 32, ways: int = 4):
        self._cache = SetAssocTlb(entries, ways)

    @staticmethod
    def _key(vpn: int, level: int) -> tuple[int, int]:
        # The prefix that selects the level-(level-1) table.
        return (level, vpn >> (LEVEL_BITS * (level - 1)))

    def deepest_hit(self, vpn: int, levels: int) -> int:
        """Levels skippable for this walk (0 = walk from the root)."""
        for level in range(2, levels + 1):
            # Prefer the deepest (closest to the leaf) cached entry.
            if self._cache.lookup(self._key(vpn, level)):
                return levels - level + 1
        return 0

    def fill(self, vpn: int, levels: int) -> None:
        """Install the interior entries this walk traversed."""
        for level in range(2, levels + 1):
            self._cache.insert(self._key(vpn, level))


@dataclass
class WalkStats:
    """Aggregate reference counts across simulated walks."""

    walks: int = 0
    references: int = 0
    cycles: float = 0.0

    @property
    def avg_cycles(self) -> float:
        """Measured average walk latency (the AvgC analogue)."""
        return self.cycles / self.walks if self.walks else 0.0

    @property
    def avg_references(self) -> float:
        return self.references / self.walks if self.walks else 0.0


class WalkSimulator:
    """Mechanistic per-miss walk costing with PWC and nTLB.

    Parameters
    ----------
    virtualized:
        Nested (2D) walks when True; native walks otherwise.
    levels:
        Radix depth per dimension (4 default, 5 for LA57).
    """

    def __init__(
        self,
        virtualized: bool = False,
        levels: int = 4,
        pwc_entries: int = 32,
        ntlb_entries: int = 64,
        ref_cycles: float = REF_CYCLES,
    ):
        self.virtualized = virtualized
        self.levels = levels
        self.ref_cycles = ref_cycles
        self.pwc = PageWalkCache(pwc_entries)
        # nTLB: translations of guest page-table pages (gPA -> hPA).
        self.ntlb = SetAssocTlb(ntlb_entries, 4) if virtualized else None
        self.stats = WalkStats()

    def walk(self, vpn: int, huge: bool) -> float:
        """Charge one last-level TLB miss; returns its cycles."""
        levels = self.levels - (1 if huge else 0)
        skipped = self.pwc.deepest_hit(vpn, levels)
        guest_refs = levels - skipped
        refs = 0
        for step in range(guest_refs):
            refs += 1  # the guest-dimension reference itself
            if self.ntlb is not None:
                # Translating the guest table page's gPA: nTLB hit is
                # free, a miss pays a nested sub-walk (host levels).
                key = (vpn >> (LEVEL_BITS * step), step)
                if not self.ntlb.lookup(key):
                    refs += self.levels - (1 if huge else 0)
                    self.ntlb.insert(key)
        if self.virtualized:
            # The final gPA of the data page also needs translating.
            refs += 1
        self.pwc.fill(vpn, levels)
        cycles = WALK_FIXED_CYCLES + refs * self.ref_cycles
        self.stats.walks += 1
        self.stats.references += refs
        self.stats.cycles += cycles
        return cycles

    # -- batched walk path (the vector engine) -------------------------------

    def walk_batch(self, vpns: np.ndarray, huges: np.ndarray) -> None:
        """Charge a batch of misses; identical to per-walk :meth:`walk`.

        Unlike the TLB and the schemes, the PWC access stream is *not*
        a pure function of the inputs: ``deepest_hit`` probes levels
        until the first hit, so which key gets an LRU refresh (and how
        many probes count as misses) feeds back through the cache
        state, and the nTLB stream length depends on the PWC's answer.
        The caches therefore stay sequential — but everything around
        them vectorizes: all per-level VA prefixes, CPython tuple
        hashes and set indices are computed up front in numpy (via the
        shared :mod:`~repro.hw.vector_tlb` helpers), and the loop runs
        on packed-integer keys against raw set dicts, skipping the
        per-access tuple construction, hashing and attribute chasing
        of the scalar path.  End state (cache contents, LRU order,
        hit/miss counters, float-accumulated cycles) is bit-identical.
        """
        from repro.hw import vector_tlb as vt

        n = int(len(vpns))
        if n == 0:
            return
        vpns = np.ascontiguousarray(vpns, dtype=np.int64)
        huge_l = np.ascontiguousarray(huges, dtype=bool).tolist()
        cache = self.pwc._cache
        # Per PWC level 2..levels: packed key (prefix << 3 | level) and
        # set index, replicating hash((level, prefix)) exactly.
        pwc_keys: dict[int, list[int]] = {}
        pwc_sets_of: dict[int, list[int]] = {}
        for level in range(2, self.levels + 1):
            prefix = vpns >> np.int64(LEVEL_BITS * (level - 1))
            pwc_keys[level] = ((prefix << np.int64(3)) | np.int64(level)).tolist()
            lvl_arr = np.full(n, level, dtype=np.int64)
            pwc_sets_of[level] = vt.set_indices(
                vt.tuple2_hashes(lvl_arr, prefix), cache.n_sets
            ).tolist()
        # Per nTLB step 0..levels-1: packed key (prefix << 3 | step).
        ntlb = self.ntlb
        ntlb_keys: dict[int, list[int]] = {}
        ntlb_sets_of: dict[int, list[int]] = {}
        if ntlb is not None:
            for step in range(self.levels):
                prefix = vpns >> np.int64(LEVEL_BITS * step)
                ntlb_keys[step] = (
                    (prefix << np.int64(3)) | np.int64(step)
                ).tolist()
                step_arr = np.full(n, step, dtype=np.int64)
                ntlb_sets_of[step] = vt.set_indices(
                    vt.tuple2_hashes(prefix, step_arr), ntlb.n_sets
                ).tolist()

        # Packed-key mirrors of the cache sets (insertion order = LRU).
        psets = [
            {(key[1] << 3) | key[0]: None for key in s} for s in cache._sets
        ]
        nsets = (
            [{(key[0] << 3) | key[1]: None for key in s} for s in ntlb._sets]
            if ntlb is not None
            else None
        )
        pwc_ways = cache.ways
        ntlb_ways = ntlb.ways if ntlb is not None else 0
        pwc_hits = pwc_misses = ntlb_hits = ntlb_misses = 0
        virtualized = self.virtualized
        ref_cycles = self.ref_cycles
        total_refs = 0
        cycles_acc = self.stats.cycles
        max_levels = self.levels

        for i in range(n):
            levels = max_levels - (1 if huge_l[i] else 0)
            skipped = 0
            for level in range(2, levels + 1):
                s = psets[pwc_sets_of[level][i]]
                k = pwc_keys[level][i]
                if k in s:
                    del s[k]
                    s[k] = None
                    pwc_hits += 1
                    skipped = levels - level + 1
                    break
                pwc_misses += 1
            refs = 0
            for step in range(levels - skipped):
                refs += 1
                if nsets is not None:
                    s = nsets[ntlb_sets_of[step][i]]
                    k = ntlb_keys[step][i]
                    if k in s:
                        del s[k]
                        s[k] = None
                        ntlb_hits += 1
                    else:
                        ntlb_misses += 1
                        refs += levels
                        if len(s) >= ntlb_ways:
                            del s[next(iter(s))]
                        s[k] = None
            if virtualized:
                refs += 1
            for level in range(2, levels + 1):
                s = psets[pwc_sets_of[level][i]]
                k = pwc_keys[level][i]
                if k in s:
                    del s[k]
                elif len(s) >= pwc_ways:
                    del s[next(iter(s))]
                s[k] = None
            total_refs += refs
            cycles_acc += WALK_FIXED_CYCLES + refs * ref_cycles

        cache._sets = [
            {(k & 7, k >> 3): None for k in s} for s in psets
        ]
        cache.hits += pwc_hits
        cache.misses += pwc_misses
        if ntlb is not None:
            ntlb._sets = [
                {(k >> 3, k & 7): None for k in s} for s in nsets
            ]
            ntlb.hits += ntlb_hits
            ntlb.misses += ntlb_misses
        self.stats.walks += n
        self.stats.references += total_refs
        self.stats.cycles = cycles_acc
