"""vHC: virtualized Hybrid TLB Coalescing (Table I's right columns).

Hybrid coalescing (Park et al.) stores *anchor* entries in the page
table at a fixed, per-process power-of-two stride (the anchor
distance); each anchor covers however much contiguity follows it.  The
paper's point (§IV-A): because anchors are virtually aligned, covering
an unaligned contiguous mapping takes one entry per crossed anchor
stride — ~38x more entries than vRMM ranges under CA paging — so
alignment-free schemes (ranges, SpOT offsets) exploit CA contiguity far
better.

These helpers reproduce Table I's entry counts from a memory state's
run sizes.
"""

from __future__ import annotations

from repro.vm.mapping_runs import MappingRun


def anchor_distance_for(run_sizes: list[int]) -> int:
    """The OS's dynamic anchor distance: ~average contiguity, power of 2.

    Hybrid coalescing adapts the distance to the process's average
    mapping length so anchors neither drown sparse mappings nor cap
    dense ones.
    """
    if not run_sizes:
        return 1
    avg = sum(run_sizes) / len(run_sizes)
    distance = 1
    while distance * 2 <= avg:
        distance *= 2
    return distance


def anchors_for_run(run: MappingRun, distance: int) -> int:
    """Anchor entries needed to cover one contiguous mapping.

    Every ``distance``-aligned boundary the run overlaps needs its own
    anchor entry (virtual alignment restriction).
    """
    if run.n_pages <= 0:
        return 0
    first = run.start_vpn // distance
    last = (run.end_vpn - 1) // distance
    return int(last - first + 1)


def vhc_entries_for_coverage(
    runs: list[MappingRun],
    footprint_pages: int,
    coverage: float = 0.99,
    distance: int | None = None,
) -> int:
    """Table I right column: vHC anchors to map 99% of the footprint.

    Runs are taken largest-first (like the ranges count) and each
    contributes its anchor-entry cost.
    """
    if footprint_pages <= 0:
        return 0
    if distance is None:
        distance = anchor_distance_for([r.n_pages for r in runs])
    goal = coverage * footprint_pages
    covered = 0
    entries = 0
    for run in sorted(runs, key=lambda r: r.n_pages, reverse=True):
        entries += anchors_for_run(run, distance)
        covered += run.n_pages
        if covered >= goal:
            return entries
    return entries + 1
