"""SpOT: Speculative Offset-based Address Translation (paper §IV).

A PC-indexed, set-associative prediction table on the last-level TLB
miss path.  Each entry caches the [offset, permissions] of the last
walk completed by the same instruction plus a 2-bit saturating
confidence counter:

- a prediction is *fed to the pipeline* only when confidence > 1;
- every completed walk compares the entry's offset against the actual
  one and bumps the counter up (match) or down (mismatch);
- the cached offset is replaced only when confidence reaches 0
  (then reset to 1);
- new entries are inserted only when the OS contiguity bit is set in
  both dimensions (the thrash filter of §IV-C), evicting LRU.

Outcomes per miss: ``correct`` (walk latency hidden), ``mispredict``
(walk latency + pipeline flush) or ``no_prediction`` (full walk cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Saturating-counter ceiling (2-bit).
CONF_MAX = 3
#: Confidence required before predictions are fed to the pipeline.
CONF_FEED = 2

CORRECT = "correct"
MISPREDICT = "mispredict"
NO_PREDICTION = "no_prediction"


class _Entry:
    __slots__ = ("pc", "offset", "confidence")

    def __init__(self, pc: int, offset: int):
        self.pc = pc
        self.offset = offset
        self.confidence = 1


@dataclass
class SpotStats:
    """Prediction outcome counters (Fig. 14)."""

    correct: int = 0
    mispredict: int = 0
    no_prediction: int = 0
    fills: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.mispredict + self.no_prediction

    def breakdown(self) -> dict[str, float]:
        """Outcome fractions of all last-level TLB misses."""
        total = max(1, self.total)
        return {
            CORRECT: self.correct / total,
            MISPREDICT: self.mispredict / total,
            NO_PREDICTION: self.no_prediction / total,
        }


class SpotPredictor:
    """The prediction table + confidence mechanism."""

    def __init__(self, entries: int = 32, ways: int = 4,
                 use_confidence: bool = True):
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(
                f"invalid SpOT geometry: {entries} entries, {ways} ways"
            )
        self.n_sets = entries // ways
        self.ways = ways
        #: Ablation: with confidence off, every resident entry predicts
        #: immediately and mismatches replace the offset at once.
        self.use_confidence = use_confidence
        self._sets: list[dict[int, _Entry]] = [dict() for _ in range(self.n_sets)]
        self.stats = SpotStats()

    def _set_of(self, pc: int) -> dict[int, _Entry]:
        # Mix the PC before picking a set: instruction addresses
        # cluster at small strides, so plain modulo would alias hot PCs
        # into one set (Knuth multiplicative hash).
        return self._sets[((pc * 0x9E3779B1) >> 12) % self.n_sets]

    def lookup(self, pc: int) -> _Entry | None:
        """Probe the table (refreshes LRU position)."""
        s = self._set_of(pc)
        entry = s.get(pc)
        if entry is not None:
            del s[pc]
            s[pc] = entry
        return entry

    def predict(self, pc: int, vpn: int) -> int | None:
        """Predicted physical page for ``vpn``, or None (not confident)."""
        entry = self.lookup(pc)
        if entry is None:
            return None
        if self.use_confidence and entry.confidence < CONF_FEED:
            return None
        return vpn - entry.offset

    def on_walk_complete(self, pc: int, vpn: int, ppn: int, contig_bit: bool) -> str:
        """The nested walker's table update; returns the miss outcome.

        Call once per last-level TLB miss after the verification walk
        resolved the true translation ``vpn -> ppn``.
        """
        actual_offset = vpn - ppn
        entry = self.lookup(pc)
        if entry is None:
            if contig_bit:
                self._insert(pc, actual_offset)
            self.stats.no_prediction += 1
            return NO_PREDICTION

        fed = entry.confidence >= CONF_FEED if self.use_confidence else True
        match = entry.offset == actual_offset
        if not self.use_confidence:
            if not match:
                entry.offset = actual_offset
        elif match:
            entry.confidence = min(CONF_MAX, entry.confidence + 1)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.offset = actual_offset
                entry.confidence = 1
        if fed and match:
            self.stats.correct += 1
            return CORRECT
        if fed:
            self.stats.mispredict += 1
            return MISPREDICT
        self.stats.no_prediction += 1
        return NO_PREDICTION

    def _insert(self, pc: int, offset: int) -> None:
        s = self._set_of(pc)
        if len(s) >= self.ways:
            del s[next(iter(s))]  # LRU eviction
        s[pc] = _Entry(pc, offset)
        self.stats.fills += 1

    @property
    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(s) for s in self._sets)
