"""SpOT: Speculative Offset-based Address Translation (paper §IV).

A PC-indexed, set-associative prediction table on the last-level TLB
miss path.  Each entry caches the [offset, permissions] of the last
walk completed by the same instruction plus a 2-bit saturating
confidence counter:

- a prediction is *fed to the pipeline* only when confidence > 1;
- every completed walk compares the entry's offset against the actual
  one and bumps the counter up (match) or down (mismatch);
- the cached offset is replaced only when confidence reaches 0
  (then reset to 1);
- new entries are inserted only when the OS contiguity bit is set in
  both dimensions (the thrash filter of §IV-C), evicting LRU.

Outcomes per miss: ``correct`` (walk latency hidden), ``mispredict``
(walk latency + pipeline flush) or ``no_prediction`` (full walk cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Saturating-counter ceiling (2-bit).
CONF_MAX = 3
#: Confidence required before predictions are fed to the pipeline.
CONF_FEED = 2

CORRECT = "correct"
MISPREDICT = "mispredict"
NO_PREDICTION = "no_prediction"


class _Entry:
    __slots__ = ("pc", "offset", "confidence")

    def __init__(self, pc: int, offset: int):
        self.pc = pc
        self.offset = offset
        self.confidence = 1


@dataclass
class SpotStats:
    """Prediction outcome counters (Fig. 14)."""

    correct: int = 0
    mispredict: int = 0
    no_prediction: int = 0
    fills: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.mispredict + self.no_prediction

    def breakdown(self) -> dict[str, float]:
        """Outcome fractions of all last-level TLB misses."""
        total = max(1, self.total)
        return {
            CORRECT: self.correct / total,
            MISPREDICT: self.mispredict / total,
            NO_PREDICTION: self.no_prediction / total,
        }


class SpotPredictor:
    """The prediction table + confidence mechanism."""

    def __init__(self, entries: int = 32, ways: int = 4,
                 use_confidence: bool = True):
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(
                f"invalid SpOT geometry: {entries} entries, {ways} ways"
            )
        self.n_sets = entries // ways
        self.ways = ways
        #: Ablation: with confidence off, every resident entry predicts
        #: immediately and mismatches replace the offset at once.
        self.use_confidence = use_confidence
        self._sets: list[dict[int, _Entry]] = [dict() for _ in range(self.n_sets)]
        self.stats = SpotStats()

    def _set_of(self, pc: int) -> dict[int, _Entry]:
        # Mix the PC before picking a set: instruction addresses
        # cluster at small strides, so plain modulo would alias hot PCs
        # into one set (Knuth multiplicative hash).
        return self._sets[((pc * 0x9E3779B1) >> 12) % self.n_sets]

    def lookup(self, pc: int) -> _Entry | None:
        """Probe the table (refreshes LRU position)."""
        s = self._set_of(pc)
        entry = s.get(pc)
        if entry is not None:
            del s[pc]
            s[pc] = entry
        return entry

    def predict(self, pc: int, vpn: int) -> int | None:
        """Predicted physical page for ``vpn``, or None (not confident)."""
        entry = self.lookup(pc)
        if entry is None:
            return None
        if self.use_confidence and entry.confidence < CONF_FEED:
            return None
        return vpn - entry.offset

    def on_walk_complete(self, pc: int, vpn: int, ppn: int, contig_bit: bool) -> str:
        """The nested walker's table update; returns the miss outcome.

        Call once per last-level TLB miss after the verification walk
        resolved the true translation ``vpn -> ppn``.
        """
        actual_offset = vpn - ppn
        entry = self.lookup(pc)
        if entry is None:
            if contig_bit:
                self._insert(pc, actual_offset)
            self.stats.no_prediction += 1
            return NO_PREDICTION

        fed = entry.confidence >= CONF_FEED if self.use_confidence else True
        match = entry.offset == actual_offset
        if not self.use_confidence:
            if not match:
                entry.offset = actual_offset
        elif match:
            entry.confidence = min(CONF_MAX, entry.confidence + 1)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.offset = actual_offset
                entry.confidence = 1
        if fed and match:
            self.stats.correct += 1
            return CORRECT
        if fed:
            self.stats.mispredict += 1
            return MISPREDICT
        self.stats.no_prediction += 1
        return NO_PREDICTION

    def _insert(self, pc: int, offset: int) -> None:
        s = self._set_of(pc)
        if len(s) >= self.ways:
            del s[next(iter(s))]  # LRU eviction
        s[pc] = _Entry(pc, offset)
        self.stats.fills += 1

    @property
    def occupancy(self) -> int:
        """Entries currently resident."""
        return sum(len(s) for s in self._sets)

    # -- batched walk path (the vector engine) -------------------------------

    def on_walks_batch(
        self,
        pcs: np.ndarray,
        vpns: np.ndarray,
        ppns: np.ndarray,
        contigs: np.ndarray,
    ) -> tuple[int, int, int]:
        """Batched :meth:`on_walk_complete` over a whole walk stream.

        Returns ``(correct, mispredict, no_prediction)`` totals and
        leaves the table — residency, per-set LRU order, every entry's
        offset and confidence — and ``stats`` exactly as the per-miss
        loop would.

        Residency is *not* a pure function of the access stream (a
        non-contig access to an absent PC is a no-op, so whether an
        access touches the table feeds back into later outcomes), but
        it is pure within every maximal run of equal contiguity bits:

        - in an all-contig segment every access touches (hit refreshes,
          miss inserts), which is plain set-associative LRU — resolved
          with the stack-distance engine (:func:`~repro.hw.vector_tlb.
          simulate_level`) under the usual warm-prefix trick;
        - in a no-contig segment membership cannot change at all
          (no inserts means no evictions either), so hits are a static
          membership test and only the LRU order needs recomputing.

        Outcomes then follow per PC: each *residency episode* (an
        inserting miss plus the hits that follow it until eviction, or
        a warm entry's leading hits) drives the 2-bit confidence
        automaton, whose state moves in closed form over runs of equal
        actual offsets (see :meth:`_episode_outcomes`).
        """
        n = int(len(pcs))
        if n == 0:
            return (0, 0, 0)
        from repro.hw import vector_tlb as vt

        pcs64 = np.ascontiguousarray(pcs, dtype=np.int64)
        offsets = np.ascontiguousarray(vpns, dtype=np.int64) - np.ascontiguousarray(
            ppns, dtype=np.int64
        )
        contig_b = np.ascontiguousarray(contigs, dtype=bool)
        sets = vt.set_indices(pcs64.astype(np.uint64), self.n_sets)

        # Initial state: per-set resident PCs (LRU→MRU) + entry states.
        resident: list[list[int]] = [list(s) for s in self._sets]
        final_state: dict[int, tuple[int, int]] = {
            pc: (e.offset, e.confidence)
            for s in self._sets
            for pc, e in s.items()
        }

        hit = np.zeros(n, dtype=bool)
        fills = 0

        # Maximal uniform-contig segments.
        flips = np.flatnonzero(contig_b[1:] != contig_b[:-1]) + 1
        bounds = [0, *flips.tolist(), n]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if contig_b[lo]:
                seg_hits, resident, seg_fills = self._contig_segment(
                    pcs64[lo:hi], sets[lo:hi], resident, vt
                )
                hit[lo:hi] = seg_hits
                fills += seg_fills
            else:
                hit[lo:hi] = self._bypass_segment(pcs64[lo:hi], resident)

        correct, mispredict, no_prediction = self._outcomes(
            pcs64, offsets, hit, contig_b, final_state
        )

        # Rebuild the table: residency/order from the segment machinery,
        # entry values from each PC's last episode.
        for k in range(self.n_sets):
            d: dict[int, _Entry] = {}
            for pc in resident[k]:
                offset, conf = final_state[pc]
                entry = _Entry(pc, offset)
                entry.confidence = conf
                d[pc] = entry
            self._sets[k] = d

        self.stats.correct += correct
        self.stats.mispredict += mispredict
        self.stats.no_prediction += no_prediction
        self.stats.fills += fills
        return (correct, mispredict, no_prediction)

    def _contig_segment(self, pcs, sets, resident, vt):
        """All-contig segment: pure LRU via the stack-distance engine."""
        warm_codes: list[int] = []
        warm_sets: list[int] = []
        for k, lst in enumerate(resident):
            warm_codes.extend(lst)
            warm_sets.extend([k] * len(lst))
        skip = len(warm_codes)
        codes = pcs
        seg_sets = sets
        if skip:
            codes = np.concatenate(
                [np.asarray(warm_codes, dtype=np.int64), pcs]
            )
            seg_sets = np.concatenate(
                [np.asarray(warm_sets, dtype=np.int32), sets]
            )
        hits, new_resident = vt.simulate_level(
            codes, seg_sets, self.n_sets, self.ways
        )
        hits = hits[skip:]
        return hits, new_resident, int(hits.size - hits.sum())

    @staticmethod
    def _bypass_segment(pcs, resident):
        """No-contig segment: membership is frozen; refresh LRU order."""
        res_pcs = [pc for lst in resident for pc in lst]
        if not res_pcs:
            return np.zeros(pcs.size, dtype=bool)
        hits = np.isin(pcs, np.asarray(res_pcs, dtype=np.int64))
        if hits.any():
            touched = pcs[hits]
            # Unique touched PCs ordered by *last* touch (reversed scan
            # gives last occurrences; re-sorting the positions restores
            # stream order).
            uniq, first_rev = np.unique(touched[::-1], return_index=True)
            last_pos = touched.size - 1 - first_rev
            by_last = uniq[np.argsort(last_pos, kind="stable")].tolist()
            touched_set = set(by_last)
            for k, lst in enumerate(resident):
                if not lst:
                    continue
                in_set = set(lst)
                kept = [pc for pc in lst if pc not in touched_set]
                moved = [pc for pc in by_last if pc in in_set]
                if moved:
                    resident[k] = kept + moved
        return hits

    def _outcomes(self, pcs64, offsets, hit, contig_b, final_state):
        """Aggregate outcomes + final entry states, per PC timeline."""
        correct = mispredict = no_prediction = 0
        order = np.argsort(pcs64, kind="stable")
        sorted_pcs = pcs64[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_pcs[1:] != sorted_pcs[:-1]))
        )
        group_ends = np.concatenate((group_starts[1:], [sorted_pcs.size]))
        for g_lo, g_hi in zip(group_starts.tolist(), group_ends.tolist()):
            idx = order[g_lo:g_hi]  # this PC's accesses, in time order
            pc = int(sorted_pcs[g_lo])
            h = hit[idx]
            offs = offsets[idx]
            miss_list = np.flatnonzero(~h).tolist()
            n_misses = len(miss_list)
            no_prediction += n_misses
            # Episode boundaries: leading hits continue the warm entry;
            # each inserting (contig) miss opens a fresh one.  A hit can
            # only follow an insert, so bypassed misses own no hits.
            first_miss = miss_list[0] if n_misses else len(h)
            if first_miss > 0:
                o0, c0 = final_state[pc]
                c, m, np_, state = self._episode_outcomes(
                    o0, c0, offs[:first_miss]
                )
                correct += c
                mispredict += m
                no_prediction += np_
                final_state[pc] = state
            for j, miss_at in enumerate(miss_list):
                if not contig_b[idx[miss_at]]:
                    continue  # bypassed miss: no insert, no episode
                end = miss_list[j + 1] if j + 1 < n_misses else len(h)
                o0 = int(offs[miss_at])
                if miss_at + 1 == end:  # episode with no hits
                    final_state[pc] = (o0, 1)
                    continue
                c, m, np_, state = self._episode_outcomes(
                    o0, 1, offs[miss_at + 1:end]
                )
                correct += c
                mispredict += m
                no_prediction += np_
                final_state[pc] = state
        return correct, mispredict, no_prediction

    def _episode_outcomes(self, o0, c0, offs):
        """Run the confidence automaton over one residency episode.

        ``offs`` are the actual offsets of the episode's hit accesses;
        the entry enters as ``(o0, c0)``.  Returns the outcome counts
        plus the final ``(offset, confidence)``, identical to feeding
        each access through :meth:`on_walk_complete` — but in closed
        form per run of equal offsets: the cached offset only moves
        when confidence drains to zero, so inside a run the counter
        walks a fixed ramp whose fed/match composition is arithmetic.
        """
        L_total = int(offs.size)
        if L_total == 0:
            return 0, 0, 0, (o0, c0)
        if not self.use_confidence:
            # Mismatches replace the offset immediately, so the cached
            # offset before access j is simply offset j-1 (o0 first);
            # every access is fed.
            prev = np.empty(L_total, dtype=np.int64)
            prev[0] = o0
            prev[1:] = offs[:-1]
            n_correct = int((offs == prev).sum())
            return (
                n_correct,
                L_total - n_correct,
                0,
                (int(offs[-1]), c0),
            )
        correct = mispredict = no_prediction = 0
        o, c = int(o0), int(c0)
        run_bounds = np.flatnonzero(offs[1:] != offs[:-1]) + 1
        starts = np.concatenate(([0], run_bounds))
        ends = np.concatenate((run_bounds, [L_total]))
        vals = offs[starts]
        for a, L in zip(vals.tolist(), (ends - starts).tolist()):
            if a == o:
                # Match run: counter ramps c, c+1, ... (capped); fed
                # (CORRECT) from the first step with confidence >= 2.
                n_cold = max(0, min(L, CONF_FEED - c))
                correct += L - n_cold
                no_prediction += n_cold
                c = min(CONF_MAX, c + L)
            else:
                # Mismatch phase: counter drains c, c-1, ..., 1 (all
                # steps with confidence >= 2 are fed mispredictions),
                # then the offset flips to ``a`` with confidence 1 and
                # the rest of the run is a match ramp from 1.
                k = min(L, c)
                n_fed = max(0, min(k, c - 1))
                mispredict += n_fed
                no_prediction += k - n_fed
                if L >= c:
                    rest = L - c
                    n_correct = max(0, rest - 1)
                    correct += n_correct
                    no_prediction += rest - n_correct
                    o = a
                    c = min(CONF_MAX, 1 + rest)
                else:
                    c -= L
        return correct, mispredict, no_prediction, (o, c)
