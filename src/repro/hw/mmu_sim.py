"""The trace-driven MMU simulator (the BadgerTrap analogue).

Feeds a workload's access trace through the TLB hierarchy; every
last-level miss is offered to the emulated schemes (SpOT, vRMM, DS)
exactly like the paper's BadgerTrap fault handlers instrument real
misses.  The result carries all the counters Table IV's model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.hw.coalesced_tlb import CoalescedTlb
from repro.hw.direct_segment import DirectSegment
from repro.hw.rmm import RangeTlb
from repro.hw.segmentation import OUTSIDE, SegmentationUnit
from repro.hw.spot import CORRECT, MISPREDICT, NO_PREDICTION, SpotPredictor
from repro.hw.utopia import REST_HIT, UtopiaMapper
from repro.hw.tlb import TlbHierarchy
from repro.hw.translation import ResolvedTrace, TranslationView
from repro.metrics.perf_model import PerfModel, WalkCosts
from repro.sim.config import HardwareConfig
from repro.workloads.base import AccessTrace, Workload

#: Ideal cycles per instruction (zero translation overhead).
IDEAL_CPI = 0.5


@dataclass
class MmuSimResult:
    """Counters of one simulated configuration."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    virtualized: bool = True
    huge: bool = True
    # SpOT outcomes
    spot_correct: int = 0
    spot_mispredict: int = 0
    spot_no_prediction: int = 0
    # vRMM / DS
    rmm_uncovered: int = 0
    ds_outside: int = 0
    # Coalesced TLB / Utopia / segmentation
    ctlb_uncovered: int = 0
    utopia_rest: int = 0
    utopia_flex: int = 0
    seg_outside: int = 0
    #: Ideal execution cycles (denominator of every overhead).
    t_ideal_cycles: float = 1.0
    #: Mechanistically measured average walk cost (cycles), when the
    #: simulator ran with a :class:`~repro.hw.pwc.WalkSimulator`.
    measured_avg_walk_cycles: float | None = None

    # -- derived ------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Last-level TLB misses per access."""
        return self.walks / max(1, self.accesses)

    def spot_breakdown(self) -> dict[str, float]:
        """Fig. 14: outcome fractions of all misses."""
        total = max(1, self.walks)
        return {
            CORRECT: self.spot_correct / total,
            MISPREDICT: self.spot_mispredict / total,
            NO_PREDICTION: self.spot_no_prediction / total,
        }

    def overheads(self, costs: WalkCosts | None = None) -> dict[str, float]:
        """Table IV: translation overhead per scheme, vs T_ideal."""
        model = PerfModel(self.t_ideal_cycles, costs or WalkCosts())
        return {
            "paging": model.paging_overhead(self.walks, self.virtualized, self.huge),
            "spot": model.spot_overhead(
                self.spot_no_prediction, self.spot_mispredict,
                self.virtualized, self.huge,
            ),
            "vrmm": model.vrmm_overhead(self.rmm_uncovered, self.virtualized),
            "ds": model.ds_overhead(self.ds_outside, self.virtualized),
            "ctlb": model.ctlb_overhead(
                self.ctlb_uncovered, self.virtualized, self.huge
            ),
            "utopia": model.utopia_overhead(
                self.utopia_flex, self.utopia_rest, self.virtualized, self.huge
            ),
            "seg": model.seg_overhead(self.seg_outside, self.virtualized),
        }


@dataclass
class MmuSimulator:
    """One simulated MMU configuration.

    Parameters
    ----------
    view:
        Effective translations of the memory state under test.
    hw:
        TLB geometry and scheme parameters.
    """

    view: TranslationView
    hw: HardwareConfig = field(default_factory=HardwareConfig)
    #: Optional mechanistic walk coster (:class:`repro.hw.pwc.WalkSimulator`);
    #: when set, each miss is fed through it and the result reports the
    #: measured average walk cost alongside the fixed-model overheads.
    walk_sim: object | None = None
    #: ``"vector"`` filters L1 hits in numpy batches and runs only the
    #: L1 misses through the per-access state machines; ``"scalar"`` is
    #: the reference sequential loop.  Counters are bit-identical.
    engine: str = "vector"

    def __post_init__(self) -> None:
        if self.engine not in ("vector", "scalar"):
            raise ConfigError(f"unknown MMU engine {self.engine!r}")
        self.tlb = TlbHierarchy.from_config(self.hw)
        # Disabled schemes skip their state machines entirely (their
        # counters stay zero) — identically under both engines.
        self.spot = (
            SpotPredictor(
                self.hw.spot_entries,
                self.hw.spot_ways,
                use_confidence=self.hw.spot_confidence,
            )
            if self.hw.spot_enabled
            else None
        )
        self.rmm = (
            RangeTlb(self.hw.range_tlb_entries) if self.hw.rmm_enabled else None
        )
        self.ds = DirectSegment() if self.hw.ds_enabled else None
        self.ctlb = (
            CoalescedTlb(
                self.hw.ctlb_entries,
                self.hw.ctlb_ways,
                self.hw.ctlb_span_pages,
            )
            if self.hw.ctlb_enabled
            else None
        )
        self.utopia = (
            UtopiaMapper(
                self.hw.utopia_restseg_pages, self.hw.utopia_promote_after
            )
            if self.hw.utopia_enabled
            else None
        )
        self.seg = (
            SegmentationUnit(self.hw.seg_max_segments)
            if self.hw.seg_enabled
            else None
        )

    def run(
        self,
        trace: AccessTrace,
        vma_start_vpns: list[int],
        workload: Workload | None = None,
    ) -> MmuSimResult:
        """Simulate a trace; returns all per-scheme counters."""
        resolved = self.view.resolve(trace, vma_start_vpns)
        result = MmuSimResult(
            accesses=len(resolved),
            virtualized=self.view.virtualized,
            huge=bool(resolved.entry_huge.any()),
        )
        if self.engine == "vector":
            self._loop_vector(resolved, result)
        else:
            self._loop(resolved, result)
        if workload is not None:
            instructions = workload.instruction_count(len(resolved))
            result.t_ideal_cycles = max(1.0, instructions * IDEAL_CPI)
        if self.walk_sim is not None:
            result.measured_avg_walk_cycles = self.walk_sim.stats.avg_cycles
        return result

    def _loop(self, t: ResolvedTrace, result: MmuSimResult) -> None:
        access = self.tlb.access
        spot_done = self.spot.on_walk_complete if self.spot else None
        rmm_on = self.rmm.on_miss if self.rmm else None
        ds_on = self.ds.on_miss if self.ds else None
        ctlb_on = self.ctlb.on_miss if self.ctlb else None
        utopia_on = self.utopia.on_miss if self.utopia else None
        seg_on = self.seg.on_miss if self.seg else None
        pcs = t.pc.tolist()
        bases = t.entry_base.tolist()
        huges = t.entry_huge.tolist()
        vpns = t.vpn.tolist()
        ppns = t.ppn.tolist()
        contigs = t.contig.tolist()
        segs = t.in_segment.tolist()
        run_starts = t.run_start.tolist()
        run_lens = t.run_len.tolist()
        for i in range(len(pcs)):
            level = access(bases[i], huges[i])
            if level == "l1":
                result.l1_hits += 1
                continue
            if level == "l2":
                result.l2_hits += 1
                continue
            result.walks += 1
            vpn = vpns[i]
            if self.walk_sim is not None:
                self.walk_sim.walk(vpn, huges[i])
            # SpOT: predict + background verification walk.
            if spot_done is not None:
                outcome = spot_done(pcs[i], vpn, ppns[i], contigs[i])
                if outcome == CORRECT:
                    result.spot_correct += 1
                elif outcome == MISPREDICT:
                    result.spot_mispredict += 1
                else:
                    result.spot_no_prediction += 1
            # vRMM: range TLB / range table coverage.
            if rmm_on is not None and (
                rmm_on(vpn, run_starts[i], run_lens[i]) == "uncovered"
            ):
                result.rmm_uncovered += 1
            # DS: segment check.
            if ds_on is not None and not ds_on(segs[i]):
                result.ds_outside += 1
            # Coalesced TLB: run-coalesced entry coverage.
            if ctlb_on is not None and not ctlb_on(
                vpn, run_starts[i], run_lens[i]
            ):
                result.ctlb_uncovered += 1
            # Utopia: restrictive-region hit or flexible walk.
            if utopia_on is not None:
                if utopia_on(vpn, run_starts[i], run_lens[i]) == REST_HIT:
                    result.utopia_rest += 1
                else:
                    result.utopia_flex += 1
            # Segmentation: base/limit segment check.
            if seg_on is not None and (
                seg_on(vpn, run_starts[i], run_lens[i]) == OUTSIDE
            ):
                result.seg_outside += 1

    def _loop_vector(self, t: ResolvedTrace, result: MmuSimResult) -> None:
        """Vectorized replay: TLB outcomes *and* walk outcomes batched.

        Set-associative LRU outcomes are a pure function of the access
        stream (every access — hit or miss — moves its key to MRU), so
        :meth:`TlbHierarchy.simulate` resolves the whole hierarchy in
        numpy; the surviving page walks then go through each scheme's
        *batched* machine (:meth:`SpotPredictor.on_walks_batch`,
        :meth:`RangeTlb.on_miss_batch`, :meth:`DirectSegment.
        on_miss_batch`, :meth:`WalkSimulator.walk_batch`) over the
        whole miss stream at once.  The schemes share no state, so
        batching per scheme instead of interleaving per miss leaves
        every counter and every machine's end state bit-identical to
        the scalar loop.
        """
        levels = self.tlb.simulate(t.entry_base, t.entry_huge)
        walk_idx = np.flatnonzero(levels == 2)
        result.l1_hits += int((levels == 0).sum())
        result.l2_hits += int((levels == 1).sum())
        result.walks += int(walk_idx.size)
        if walk_idx.size == 0:
            return
        if (
            self.walk_sim is None
            and self.spot is None
            and self.rmm is None
            and self.ds is None
            and self.ctlb is None
            and self.utopia is None
            and self.seg is None
        ):
            return  # nothing consumes the walk stream
        w = _walk_slice(t, walk_idx)
        if self.walk_sim is not None:
            self.walk_sim.walk_batch(w.vpn, w.entry_huge)
        if self.spot is not None:
            correct, mispredict, no_prediction = self.spot.on_walks_batch(
                w.pc, w.vpn, w.ppn, w.contig
            )
            result.spot_correct += correct
            result.spot_mispredict += mispredict
            result.spot_no_prediction += no_prediction
        if self.rmm is not None:
            _, _, uncovered = self.rmm.on_miss_batch(
                w.vpn, w.run_start, w.run_len
            )
            result.rmm_uncovered += uncovered
        if self.ds is not None:
            result.ds_outside += self.ds.on_miss_batch(w.in_segment)
        if self.ctlb is not None:
            _, missed = self.ctlb.on_miss_batch(w.vpn, w.run_start, w.run_len)
            result.ctlb_uncovered += missed
        if self.utopia is not None:
            rest, flex = self.utopia.on_miss_batch(
                w.vpn, w.run_start, w.run_len
            )
            result.utopia_rest += rest
            result.utopia_flex += flex
        if self.seg is not None:
            _, _, _, outside = self.seg.on_miss_batch(
                w.vpn, w.run_start, w.run_len
            )
            result.seg_outside += outside


def _walk_slice(t: ResolvedTrace, walk_idx: np.ndarray) -> ResolvedTrace:
    """Gather the per-walk attribute arrays once, for every consumer.

    One fancy-indexing pass per needed column — the batched scheme
    machines take numpy arrays directly, so no ``.tolist()`` happens
    here at all (the old per-scheme loop materialized eight Python
    lists even for a handful of walks).
    """
    return ResolvedTrace(
        pc=t.pc[walk_idx],
        vpn=t.vpn[walk_idx],
        ppn=t.ppn[walk_idx],
        entry_base=t.entry_base,  # not needed past the TLB; unsliced
        entry_huge=t.entry_huge[walk_idx],
        contig=t.contig[walk_idx],
        in_segment=t.in_segment[walk_idx],
        range_covered=t.range_covered,
        run_start=t.run_start[walk_idx],
        run_len=t.run_len[walk_idx],
    )
