"""A native machine: physical memory + one kernel + one policy."""

from __future__ import annotations

import random

from repro.mm.physmem import PhysicalMemory
from repro.policies import make_policy
from repro.policies.base import PlacementPolicy
from repro.sim.config import SystemConfig
from repro.sim.kernel import Kernel


class Machine:
    """One simulated machine, ready to run workloads.

    Parameters
    ----------
    config:
        Machine shape.  Use ``config.for_policy(name)`` to apply the
        per-baseline kernel knobs (raised MAX_ORDER for eager paging,
        sorted free list for CA, THP off for Ingens).
    policy:
        A policy instance or short name (``"ca"``, ``"thp"``, ...).
    aged:
        Churn the allocator at boot so free lists lose their address
        ordering (the realistic aged-machine condition the paper's
        motivation relies on).
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: PlacementPolicy | str,
        aged: bool = True,
    ):
        if isinstance(policy, str):
            config = config.for_policy(policy)
            policy = make_policy(policy)
        self.config = config
        self.policy = policy
        self.rng = random.Random(config.seed)
        self.mem = PhysicalMemory(
            list(config.node_pages),
            max_order=config.max_order,
            sorted_max_order=config.sorted_max_order,
        )
        if aged:
            self._apply_system_reserve()
            if config.churn_ops:
                self.mem.churn(config.churn_ops, self.rng)
        self.kernel = Kernel(
            self.mem,
            self.policy,
            thp=config.thp,
            contig_threshold=config.contig_threshold,
            tick_every_faults=config.tick_every_faults,
            engine=config.engine,
        )
        self._hog_blocks: list[tuple[int, int]] = []

    def _apply_system_reserve(self) -> None:
        """Pin boot-time kernel memory (text, initrd, daemons).

        The pins stay for the machine's lifetime: mostly contiguous at
        the bottom of each node plus a few scattered blocks, so each
        node keeps a small number of large free clusters — the boot
        state CA paging's placement works against.
        """
        if self.config.reserve_fraction <= 0:
            return
        self.mem.boot_reserve(self.config.reserve_fraction, self.rng)

    # -- fragmentation control ------------------------------------------------

    def hog(self, fraction: float, block_order: int | None = None) -> None:
        """Pin a fraction of memory to model external fragmentation.

        Pins at the paper's >2 MiB granularity by default even when the
        machine runs a raised MAX_ORDER (eager paging), so fragmentation
        conditions are identical across baselines.
        """
        from repro.units import DEFAULT_MAX_ORDER

        if block_order is None:
            block_order = min(DEFAULT_MAX_ORDER, self.config.max_order)
        self._hog_blocks.extend(
            self.mem.hog(fraction, self.rng, block_order=block_order)
        )

    def release_hog(self) -> None:
        """Release all hog pins."""
        self.mem.release(self._hog_blocks)
        self._hog_blocks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(policy={self.policy.name}, pages={self.mem.n_pages})"


def build_machine(policy_name: str, config: SystemConfig | None = None,
                  aged: bool = True, **policy_kwargs) -> Machine:
    """Convenience constructor used by experiments and examples."""
    cfg = (config or SystemConfig()).for_policy(policy_name)
    policy = make_policy(policy_name, **policy_kwargs)
    return Machine(cfg, policy, aged=aged)
