"""Zero-copy framed blob transport for results and VM checkpoints.

``RPT1`` is a versioned, magic-header-framed container around pickle
protocol 5.  ``dumps`` extracts every contiguous buffer (numpy SoA
columns, bitmaps, page-table arrays) out-of-band via ``PickleBuffer``
so the multi-MB columnar state is never byte-copied through the
pickler, then encodes each buffer independently through a canonical
codec ladder:

* ``raw``   — buffers under :data:`MIN_ENCODE` bytes, or incompressible
  ones, are stored verbatim.
* ``rle``   — element-stride run-length coding: the buffer is viewed as
  unsigned integers of the widest stride (8/4/2/1) that divides it and
  wins on a 256 KiB sample, then stored as ``(values, run-lengths)``
  arrays.  Kernel columns (owner maps, alloc orders, present bitmaps)
  are dominated by long runs, so this routinely beats zlib by an order
  of magnitude in both size and speed, and decodes to a fresh
  *writable* array via ``np.repeat`` with no further copies.
* ``zlib``  — level-1 deflate with a sample-based skip heuristic so
  incompressible buffers (hash pages, RNG pools) are not run through
  the compressor at all.

The ladder is a pure function of the buffer's bytes, which makes the
encoding *canonical*: equal content always produces equal frames.
Delta checkpoints exploit that — ``dumps(vm, store=..., base=...)``
compares each frame's encoding against the base blob's frames and
replaces matches with a 20-byte ``ref`` frame pointing at the base
(flattened: a ref to a ref copies the terminal pointer, so chains
resolve in O(1) no matter how long the aging chain grows).

Blob layout (all little-endian)::

    "RPT1" | u8 version | u8 flags | u16 n_frames
           | u64 logical_bytes | 32-byte logical digest
    then per frame:
    u8 kind | u8 codec | u16 param | u32 crc32(stored)
            | u64 raw_len | u64 stored_len | stored bytes

The 32-byte digest is the sha256 of the *logical* state: for each
frame, the terminal (ref-resolved) ``codec/param/raw_len/stored``
tuple.  A delta blob and a full blob of the same state therefore carry
the same digest, which is what lets staged-vs-monolithic byte-identity
checks survive the delta optimisation.  Every byte of a blob is covered
by some check — magic, version, zero flags, structural frame bounds,
logical-byte total, per-frame CRC over stored bytes, codec/param enum
validation, and the digest — so any single corrupt byte surfaces as
:class:`TransportError` (a ``ValueError``, which the run cache already
quarantines).

Caveat worth knowing: ``rle`` and ``raw`` frames are bit-stable across
machines; ``zlib`` frames are only guaranteed stable within one zlib
build, so cross-machine digest comparisons should prefer checkpoints
whose frames RLE-compress (in practice all VM checkpoints do).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from typing import Any

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "TransportError",
    "BufferStore",
    "dumps",
    "loads",
    "is_framed",
    "blob_digest",
    "blob_info",
    "peek_logical_bytes",
]

MAGIC = b"RPT1"
VERSION = 1

KIND_PICKLE = 0
KIND_BUFFER = 1
KIND_REF = 2

CODEC_RAW = 0
CODEC_ZLIB = 1
CODEC_RLE = 2

#: buffers below this never enter the codec ladder — framing overhead
#: plus codec setup costs more than the bytes saved.
MIN_ENCODE = 512
#: bytes sampled from the head of a large buffer to decide its codec.
SAMPLE_BYTES = 256 * 1024
#: RLE must look like it at least halves the sample to attempt a full
#: encode, and the full encode must actually reach 0.6x to be kept.
RLE_SAMPLE_RATIO = 0.5
RLE_KEEP_RATIO = 0.6
#: zlib must reach 0.9x on the sample and on the full buffer.
ZLIB_SAMPLE_RATIO = 0.9
ZLIB_KEEP_RATIO = 0.9
ZLIB_LEVEL = 1

_HEADER = struct.Struct("<4sBBHQ32s")
_FRAME = struct.Struct("<BBHIQQ")
_DIGEST_FRAME = struct.Struct("<BHQ")
_REF_IDX = struct.Struct("<I")
_RLE_RUNS = struct.Struct("<Q")

_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


class TransportError(ValueError):
    """A blob failed structural, CRC, or digest validation."""


class _Frame:
    __slots__ = ("kind", "codec", "param", "crc", "raw_len", "stored")

    def __init__(self, kind, codec, param, crc, raw_len, stored):
        self.kind = kind
        self.codec = codec
        self.param = param
        self.crc = crc
        self.raw_len = raw_len
        self.stored = stored


class _Parsed:
    __slots__ = ("blob", "digest", "logical_bytes", "frames")

    def __init__(self, blob, digest, logical_bytes, frames):
        self.blob = blob
        self.digest = digest
        self.logical_bytes = logical_bytes
        self.frames = frames


def is_framed(blob: bytes) -> bool:
    """True when ``blob`` starts with the RPT1 magic."""
    return bytes(blob[:4]) == MAGIC


def _parse(blob: bytes) -> _Parsed:
    """Structural parse: bounds, enums, and byte-exact consumption."""
    view = memoryview(blob)
    if view.nbytes < _HEADER.size:
        raise TransportError("blob shorter than RPT1 header")
    magic, version, flags, n_frames, logical_bytes, digest = _HEADER.unpack_from(
        view, 0
    )
    if magic != MAGIC:
        raise TransportError("bad magic (not an RPT1 blob)")
    if version != VERSION:
        raise TransportError(f"unsupported RPT1 version {version}")
    if flags != 0:
        raise TransportError(f"unknown RPT1 flags 0x{flags:02x}")
    if n_frames < 1:
        raise TransportError("RPT1 blob has no frames")
    frames: list[_Frame] = []
    off = _HEADER.size
    total_raw = 0
    for idx in range(n_frames):
        if off + _FRAME.size > view.nbytes:
            raise TransportError("truncated frame header")
        kind, codec, param, crc, raw_len, stored_len = _FRAME.unpack_from(view, off)
        off += _FRAME.size
        if off + stored_len > view.nbytes:
            raise TransportError("frame stored bytes run past end of blob")
        stored = view[off : off + stored_len]
        off += stored_len
        if kind == KIND_PICKLE:
            if idx != 0:
                raise TransportError("payload frame must be frame 0")
        elif kind == KIND_BUFFER:
            if idx == 0:
                raise TransportError("frame 0 must be the payload frame")
        elif kind == KIND_REF:
            if idx == 0:
                raise TransportError("frame 0 must be the payload frame")
            if codec != 0 or param != 0:
                raise TransportError("ref frame carries a codec")
            if stored_len != 20:
                raise TransportError("ref frame payload must be 20 bytes")
        else:
            raise TransportError(f"unknown frame kind {kind}")
        if kind != KIND_REF:
            if codec == CODEC_RLE:
                if param not in _DTYPES or raw_len % param:
                    raise TransportError(f"bad rle stride {param}")
            elif codec in (CODEC_RAW, CODEC_ZLIB):
                if param != 0:
                    raise TransportError("raw/zlib frame carries a stride")
            else:
                raise TransportError(f"unknown codec {codec}")
        total_raw += raw_len
        frames.append(_Frame(kind, codec, param, crc, raw_len, stored))
    if off != view.nbytes:
        raise TransportError("trailing bytes after last frame")
    if total_raw != logical_bytes:
        raise TransportError("logical byte total does not match frames")
    return _Parsed(blob, bytes(digest), logical_bytes, frames)


class BufferStore:
    """Registry of parsed blobs keyed by digest prefix.

    Resume paths register every prior stage's blob (chain order), then
    ``loads`` the final stage; ref frames resolve through the store.
    Materialised buffers are handed to the resumed VM, which mutates
    them in place, so the store never caches decoded data — only the
    parsed (zero-copy) frame tables.
    """

    def __init__(self) -> None:
        self._blobs: dict[bytes, _Parsed] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def add_blob(self, blob: bytes) -> str:
        """Register a blob for later ref resolution; returns its digest.

        First registration wins: when a chain stage's state is
        identical to its base, the delta blob is all refs but carries
        the *same* logical digest as the base — the base's directly
        resolvable frames must keep serving that digest.
        """
        parsed = _parse(blob)
        self._blobs.setdefault(parsed.digest[:16], parsed)
        return parsed.digest.hex()

    def get(self, digest_hex: str) -> _Parsed:
        key = bytes.fromhex(digest_hex)[:16]
        try:
            return self._blobs[key]
        except KeyError:
            raise TransportError(
                f"base blob {digest_hex[:16]} not registered in store"
            ) from None

    def _resolve(self, frame: _Frame) -> _Frame:
        """Terminal frame a ref points at (refs are flattened at dump)."""
        id16 = bytes(frame.stored[:16])
        (idx,) = _REF_IDX.unpack(frame.stored[16:20])
        base = self._blobs.get(id16)
        if base is None:
            raise TransportError(f"ref to unknown blob {id16.hex()}")
        if not 0 < idx < len(base.frames):
            raise TransportError(f"ref to out-of-range frame {idx}")
        target = base.frames[idx]
        if target.kind == KIND_REF:
            raise TransportError("ref chains must be flattened at dump time")
        if target.raw_len != frame.raw_len:
            raise TransportError("ref length does not match its target")
        return target


def _pick_stride(mv: memoryview) -> int:
    """Widest element stride whose sampled RLE clears the ratio bar."""
    n = mv.nbytes
    m = min(n, SAMPLE_BYTES)
    best_stride = 0
    best_ratio = RLE_SAMPLE_RATIO
    for stride in (8, 4, 2, 1):
        if n % stride:
            continue
        k = m - (m % stride)
        if k < 2 * stride:
            continue
        view = np.frombuffer(mv[:k], dtype=_DTYPES[stride])
        runs = int(np.count_nonzero(view[1:] != view[:-1])) + 1
        ratio = (_RLE_RUNS.size + runs * (stride + 4)) / k
        if ratio <= best_ratio:
            best_ratio = ratio
            best_stride = stride
    return best_stride


def _rle_encode(mv: memoryview, stride: int) -> bytes | None:
    view = np.frombuffer(mv, dtype=_DTYPES[stride])
    if view.size == 0:
        return None
    idx = np.flatnonzero(view[1:] != view[:-1])
    n_runs = idx.size + 1
    starts = np.empty(n_runs, dtype=np.int64)
    starts[0] = 0
    starts[1:] = idx + 1
    lengths = np.empty(n_runs, dtype=np.int64)
    lengths[:-1] = starts[1:] - starts[:-1]
    lengths[-1] = view.size - starts[-1]
    if int(lengths.max()) >= 1 << 32:
        return None
    return b"".join(
        (
            _RLE_RUNS.pack(n_runs),
            view[starts].tobytes(),
            lengths.astype(np.uint32).tobytes(),
        )
    )


def _rle_decode(stored: memoryview, stride: int, raw_len: int) -> np.ndarray:
    if len(stored) < _RLE_RUNS.size:
        raise TransportError("rle frame shorter than its run count")
    (n_runs,) = _RLE_RUNS.unpack_from(stored, 0)
    if _RLE_RUNS.size + n_runs * (stride + 4) != len(stored):
        raise TransportError("rle frame size does not match its run count")
    values = np.frombuffer(stored, dtype=_DTYPES[stride], count=n_runs, offset=8)
    lengths = np.frombuffer(
        stored, dtype=np.uint32, count=n_runs, offset=8 + n_runs * stride
    )
    out = np.repeat(values, lengths)
    if out.nbytes != raw_len:
        raise TransportError("rle frame decodes to the wrong length")
    return out


def _encode_body(mv: memoryview) -> tuple[int, int, Any]:
    """Canonical codec ladder: ``(codec, param, stored)`` for one buffer.

    Pure function of the buffer's content, so equal bytes always yield
    equal frames — the property delta detection relies on.
    """
    n = mv.nbytes
    if n < MIN_ENCODE:
        return CODEC_RAW, 0, mv
    stride = _pick_stride(mv)
    if stride:
        stored = _rle_encode(mv, stride)
        if stored is not None and len(stored) <= RLE_KEEP_RATIO * n:
            return CODEC_RLE, stride, stored
    if n > SAMPLE_BYTES:
        sampled = zlib.compress(mv[:SAMPLE_BYTES], ZLIB_LEVEL)
        if len(sampled) > ZLIB_SAMPLE_RATIO * SAMPLE_BYTES:
            return CODEC_RAW, 0, mv
    stored = zlib.compress(mv, ZLIB_LEVEL)
    if len(stored) <= ZLIB_KEEP_RATIO * n:
        return CODEC_ZLIB, 0, stored
    return CODEC_RAW, 0, mv


def _decode_body(frame: _Frame, writable: bool) -> Any:
    """Materialise one frame.  Buffers handed back to pickle must be
    writable (resumed VMs mutate their columns in place); the payload
    frame can stay a zero-copy view."""
    if frame.codec == CODEC_RAW:
        return bytearray(frame.stored) if writable else frame.stored
    if frame.codec == CODEC_ZLIB:
        try:
            out = zlib.decompress(frame.stored)
        except zlib.error as exc:
            raise TransportError(f"zlib frame failed to inflate: {exc}") from exc
        if len(out) != frame.raw_len:
            raise TransportError("zlib frame inflates to the wrong length")
        return bytearray(out) if writable else out
    return _rle_decode(frame.stored, frame.param, frame.raw_len)


def _logical_digest(encodings) -> bytes:
    """sha256 over terminal ``(codec, param, raw_len, stored)`` rows."""
    h = hashlib.sha256()
    h.update(MAGIC)
    h.update(bytes((VERSION,)))
    for codec, param, raw_len, stored in encodings:
        h.update(_DIGEST_FRAME.pack(codec, param, raw_len))
        h.update(stored)
    return h.digest()


def dumps(obj: Any, *, store: BufferStore | None = None,
          base: str | None = None) -> bytes:
    """Serialize ``obj`` into an RPT1 blob.

    With ``store`` and ``base`` (the digest of a previously registered
    blob), buffers whose canonical encoding matches a base frame are
    written as 20-byte ref frames — the delta checkpoint path.
    """
    buffers: list[memoryview] = []

    def keep_oob(pb: pickle.PickleBuffer) -> bool:
        try:
            buffers.append(pb.raw())
        except BufferError:
            return True  # non-contiguous: let pickle copy it in-band
        return False

    payload = pickle.dumps(obj, protocol=5, buffer_callback=keep_oob)

    base_small: dict[tuple[int, int, int, bytes], tuple[bytes, int]] = {}
    base_raw: list[tuple[int, memoryview, tuple[bytes, int]]] = []
    if base is not None:
        if store is None:
            raise TransportError("delta dumps needs a buffer store")
        parsed = store.get(base)
        for idx, fr in enumerate(parsed.frames):
            if idx == 0:
                continue
            if fr.kind == KIND_REF:
                target = store._resolve(fr)
                ref = (bytes(fr.stored[:16]), _REF_IDX.unpack(fr.stored[16:20])[0])
            else:
                target = fr
                ref = (parsed.digest[:16], idx)
            if target.codec == CODEC_RAW:
                base_raw.append((target.raw_len, target.stored, ref))
            else:
                base_small[
                    (target.codec, target.param, target.raw_len,
                     bytes(target.stored))
                ] = ref

    # (kind, codec, param, raw_len, stored, terminal-encoding-for-digest)
    frames: list[tuple[int, int, int, int, Any, tuple]] = []
    pcodec, pparam, pstored = _encode_body(memoryview(payload))
    frames.append(
        (KIND_PICKLE, pcodec, pparam, len(payload), pstored,
         (pcodec, pparam, len(payload), pstored))
    )
    for mv in buffers:
        codec, param, stored = _encode_body(mv)
        ref = None
        if codec == CODEC_RAW:
            for raw_len, base_stored, candidate in base_raw:
                if raw_len == mv.nbytes and base_stored == stored:
                    ref = candidate
                    break
        elif base_small:
            ref = base_small.get((codec, param, mv.nbytes, bytes(stored)))
        if ref is None:
            frames.append(
                (KIND_BUFFER, codec, param, mv.nbytes, stored,
                 (codec, param, mv.nbytes, stored))
            )
        else:
            ref_stored = ref[0] + _REF_IDX.pack(ref[1])
            frames.append(
                (KIND_REF, 0, 0, mv.nbytes, ref_stored,
                 (codec, param, mv.nbytes, stored))
            )

    if len(frames) > 0xFFFF:
        raise TransportError(f"too many frames ({len(frames)})")
    logical = sum(f[3] for f in frames)
    digest = _logical_digest(f[5] for f in frames)
    parts: list[Any] = [
        _HEADER.pack(MAGIC, VERSION, 0, len(frames), logical, digest)
    ]
    for kind, codec, param, raw_len, stored, _enc in frames:
        parts.append(
            _FRAME.pack(kind, codec, param, zlib.crc32(stored), raw_len,
                        len(stored))
        )
        parts.append(stored)
    return b"".join(parts)


def _verify(parsed: _Parsed, store: BufferStore | None) -> list[_Frame]:
    """CRC every frame, resolve refs, and recompute the logical digest.
    Returns the terminal frame per slot, ready to decode."""
    terminals: list[_Frame] = []
    encodings = []
    for fr in parsed.frames:
        if zlib.crc32(fr.stored) != fr.crc:
            raise TransportError("frame crc mismatch")
        if fr.kind == KIND_REF:
            if store is None:
                raise TransportError("delta blob needs a buffer store to load")
            target = store._resolve(fr)
            if zlib.crc32(target.stored) != target.crc:
                raise TransportError("ref target crc mismatch")
        else:
            target = fr
        terminals.append(target)
        encodings.append((target.codec, target.param, target.raw_len,
                          target.stored))
    if _logical_digest(encodings) != parsed.digest:
        raise TransportError("logical digest mismatch")
    return terminals


def loads(blob: bytes, *, store: BufferStore | None = None) -> Any:
    """Reconstruct the object from an RPT1 blob.

    Delta blobs need the ``store`` holding every base blob they
    reference.  All buffers handed to pickle are freshly writable.
    """
    parsed = _parse(blob)
    terminals = _verify(parsed, store)
    payload = _decode_body(terminals[0], writable=False)
    bufs = [_decode_body(fr, writable=True) for fr in terminals[1:]]
    try:
        return pickle.loads(payload, buffers=bufs)
    except TypeError:
        # memoryview payloads confuse some picklers' buffer fast path
        return pickle.loads(bytes(payload), buffers=bufs)


def blob_digest(blob: bytes) -> str:
    """Logical state digest straight from the header (no decode)."""
    if len(blob) < _HEADER.size or bytes(blob[:4]) != MAGIC:
        raise TransportError("not an RPT1 blob")
    return _HEADER.unpack_from(memoryview(blob), 0)[5].hex()


def peek_logical_bytes(head: bytes) -> int | None:
    """Logical byte count from a blob's first 48 bytes, or ``None`` if
    the header is not framed/complete.  Used by cache stats sweeps."""
    if len(head) < _HEADER.size or bytes(head[:4]) != MAGIC:
        return None
    try:
        magic, version, _flags, _n, logical, _digest = _HEADER.unpack_from(
            memoryview(head), 0
        )
    except struct.error:
        return None
    if magic != MAGIC or version != VERSION:
        return None
    return logical


def blob_info(blob: bytes) -> dict[str, Any]:
    """Frame-level stats for benches and ``cache stats`` breakdowns."""
    parsed = _parse(blob)
    codec_names = {CODEC_RAW: "raw", CODEC_ZLIB: "zlib", CODEC_RLE: "rle"}
    codecs: dict[str, int] = {}
    refs = 0
    for fr in parsed.frames:
        if fr.kind == KIND_REF:
            refs += 1
        else:
            name = codec_names[fr.codec]
            codecs[name] = codecs.get(name, 0) + 1
    return {
        "version": VERSION,
        "n_frames": len(parsed.frames),
        "logical_bytes": parsed.logical_bytes,
        "stored_bytes": len(blob),
        "ref_frames": refs,
        "codec_frames": codecs,
        "digest": parsed.digest.hex(),
    }
