"""Multi-programmed execution: interleave several workloads' runs.

Fig. 10 (two SVM instances) and the multi-VM extension both need
*concurrent* allocation phases — the interesting interference happens
while footprints grow, not after.  This module generalizes that into a
library API: any number of (workload, process-like target) pairs run
with their allocation steps interleaved round-robin, with periodic
contiguity sampling per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Callable, Sequence

from repro.metrics.contiguity import ContiguitySample, sample_contiguity
from repro.sim.machine import Machine
from repro.vm.flags import DEFAULT_ANON
from repro.workloads.base import Workload


@dataclass
class Instance:
    """One interleaved run: a workload bound to touch/sample callables."""

    workload: Workload
    touch: Callable[[int, int, int], None]  # (vma_index, start, n_pages)
    sample: Callable[[], ContiguitySample]
    samples: list[ContiguitySample] = field(default_factory=list)

    @property
    def final(self) -> ContiguitySample:
        return self.samples[-1] if self.samples else ContiguitySample.empty()


def interleave(
    instances: Sequence[Instance],
    sample_every: int = 16,
    daemons: Callable[[], None] | None = None,
) -> None:
    """Run all instances' allocation steps round-robin, sampling.

    ``daemons`` (e.g. ``kernel.run_daemons``) is invoked at every
    sampling point so asynchronous policies keep up with all instances.
    """
    streams = [list(inst.workload.alloc_steps()) for inst in instances]
    for step_no, steps in enumerate(zip_longest(*streams)):
        for instance, step in zip(instances, steps):
            if step is None or step.kind != "anon":
                continue
            instance.touch(step.index, step.start_page, step.n_pages)
        if step_no % sample_every == 0:
            if daemons is not None:
                daemons()
            for instance in instances:
                instance.samples.append(instance.sample())
    for instance in instances:
        instance.samples.append(instance.sample())


def native_instances(
    machine: Machine, workloads: Sequence[Workload]
) -> list[Instance]:
    """Bind each workload to its own process on one native machine."""
    kernel = machine.kernel
    instances = []
    for i, workload in enumerate(workloads):
        process = kernel.create_process(f"{workload.name}-{i}")
        vmas = [
            kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
            for plan in workload.vma_plans
        ]

        def touch(vma_idx, start, n, *, _p=process, _v=vmas):
            kernel.touch_range(_p, _v[vma_idx].start_vpn + start, n)

        def sample(*, _p=process):
            return sample_contiguity(
                _p.space.runs, max(1, _p.space.resident_pages)
            )

        instances.append(Instance(workload, touch, sample))
    return instances


def guest_instances(vms, workloads: Sequence[Workload]) -> list[Instance]:
    """Bind each workload to a guest process in its own VM."""
    from repro.virt.introspect import two_d_runs

    instances = []
    for vm, workload in zip(vms, workloads):
        process = vm.create_guest_process(workload.name)
        vmas = [
            vm.guest_mmap(process, plan.n_pages, flags=DEFAULT_ANON,
                          name=plan.name)
            for plan in workload.vma_plans
        ]

        def touch(vma_idx, start, n, *, _vm=vm, _p=process, _v=vmas):
            _vm.guest_touch_range(_p, _v[vma_idx].start_vpn + start, n)

        def sample(*, _vm=vm, _p=process):
            runs = two_d_runs(_vm, _p)
            return sample_contiguity(runs, max(1, runs.total_pages))

        instances.append(Instance(workload, touch, sample))
    return instances
