"""Simulation driver: machine configuration, kernel, and runners.

- :mod:`repro.sim.config` — scale profiles and machine shapes,
- :mod:`repro.sim.kernel` — the OS kernel model (fault path, THP,
  fork/COW, page cache, policy plumbing, contiguity bit),
- :mod:`repro.sim.machine` — a native machine (physical memory + kernel),
- :mod:`repro.sim.virt_machine` — host + guest machines under KVM-like
  nested paging,
- :mod:`repro.sim.runner` — drives workloads and samples metrics.
"""

from repro.sim.config import HardwareConfig, ScaleProfile, SystemConfig
from repro.sim.kernel import FaultEvent, FaultResult, Kernel
from repro.sim.machine import Machine

__all__ = [
    "FaultEvent",
    "FaultResult",
    "HardwareConfig",
    "Kernel",
    "Machine",
    "ScaleProfile",
    "SystemConfig",
]
