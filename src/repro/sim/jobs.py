"""Job-graph execution for experiments: run cells, fan-out, memoize.

Every experiment decomposes into **run cells** — independent, hashable
units of simulation work such as "run ``svm`` under ``ca`` at quick
scale" or "replay the suite through one aging CA+CA VM".  A cell names
a module-level function plus keyword arguments that are all simple
values (primitives, tuples, dataclasses), which makes it:

- *executable anywhere* — a worker process imports the function and
  calls it;
- *content-addressable* — the spec digests to a stable key (see
  :mod:`repro.sim.cache`), so identical cells from sibling experiments
  (fig 11 / table V / table VI sweep the same native grid; fig 13 / 14
  / table VII share the CA+CA virtualized chain) are computed once;
- *deterministic* — cells build their machines from seeded configs and
  must not read process-global mutable state, so a cell's result is a
  pure function of its spec and results collect in input order
  regardless of scheduling.

The :class:`Executor` runs a batch of cells serially (``jobs=1``,
in-process) or through a ``ProcessPoolExecutor`` fan-out, consulting an
optional :class:`~repro.sim.cache.RunCache` before computing and
storing every fresh result after.  Worker crashes — real
``BrokenProcessPool`` breakage or faults injected through
:mod:`repro.chaos` — are absorbed by bounded retry-with-backoff;
because cells are pure, the retried results are byte-identical to an
undisturbed run.
"""

from __future__ import annotations

import hashlib
import importlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.chaos.clock import CLOCK
from repro.errors import ConfigError
from repro.sim.cache import MISS, RunCache, spec_digest


class WorkerCrashLoop(RuntimeError):
    """A cell's worker kept crashing past the retry budget."""


@dataclass(frozen=True)
class Cell:
    """One hashable unit of experiment work.

    ``fn`` is a ``"module.path:function"`` reference to a module-level
    callable; ``kwargs`` is a sorted tuple of keyword arguments.  Build
    cells with :func:`cell` rather than directly.
    """

    fn: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    def resolve(self) -> Callable[..., Any]:
        """Import and return the cell function."""
        module_name, _, attr = self.fn.partition(":")
        if not attr:
            raise ConfigError(f"cell fn must be 'module:function', got {self.fn!r}")
        return getattr(importlib.import_module(module_name), attr)

    def spec(self) -> dict:
        """The cell as plain data (input of the cache key)."""
        return {"fn": self.fn, "kwargs": dict(self.kwargs)}

    def key(self, salt: str) -> str:
        """Content address of this cell under a code salt."""
        return spec_digest(self.spec(), salt)

    def label(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs
                         if isinstance(v, (str, int, float, bool)))
        return f"{self.fn.rpartition(':')[2]}({args})"


def cell(fn: str, **kwargs) -> Cell:
    """Build a :class:`Cell` with canonically ordered kwargs."""
    return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())))


def execute_cell(c: Cell) -> Any:
    """Run one cell in the current process (also the worker entry)."""
    return c.resolve()(**dict(c.kwargs))


@dataclass
class Plan:
    """An experiment's declared cells plus the function assembling the
    cell results (in cell order) into the experiment's result object."""

    cells: list[Cell]
    assemble: Callable[[Sequence[Any]], Any]

    def run(self, executor: "Executor | None" = None) -> Any:
        """Execute the plan's cells and assemble the result."""
        return self.assemble(execute(self.cells, executor))


@dataclass
class ExecutorStats:
    """Per-executor counters (reported by the CLI and the benches).

    ``pool_failures`` counts batches whose worker pool broke (a worker
    crashed hard — OOM killer, segfault, ``os._exit``); the cells the
    pool never delivered are recomputed serially in-process and counted
    in ``retried_serial``, so one crashed worker degrades throughput
    instead of failing the batch.  ``worker_crashes`` counts individual
    lost-cell crashes (real or injected) and ``cell_retries`` the
    backed-off retries that answered them.
    """

    submitted: int = 0
    computed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    pool_failures: int = 0
    retried_serial: int = 0
    worker_crashes: int = 0
    cell_retries: int = 0

    def merge(self, other: "ExecutorStats") -> None:
        self.submitted += other.submitted
        self.computed += other.computed
        self.cache_hits += other.cache_hits
        self.deduped += other.deduped
        self.pool_failures += other.pool_failures
        self.retried_serial += other.retried_serial
        self.worker_crashes += other.worker_crashes
        self.cell_retries += other.cell_retries


class Executor:
    """Runs batches of cells with optional parallelism and memoization.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs cells inline in
        submission order — byte-identical behaviour, no fork cost.
    cache:
        A :class:`RunCache` consulted per cell; ``None`` disables
        memoization (the default, so library callers and tests are
        unaffected unless they opt in).
    progress:
        Optional ``callback(event, cell)`` fired as each unique cell
        resolves, with ``event`` one of ``"cache_hit"`` or
        ``"computed"``.  In the pool path it fires from the submitting
        thread as futures complete (not in cell-key order); the serving
        layer uses it to stream per-cell progress.  Deduplicated twin
        cells do not fire.
    injector:
        Optional :class:`~repro.chaos.FaultInjector` driving the
        ``pool.submit`` / ``pool.worker`` / ``clock`` fault sites.
        Decisions are keyed by cell content address, so the same seed
        crashes the same cells whatever the fan-out width or harvest
        order.
    clock:
        Time source for retry backoff (:data:`repro.chaos.CLOCK` by
        default; tests inject a fake).
    max_attempts:
        Retry budget per cell for worker crashes (first try included).
    backoff_base:
        First retry delay in seconds; doubles per further attempt.
    """

    def __init__(self, jobs: int = 1, cache: RunCache | None = None,
                 progress: Callable[[str, Cell], None] | None = None,
                 injector=None, clock=None, max_attempts: int = 4,
                 backoff_base: float = 0.05):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.injector = injector
        self.clock = clock if clock is not None else CLOCK
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base = backoff_base
        self.stats = ExecutorStats()
        self._salt = cache.salt if cache is not None else ""

    def _notify(self, event: str, c: Cell) -> None:
        if self.progress is not None:
            self.progress(event, c)

    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute ``cells``; results return in input order.

        Duplicate cells (same content address) are computed once per
        batch; cache hits skip computation entirely.
        """
        cells = list(cells)
        self.stats.submitted += len(cells)
        keys = [c.key(self._salt) for c in cells]

        results: dict[str, Any] = {}
        pending: list[tuple[str, Cell]] = []
        queued: set[str] = set()
        for key, c in zip(keys, cells):
            if key in results or key in queued:
                self.stats.deduped += 1
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not MISS:
                    results[key] = hit
                    self.stats.cache_hits += 1
                    self._notify("cache_hit", c)
                    continue
            pending.append((key, c))
            queued.add(key)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                computed = []
                for key, c in pending:
                    computed.append((key, self._attempt_cell(key, c)))
                    self._notify("computed", c)
            else:
                computed = self._run_pool(pending)
            for key, value in computed:
                results[key] = value
                self.stats.computed += 1
                if self.cache is not None:
                    self.cache.put(key, value)

        return [results[key] for key in keys]

    # -- crash recovery -----------------------------------------------

    def _backoff(self, attempt: int, token: str) -> None:
        """Exponential backoff before a retry (``clock`` fault site).

        An injected clock fault models the monotonic clock jumping past
        the backoff deadline (suspend/resume, NTP step): the retry must
        proceed correctly without the real wait.
        """
        delay = self.backoff_base * (2 ** (attempt - 1))
        if self.injector is not None:
            record = self.injector.fire("clock", token)
            if record is not None:
                self.injector.recover(record, "jump_absorbed")
                return
        self.clock.sleep_sync(delay)

    def _attempt_cell(self, key: str, c: Cell, value: Any = MISS) -> Any:
        """Obtain one cell's result, surviving (injected) worker crashes.

        ``value`` carries an already-computed result from the pool path;
        :data:`MISS` means "compute here".  Each attempt may be lost to
        a ``pool.worker`` fault — the attempt's result is discarded as
        if the worker died before delivering — and is retried after
        backoff, up to ``max_attempts``.  Cells are pure functions of
        their spec, so a retried attempt reproduces the identical
        result.
        """
        for attempt in range(self.max_attempts):
            record = (self.injector.fire("pool.worker", f"{key}#a{attempt}")
                      if self.injector is not None else None)
            if record is None:
                return execute_cell(c) if value is MISS else value
            value = MISS  # the crashed worker's result is lost
            self.stats.worker_crashes += 1
            if attempt + 1 >= self.max_attempts:
                raise WorkerCrashLoop(
                    f"cell {c.label()} lost {self.max_attempts} worker "
                    f"attempt(s); giving up"
                )
            self.stats.cell_retries += 1
            self.injector.recover(record, f"retry_{attempt + 1}")
            self._backoff(attempt + 1, f"{key}#b{attempt}")
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_pool(self, pending: list[tuple[str, Cell]]) -> list[tuple[str, Any]]:
        """Fan ``pending`` out over worker processes; survive crashes.

        A worker dying hard (OOM kill, segfault) raises
        ``BrokenProcessPool`` for every undelivered future; those cells
        are retried serially in-process so the batch still completes.
        An injected ``pool.submit`` fault breaks the whole pool the
        same way; injected ``pool.worker`` faults lose single cells at
        harvest time and go through the bounded backoff retry.  Cell
        exceptions (the function itself raising) propagate unchanged,
        as before.
        """
        if self.injector is not None:
            batch_token = hashlib.sha256(
                "|".join(key for key, _ in pending).encode()
            ).hexdigest()[:16]
            record = self.injector.fire("pool.submit", batch_token)
            if record is not None:
                self.stats.pool_failures += 1
                computed = []
                for key, c in pending:
                    computed.append((key, self._attempt_cell(key, c)))
                    self.stats.retried_serial += 1
                    self._notify("computed", c)
                self.injector.recover(record, "serial_retry")
                return computed
        workers = min(self.jobs, len(pending))
        harvested: dict[str, Any] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_cell, c): (key, c) for key, c in pending
                }
                for fut in as_completed(futures):
                    key, c = futures[fut]
                    harvested[key] = self._attempt_cell(key, c, fut.result())
                    self._notify("computed", c)
        except BrokenProcessPool:
            self.stats.pool_failures += 1
            for key, c in pending:
                if key not in harvested:
                    harvested[key] = self._attempt_cell(key, c)
                    self.stats.retried_serial += 1
                    self._notify("computed", c)
        return [(key, harvested[key]) for key, c in pending]


def execute(cells: Sequence[Cell], executor: Executor | None = None) -> list[Any]:
    """Run cells through ``executor`` (or a fresh serial one)."""
    return (executor or Executor()).run(cells)


def run_plans(
    plans: Sequence[Plan], executor: Executor | None = None
) -> list[Any]:
    """Execute several experiments' plans through one shared fan-out.

    All cells are concatenated into a single batch — so the pool stays
    saturated across experiment boundaries and cells shared *between*
    experiments (identical content address) are computed once — then
    each plan assembles from its own slice.
    """
    executor = executor or Executor()
    flat: list[Cell] = []
    for plan in plans:
        flat.extend(plan.cells)
    results = executor.run(flat)
    out = []
    offset = 0
    for plan in plans:
        n = len(plan.cells)
        out.append(plan.assemble(results[offset:offset + n]))
        offset += n
    return out
