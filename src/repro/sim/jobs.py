"""Job-graph execution for experiments: run cells, DAG fan-out, memoize.

Every experiment decomposes into **run cells** — hashable units of
simulation work such as "run ``svm`` under ``ca`` at quick scale" or
"advance the aging CA+CA VM by one workload stage".  A cell names a
module-level function plus keyword arguments that are all simple
values (primitives, tuples, dataclasses), optionally **depending on
other cells** whose results are passed as leading positional
arguments.  That makes a cell:

- *executable anywhere* — a worker process imports the function and
  calls it with the dependency results plus the kwargs;
- *content-addressable* — the spec digests to a stable key (see
  :mod:`repro.sim.cache`) covering the whole dependency prefix, so
  identical cells from sibling experiments (fig 11 / table V / table
  VI sweep the same native grid; fig 13 / 14 / table VII share the
  CA+CA virtualized chain stages) are computed once;
- *deterministic* — cells build their machines from seeded configs and
  must not read process-global mutable state, so a cell's result is a
  pure function of its spec and results collect in input order
  regardless of scheduling.

The :class:`Executor` runs a batch of cells serially (``jobs=1``,
in-process) or through a **persistent** ``ProcessPoolExecutor``,
consulting an optional :class:`~repro.sim.cache.RunCache` before
computing and storing every fresh result the moment it lands (so an
interrupted run resumes from its last completed stage).  Scheduling is
dependency-aware: a topological ready-queue dispatches
critical-path-first (longest remaining chain wins), chain stages go
out solo so their successors unblock as early as possible, and
independent leaf cells are batched per submission to amortize
pickle/spawn overhead.  Worker crashes — real ``BrokenProcessPool``
breakage or faults injected through :mod:`repro.chaos` — are absorbed
by bounded retry-with-backoff; because cells are pure, the retried
results are byte-identical to an undisturbed run.
"""

from __future__ import annotations

import functools
import hashlib
import heapq
import importlib
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.chaos.clock import CLOCK
from repro.errors import ConfigError
from repro.metrics.profiling import Histogram
from repro.sim import transport
from repro.sim.cache import MISS, RunCache, spec_digest

#: Compute-time / queue-wait buckets (seconds).  Cheap native cells sit
#: in the head, aging-VM chain stages in the 1–60 s tail.
CELL_SECONDS_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Most leaf cells one pool submission carries (amortizes pickle/spawn
#: without starving other workers).
MAX_BATCH = 8


class WorkerCrashLoop(RuntimeError):
    """A cell's worker kept crashing past the retry budget."""


@dataclass(frozen=True)
class Cell:
    """One hashable unit of experiment work.

    ``fn`` is a ``"module.path:function"`` reference to a module-level
    callable; ``kwargs`` is a sorted tuple of keyword arguments;
    ``deps`` names cells whose results are passed as leading positional
    arguments (the stage-checkpoint chains).  Build cells with
    :func:`cell` rather than directly.
    """

    fn: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    deps: tuple["Cell", ...] = ()

    def resolve(self) -> Callable[..., Any]:
        """Import and return the cell function."""
        module_name, _, attr = self.fn.partition(":")
        if not attr:
            raise ConfigError(f"cell fn must be 'module:function', got {self.fn!r}")
        return getattr(importlib.import_module(module_name), attr)

    def spec(self) -> dict:
        """The cell as plain data (input of the cache key).

        Dependencies encode recursively, so a stage's content address
        covers its whole chain prefix — any change to an earlier stage
        (or its kwargs) shifts every address downstream of it.
        """
        out: dict = {"fn": self.fn, "kwargs": dict(self.kwargs)}
        if self.deps:
            out["deps"] = [d.spec() for d in self.deps]
        return out

    def key(self, salt: str) -> str:
        """Content address of this cell under a code salt."""
        return spec_digest(self.spec(), salt)

    def label(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs
                         if isinstance(v, (str, int, float, bool)))
        return f"{self.fn.rpartition(':')[2]}({args})"


def cell(fn: str, deps: Sequence[Cell] = (), **kwargs) -> Cell:
    """Build a :class:`Cell` with canonically ordered kwargs."""
    return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())), deps=tuple(deps))


def execute_cell(c: Cell, dep_values: Sequence[Any] = ()) -> Any:
    """Run one cell in the current process (also the worker entry)."""
    return c.resolve()(*dep_values, **dict(c.kwargs))


def _pool_run_batch(
    items: list[tuple[Cell, tuple]]
) -> list[tuple[float, float, bytes]]:
    """Worker entry: run a batch of (cell, dep_values) sequentially.

    Returns ``(started_wall, compute_seconds, blob)`` per item so the
    submitting side can attribute queue wait (submit → start, wall
    clocks are comparable across processes) and compute time.  Results
    cross the process boundary as framed RPT1 blobs
    (:func:`repro.sim.transport.dumps`) rather than default futures
    pickles: numpy-heavy results (chain stages hauling VM checkpoints)
    shrink by orders of magnitude before they hit the pipe, and the
    submitting side reuses the exact worker-encoded bytes for the cache
    entry, so each result is framed once, ever.  Encoding happens
    outside the timed section — it is transport cost, not compute.
    """
    out = []
    for c, dep_values in items:
        started_wall = time.time()
        t0 = time.perf_counter()
        value = execute_cell(c, dep_values)
        seconds = time.perf_counter() - t0
        out.append((started_wall, seconds, transport.dumps(value)))
    return out


@functools.lru_cache(maxsize=None)
def _mp_context() -> multiprocessing.context.BaseContext:
    """The pinned start method for the persistent worker pool.

    The stdlib default drifts by platform and version (``fork`` on
    POSIX ≤3.13, ``spawn`` later) and ``fork`` is unsafe under the
    serve layer's threads.  Pinning ``forkserver`` keeps behaviour
    identical everywhere that has it, and preloading this module into
    the forkserver template imports numpy and the repro package once —
    every worker then forks from the warm template instead of paying
    the interpreter+numpy import on each spawn.
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("forkserver")
        try:
            ctx.set_forkserver_preload(["repro.sim.jobs"])
        except (AttributeError, ValueError):  # pragma: no cover
            pass
        return ctx
    return multiprocessing.get_context("spawn")  # pragma: no cover


@dataclass
class Plan:
    """An experiment's declared cells plus the function assembling the
    cell results (in cell order) into the experiment's result object."""

    cells: list[Cell]
    assemble: Callable[[Sequence[Any]], Any]

    def run(self, executor: "Executor | None" = None) -> Any:
        """Execute the plan's cells and assemble the result."""
        return self.assemble(execute(self.cells, executor))


@dataclass
class ExecutorStats:
    """Per-executor counters (reported by the CLI and the benches).

    ``pool_failures`` counts batches whose worker pool broke (a worker
    crashed hard — OOM killer, segfault, ``os._exit``); the cells the
    pool never delivered are recomputed serially in-process and counted
    in ``retried_serial``, so one crashed worker degrades throughput
    instead of failing the batch.  ``worker_crashes`` counts individual
    lost-cell crashes (real or injected) and ``cell_retries`` the
    backed-off retries that answered them.
    """

    submitted: int = 0
    computed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    pool_failures: int = 0
    retried_serial: int = 0
    worker_crashes: int = 0
    cell_retries: int = 0

    def merge(self, other: "ExecutorStats") -> None:
        self.submitted += other.submitted
        self.computed += other.computed
        self.cache_hits += other.cache_hits
        self.deduped += other.deduped
        self.pool_failures += other.pool_failures
        self.retried_serial += other.retried_serial
        self.worker_crashes += other.worker_crashes
        self.cell_retries += other.cell_retries


class Executor:
    """Runs cell DAGs with optional parallelism and memoization.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs cells inline in
        topological order — byte-identical behaviour, no fork cost.
    cache:
        A :class:`RunCache` consulted per cell; ``None`` disables
        memoization (the default, so library callers and tests are
        unaffected unless they opt in).
    progress:
        Optional ``callback(event, cell)`` fired as each unique cell
        resolves, with ``event`` one of ``"cache_hit"`` or
        ``"computed"``.  In the pool path it fires from the submitting
        thread as futures complete (not in cell-key order); the serving
        layer uses it to stream per-cell progress.  Deduplicated twin
        cells do not fire.
    injector:
        Optional :class:`~repro.chaos.FaultInjector` driving the
        ``pool.submit`` / ``pool.worker`` / ``clock`` fault sites.
        Decisions are keyed by cell content address, so the same seed
        crashes the same cells whatever the fan-out width or harvest
        order.
    clock:
        Time source for retry backoff (:data:`repro.chaos.CLOCK` by
        default; tests inject a fake).
    max_attempts:
        Retry budget per cell for worker crashes (first try included).
    backoff_base:
        First retry delay in seconds; doubles per further attempt.
    batch:
        Leaf cells per pool submission (``None`` sizes automatically
        from the ready-queue depth, capped at :data:`MAX_BATCH`).

    The worker pool is created lazily and **persists across**
    :meth:`run` calls, so repeated batches reuse warm workers; call
    :meth:`close` (or use the executor as a context manager) to shut
    it down.  ``compute_hist`` / ``queue_wait_hist`` collect per-cell
    compute seconds and submit-to-start queue wait, exported by the
    serve layer through ``/metrics``.
    """

    def __init__(self, jobs: int = 1, cache: RunCache | None = None,
                 progress: Callable[[str, Cell], None] | None = None,
                 injector=None, clock=None, max_attempts: int = 4,
                 backoff_base: float = 0.05, batch: int | None = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.injector = injector
        self.clock = clock if clock is not None else CLOCK
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base = backoff_base
        self.batch = batch
        self.stats = ExecutorStats()
        self.compute_hist = Histogram(CELL_SECONDS_BUCKETS)
        self.queue_wait_hist = Histogram(CELL_SECONDS_BUCKETS)
        self._salt = cache.salt if cache is not None else ""
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_mp_context()
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool; the next parallel run builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _notify(self, event: str, c: Cell) -> None:
        if self.progress is not None:
            self.progress(event, c)

    # -- the run -------------------------------------------------------

    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute ``cells`` (and their dependencies); results return in
        input order.

        Duplicate cells (same content address) are computed once per
        batch; cache hits skip computation entirely — including the
        dependencies of a hit, which are never even looked up unless
        some other pending cell needs them.  Every fresh result is
        cached the moment it lands, so an interrupted run resumes from
        its last completed stage.
        """
        cells = list(cells)
        self.stats.submitted += len(cells)
        key_memo: dict[int, str] = {}

        def key_of(c: Cell) -> str:
            k = key_memo.get(id(c))
            if k is None:
                k = c.key(self._salt)
                key_memo[id(c)] = k
            return k

        requested = [(key_of(c), c) for c in cells]
        results: dict[str, Any] = {}
        seen: set[str] = set()
        frontier: list[tuple[str, Cell]] = []
        for k, c in requested:
            if k in seen:
                self.stats.deduped += 1
                continue
            seen.add(k)
            if not self._from_cache(k, c, results):
                frontier.append((k, c))

        # Expand the misses into the cell DAG they actually need: a
        # pending cell pulls in each dependency unless that dependency
        # is itself served from the cache (the resume path recomputes
        # only unfinished stages).  ``topo`` lists dependencies before
        # their dependents.
        univ: dict[str, Cell] = {}
        topo: list[str] = []

        def expand(k: str, c: Cell) -> None:
            if k in univ or k in results:
                return
            univ[k] = c
            for d in c.deps:
                dk = key_of(d)
                if dk in univ or dk in results:
                    continue
                if not self._from_cache(dk, d, results):
                    expand(dk, d)
            topo.append(k)

        for k, c in frontier:
            expand(k, c)

        if topo:
            dependents: dict[str, list[str]] = {k: [] for k in topo}
            waiting: dict[str, int] = {}
            for k in topo:
                n = 0
                for d in univ[k].deps:
                    dk = key_of(d)
                    if dk in dependents:
                        dependents[dk].append(k)
                        n += 1
                waiting[k] = n
            # Critical-path priority: longest remaining chain below a
            # cell (itself included).  Chains dispatch head-first.
            depth: dict[str, int] = {}
            for k in reversed(topo):
                depth[k] = 1 + max(
                    (depth[m] for m in dependents[k]), default=0
                )
            if self.jobs == 1 or len(topo) == 1:
                self._run_serial(topo, univ, results, key_of)
            else:
                self._run_pool(
                    topo, univ, dependents, waiting, depth, results, key_of
                )

        return [results[k] for k, _ in requested]

    def _from_cache(self, key: str, c: Cell, results: dict[str, Any]) -> bool:
        if self.cache is None:
            return False
        hit = self.cache.get(key)
        if hit is MISS:
            return False
        results[key] = hit
        self.stats.cache_hits += 1
        self._notify("cache_hit", c)
        return True

    def _dep_values(self, c: Cell, results: dict[str, Any],
                    key_of: Callable[[Cell], str]) -> tuple:
        return tuple(results[key_of(d)] for d in c.deps)

    def _store(self, key: str, c: Cell, value: Any,
               results: dict[str, Any],
               encoded: bytes | None = None) -> None:
        """Land one computed result: memoize immediately, then notify.

        ``encoded`` carries the worker's framed blob from the pool path
        so the cache stores those exact bytes instead of re-framing the
        value."""
        results[key] = value
        self.stats.computed += 1
        if self.cache is not None:
            if encoded is not None:
                self.cache.put_encoded(key, encoded)
            else:
                self.cache.put(key, value)
        self._notify("computed", c)

    def _run_serial(self, topo: list[str], univ: dict[str, Cell],
                    results: dict[str, Any],
                    key_of: Callable[[Cell], str],
                    count_retries: bool = False) -> None:
        for k in topo:
            if k in results:
                continue
            c = univ[k]
            deps = self._dep_values(c, results, key_of)
            t0 = time.perf_counter()
            value = self._attempt_cell(k, c, dep_values=deps)
            self.compute_hist.observe(time.perf_counter() - t0)
            self._store(k, c, value, results)
            if count_retries:
                self.stats.retried_serial += 1

    # -- crash recovery -----------------------------------------------

    def _backoff(self, attempt: int, token: str) -> None:
        """Exponential backoff before a retry (``clock`` fault site).

        An injected clock fault models the monotonic clock jumping past
        the backoff deadline (suspend/resume, NTP step): the retry must
        proceed correctly without the real wait.
        """
        delay = self.backoff_base * (2 ** (attempt - 1))
        if self.injector is not None:
            record = self.injector.fire("clock", token)
            if record is not None:
                self.injector.recover(record, "jump_absorbed")
                return
        self.clock.sleep_sync(delay)

    def _attempt_cell(self, key: str, c: Cell, value: Any = MISS,
                      dep_values: Sequence[Any] = ()) -> Any:
        """Obtain one cell's result, surviving (injected) worker crashes.

        ``value`` carries an already-computed result from the pool path;
        :data:`MISS` means "compute here".  Each attempt may be lost to
        a ``pool.worker`` fault — the attempt's result is discarded as
        if the worker died before delivering — and is retried after
        backoff, up to ``max_attempts``.  Cells are pure functions of
        their spec, so a retried attempt reproduces the identical
        result.
        """
        for attempt in range(self.max_attempts):
            record = (self.injector.fire("pool.worker", f"{key}#a{attempt}")
                      if self.injector is not None else None)
            if record is None:
                return execute_cell(c, dep_values) if value is MISS else value
            value = MISS  # the crashed worker's result is lost
            self.stats.worker_crashes += 1
            if attempt + 1 >= self.max_attempts:
                raise WorkerCrashLoop(
                    f"cell {c.label()} lost {self.max_attempts} worker "
                    f"attempt(s); giving up"
                )
            self.stats.cell_retries += 1
            self.injector.recover(record, f"retry_{attempt + 1}")
            self._backoff(attempt + 1, f"{key}#b{attempt}")
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the pool path ------------------------------------------------

    def _take_batch(self, ready: list[tuple[int, int, str]]) -> list[str]:
        """Pop one submission's worth of ready cells (priority order).

        A chain stage — any cell something else is waiting on — goes
        out alone so its successor unblocks as early as possible.
        Leaves (nothing downstream) batch together to amortize the
        per-submission pickle/dispatch cost.
        """
        neg_depth, _, first = heapq.heappop(ready)
        if -neg_depth > 1:
            return [first]
        limit = self.batch or max(
            1, min(MAX_BATCH, (len(ready) + 1) // (self.jobs * 2))
        )
        batch = [first]
        while ready and len(batch) < limit and ready[0][0] == -1:
            batch.append(heapq.heappop(ready)[2])
        return batch

    def _run_pool(self, topo: list[str], univ: dict[str, Cell],
                  dependents: dict[str, list[str]],
                  waiting: dict[str, int], depth: dict[str, int],
                  results: dict[str, Any],
                  key_of: Callable[[Cell], str]) -> None:
        """Dependency-aware fan-out over the persistent worker pool.

        Ready cells dispatch longest-remaining-chain-first; workers
        that free up steal whatever is highest-priority next, so short
        cells fill the gaps while chains pipeline.  A worker dying hard
        (OOM kill, segfault) raises ``BrokenProcessPool`` for every
        undelivered future; unfinished cells are then retried serially
        in-process so the batch still completes.  An injected
        ``pool.submit`` fault breaks the whole dispatch the same way;
        injected ``pool.worker`` faults lose single cells at harvest
        time and go through the bounded backoff retry.  Cell exceptions
        (the function itself raising) propagate unchanged.
        """
        if self.injector is not None:
            batch_token = hashlib.sha256(
                "|".join(topo).encode()
            ).hexdigest()[:16]
            record = self.injector.fire("pool.submit", batch_token)
            if record is not None:
                self.stats.pool_failures += 1
                self._run_serial(topo, univ, results, key_of,
                                 count_retries=True)
                self.injector.recover(record, "serial_retry")
                return
        seq = {k: i for i, k in enumerate(topo)}
        ready: list[tuple[int, int, str]] = []
        for k in topo:
            if waiting[k] == 0:
                heapq.heappush(ready, (-depth[k], seq[k], k))
        inflight: dict = {}
        max_inflight = self.jobs * 2
        try:
            pool = self._ensure_pool()
            while ready or inflight:
                while ready and len(inflight) < max_inflight:
                    batch_keys = self._take_batch(ready)
                    items = [
                        (univ[k], self._dep_values(univ[k], results, key_of))
                        for k in batch_keys
                    ]
                    fut = pool.submit(_pool_run_batch, items)
                    inflight[fut] = (batch_keys, time.time())
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for fut in done:
                    batch_keys, submitted_wall = inflight.pop(fut)
                    for k, (started_wall, seconds, blob) in zip(
                        batch_keys, fut.result()
                    ):
                        self.queue_wait_hist.observe(
                            started_wall - submitted_wall
                        )
                        self.compute_hist.observe(seconds)
                        c = univ[k]
                        value = transport.loads(blob)
                        crashes = self.stats.worker_crashes
                        value = self._attempt_cell(
                            k, c, value,
                            dep_values=self._dep_values(c, results, key_of),
                        )
                        # Reuse the worker's bytes only if the result
                        # survived harvest untouched (no injected crash
                        # forced a local recompute).
                        encoded = (
                            blob if self.stats.worker_crashes == crashes
                            else None
                        )
                        self._store(k, c, value, results, encoded=encoded)
                        for m in dependents[k]:
                            waiting[m] -= 1
                            if waiting[m] == 0:
                                heapq.heappush(
                                    ready, (-depth[m], seq[m], m)
                                )
        except BrokenProcessPool:
            self.stats.pool_failures += 1
            self._discard_pool()
            self._run_serial(topo, univ, results, key_of, count_retries=True)


def execute(cells: Sequence[Cell], executor: Executor | None = None) -> list[Any]:
    """Run cells through ``executor`` (or a fresh serial one)."""
    return (executor or Executor()).run(cells)


def run_plans(
    plans: Sequence[Plan], executor: Executor | None = None
) -> list[Any]:
    """Execute several experiments' plans through one shared fan-out.

    All cells are concatenated into a single batch — so the pool stays
    saturated across experiment boundaries and cells shared *between*
    experiments (identical content address) are computed once — then
    each plan assembles from its own slice.
    """
    executor = executor or Executor()
    flat: list[Cell] = []
    for plan in plans:
        flat.extend(plan.cells)
    results = executor.run(flat)
    out = []
    offset = 0
    for plan in plans:
        n = len(plan.cells)
        out.append(plan.assemble(results[offset:offset + n]))
        offset += n
    return out
