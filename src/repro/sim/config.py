"""Configuration: scale profiles, machine shapes, hardware parameters.

The paper runs on a 256 GiB two-socket machine with 29–167 GiB
workloads; a pure-Python emulation must scale that down.  A
:class:`ScaleProfile` maps "paper gigabytes" to simulated pages so that
the footprint / memory and footprint / TLB-reach ratios stay in the
paper's regime.  Every experiment records the profile it used, and all
tests use the small profile so the suite stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import DEFAULT_MAX_ORDER, GIB, MIB, align_up, order_pages, pages

#: MAX_ORDER the eager-paging baseline raises the kernel to (blocks of
#: 2**15 pages = 128 MiB at 4 KiB pages), mirroring RMM's patch.
EAGER_MAX_ORDER = 15


@dataclass(frozen=True)
class ScaleProfile:
    """Mapping from paper sizes to simulated sizes.

    Parameters
    ----------
    bytes_per_paper_gb:
        Simulated bytes standing in for one paper gigabyte.
    machine_paper_gb:
        The paper machine's memory in (paper) gigabytes per NUMA node.
    """

    name: str = "default"
    bytes_per_paper_gb: int = 8 * MIB
    machine_paper_gb: tuple[int, int] = (128, 128)

    def paper_gb_pages(self, paper_gb: float) -> int:
        """Simulated pages standing in for ``paper_gb`` paper gigabytes."""
        n = pages(int(paper_gb * self.bytes_per_paper_gb))
        return max(1, n)

    def node_pages(self, max_order: int = DEFAULT_MAX_ORDER) -> list[int]:
        """Per-node simulated frames (aligned to the max buddy block)."""
        top = order_pages(max_order)
        return [
            align_up(self.paper_gb_pages(gb), top) for gb in self.machine_paper_gb
        ]


#: Tiny profile for unit tests (fast machine construction).
TEST_SCALE = ScaleProfile(name="test", bytes_per_paper_gb=MIB, machine_paper_gb=(16, 16))
#: Fast profile for smoke benches and contiguity sweeps.
QUICK_SCALE = ScaleProfile(name="quick", bytes_per_paper_gb=4 * MIB)
#: Default experiment profile: 1 paper GiB = 16 MiB simulated; the
#: 256 GiB machine becomes 4 GiB (1 Mi frames).  The hardware figures
#: (13/14) are calibrated at this scale.
DEFAULT_SCALE = ScaleProfile(name="default", bytes_per_paper_gb=16 * MIB)
#: Larger profile for slower, higher-resolution runs.
BIG_SCALE = ScaleProfile(name="big", bytes_per_paper_gb=32 * MIB)
#: Full paper scale: 1 paper GiB = 1 simulated GiB, so the 256 GiB
#: machine and the 29–167 GB footprints are exercised at face value.
#: Only the columnar engine's batched paths finish fault phases at
#: this tier in reasonable time (see docs/scaling.md).
PAPER_SCALE = ScaleProfile(name="paper", bytes_per_paper_gb=GIB)


@dataclass(frozen=True)
class SystemConfig:
    """Shape of a simulated machine (native or one virtualization level)."""

    node_pages: tuple[int, ...] = (64 * 1024, 64 * 1024)
    max_order: int = DEFAULT_MAX_ORDER
    sorted_max_order: bool = False
    thp: bool = True
    #: Allocate-and-free churn operations applied at boot to model an
    #: aged machine (randomizes free-list order, preserves contiguity).
    churn_ops: int = 2000
    #: Fraction of memory pinned permanently at boot in scattered blocks
    #: (kernel text, page tables, long-lived daemons).  Breaks each node
    #: into several free clusters, which is what next-fit placement
    #: needs to keep independent VMAs from racing the same cluster.
    reserve_fraction: float = 0.01
    #: Kernel calls ``policy.tick`` every this many faults (async daemons).
    tick_every_faults: int = 256
    #: Contiguous-mapping threshold (pages) for the SpOT PTE bit (§IV-C).
    contig_threshold: int = 32
    seed: int = 42
    #: Kernel simulation engine: ``"columnar"`` (batched spans over
    #: structure-of-arrays state), ``"fast"`` (batched hot paths over
    #: object state) or ``"scalar"`` (reference page-at-a-time paths).
    #: Identical observable behaviour; the bench harness A/Bs them.
    engine: str = "fast"

    def __post_init__(self) -> None:
        if not self.node_pages:
            raise ConfigError("node_pages must name at least one node")
        if self.max_order < 1:
            raise ConfigError(f"max_order must be >= 1, got {self.max_order}")
        if self.engine not in ("fast", "scalar", "columnar"):
            raise ConfigError(f"unknown kernel engine {self.engine!r}")

    @classmethod
    def from_scale(cls, scale: ScaleProfile, **overrides) -> "SystemConfig":
        """Build a machine shape from a scale profile.

        ``node_pages`` may be overridden (e.g. a single node for the
        NUMA-off fragmentation experiments).
        """
        max_order = overrides.pop("max_order", DEFAULT_MAX_ORDER)
        node_pages = overrides.pop("node_pages", tuple(scale.node_pages(max_order)))
        return cls(node_pages=tuple(node_pages), max_order=max_order, **overrides)

    def for_policy(self, policy_name: str) -> "SystemConfig":
        """Adjust machine knobs the way each baseline's patch does.

        - eager paging raises MAX_ORDER so pre-allocation can grab huge
          aligned blocks (node sizes are re-aligned to the new block),
        - CA paging sorts the MAX_ORDER free list (§III-C),
        - ingens disables synchronous THP faults (promotion is async).
        """
        cfg = self
        if policy_name == "eager":
            top = order_pages(EAGER_MAX_ORDER)
            cfg = replace(
                cfg,
                max_order=EAGER_MAX_ORDER,
                node_pages=tuple(align_up(n, top) for n in cfg.node_pages),
            )
        elif policy_name in ("ca", "ideal"):
            cfg = replace(cfg, sorted_max_order=True)
        elif policy_name == "ingens":
            cfg = replace(cfg, thp=False)
        return cfg


@dataclass(frozen=True)
class HardwareConfig:
    """TLB hierarchy and walk-latency parameters (Table II + §V).

    The TLB is scaled down with the machine so that TLB reach relative
    to footprints stays in the paper's regime; the real Broadwell
    geometry from Table II is available as ``HardwareConfig.broadwell()``.
    """

    l1_4k_entries: int = 16
    l1_4k_ways: int = 4
    l1_2m_entries: int = 8
    l1_2m_ways: int = 4
    l2_entries: int = 96
    l2_ways: int = 6
    #: Cycles per page-table memory reference during a walk.
    walk_ref_cycles: int = 10
    #: Fraction of walk references absorbed by MMU caches (PWC).
    pwc_hit_rate: float = 0.5
    #: SpOT prediction table geometry (Table II: 32 entries, 4-way).
    spot_entries: int = 32
    spot_ways: int = 4
    #: SpOT 2-bit confidence mechanism (ablation switch, §IV-C).
    spot_confidence: bool = True
    #: vRMM range TLB (Table II: 32 entries, fully associative).
    range_tlb_entries: int = 32
    #: Pipeline-flush penalty on a SpOT misprediction (cycles, §V).
    mispredict_penalty: int = 20
    #: Coalesced TLB (Ban & Cheng): geometry + aligned span window one
    #: coalesced entry can cover (power of two, pages).
    ctlb_entries: int = 64
    ctlb_ways: int = 4
    ctlb_span_pages: int = 16
    #: Utopia: RestSeg capacity (pages) and flexible misses a run must
    #: absorb before promotion into the restrictive region.
    utopia_restseg_pages: int = 1 << 18
    utopia_promote_after: int = 4
    #: Segmentation baseline: base/limit segments per VM.
    seg_max_segments: int = 16
    #: Scheme machine switches: experiments that never read a scheme's
    #: counters can turn it off and skip its state machine entirely
    #: (both engines honour these identically).
    spot_enabled: bool = True
    rmm_enabled: bool = True
    ds_enabled: bool = True
    ctlb_enabled: bool = True
    utopia_enabled: bool = True
    seg_enabled: bool = True

    @classmethod
    def broadwell(cls) -> "HardwareConfig":
        """The paper's real test machine geometry (Table II)."""
        return cls(
            l1_4k_entries=64,
            l1_4k_ways=4,
            l1_2m_entries=32,
            l1_2m_ways=4,
            l2_entries=1536,
            l2_ways=6,
        )
