"""Content-addressed on-disk cache for experiment run cells.

Every run cell (see :mod:`repro.sim.jobs`) is a pure function of its
spec: the machines it builds are seeded from the spec's config and the
workloads from their seeds, so the cell's result can be memoized on
disk and reused — across repeated invocations *and* across sibling
experiments that sweep the same (workload, policy) grid.

The cache key is ``sha256(code_salt + canonical-JSON(spec))``:

- the *canonical JSON* covers the cell's function path and every
  keyword argument (dataclasses such as :class:`ScaleProfile`,
  :class:`RunOptions` or :class:`HardwareConfig` are encoded field by
  field, tagged with their import path, so any field change — or a
  changed default — produces a new key);
- the *code salt* digests every ``*.py`` file of the installed
  ``repro`` package, so any edit to the simulator invalidates the whole
  cache rather than serving results computed by different code.  A
  re-run after an edit *outside* the package (docs, tests, notebooks)
  still hits.

Entries are pickled result objects stored under
``<root>/<key[:2]>/<key>.pkl`` with atomic rename, so concurrent
writers (parallel suite runs) can share one cache directory safely.

Corrupted, truncated or otherwise unreadable entries are treated as
misses, **quarantined** (moved to ``<root>/quarantine/<key>.bad`` so
they can never be served again but stay inspectable) and counted in
``corrupt_evictions``; failed writes degrade to "not cached" and are
counted in ``write_failures`` instead of failing the run.  Both paths
double as chaos injection sites (``cache.read`` corrupts the entry on
disk before the read so the real quarantine machinery runs;
``cache.write`` drops the store) — see :mod:`repro.chaos`.

A cache can additionally **federate** through a shared HTTP tier
(:class:`HttpCacheTier`, served by ``repro serve`` at
``/v1/cache/<key>``): local misses read through the tier and fill the
local disk (L1), local stores write through, and the tier's
single-writer promotion (``PUT`` of an existing key is a no-op)
guarantees each spec digest is published exactly once fleet-wide.  The
tier is strictly best-effort: any network or protocol failure counts in
``tier_errors`` and degrades to a plain local miss/store, never an
error in the run.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import http.client
import json
import os
import pickle
import struct
import tempfile
import urllib.parse
import zlib
from pathlib import Path
from typing import Any

from repro.sim import transport

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of the installed ``repro`` package's source files.

    Any change to simulator code changes the salt and therefore every
    cache key; results computed by old code are never served.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def encode_spec(value: Any) -> Any:
    """Recursively encode a cell-spec value into canonical JSON data.

    Supported: JSON primitives, tuples/lists, dicts with string keys,
    dataclasses (tagged with their import path so two dataclasses with
    identical fields but different meaning never collide), and numpy
    scalars.  Anything else raises ``TypeError`` — cell specs must stay
    simple enough to hash reproducibly.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_spec(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"cell-spec dict keys must be str, got {key!r}")
            out[key] = encode_spec(item)
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        encoded = {
            field.name: encode_spec(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        encoded["__dataclass__"] = f"{cls.__module__}:{cls.__qualname__}"
        return encoded
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return encode_spec(value.item())
    raise TypeError(
        f"cell specs may only hold primitives, sequences, dicts and "
        f"dataclasses; got {type(value).__name__}: {value!r}"
    )


def spec_digest(spec: Any, salt: str) -> str:
    """Content address of an encoded spec under a code salt."""
    canonical = json.dumps(
        encode_spec(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256((salt + "\0" + canonical).encode()).hexdigest()


class HttpCacheTier:
    """Client for the shared blob tier exposed by ``repro serve``.

    Speaks plain HTTP/1.1 over :mod:`http.client` (one connection per
    operation — the server closes after each response anyway):

    - ``GET /v1/cache/<key>`` → 200 + blob, or 404;
    - ``PUT /v1/cache/<key>`` → 201 (stored) or 200 (already present —
      the tier keeps the first writer's copy, so a digest is published
      once globally).

    Blob format negotiation rides Content-Encoding-style headers: GETs
    advertise ``X-Repro-Blob-Accept: rpt1, raw`` so the server can hand
    back framed RPT1 blobs verbatim; a server answering an Accept-less
    peer transcodes framed entries to raw pickle instead, so old
    clients keep working against a new tier (and this client sniffs the
    body's magic rather than trusting the response header, so it works
    against old servers that send no header at all).  PUTs label the
    body via ``X-Repro-Blob-Format``.  ``bytes_sent``/``bytes_received``
    count body bytes on the wire for the bench-serve tier phase.

    Every failure mode — connection refused, timeout, protocol garbage,
    unexpected status — increments ``errors`` and returns ``None``; the
    owning :class:`RunCache` then behaves as if no tier existed.
    """

    ACCEPT_HEADER = "X-Repro-Blob-Accept"
    FORMAT_HEADER = "X-Repro-Blob-Format"

    def __init__(self, base_url: str, timeout: float = 10.0):
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"cache tier URL must be http://, got {base_url!r}")
        netloc = parts.netloc or parts.path
        if not netloc:
            raise ValueError(f"cache tier URL needs a host, got {base_url!r}")
        self.host = netloc.rpartition(":")[0] if ":" in netloc else netloc
        self.port = int(netloc.rpartition(":")[2]) if ":" in netloc else 80
        self.base_path = (parts.path if parts.netloc else "").rstrip("/")
        self.timeout = timeout
        self.gets = 0
        self.puts = 0
        self.errors = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def _request(self, method: str, key: str, body: bytes | None = None,
                 headers: dict[str, str] | None = None):
        """One request/response; returns ``(status, body)`` or ``None``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, f"{self.base_path}/v1/cache/{key}",
                         body=body, headers=headers or {})
            resp = conn.getresponse()
            return resp.status, resp.read()
        except (OSError, http.client.HTTPException):
            self.errors += 1
            return None
        finally:
            conn.close()

    def get(self, key: str) -> bytes | None:
        """Fetch a blob from the tier; ``None`` on miss or failure."""
        self.gets += 1
        out = self._request("GET", key,
                            headers={self.ACCEPT_HEADER: "rpt1, raw"})
        if out is None:
            return None
        status, data = out
        if status != 200:
            return None
        self.bytes_received += len(data)
        return data

    def put(self, key: str, blob: bytes) -> str | None:
        """Publish a blob; ``"stored"``, ``"exists"`` or ``None``."""
        self.puts += 1
        fmt = "rpt1" if transport.is_framed(blob) else "raw"
        self.bytes_sent += len(blob)
        out = self._request("PUT", key, body=blob,
                            headers={self.FORMAT_HEADER: fmt})
        if out is None:
            return None
        status, _ = out
        if status == 201:
            return "stored"
        if status == 200:
            return "exists"
        self.errors += 1
        return None


class RunCache:
    """On-disk content-addressed store of cell results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    salt:
        Code-version salt mixed into every key; defaults to
        :func:`code_version_salt`.  Tests inject fixed salts to model
        code edits without editing code.
    injector:
        Optional :class:`~repro.chaos.FaultInjector` driving the
        ``cache.read`` / ``cache.write`` fault sites; ``None`` (the
        default) leaves the hot path untouched.
    tier:
        Optional shared tier (:class:`HttpCacheTier` or anything with
        its ``get``/``put`` shape).  Local misses read through it and
        fill the local disk; local stores write through.  Best-effort
        only — tier failures never fail the run.
    """

    #: Errors that mean "the entry exists but cannot be deserialized".
    #: ``transport.TransportError`` is a ``ValueError`` (frame-header,
    #: CRC, and digest mismatches); ``zlib.error``/``struct.error``
    #: cover inflate failures and mangled frame headers that surface
    #: below the transport's own checks.
    CORRUPTION_ERRORS = (
        OSError, pickle.UnpicklingError, EOFError, AttributeError,
        ImportError, IndexError, ValueError, TypeError,
        UnicodeDecodeError, zlib.error, struct.error,
    )

    def __init__(self, root: str | Path | None = None, salt: str | None = None,
                 injector=None, tier=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = code_version_salt() if salt is None else salt
        self.injector = injector
        self.tier = tier
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0
        self.write_failures = 0
        self.tier_hits = 0
        self.tier_misses = 0
        self.tier_stores = 0
        self.tier_errors = 0

    def path_for(self, key: str) -> Path:
        """Where a key's entry lives (two-level fan-out like git)."""
        return self.root / key[:2] / f"{key}.pkl"

    def quarantine_path_for(self, key: str) -> Path:
        """Where a corrupt entry is parked (``.bad`` so no glob serves it)."""
        return self.root / "quarantine" / f"{key}.bad"

    def _quarantine(self, key: str, path: Path) -> None:
        """Evict a corrupt entry: move it aside, or delete it."""
        self.corrupt_evictions += 1
        target = self.quarantine_path_for(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - nothing more we can do
                pass

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`.

        A hit refreshes the entry's mtime, so :meth:`prune`'s
        oldest-first eviction is least-*recently-used*, not
        least-recently-written.  An entry that exists but cannot be
        read back (corrupt, truncated, wrong permissions) is
        quarantined and reported as a miss — a bad file must never
        raise out of the cache layer or be served twice.
        """
        path = self.path_for(key)
        if self.injector is not None:
            record = self.injector.fire("cache.read", key)
            if record is not None:
                if path.exists():
                    # Garble the real entry so the genuine corruption
                    # handling below (quarantine + miss) is exercised.
                    # Framed entries get a single byte flipped deep in
                    # the blob — the transport's CRC/digest coverage
                    # must catch it; raw pickles are overwritten with
                    # a truncated opcode stream.
                    try:
                        data = path.read_bytes()
                        if transport.is_framed(data) and data:
                            path.write_bytes(
                                data[:-1] + bytes((data[-1] ^ 0xFF,))
                            )
                        else:
                            path.write_bytes(b"\x80\x04chaos-corrupted")
                    except OSError:
                        pass
                    self.injector.recover(record, "quarantined")
                else:
                    self.injector.recover(record, "already_miss")
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return self._tier_get(key, path)
        except OSError:
            self._quarantine(key, path)
            self.misses += 1
            return MISS
        try:
            value = self.decode_blob(blob)
        except self.CORRUPTION_ERRORS:
            self._quarantine(key, path)
            self.misses += 1
            return MISS
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass
        self.hits += 1
        return value

    def _tier_get(self, key: str, path: Path) -> Any:
        """Local miss: read through the shared tier, fill the L1.

        A tier blob that will not decode counts as a ``tier_error``
        and stays out of the local store; a clean fetch fills the local
        disk (so the next read is local) and counts as a hit.
        """
        if self.tier is None:
            self.misses += 1
            return MISS
        blob = self.tier.get(key)
        if blob is None:
            self.tier_misses += 1
            self.misses += 1
            return MISS
        try:
            value = self.decode_blob(blob)
        except self.CORRUPTION_ERRORS:
            self.tier_errors += 1
            self.misses += 1
            return MISS
        self.tier_hits += 1
        self.write_blob(key, blob)
        self.hits += 1
        return value

    def read_blob(self, key: str) -> bytes | None:
        """Raw bytes of a local entry (the serve-side GET route).

        Refreshes the entry's mtime like :meth:`get` so tier reads keep
        hot blobs out of :meth:`prune`'s way, but never deserializes —
        the server moves blobs, only clients unpickle them.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(key, path)
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return blob

    def write_blob(self, key: str, blob: bytes,
                   overwrite: bool = True) -> str:
        """Store raw bytes under ``key`` (atomic rename).

        Returns ``"stored"``, ``"exists"`` (only with
        ``overwrite=False`` — the serve-side single-writer promotion:
        the first PUT of a digest wins and later ones are no-ops) or
        ``"failed"`` (counted in ``write_failures``).
        """
        path = self.path_for(key)
        if not overwrite and path.exists():
            return "exists"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            self.write_failures += 1
            return "failed"
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            self.write_failures += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return "failed"
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return "stored"

    @staticmethod
    def encode_value(value: Any) -> bytes:
        """A value's on-disk form: a framed RPT1 blob."""
        return transport.dumps(value)

    @staticmethod
    def decode_blob(blob: bytes) -> Any:
        """Decode an entry, sniffing the format: framed RPT1 blobs go
        through the transport (CRC + digest verified), anything else is
        treated as a legacy raw pickle — entries written before the
        framed format keep loading."""
        if transport.is_framed(blob):
            return transport.loads(blob)
        return pickle.loads(blob)

    def put(self, key: str, value: Any) -> None:
        """Store a result under ``key`` (atomic; last writer wins).

        A failed disk write (full disk, permissions, injected
        ``cache.write`` fault) degrades to "not cached" — counted in
        ``write_failures`` — because a cache must never turn a
        computed result into an error.  With a tier attached the blob
        also writes through (best effort; the tier keeps the first
        writer's copy).
        """
        if self.injector is not None:
            record = self.injector.fire("cache.write", key)
            if record is not None:
                self.write_failures += 1
                self.injector.recover(record, "dropped_write")
                return
        self._put_blob(key, self.encode_value(value))

    def put_encoded(self, key: str, blob: bytes) -> None:
        """Store an already-framed blob (the executor's pool path hands
        worker-encoded blobs straight through so results are framed
        exactly once).  Same fault-site and write-through semantics as
        :meth:`put`."""
        if self.injector is not None:
            record = self.injector.fire("cache.write", key)
            if record is not None:
                self.write_failures += 1
                self.injector.recover(record, "dropped_write")
                return
        self._put_blob(key, blob)

    def _put_blob(self, key: str, blob: bytes) -> None:
        self.write_blob(key, blob)
        if self.tier is not None:
            if self.tier.put(key, blob) is None:
                self.tier_errors += 1
            else:
                self.tier_stores += 1

    def _entries(self) -> list[tuple[Path, float, int]]:
        """``(path, mtime, size_bytes)`` per entry, oldest first.

        Entries that vanish mid-scan (a concurrent prune or clear) are
        skipped rather than raising.
        """
        out = []
        if not self.root.exists():
            return out
        for path in self.root.glob("*/*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((path, st.st_mtime, st.st_size))
        out.sort(key=lambda e: (e[1], str(e[0])))
        return out

    def stats(self) -> dict:
        """Size and age summary of the on-disk store (JSON-ready).

        One ``scandir`` sweep over the store covers both live entries
        and the quarantine — on big caches the old two-pass
        (glob-and-sort plus a second quarantine glob) dominated the
        ``cache stats`` command.  Files that vanish mid-scan (a
        concurrent prune or clear) are skipped rather than raising.

        Each live entry's first 48 bytes are peeked to classify it as
        a framed RPT1 blob or a legacy raw pickle; framed entries
        report their *logical* (pre-compression) size from the header,
        so the blob-format breakdown carries an honest overall
        compression ratio.
        """
        entries = 0
        total = 0
        oldest: float | None = None
        newest: float | None = None
        quarantined = 0
        quarantined_bytes = 0
        framed_entries = 0
        framed_bytes = 0
        framed_logical_bytes = 0
        raw_entries = 0
        raw_bytes = 0
        try:
            subdirs = list(os.scandir(self.root))
        except OSError:
            subdirs = []
        for sub in subdirs:
            if not sub.is_dir():
                continue
            is_quarantine = sub.name == "quarantine"
            suffix = ".bad" if is_quarantine else ".pkl"
            try:
                files = list(os.scandir(sub.path))
            except OSError:
                continue
            for entry in files:
                if not entry.name.endswith(suffix):
                    continue
                try:
                    st = entry.stat()
                except OSError:
                    continue
                if is_quarantine:
                    quarantined += 1
                    quarantined_bytes += st.st_size
                else:
                    entries += 1
                    total += st.st_size
                    mtime = st.st_mtime
                    if oldest is None or mtime < oldest:
                        oldest = mtime
                    if newest is None or mtime > newest:
                        newest = mtime
                    logical = None
                    try:
                        with open(entry.path, "rb") as fh:
                            logical = transport.peek_logical_bytes(
                                fh.read(48)
                            )
                    except OSError:
                        pass
                    if logical is None:
                        raw_entries += 1
                        raw_bytes += st.st_size
                    else:
                        framed_entries += 1
                        framed_bytes += st.st_size
                        framed_logical_bytes += logical
        logical_total = framed_logical_bytes + raw_bytes
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "corrupt_evictions": self.corrupt_evictions,
            "write_failures": self.write_failures,
            "quarantined": quarantined,
            "quarantined_bytes": quarantined_bytes,
            "tier_hits": self.tier_hits,
            "tier_misses": self.tier_misses,
            "tier_stores": self.tier_stores,
            "tier_errors": self.tier_errors,
            "framed_entries": framed_entries,
            "framed_bytes": framed_bytes,
            "framed_logical_bytes": framed_logical_bytes,
            "raw_entries": raw_entries,
            "raw_bytes": raw_bytes,
            "logical_bytes": logical_total,
            "compression_ratio": (
                logical_total / total if total else 1.0
            ),
        }

    def prune(self, max_bytes: int) -> dict:
        """Evict least-recently-used entries until <= ``max_bytes``.

        Eviction is oldest-mtime-first (reads refresh mtime, see
        :meth:`get`), so a long-lived server keeps its hot working set
        while the cold tail is reclaimed.  Returns a JSON-ready summary
        of what was removed and what remains.

        The walk races against concurrent readers and pruners by
        design: each candidate is re-``stat``-ed immediately before the
        unlink, so an entry a concurrent :meth:`get` just refreshed is
        recognized as hot and skipped rather than evicted on its stale
        scan-time mtime, and an entry that vanished (another pruner, a
        :meth:`clear`) is skipped rather than raising.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        removed = 0
        freed = 0
        for path, mtime, size in entries:
            if total - freed <= max_bytes:
                break
            try:
                st = path.stat()
            except OSError:
                # Vanished since the scan — already freed by someone
                # else; its bytes no longer count against the budget.
                freed += size
                continue
            if st.st_mtime > mtime:
                continue  # refreshed by a concurrent get(): hot, keep it
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_entries": len(entries) - removed,
            "remaining_bytes": total - freed,
            "max_bytes": max_bytes,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
