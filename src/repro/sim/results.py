"""Typed result records shared by the runner, experiments and benches."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.contiguity import ContiguitySample
from repro.metrics.faults import FaultSummary, SoftwareOverhead


@dataclass
class RunResult:
    """Everything one workload run produces.

    ``samples`` is the contiguity time series (one point per sampling
    interval during the run); ``average`` and ``final`` summarize it
    the way the paper's figures do.
    """

    workload: str
    policy: str
    virtualized: bool
    footprint_pages: int
    samples: list[ContiguitySample] = field(default_factory=list)
    average: ContiguitySample = field(default_factory=ContiguitySample.empty)
    final: ContiguitySample = field(default_factory=ContiguitySample.empty)
    faults: FaultSummary | None = None
    #: Raw per-fault latencies (us), for cross-run percentile pooling.
    fault_latencies_us: list[float] = field(default_factory=list)
    software: SoftwareOverhead | None = None
    bloat_pages: int = 0
    touched_pages: int = 0
    resident_pages: int = 0
    #: Final mapping-run sizes (pages, descending) — for Table I models.
    run_sizes: list[int] = field(default_factory=list)
    #: Start VPN of each workload VMA, in plan order (trace resolution).
    vma_start_vpns: list[int] = field(default_factory=list)
    #: The live process, when the run was kept alive (exit_after=False)
    #: so hardware simulations can inspect the memory state.
    process: object | None = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>10} / {self.policy:<7} "
            f"{'virt' if self.virtualized else 'native'}: "
            f"cov32={self.final.coverage_32:6.1%} "
            f"cov128={self.final.coverage_128:6.1%} "
            f"maps99={self.final.mappings_99:>6} "
            f"runs={self.final.total_runs:>6}"
        )
