"""Workload runners: drive a workload through a machine, sample metrics.

``run_native`` executes a workload on a :class:`~repro.sim.machine.Machine`;
``run_virtualized`` executes it inside a guest on a
:class:`~repro.virt.hypervisor.VirtualMachine` and measures *2D*
contiguity through the introspection tool.  Both return a
:class:`~repro.sim.results.RunResult`.

The run has two phases, like the paper's benchmarks:

1. *allocation* — the workload's ``alloc_steps`` are replayed (demand
   faults interleaved with page-cache readahead), with contiguity
   sampled every few steps;
2. *steady state* — asynchronous daemons (Ranger/Ingens) get
   ``steady_epochs`` more passes, with sampling between epochs, so
   post-allocation defragmentation is visible in the time series
   (Fig. 1c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.contiguity import average_samples, sample_contiguity
from repro.metrics.faults import FaultSummary, SoftwareOverhead, bloat_pages
from repro.sim.machine import Machine
from repro.sim.results import RunResult
from repro.virt.hypervisor import VirtualMachine
from repro.virt.introspect import two_d_runs
from repro.vm.flags import DEFAULT_ANON
from repro.workloads.base import Workload

#: Modelled useful (non-kernel) execution time per footprint page, us.
#: Sets the denominator of Fig. 11's normalized runtimes.
USEFUL_US_PER_PAGE = 40.0


@dataclass
class RunOptions:
    """Knobs shared by both runners."""

    #: Sample contiguity every N allocation steps (None = only at end).
    sample_every: int | None = 16
    #: Asynchronous-daemon epochs after allocation completes.
    steady_epochs: int = 6
    #: Tear the process down afterwards (page cache persists regardless).
    exit_after: bool = True
    #: Pages of scratch output written through the page cache at the
    #: end of the run (temp files that outlive the process and age the
    #: machine across consecutive runs, Fig. 1b).
    scratch_file_pages: int = 0


def run_native(
    machine: Machine, workload: Workload, options: RunOptions | None = None
) -> RunResult:
    """Run a workload natively and collect contiguity + fault metrics."""
    options = options or RunOptions()
    kernel = machine.kernel
    kernel.reset_fault_stats()
    process = kernel.create_process(workload.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in workload.vma_plans
    ]
    files = [
        _file_handle(kernel, plan.name, plan.n_pages)
        for plan in workload.file_plans
    ]

    result = RunResult(
        workload=workload.name,
        policy=machine.policy.name,
        virtualized=False,
        footprint_pages=workload.footprint_pages,
    )

    def sampler():
        return sample_contiguity(
            process.space.runs,
            footprint_pages=max(1, process.space.resident_pages),
            touched_pages=process.touched_pages,
        )

    _replay(
        workload,
        options,
        result,
        sampler,
        touch=lambda vma_idx, start, n: kernel.touch_range(
            process, vmas[vma_idx].start_vpn + start, n
        ),
        read=lambda file_idx, start, n: _read_pages(
            kernel.file_read, files[file_idx], start, n, kernel
        ),
        daemons=kernel.run_daemons,
    )

    result.faults = FaultSummary.from_kernel(kernel)
    result.fault_latencies_us = kernel.fault_latencies_us()
    result.software = SoftwareOverhead.from_kernel(kernel)
    result.bloat_pages = bloat_pages(process)
    result.touched_pages = process.touched_pages
    result.resident_pages = process.resident_pages
    result.run_sizes = process.space.runs.sizes_desc()
    result.vma_start_vpns = [vma.start_vpn for vma in vmas]

    _write_scratch(kernel, workload, options, kernel.file_read)
    if options.exit_after:
        kernel.exit_process(process)
    else:
        result.process = process
    return result


def run_virtualized(
    vm: VirtualMachine, workload: Workload, options: RunOptions | None = None
) -> RunResult:
    """Run a workload inside a guest; contiguity is 2D (gVA→hPA)."""
    options = options or RunOptions()
    guest = vm.guest_kernel
    guest.reset_fault_stats()
    process = vm.create_guest_process(workload.name)
    vmas = [
        vm.guest_mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in workload.vma_plans
    ]
    files = [
        _file_handle(guest, plan.name, plan.n_pages)
        for plan in workload.file_plans
    ]

    result = RunResult(
        workload=workload.name,
        policy=f"{guest.policy.name}+{vm.host.policy.name}",
        virtualized=True,
        footprint_pages=workload.footprint_pages,
    )

    def sampler():
        runs = two_d_runs(vm, process)
        return sample_contiguity(
            runs,
            footprint_pages=max(1, runs.total_pages),
            touched_pages=process.touched_pages,
        )

    _replay(
        workload,
        options,
        result,
        sampler,
        touch=lambda vma_idx, start, n: vm.guest_touch_range(
            process, vmas[vma_idx].start_vpn + start, n
        ),
        read=lambda file_idx, start, n: _read_pages(
            vm.guest_file_read, files[file_idx], start, n, guest
        ),
        daemons=lambda: (guest.run_daemons(), vm.host.kernel.run_daemons()),
    )

    result.faults = FaultSummary.from_kernel(guest)
    result.fault_latencies_us = guest.fault_latencies_us()
    result.software = SoftwareOverhead.from_kernel(guest)
    result.bloat_pages = bloat_pages(process)
    result.touched_pages = process.touched_pages
    result.resident_pages = process.resident_pages
    result.run_sizes = two_d_runs(vm, process).sizes_desc()
    result.vma_start_vpns = [vma.start_vpn for vma in vmas]

    _write_scratch(guest, workload, options, vm.guest_file_read)
    if options.exit_after:
        vm.guest_exit_process(process)
    else:
        result.process = process
    return result


# -- shared internals -----------------------------------------------------


def _replay(workload, options, result, sampler, touch, read, daemons) -> None:
    """Drive alloc steps + steady epochs, sampling contiguity."""
    for step_no, step in enumerate(workload.alloc_steps()):
        if step.kind == "anon":
            touch(step.index, step.start_page, step.n_pages)
        else:
            read(step.index, step.start_page, step.n_pages)
        if options.sample_every and step_no % options.sample_every == 0:
            result.samples.append(sampler())
    for _ in range(options.steady_epochs):
        daemons()
        result.samples.append(sampler())
    result.final = sampler()
    if not result.samples:
        result.samples.append(result.final)
    result.average = average_samples(result.samples)


def _file_handle(kernel, name: str, n_pages: int):
    """Reuse an already cached file with the same name (runs share input)."""
    file = kernel.page_cache.find(name, n_pages)
    if file is not None:
        return file
    return kernel.page_cache.open(n_pages, name=name)


def _read_pages(read_fn, file, start: int, n: int, kernel) -> None:
    window = kernel.page_cache.readahead_pages
    for index in range(start, min(start + n, file.n_pages), window):
        read_fn(file, index)


def _write_scratch(kernel, workload, options, read_fn) -> None:
    """Leave a scratch file in the page cache (ages the machine).

    The sequence number comes from the kernel so the name — and hence
    the result — is a pure function of this machine's history, not of
    how many runs any other machine did in the same process.
    """
    if not options.scratch_file_pages:
        return
    scratch = kernel.page_cache.open(
        options.scratch_file_pages,
        name=f"{workload.name}-scratch-{kernel.next_scratch_id()}",
    )
    _read_pages(read_fn, scratch, 0, scratch.n_pages, kernel)
