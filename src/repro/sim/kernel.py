"""The OS kernel model: fault path, THP, fork/COW, page cache, policies.

This is the Linux-analogue the paper patches.  It owns the fault
handling sequence:

1. VMA lookup, minor-fault short circuit, COW break detection;
2. THP eligibility (2 MiB fault when the aligned region fits the VMA
   and nothing in it is mapped yet);
3. delegation to the active placement policy for the frame;
4. page-table installation, mapping-run tracking, and maintenance of
   the SpOT *contiguity bit* (PTEs of runs >= ``contig_threshold``);
5. fault-latency accounting (zeroing dominates — this drives Table V)
   and periodic policy ticks (the Ingens/Ranger daemons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import AddressSpaceError, ConfigError, MappingError, OutOfMemoryError
from repro.mm.physmem import PhysicalMemory
from repro.policies.base import FaultContext, PlacementPolicy
from repro.units import HUGE_ORDER, HUGE_PAGES, order_pages
from repro.vm.flags import DEFAULT_ANON, PteFlags, VmaFlags
from repro.vm.page_cache import CachedFile, PageCache
from repro.vm.process import Process
from repro.vm.vma import Vma

#: Fault-latency model constants (microseconds).  Calibrated so a THP
#: fault (zeroing 512 pages) costs ~515 us like Table V.
FAULT_BASE_US = 2.5
ZERO_US_PER_PAGE = 1.0
PLACEMENT_SEARCH_US = 8.0


@dataclass
class FaultEvent:
    """One major fault (or eager pre-allocation event) for Table V."""

    pid: int
    order: int
    latency_us: float
    placed: bool


class FaultLog:
    """Run-length-encoded major-fault log.

    The batched fault paths retire thousands of identical ``(pid,
    order, latency, placed)`` events per call; storing one block per
    maximal run keeps paper-scale logs (tens of millions of faults) in
    O(distinct transitions) memory while reproducing the exact
    per-event view on demand.
    """

    __slots__ = ("_pids", "_orders", "_lats", "_placed", "_counts", "_total")

    def __init__(self) -> None:
        self._pids: list[int] = []
        self._orders: list[int] = []
        self._lats: list[float] = []
        self._placed: list[bool] = []
        self._counts: list[int] = []
        self._total = 0

    def append(self, pid: int, order: int, latency_us: float, placed: bool) -> None:
        """Record one fault event."""
        self.append_run(pid, order, latency_us, placed, 1)

    def append_run(self, pid: int, order: int, latency_us: float,
                   placed: bool, count: int) -> None:
        """Record ``count`` identical consecutive fault events."""
        if count <= 0:
            return
        if (
            self._counts
            and self._pids[-1] == pid
            and self._orders[-1] == order
            and self._lats[-1] == latency_us
            and self._placed[-1] == placed
        ):
            self._counts[-1] += count
        else:
            self._pids.append(pid)
            self._orders.append(order)
            self._lats.append(latency_us)
            self._placed.append(placed)
            self._counts.append(count)
        self._total += count

    def __len__(self) -> int:
        return self._total

    def events(self) -> "list[FaultEvent]":
        """Materialized per-event view (small logs, tests, percentiles)."""
        out: list[FaultEvent] = []
        for pid, order, lat, placed, count in zip(
            self._pids, self._orders, self._lats, self._placed, self._counts
        ):
            out.extend(FaultEvent(pid, order, lat, placed) for _ in range(count))
        return out

    def latencies_us(self) -> list[float]:
        """Latency of every fault, in event order (materialized)."""
        out: list[float] = []
        for lat, count in zip(self._lats, self._counts):
            out.extend([lat] * count)
        return out

    def latency_sum_us(self) -> float:
        """Exact total latency without materializing the events.

        Block sums match the sequential per-event sum bit-for-bit:
        every modelled latency is a small multiple of 0.5 us, so both
        summation orders stay exact in float64 far beyond any
        reachable fault count.
        """
        return sum(c * lat for c, lat in zip(self._counts, self._lats))

    def clear(self) -> None:
        """Drop all recorded events."""
        self._pids.clear()
        self._orders.clear()
        self._lats.clear()
        self._placed.clear()
        self._counts.clear()
        self._total = 0


@dataclass
class FaultResult:
    """Outcome of a fault: what got mapped."""

    vpn: int
    pfn: int
    order: int
    minor: bool = False
    cow_break: bool = False


class Kernel:
    """One OS instance (the host kernel, a guest kernel, or native)."""

    def __init__(
        self,
        mem: PhysicalMemory,
        policy: PlacementPolicy,
        thp: bool = True,
        contig_threshold: int = 32,
        tick_every_faults: int = 256,
        engine: str = "fast",
    ):
        if engine not in ("fast", "scalar", "columnar"):
            raise ConfigError(f"unknown kernel engine {engine!r}")
        self.mem = mem
        self.policy = policy
        policy.bind(mem)
        policy.oom_reclaim = self.reclaim_pages
        self.thp = thp
        #: ``"columnar"`` routes whole-span batched fault paths over
        #: structure-of-arrays state (bulk buddy pops, per-VMA columns,
        #: policy ``on_fault_batch`` hooks); ``"fast"`` routes the
        #: leaf-at-a-time batched hot paths (span faulting, leaf-order
        #: fork, region-batched promotion); ``"scalar"`` routes the
        #: reference page-at-a-time paths.  The observable state and
        #: counters are identical; the bench harness A/Bs the engines.
        self.engine = engine
        #: True when the bound policy overrides ``on_fault_batch`` (the
        #: columnar span path then claims whole order-0 batches).
        self._policy_batches = (
            type(policy).on_fault_batch is not PlacementPolicy.on_fault_batch
        )
        self.contig_threshold = contig_threshold
        self.tick_every_faults = tick_every_faults
        self.page_cache = PageCache()
        self._processes: dict[int, Process] = {}
        self._next_pid = 1
        self._next_scratch_id = 1
        self.fault_log = FaultLog()
        self.minor_faults = 0
        self.cow_breaks = 0
        self.tlb_shootdowns = 0
        self._faults_since_tick = 0
        # True once any fork happened: only then can COW leaves exist,
        # so touch_range must inspect already-mapped stretches.
        self._cow_possible = False

    # -- process lifecycle ---------------------------------------------------

    def create_process(self, name: str = "", preferred_node: int = 0) -> Process:
        """Spawn a process with an empty address space."""
        process = Process(self._next_pid, name, preferred_node)
        self._next_pid += 1
        self._processes[process.pid] = process
        if self.engine == "columnar":
            process.space.columnar = True
        return process

    def iter_processes(self) -> Iterator[Process]:
        """Live processes."""
        return iter(list(self._processes.values()))

    def next_scratch_id(self) -> int:
        """Sequence number for scratch-file names left by run teardown.

        Per-kernel (not process-global) so a run's scratch names — and
        with them the whole result — depend only on this machine's own
        history, never on how many unrelated runs preceded it in the
        same Python process (worker reuse, test ordering).
        """
        scratch_id = self._next_scratch_id
        self._next_scratch_id += 1
        return scratch_id

    def node_of(self, process: Process) -> int:
        """Preferred NUMA node of a process."""
        return process.preferred_node

    def exit_process(self, process: Process) -> None:
        """Tear down a process, freeing all its frames."""
        for vma in list(process.space.iter_vmas()):
            self.munmap(process, vma)
        process.alive = False
        del self._processes[process.pid]

    # -- VMA management -------------------------------------------------------

    def mmap(
        self,
        process: Process,
        n_pages: int,
        flags: VmaFlags = DEFAULT_ANON,
        name: str = "",
        at_vpn: int | None = None,
        file: CachedFile | None = None,
    ) -> Vma:
        """Create a VMA; eager policies back it immediately."""
        vma = process.space.mmap(n_pages, flags, at_vpn=at_vpn, name=name, file=file)
        blocks = self.policy.on_mmap(process.space, vma)
        for vpn, pfn, order in blocks:
            self._install_block(process, vma, vpn, pfn, order)
            self.fault_log.append(
                process.pid,
                order,
                FAULT_BASE_US + ZERO_US_PER_PAGE * order_pages(order),
                placed=False,
            )
        return vma

    def munmap(self, process: Process, vma: Vma) -> None:
        """Destroy a VMA and release its frames."""
        self.policy.on_munmap(process.space, vma)
        removed = process.space.munmap(vma)
        for base_vpn, pte in removed:
            self._put_frame(pte.pfn, pte.order)

    # -- the fault path -----------------------------------------------------------

    def fault(self, process: Process, vpn: int, write: bool = True) -> FaultResult:
        """Handle a page fault at ``vpn``."""
        space = process.space
        vma = space.vma_at(vpn)
        if vma is None:
            raise AddressSpaceError(
                f"segfault: pid {process.pid} touched unmapped vpn {vpn:#x}"
            )
        walk = space.page_table.walk(vpn)
        if walk.hit:
            if write and walk.pte.flags & PteFlags.COW:
                return self._cow_break(process, vma, walk.base_vpn, walk.pte)
            self.minor_faults += 1
            return FaultResult(walk.base_vpn, walk.pte.pfn, walk.pte.order, minor=True)

        base_vpn, req_order = vpn, 0
        if self.thp:
            candidate = space.huge_candidate(vma, vpn)
            if candidate is not None:
                base_vpn, req_order = candidate, HUGE_ORDER
        result, _ = self._install_fault(process, vma, base_vpn, req_order, vpn, write)
        return result

    def _install_fault(self, process: Process, vma: Vma, base_vpn: int,
                       req_order: int, vpn: int, write: bool,
                       pte_flags: PteFlags | None = None,
                       ctx: FaultContext | None = None) -> tuple[FaultResult, bool]:
        """Allocate and install one fresh leaf (the tail of :meth:`fault`).

        Returns the fault result plus whether a policy tick fired (a
        tick's daemon work may remap pages, so batched callers must
        re-scan their work list when it does).  ``pte_flags``/``ctx``
        let :meth:`fault_span` hoist the invariant parts out of the
        per-leaf loop (policies never retain the context).
        """
        space = process.space
        placements_before = self.policy.stats.placements
        if ctx is None:
            ctx = FaultContext(
                space, vma, base_vpn, req_order, write=write,
                preferred_node=process.preferred_node,
            )
        else:
            ctx.vpn = base_vpn
            ctx.order = req_order
        pfn, got_order = self.policy.allocate(ctx)
        if got_order < req_order:
            # Downgraded huge fault: map only the faulting base page.
            base_vpn = vpn
        if pte_flags is None:
            pte_flags = self._prot_flags(vma, write)
        pte = space.install(vma, base_vpn, pfn, got_order, pte_flags)
        self._account_frame(pfn, got_order, owner=process.pid)
        self._update_contig_bit(space, base_vpn, pte)

        placed = self.policy.stats.placements > placements_before
        latency = FAULT_BASE_US + ZERO_US_PER_PAGE * order_pages(got_order)
        if placed:
            latency += PLACEMENT_SEARCH_US
        self.fault_log.append(process.pid, got_order, latency, placed)
        ticked = self._maybe_tick()
        return FaultResult(base_vpn, pfn, got_order), ticked

    def fault_span(self, process: Process, vma: Vma, vpn: int, end: int,
                   write: bool = True, on_fault=None,
                   on_span=None) -> tuple[int, int]:
        """Fault in the (unmapped) span ``[vpn, end)`` inside ``vma``.

        The batched analogue of calling :meth:`fault` per page: one
        policy call per granted leaf, without re-walking the page table
        or re-resolving the VMA between leaves.  ``on_fault`` is invoked
        after each fault (the hypervisor backs the granted frames there);
        ``on_span(vpn, pfn, n_pages)`` is its whole-segment analogue for
        the columnar engine.  Stops early when a policy tick fires,
        because daemon work may have remapped pages inside the caller's
        pending span.  Returns ``(major_faults, next_vpn)``.

        The columnar engine batches order-0 stretches through the
        policy's ``on_fault_batch`` hook (when ``on_fault`` does not
        force per-leaf granularity); huge faults and policy-ceded pages
        take the identical per-leaf path.
        """
        if self.engine == "columnar" and on_fault is None:
            return self._fault_span_columnar(process, vma, vpn, end, write, on_span)
        space = process.space
        majors = 0
        thp = self.thp
        huge_candidate = space.huge_candidate
        pte_flags = self._prot_flags(vma, write)
        ctx = FaultContext(
            space, vma, vpn, 0, write=write,
            preferred_node=process.preferred_node,
        )
        while vpn < end:
            base_vpn, req_order = vpn, 0
            if thp:
                candidate = huge_candidate(vma, vpn)
                if candidate is not None:
                    base_vpn, req_order = candidate, HUGE_ORDER
            result, ticked = self._install_fault(
                process, vma, base_vpn, req_order, vpn, write,
                pte_flags=pte_flags, ctx=ctx,
            )
            majors += 1
            if on_fault is not None:
                on_fault(result)
            vpn = result.vpn + order_pages(result.order)
            if ticked:
                break
        return majors, vpn

    def _fault_span_columnar(self, process: Process, vma: Vma, vpn: int,
                             end: int, write: bool,
                             on_span=None) -> tuple[int, int]:
        """Whole-span batched faulting (the ``columnar`` engine path).

        Order-0 stretches are claimed from the policy in one
        ``on_fault_batch`` call (bounded by the pending tick budget so
        daemon ticks fire after exactly the same fault as the scalar
        engine), installed with one page-table descent per PT node and
        one run/column/frame update per physically contiguous segment.
        Huge-eligible faults and pages the policy declines to batch
        (placement decisions, OOM fallbacks) take the per-leaf reference
        path, so the observable state is bit-identical to the scalar
        engine's.
        """
        space = process.space
        majors = 0
        thp = self.thp
        huge_candidate = space.huge_candidate
        pte_flags = self._prot_flags(vma, write)
        batch_latency = FAULT_BASE_US + ZERO_US_PER_PAGE
        ctx = FaultContext(
            space, vma, vpn, 0, write=write,
            preferred_node=process.preferred_node,
        )
        while vpn < end:
            span_end = end
            if thp:
                candidate = huge_candidate(vma, vpn)
                if candidate is not None:
                    result, ticked = self._install_fault(
                        process, vma, candidate, HUGE_ORDER, vpn, write,
                        pte_flags=pte_flags, ctx=ctx,
                    )
                    majors += 1
                    if on_span is not None:
                        on_span(result.vpn, result.pfn, order_pages(result.order))
                    vpn = result.vpn + order_pages(result.order)
                    if ticked:
                        break
                    continue
                # No huge leaf here: the rest of this 2 MiB region is
                # order-0 (the slot stays ineligible once partial).
                span_end = min(end, (vpn | (HUGE_PAGES - 1)) + 1)
            take = min(span_end - vpn, self.tick_every_faults - self._faults_since_tick)
            got = 0
            if self._policy_batches and take > 1:
                ctx.vpn = vpn
                ctx.order = 0
                vpns = np.arange(vpn, vpn + take, dtype=np.int64)
                pfns = self.policy.on_fault_batch(ctx, vpns)
                got = len(pfns)
                if got:
                    self._install_span_batch(
                        process, vma, vpn, pfns, pte_flags, on_span
                    )
                    majors += got
                    self.fault_log.append_run(
                        process.pid, 0, batch_latency, False, got
                    )
                    vpn += got
                    self._faults_since_tick += got
                    if self._faults_since_tick >= self.tick_every_faults:
                        self._faults_since_tick = 0
                        self.policy.tick(self)
                        break  # daemon work may have remapped the pending span
            if got < take and vpn < span_end:
                # The policy ceded this page (or batching is off): take
                # the per-leaf reference path, which carries the full
                # placement / OOM / reclaim semantics.
                result, ticked = self._install_fault(
                    process, vma, vpn, 0, vpn, write,
                    pte_flags=pte_flags, ctx=ctx,
                )
                majors += 1
                if on_span is not None:
                    on_span(result.vpn, result.pfn, order_pages(result.order))
                vpn = result.vpn + order_pages(result.order)
                if ticked:
                    break
        return majors, vpn

    def _install_span_batch(self, process: Process, vma: Vma, vpn: int,
                            pfns, pte_flags: PteFlags, on_span=None) -> None:
        """Install one claimed batch of order-0 leaves.

        Splits the batch at physical discontinuities; each segment
        becomes one ``install_run`` (one run insertion, one PT sweep,
        one frame-column slice).  The contiguity bit follows the scalar
        per-page rule: page ``i`` of a segment is created CONTIG when
        the run it lands in has already reached the threshold at that
        point (``pred_len + i + 1 >= thr``), and the final page picks
        the bit up when its install merges past the threshold through an
        existing successor run.
        """
        space = process.space
        runs = space.runs
        thr = self.contig_threshold
        owner = process.pid
        n = len(pfns)
        breaks = np.flatnonzero(np.diff(pfns) != 1)
        starts = [0, *(int(b) + 1 for b in breaks), n]
        for s, e in zip(starts, starts[1:]):
            seg_vpn = vpn + s
            seg_pfn = int(pfns[s])
            seg_n = e - s
            pred = runs.find(seg_vpn - 1)
            pred_len = (
                pred.n_pages
                if pred is not None
                and pred.end_vpn == seg_vpn
                and pred.offset == seg_vpn - seg_pfn
                else 0
            )
            contig_from = max(0, thr - pred_len - 1)
            run, last = space.install_run(
                vma, seg_vpn, seg_pfn, seg_n, pte_flags,
                contig_from=min(contig_from, seg_n),
            )
            if contig_from >= seg_n and run.n_pages >= thr:
                # Successor merge crossed the threshold on the last page.
                last.flags |= PteFlags.CONTIG
                space.note_contig(seg_vpn + seg_n - 1, 1)
            self._account_frame_span(seg_pfn, seg_n, owner)
            if on_span is not None:
                on_span(seg_vpn, seg_pfn, seg_n)

    def touch(self, process: Process, vpn: int, write: bool = True) -> FaultResult:
        """Access a page, faulting it in when absent (workload driver API)."""
        return self.fault(process, vpn, write)

    def touch_range(self, process: Process, start_vpn: int, n_pages: int,
                    write: bool = True, step: int = 1) -> int:
        """Touch ``n_pages`` from ``start_vpn``; returns major fault count.

        Skips pages already mapped cheaply (no minor-fault accounting),
        which keeps sequential allocation phases fast.  Mapped stretches
        are skipped via the mapping runs (which mirror the page table
        exactly) and unmapped gaps are faulted through
        :meth:`fault_span`, so the cost is one run lookup per stretch
        plus one policy call per granted leaf — not one page-table walk
        per page.  Behaviour is identical to :meth:`touch_range_scalar`,
        which the ``scalar`` engine routes here.
        """
        if self.engine == "scalar":
            return self.touch_range_scalar(process, start_vpn, n_pages, write, step)
        space = process.space
        majors = 0
        vpn = start_vpn
        end = start_vpn + n_pages
        # COW leaves are invisible to the runs; scan mapped stretches
        # leaf-by-leaf only when COW mappings can exist at all.
        scan_cow = write and self._cow_possible
        while vpn < end:
            gap = space.runs.next_unmapped(vpn, end)
            if gap is None:
                if scan_cow:
                    majors += self._cow_scan(process, vpn, end)
                break
            gap_start, gap_end = gap
            if scan_cow and gap_start > vpn:
                majors += self._cow_scan(process, vpn, gap_start)
            vma = space.vma_at(gap_start)
            if vma is None:
                raise AddressSpaceError(
                    f"segfault: pid {process.pid} touched unmapped vpn {gap_start:#x}"
                )
            n, vpn = self.fault_span(
                process, vma, gap_start, min(gap_end, vma.end_vpn), write
            )
            majors += n
        process.touched_pages += n_pages
        return majors

    def touch_range_scalar(self, process: Process, start_vpn: int, n_pages: int,
                           write: bool = True, step: int = 1) -> int:
        """Reference page-by-page :meth:`touch_range` (perf baseline)."""
        space = process.space
        majors = 0
        vpn = start_vpn
        end = start_vpn + n_pages
        while vpn < end:
            walk = space.page_table.walk(vpn)
            if walk.hit and not (write and walk.pte.flags & PteFlags.COW):
                vpn = walk.base_vpn + order_pages(walk.pte.order)
                continue
            result = self.fault(process, vpn, write)
            majors += 1
            vpn = result.vpn + order_pages(result.order) if not result.minor else vpn + step
        process.touched_pages += n_pages
        return majors

    def _cow_scan(self, process: Process, vpn: int, end: int) -> int:
        """Walk a mapped stretch, breaking COW leaves for a write touch."""
        space = process.space
        majors = 0
        while vpn < end:
            walk = space.page_table.walk(vpn)
            if not walk.hit:
                vpn += 1
                continue
            if not walk.pte.flags & PteFlags.COW:
                vpn = walk.base_vpn + order_pages(walk.pte.order)
                continue
            result = self.fault(process, vpn, True)
            majors += 1
            vpn = result.vpn + order_pages(result.order) if not result.minor else vpn + 1
        return majors

    # -- fork / copy-on-write ----------------------------------------------------

    def fork(self, parent: Process, name: str = "") -> Process:
        """Create a COW child sharing all of the parent's frames.

        Copies by iterating the parent's page-table leaves once (VPN
        order) instead of walking every VPN of every VMA — sparse or
        huge-mapped parents fork in O(leaves), not O(pages).
        """
        if self.engine == "scalar":
            return self.fork_scalar(parent, name)
        child = self.create_process(name or f"{parent.name}-child", parent.preferred_node)
        self._cow_possible = True
        pairs = []
        for vma in parent.space.iter_vmas():
            child_vma = child.space.mmap(
                vma.n_pages, vma.flags, at_vpn=vma.start_vpn,
                name=vma.name, file=vma.file,
            )
            child_vma.offsets = list(vma.offsets)
            pairs.append((vma, child_vma))
        i = 0
        for base_vpn, pte in parent.space.page_table.iter_leaves():
            while i < len(pairs) and pairs[i][0].end_vpn <= base_vpn:
                i += 1
            child_vma = pairs[i][1]
            # Write-protect both sides; share the frame.
            pte.flags = (pte.flags | PteFlags.COW) & ~PteFlags.WRITE
            child.space.install(child_vma, base_vpn, pte.pfn, pte.order, pte.flags)
            self._account_frame(pte.pfn, pte.order, owner=child.pid)
        return child

    def fork_scalar(self, parent: Process, name: str = "") -> Process:
        """Reference per-VPN :meth:`fork` (the ``scalar`` engine path)."""
        child = self.create_process(name or f"{parent.name}-child", parent.preferred_node)
        self._cow_possible = True
        for vma in parent.space.iter_vmas():
            child_vma = child.space.mmap(
                vma.n_pages, vma.flags, at_vpn=vma.start_vpn,
                name=vma.name, file=vma.file,
            )
            child_vma.offsets = list(vma.offsets)
            vpn = vma.start_vpn
            while vpn < vma.end_vpn:
                walk = parent.space.page_table.walk(vpn)
                if not walk.hit:
                    vpn += 1
                    continue
                pte = walk.pte
                # Write-protect both sides; share the frame.
                pte.flags = (pte.flags | PteFlags.COW) & ~PteFlags.WRITE
                child.space.install(
                    child_vma, walk.base_vpn, pte.pfn, pte.order, pte.flags
                )
                self._account_frame(pte.pfn, pte.order, owner=child.pid)
                vpn = walk.base_vpn + order_pages(pte.order)
        return child

    def _cow_break(self, process: Process, vma: Vma, base_vpn: int, old_pte) -> FaultResult:
        """Copy-on-write: give the writer a private copy via the policy."""
        self.cow_breaks += 1
        ctx = FaultContext(
            process.space, vma, base_vpn, old_pte.order, write=True,
            preferred_node=process.preferred_node, cow=True,
        )
        pfn, got_order = self.policy.allocate(ctx)
        if got_order < old_pte.order:
            # Could not find a huge block for the copy: split the COW
            # region, copying only the faulting base page would require
            # PTE splitting; keep whole-leaf copies and retry at 4K is
            # not possible without splitting, so fall back to mapping
            # the copy at base order page-by-page.
            raise MappingError("COW copy downgrade is not modelled")
        process.space.uninstall(vma, base_vpn)
        self._put_frame(old_pte.pfn, old_pte.order)
        process.space.install(
            vma, base_vpn, pfn, got_order, self._prot_flags(vma, write=True)
        )
        self._account_frame(pfn, got_order, owner=process.pid)
        self._update_contig_bit(process.space, base_vpn)
        latency = FAULT_BASE_US + 2 * ZERO_US_PER_PAGE * order_pages(got_order)
        self.fault_log.append(process.pid, got_order, latency, False)
        return FaultResult(base_vpn, pfn, got_order, cow_break=True)

    # -- page cache ---------------------------------------------------------------

    def file_read(self, file: CachedFile, index: int) -> int:
        """Read one page of a file through the page cache."""
        return self.page_cache.read(file, index, self._file_allocate)

    def drop_file(self, file: CachedFile) -> int:
        """Evict a file from the cache, freeing its frames."""
        return self.page_cache.drop(file, lambda pfn: self._put_frame(pfn, 0))

    def reclaim_pages(self, n_pages: int) -> int:
        """Direct reclaim: evict cached files (oldest first) until
        ``n_pages`` frames are freed.  Returns the number freed."""
        freed = 0
        for file in list(self.page_cache.iter_files()):
            if freed >= n_pages:
                break
            freed += self.drop_file(file)
        return freed

    def drop_caches(self) -> int:
        """Evict every cached file (``echo 3 > drop_caches`` analogue).

        Returns the number of pages released.  Used between consecutive
        benchmark runs when guest memory pressure calls for reclaim.
        """
        return sum(self.drop_file(f) for f in list(self.page_cache.iter_files()))

    def _file_allocate(self, file: CachedFile, index: int, n: int) -> list[int]:
        pfns = self.policy.allocate_file(file, index, n)
        for pfn in pfns:
            self._account_frame(pfn, 0)
        return pfns

    # -- migration (Ranger / Ingens service calls) -----------------------------------

    def migrate(self, process: Process, vma: Vma, base_vpn: int,
                desired_pfn: int, order: int) -> bool:
        """Move the leaf at ``base_vpn`` to ``desired_pfn`` if it is free."""
        zone_frames = self.mem.zone_of(desired_pfn).frames if self._pfn_valid(desired_pfn) else None
        if zone_frames is None:
            return False
        walk = process.space.page_table.walk(base_vpn)
        if not walk.hit or walk.pte.order != order:
            return False
        head_idx = zone_frames.index(desired_pfn) if zone_frames.contains(desired_pfn) else None
        old_pfn = walk.pte.pfn
        src_frames = self.mem.zone_of(old_pfn).frames
        if src_frames.mapcount[src_frames.index(old_pfn)] > 1:
            return False  # shared (COW) pages are not migrated
        if not self.mem.alloc_target(desired_pfn, order):
            return False
        flags = walk.pte.flags
        process.space.uninstall(vma, base_vpn)
        self._put_frame(old_pfn, order)
        process.space.install(vma, base_vpn, desired_pfn, order, flags)
        self._account_frame(desired_pfn, order, owner=process.pid)
        self._update_contig_bit(process.space, base_vpn)
        self.tlb_shootdowns += 1
        return True

    def swap_mappings(self, process: Process, vpn_a: int, vpn_b: int) -> bool:
        """Exchange the frames behind two same-order leaves of a process.

        Ranger's page-exchange primitive: when the frame a page should
        move to is occupied by another page of the *same process*, the
        two pages swap frames (two migrations + shootdowns).  Refuses
        COW-shared leaves and mismatched orders.
        """
        space = process.space
        wa = space.page_table.walk(vpn_a)
        wb = space.page_table.walk(vpn_b)
        if not (wa.hit and wb.hit) or wa.pte.order != wb.pte.order:
            return False
        if wa.base_vpn == wb.base_vpn:
            return False
        if (wa.pte.flags | wb.pte.flags) & PteFlags.COW:
            return False
        pages = order_pages(wa.pte.order)
        pfn_a, pfn_b = wa.pte.pfn, wb.pte.pfn
        wa.pte.pfn, wb.pte.pfn = pfn_b, pfn_a
        space.runs.remove(wa.base_vpn, pages)
        space.runs.remove(wb.base_vpn, pages)
        space.runs.add(wa.base_vpn, pfn_b, pages)
        space.runs.add(wb.base_vpn, pfn_a, pages)
        space.note_remap(wa.base_vpn, pfn_b, pages)
        space.note_remap(wb.base_vpn, pfn_a, pages)
        self._update_contig_bit(space, wa.base_vpn)
        self._update_contig_bit(space, wb.base_vpn)
        self.tlb_shootdowns += 2
        return True

    def relocate_leaf(self, process: Process, vpn: int) -> bool:
        """Move the leaf covering ``vpn`` to any free block (evacuation).

        Used by Ranger to clear foreign pages out of an anchor region
        when no equal-order swap is possible.
        """
        space = process.space
        walk = space.page_table.walk(vpn)
        if not walk.hit or walk.pte.flags & PteFlags.COW:
            return False
        vma = space.vma_at(walk.base_vpn)
        if vma is None:
            return False
        try:
            dest = self.mem.alloc_block(walk.pte.order, process.preferred_node)
        except OutOfMemoryError:
            return False
        order = walk.pte.order
        flags = walk.pte.flags
        old_pfn = walk.pte.pfn
        space.uninstall(vma, walk.base_vpn)
        self._put_frame(old_pfn, order)
        space.install(vma, walk.base_vpn, dest, order, flags)
        self._account_frame(dest, order, owner=process.pid)
        self._update_contig_bit(space, walk.base_vpn)
        self.tlb_shootdowns += 1
        return True

    def relocate_cache_page(self, pfn: int, avoid=None) -> bool:
        """Move a page-cache page off its frame to a free frame.

        ``avoid(pfn) -> bool`` lets the caller veto destinations (e.g.
        Ranger keeps relocated pages out of its anchor regions); vetoed
        frames are released again after the search.
        """
        if pfn not in self.page_cache.frame_owner:
            return False
        rejected: list[int] = []
        dest = None
        for _ in range(8):
            try:
                candidate = self.mem.alloc_block(0)
            except OutOfMemoryError:
                break
            if avoid is not None and avoid(candidate):
                rejected.append(candidate)
                continue
            dest = candidate
            break
        for r in rejected:
            self.mem.free_block(r, 0)
        if dest is None:
            return False
        if not self.page_cache.move_page(pfn, dest):
            self.mem.free_block(dest, 0)
            return False
        self._account_frame(dest, 0)
        self._put_frame(pfn, 0)
        self.tlb_shootdowns += 1
        return True

    def owner_vpn_of_frame(self, process: Process, pfn: int) -> int | None:
        """Which of the process's pages maps ``pfn`` (via run search)."""
        for run in process.space.runs:
            if run.start_pfn <= pfn < run.end_pfn:
                return pfn + run.offset
        return None

    def remap_region_huge(self, process: Process, vma: Vma, region_vpn: int,
                          new_pfn: int) -> None:
        """Ingens promotion: replace resident 4K pages with one huge leaf."""
        if self.engine == "scalar":
            self._remap_region_huge_scalar(process, vma, region_vpn, new_pfn)
            return
        space = process.space
        for _vpn, pfn, n in space.uninstall_region(vma, region_vpn):
            self._put_frame_span(pfn, n)
        pte = space.install(
            vma, region_vpn, new_pfn, HUGE_ORDER, self._prot_flags(vma, write=True)
        )
        self._account_frame(new_pfn, HUGE_ORDER, owner=process.pid)
        self._update_contig_bit(space, region_vpn, pte)
        self.tlb_shootdowns += 1

    def _remap_region_huge_scalar(self, process: Process, vma: Vma,
                                  region_vpn: int, new_pfn: int) -> None:
        """Reference per-page promotion (the ``scalar`` engine path)."""
        space = process.space
        vpn = region_vpn
        while vpn < region_vpn + HUGE_PAGES:
            walk = space.page_table.walk(vpn)
            if walk.hit:
                space.uninstall(vma, walk.base_vpn)
                self._put_frame(walk.pte.pfn, walk.pte.order)
            vpn += 1
        space.install(
            vma, region_vpn, new_pfn, HUGE_ORDER, self._prot_flags(vma, write=True)
        )
        self._account_frame(new_pfn, HUGE_ORDER, owner=process.pid)
        self._update_contig_bit(space, region_vpn)
        self.tlb_shootdowns += 1

    # -- contiguity bit (SpOT table-fill filter, §IV-C) ------------------------------

    def pte_contiguous(self, process: Process, vpn: int) -> bool:
        """Is ``vpn`` part of a contiguous mapping >= the threshold?

        This is the reserved-PTE-bit check the nested walker performs
        before filling SpOT's prediction table.
        """
        return process.space.runs.run_length_at(vpn) >= self.contig_threshold

    def _update_contig_bit(self, space, base_vpn: int, pte=None) -> None:
        run = space.runs.find(base_vpn)
        if run is None or run.n_pages < self.contig_threshold:
            return
        if pte is None:
            pte = space.page_table.lookup(base_vpn)
        if pte is not None:
            pte.flags |= PteFlags.CONTIG
            space.note_contig(base_vpn, order_pages(pte.order))

    # -- frame accounting --------------------------------------------------------------

    def _account_frame(self, pfn: int, order: int, owner: int | None = None) -> None:
        self.mem.zone_of(pfn).frames.map_block(pfn, order_pages(order), owner)

    def _account_frame_span(self, pfn: int, n_pages: int, owner: int) -> None:
        """Batched :meth:`_account_frame` over ``n_pages`` base frames."""
        while n_pages > 0:
            zone = self.mem.zone_of(pfn)
            take = min(n_pages, zone.end_pfn - pfn)
            frames = zone.frames
            i = frames.index(pfn)
            frames.mapcount[i:i + take] += 1
            frames.owner[i:i + take] = owner
            pfn += take
            n_pages -= take

    def _put_frame(self, pfn: int, order: int) -> None:
        """Drop one mapping of a frame block; free it on last unmap."""
        frames = self.mem.zone_of(pfn).frames
        frames.unmap_block(pfn, order_pages(order))
        if frames.mapcount[frames.index(pfn)] <= 0:
            self.mem.free_block(pfn, order)

    def _put_frame_span(self, pfn: int, n_pages: int) -> None:
        """Batched :meth:`_put_frame` over ``n_pages`` base frames.

        Drops one mapping per frame with a single array op and frees the
        fully-unmapped stretch as maximal aligned buddy blocks.  The
        buddy free state after coalescing is identical to ``n_pages``
        per-page frees (the buddy representation of a free set is
        unique), reached in O(blocks) instead of O(pages).  Frames still
        mapped elsewhere (COW-shared) fall back to per-frame checks.
        """
        while n_pages > 0:
            zone = self.mem.zone_of(pfn)
            take = min(n_pages, zone.end_pfn - pfn)
            i = zone.frames.index(pfn)
            counts = zone.frames.mapcount[i:i + take]
            counts -= 1
            if counts.max() <= 0:
                self._free_aligned_span(zone, pfn, take)
            else:
                for j in range(take):
                    if counts[j] <= 0:
                        zone.free_block(pfn + j, 0)
            pfn += take
            n_pages -= take

    def _free_aligned_span(self, zone, pfn: int, n_pages: int) -> None:
        """Free ``[pfn, pfn + n_pages)`` as maximal aligned buddy blocks."""
        max_order = zone.max_order
        while n_pages > 0:
            align = (
                max_order if pfn == 0
                else (pfn & -pfn).bit_length() - 1
            )
            order = min(align, n_pages.bit_length() - 1, max_order)
            zone.free_block(pfn, order)
            pfn += 1 << order
            n_pages -= 1 << order

    def _pfn_valid(self, pfn: int) -> bool:
        try:
            self.mem.zone_of(pfn)
            return True
        except IndexError:
            return False

    # -- misc ---------------------------------------------------------------------------

    def _prot_flags(self, vma: Vma, write: bool) -> PteFlags:
        flags = PteFlags.USER | PteFlags.ACCESSED
        if vma.flags.writable:
            flags |= PteFlags.WRITE
        if write:
            flags |= PteFlags.DIRTY
        return flags

    def _maybe_tick(self) -> bool:
        self._faults_since_tick += 1
        if self._faults_since_tick >= self.tick_every_faults:
            self._faults_since_tick = 0
            self.policy.tick(self)
            return True
        return False

    def run_daemons(self) -> None:
        """Force an asynchronous-daemon pass (Ingens/Ranger epoch)."""
        self.policy.tick(self)

    def _install_block(self, process: Process, vma: Vma, vpn: int, pfn: int,
                       order: int) -> None:
        """Install an eager block as huge + base leaves as alignment allows."""
        remaining = order_pages(order)
        flags = self._prot_flags(vma, write=True)
        while remaining > 0:
            if (
                remaining >= HUGE_PAGES
                and vpn % HUGE_PAGES == 0
                and pfn % HUGE_PAGES == 0
            ):
                step_order = HUGE_ORDER
            else:
                step_order = 0
            process.space.install(vma, vpn, pfn, step_order, flags)
            self._account_frame(pfn, step_order, owner=process.pid)
            vpn += order_pages(step_order)
            pfn += order_pages(step_order)
            remaining -= order_pages(step_order)
        self._update_contig_bit(process.space, vma.start_vpn)

    # -- statistics --------------------------------------------------------------------

    @property
    def fault_events(self) -> list[FaultEvent]:
        """Every major fault as an event object (materialized from the log)."""
        return self.fault_log.events()

    @property
    def major_faults(self) -> int:
        """Major faults (incl. eager pre-allocation events, like ftrace)."""
        return len(self.fault_log)

    def fault_latencies_us(self) -> list[float]:
        """Latency of every major fault, in microseconds."""
        return self.fault_log.latencies_us()

    def fault_latency_sum_us(self) -> float:
        """Total fault latency without materializing the event list."""
        return self.fault_log.latency_sum_us()

    def reset_fault_stats(self) -> None:
        """Clear fault accounting (used between experiment phases)."""
        self.fault_log.clear()
        self.minor_faults = 0
        self.cow_breaks = 0
