"""Tracked engine benchmarks: ``python -m repro bench``.

Two phases, each an A/B of a reference (scalar) engine against the
batched engine that replaced it on the hot path:

1. *fault path* — the Fig. 7 allocation phase (the workload's anonymous
   ``alloc_steps`` driven through ``Kernel.touch_range``) replayed on a
   fresh machine per (policy, engine) with identical seeds.  The
   ``scalar`` kernel engine routes the reference page-at-a-time paths
   (``touch_range_scalar``, per-page Ingens promotion); ``fast`` routes
   the batched ones.  File readahead steps are excluded: they take the
   same path under both engines and would only dilute the ratio.
2. *replay* — a steady-state access trace replayed through the
   :class:`~repro.hw.mmu_sim.MmuSimulator` with the ``scalar`` and
   ``vector`` TLB engines, on a native THP state and on a virtualized
   CA+CA state.
3. *walk path* — the same A/B on a *miss-heavy* virtualized state (a
   CA+CA guest with every TLB entry splintered to 4K), where nearly
   every access drains into the per-miss scheme machines (SpOT, vRMM,
   DS — and, in the second sub-state, the mechanistic PWC/nTLB walk
   coster).  This is the path the batched walk engines target; the
   engines must agree on every scheme counter *and* on a full end-state
   digest (table contents, LRU orders, confidence values).

All phases assert that the engines agree on every observable counter
before reporting throughput, so the speedups are for identical work.
The JSON written to ``BENCH_engine.json`` is the perf-tracking artifact
CI archives per commit.

A third bench, ``python -m repro bench-suite`` (:func:`run_suite_bench`),
measures the experiment orchestrator itself: the whole suite serially,
through the process fan-out against a cold cache, and again warm — with
the serialized results asserted byte-identical across all three modes —
writing ``BENCH_suite.json``.

A fourth, ``python -m repro bench-serve``
(:func:`repro.serve.loadgen.run_serve_bench`), load-tests the serving
layer end to end — concurrent-client coalescing, warm-path latency
percentiles and throughput — writing ``BENCH_serve.json`` through the
same :func:`write_report` plumbing.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict
from pathlib import Path

from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.metrics.profiling import Profiler
from repro.sim.config import (
    BIG_SCALE,
    DEFAULT_SCALE,
    QUICK_SCALE,
    TEST_SCALE,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.vm.flags import DEFAULT_ANON

#: CI-smoke profile: the unit-test page budget per paper GB, but on a
#: machine big enough to hold a THP-bloated workload plus its input
#: files (the plain test machine OOMs under svm).
BENCH_TEST_SCALE = ScaleProfile(
    name="bench-test", bytes_per_paper_gb=TEST_SCALE.bytes_per_paper_gb,
    machine_paper_gb=(48, 48),
)

#: Scale profiles the bench accepts (includes ``test`` for CI smoke).
BENCH_SCALES = {
    "test": BENCH_TEST_SCALE,
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
    "big": BIG_SCALE,
}

#: Policies whose allocation phase the fault bench replays.  ``ingens``
#: exercises the promotion daemon (the dominant batched path); ``thp``
#: and ``ca`` exercise the huge-fault and placement paths.
FAULT_POLICIES = ("thp", "ingens", "ca")

#: Default trace length for the replay phase.
REPLAY_TRACE_LEN = 200_000

#: Each engine's replay is repeated this many times and the best run
#: kept (for both engines alike) — the shared CI boxes this runs on
#: have enough scheduler noise to swamp a single measurement.
REPLAY_REPEATS = 3


def _fault_phase_once(policy: str, engine: str, scale: ScaleProfile,
                      workload_name: str) -> dict:
    """Replay one workload's anonymous allocation phase; time the faults."""
    from repro.workloads import make_workload

    cfg = SystemConfig.from_scale(scale, engine=engine)
    machine = build_machine(policy, cfg)
    kernel = machine.kernel
    wl = make_workload(workload_name, scale)
    process = kernel.create_process(wl.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in wl.vma_plans
    ]
    steps = [s for s in wl.alloc_steps() if s.kind == "anon"]
    started = time.perf_counter()
    for step in steps:
        kernel.touch_range(
            process, vmas[step.index].start_vpn + step.start_page, step.n_pages
        )
    seconds = time.perf_counter() - started
    faults = kernel.major_faults
    summary = {
        "seconds": round(seconds, 4),
        "faults": faults,
        "faults_per_sec": round(faults / seconds, 1) if seconds > 0 else 0.0,
        # Digest of observable state, compared across engines below.
        "state": {
            "minor_faults": kernel.minor_faults,
            "tlb_shootdowns": kernel.tlb_shootdowns,
            "free_pages": machine.mem.free_pages,
            "latency_sum_us": round(sum(kernel.fault_latencies_us()), 3),
            "run_sizes": process.space.runs.sizes_desc(),
            "policy_stats": dict(sorted(vars(machine.policy.stats).items())),
        },
    }
    kernel.exit_process(process)
    return summary


def bench_fault_path(scale: ScaleProfile, workload_name: str = "svm") -> dict:
    """A/B the kernel engines over the allocation phase per policy."""
    policies: dict[str, dict] = {}
    totals = {"scalar": 0.0, "fast": 0.0}
    for policy in FAULT_POLICIES:
        runs = {
            engine: _fault_phase_once(policy, engine, scale, workload_name)
            for engine in ("scalar", "fast")
        }
        same = runs["scalar"]["state"] == runs["fast"]["state"] and (
            runs["scalar"]["faults"] == runs["fast"]["faults"]
        )
        for engine, run in runs.items():
            totals[engine] += run["seconds"]
            del run["state"]  # compared, not reported
        policies[policy] = {
            **{engine: runs[engine] for engine in runs},
            "speedup": round(
                runs["scalar"]["seconds"] / max(runs["fast"]["seconds"], 1e-9), 2
            ),
            "engines_identical": same,
        }
    return {
        "workload": workload_name,
        "policies": policies,
        "scalar_seconds": round(totals["scalar"], 4),
        "fast_seconds": round(totals["fast"], 4),
        "fault_speedup": round(totals["scalar"] / max(totals["fast"], 1e-9), 2),
        "engines_identical": all(
            p["engines_identical"] for p in policies.values()
        ),
    }


def _replay_once(view: TranslationView, trace, vma_start_vpns, wl,
                 engine: str) -> tuple[dict, float]:
    """Best-of-N MMU simulation of ``trace``; returns (counters, seconds).

    Every repetition starts from a fresh simulator, so the counters are
    deterministic; a repetition that disagrees is a real engine bug and
    is surfaced immediately.
    """
    counters: dict | None = None
    best = float("inf")
    for _ in range(REPLAY_REPEATS):
        sim = MmuSimulator(view, HardwareConfig(), engine=engine)
        started = time.perf_counter()
        result = sim.run(trace, vma_start_vpns, workload=wl)
        best = min(best, time.perf_counter() - started)
        if counters is None:
            counters = asdict(result)
        elif counters != asdict(result):
            raise AssertionError(
                f"{engine} engine is nondeterministic across repeats"
            )
    return counters, best


def bench_replay(scale: ScaleProfile, workload_name: str = "svm",
                 trace_len: int = REPLAY_TRACE_LEN) -> dict:
    """A/B the MMU-simulator engines on native and virtualized states."""
    from repro.experiments import common
    from repro.workloads import make_workload

    wl = make_workload(workload_name, scale)
    trace = wl.trace(trace_len)
    options = RunOptions(sample_every=None, exit_after=False)
    profiler = Profiler()
    states: dict[str, dict] = {}

    native = common.native_machine("thp", scale)
    rn = run_native(native, wl, options)
    native_view = TranslationView.native(rn.process)

    vm = common.virtual_machine("ca", "ca", scale)
    rv = run_virtualized(vm, wl, options)
    virt_view = TranslationView.virtualized(vm, rv.process)

    for name, view, starts in (
        ("native_thp", native_view, rn.vma_start_vpns),
        ("virt_ca_ca", virt_view, rv.vma_start_vpns),
    ):
        counters: dict[str, dict] = {}
        seconds: dict[str, float] = {}
        for engine in ("scalar", "vector"):
            counters[engine], seconds[engine] = _replay_once(
                view, trace, starts, wl, engine
            )
            profiler.add(f"{name}/{engine}", seconds[engine], events=trace_len)
        states[name] = {
            "accesses": trace_len,
            "scalar_seconds": round(seconds["scalar"], 4),
            "vector_seconds": round(seconds["vector"], 4),
            "scalar_accesses_per_sec": round(profiler.rate(f"{name}/scalar"), 1),
            "vector_accesses_per_sec": round(profiler.rate(f"{name}/vector"), 1),
            "speedup": round(
                seconds["scalar"] / max(seconds["vector"], 1e-9), 2
            ),
            "engines_identical": counters["scalar"] == counters["vector"],
        }

    native.kernel.exit_process(rn.process)
    vm.guest_exit_process(rv.process)

    speedups = [s["speedup"] for s in states.values()]
    return {
        "workload": workload_name,
        "trace_len": trace_len,
        "states": states,
        "replay_speedup": round(min(speedups), 2),
        "engines_identical": all(s["engines_identical"] for s in states.values()),
    }


def _sim_state_digest(sim: MmuSimulator) -> dict:
    """Every observable end state of one simulator, for cross-engine
    comparison: TLB sets in LRU order + counters, the SpOT table with
    per-entry offset/confidence, resident vRMM ranges, DS counters and
    (when present) the walk simulator's caches and float cycle sum."""
    tlb = sim.tlb
    digest: dict = {
        "tlb": {
            name: ([list(s) for s in level._sets], level.hits, level.misses)
            for name, level in (
                ("l1_4k", tlb.l1_4k), ("l1_2m", tlb.l1_2m), ("l2", tlb.l2)
            )
        },
        "spot": None if sim.spot is None else (
            [
                [(pc, e.offset, e.confidence) for pc, e in s.items()]
                for s in sim.spot._sets
            ],
            vars(sim.spot.stats),
        ),
        "rmm": None if sim.rmm is None else (
            list(sim.rmm._ranges.items()), vars(sim.rmm.stats)
        ),
        "ds": None if sim.ds is None else vars(sim.ds.stats),
    }
    if sim.walk_sim is not None:
        ws = sim.walk_sim
        digest["walk_sim"] = (
            vars(ws.stats),
            [list(s) for s in ws.pwc._cache._sets],
            (ws.pwc._cache.hits, ws.pwc._cache.misses),
            None if ws.ntlb is None else (
                [list(s) for s in ws.ntlb._sets], ws.ntlb.hits, ws.ntlb.misses
            ),
        )
    return digest


def _walk_once(view, trace, vma_start_vpns, wl, engine, make_walk_sim):
    """Best-of-N walk-path replay; returns (counters, digest, seconds)."""
    counters: dict | None = None
    digest: dict | None = None
    best = float("inf")
    for _ in range(REPLAY_REPEATS):
        sim = MmuSimulator(
            view,
            HardwareConfig(),
            engine=engine,
            walk_sim=make_walk_sim() if make_walk_sim else None,
        )
        started = time.perf_counter()
        result = sim.run(trace, vma_start_vpns, workload=wl)
        best = min(best, time.perf_counter() - started)
        rep = (asdict(result), _sim_state_digest(sim))
        if counters is None:
            counters, digest = rep
        elif (counters, digest) != rep:
            raise AssertionError(
                f"{engine} engine is nondeterministic across repeats"
            )
    return counters, digest, best


def bench_walk_path(scale: ScaleProfile, workload_name: str = "svm",
                    trace_len: int = REPLAY_TRACE_LEN) -> dict:
    """A/B the MMU engines on the last-level-miss (walk) path.

    The state under test is a CA+CA guest viewed with ``force_4k``:
    every TLB entry splinters to 4K, TLB reach collapses, and nearly
    every access becomes a page walk — the regime where the per-miss
    scheme machines dominate.  Two sub-states: the scheme machines
    alone, and with the mechanistic PWC/nTLB walk coster attached.
    """
    from repro.experiments import common
    from repro.hw.pwc import WalkSimulator
    from repro.workloads import make_workload

    wl = make_workload(workload_name, scale)
    trace = wl.trace(trace_len)
    options = RunOptions(sample_every=None, exit_after=False)
    vm = common.virtual_machine("ca", "ca", scale)
    rv = run_virtualized(vm, wl, options)
    view = TranslationView.virtualized(vm, rv.process, force_4k=True)

    states: dict[str, dict] = {}
    for name, make_walk_sim in (
        ("virt_4k_schemes", None),
        ("virt_4k_mechwalk", lambda: WalkSimulator(virtualized=True)),
    ):
        counters: dict[str, dict] = {}
        digests: dict[str, dict] = {}
        seconds: dict[str, float] = {}
        for engine in ("scalar", "vector"):
            counters[engine], digests[engine], seconds[engine] = _walk_once(
                view, trace, rv.vma_start_vpns, wl, engine, make_walk_sim
            )
        miss_rate = counters["scalar"]["walks"] / max(
            1, counters["scalar"]["accesses"]
        )
        states[name] = {
            "accesses": trace_len,
            "walks": counters["scalar"]["walks"],
            "miss_rate": round(miss_rate, 4),
            "scalar_seconds": round(seconds["scalar"], 4),
            "vector_seconds": round(seconds["vector"], 4),
            "scalar_walks_per_sec": round(
                counters["scalar"]["walks"] / max(seconds["scalar"], 1e-9), 1
            ),
            "vector_walks_per_sec": round(
                counters["scalar"]["walks"] / max(seconds["vector"], 1e-9), 1
            ),
            "speedup": round(
                seconds["scalar"] / max(seconds["vector"], 1e-9), 2
            ),
            "engines_identical": (
                counters["scalar"] == counters["vector"]
                and digests["scalar"] == digests["vector"]
            ),
        }

    vm.guest_exit_process(rv.process)
    speedups = [s["speedup"] for s in states.values()]
    return {
        "workload": workload_name,
        "trace_len": trace_len,
        "states": states,
        "walk_speedup": round(min(speedups), 2),
        "engines_identical": all(
            s["engines_identical"] for s in states.values()
        ),
    }


def run_bench(scale_name: str = "default", workload_name: str = "svm",
              trace_len: int = REPLAY_TRACE_LEN) -> dict:
    """Run all phases; returns the JSON-ready report."""
    scale = BENCH_SCALES[scale_name]
    started = time.time()
    fault = bench_fault_path(scale, workload_name)
    replay = bench_replay(scale, workload_name, trace_len)
    walk = bench_walk_path(scale, workload_name, trace_len)
    return {
        "bench": "engine",
        "scale": scale_name,
        "workload": workload_name,
        "python": platform.python_version(),
        "fault_path": fault,
        "replay": replay,
        "walk_path": walk,
        # Headline numbers perf tracking plots per commit.
        "fault_speedup": fault["fault_speedup"],
        "replay_speedup": replay["replay_speedup"],
        "walk_speedup": walk["walk_speedup"],
        "engines_identical": (
            fault["engines_identical"]
            and replay["engines_identical"]
            and walk["engines_identical"]
        ),
        "wall_seconds": round(time.time() - started, 1),
    }


def write_report(report: dict, out: str | Path) -> Path:
    """Write the bench report as JSON; returns the path."""
    path = Path(out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _suite_pass(scale: ScaleProfile, names: list[str], jobs: int,
                cache) -> tuple[str, float, dict]:
    """One full-suite pass; returns (canonical JSON, seconds, stats)."""
    from repro.cli import suite_plans
    from repro.experiments.serialize import to_jsonable
    from repro.sim.jobs import Executor, run_plans

    executor = Executor(jobs=jobs, cache=cache)
    started = time.perf_counter()
    entries = suite_plans(scale, names)
    results = run_plans([plan for _, _, plan in entries], executor)
    seconds = time.perf_counter() - started
    payload = {
        key: to_jsonable(result)
        for (_, key, _), result in zip(entries, results)
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return blob, seconds, asdict(executor.stats)


def run_suite_bench(
    scale_name: str = "quick",
    jobs: int | None = None,
    experiments: tuple[str, ...] | None = None,
    cache_root: str | Path | None = None,
) -> dict:
    """Orchestrator A/B/C: serial vs parallel-cold vs parallel-warm.

    The same experiment suite runs three times — serially with no cache,
    through the ``jobs``-wide fan-out against an empty cache, and again
    against the now-populated cache — and the three serialized result
    sets are asserted byte-identical before any timing is reported.

    ``cache_root`` (a scratch directory; **cleared** before the cold
    pass so cold means cold) defaults to a private temp dir.
    """
    import hashlib
    import os
    import shutil
    import tempfile

    from repro.cli import EXPERIMENTS, SCALES
    from repro.sim.cache import RunCache

    scale = SCALES[scale_name]
    names = list(experiments) if experiments else list(EXPERIMENTS)
    jobs = jobs or (os.cpu_count() or 1)
    started = time.time()
    own_tmp = cache_root is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-suite-bench-"))
        if own_tmp else Path(cache_root)
    )
    try:
        RunCache(root).clear()
        serial_blob, serial_s, serial_stats = _suite_pass(scale, names, 1, None)
        cold_blob, cold_s, cold_stats = _suite_pass(
            scale, names, jobs, RunCache(root)
        )
        warm_blob, warm_s, warm_stats = _suite_pass(
            scale, names, jobs, RunCache(root)
        )
    finally:
        if own_tmp:
            shutil.rmtree(root, ignore_errors=True)

    identical = serial_blob == cold_blob == warm_blob
    return {
        "bench": "suite",
        "scale": scale_name,
        "experiments": names,
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "modes": {
            "serial": {
                "seconds": round(serial_s, 3), "stats": serial_stats,
            },
            "parallel_cold": {
                "seconds": round(cold_s, 3), "stats": cold_stats,
                "speedup_vs_serial": round(serial_s / max(cold_s, 1e-9), 2),
            },
            "parallel_warm": {
                "seconds": round(warm_s, 3), "stats": warm_stats,
                "speedup_vs_serial": round(serial_s / max(warm_s, 1e-9), 2),
            },
        },
        # Headline numbers perf tracking plots per commit.
        "cold_speedup": round(serial_s / max(cold_s, 1e-9), 2),
        "warm_speedup": round(serial_s / max(warm_s, 1e-9), 2),
        "results_identical": identical,
        "results_sha256": hashlib.sha256(serial_blob.encode()).hexdigest(),
        "wall_seconds": round(time.time() - started, 1),
    }
