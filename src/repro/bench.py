"""Tracked engine benchmarks: ``python -m repro bench``.

Two phases, each an A/B of a reference (scalar) engine against the
batched engine that replaced it on the hot path:

1. *fault path* — the Fig. 7 allocation phase (the workload's anonymous
   ``alloc_steps`` driven through ``Kernel.touch_range``) replayed on a
   fresh machine per (policy, engine) with identical seeds.  The
   ``scalar`` kernel engine routes the reference page-at-a-time paths
   (``touch_range_scalar``, per-page Ingens promotion); ``fast`` routes
   the batched ones.  File readahead steps are excluded: they take the
   same path under both engines and would only dilute the ratio.
2. *replay* — a steady-state access trace replayed through the
   :class:`~repro.hw.mmu_sim.MmuSimulator` with the ``scalar`` and
   ``vector`` TLB engines, on a native THP state and on a virtualized
   CA+CA state.
3. *walk path* — the same A/B on a *miss-heavy* virtualized state (a
   CA+CA guest with every TLB entry splintered to 4K), where nearly
   every access drains into the per-miss scheme machines (SpOT, vRMM,
   DS — and, in the second sub-state, the mechanistic PWC/nTLB walk
   coster).  This is the path the batched walk engines target; the
   engines must agree on every scheme counter *and* on a full end-state
   digest (table contents, LRU orders, confidence values).

All phases assert that the engines agree on every observable counter
before reporting throughput, so the speedups are for identical work.
The JSON written to ``BENCH_engine.json`` is the perf-tracking artifact
CI archives per commit.

A third bench, ``python -m repro bench-suite`` (:func:`run_suite_bench`),
measures the experiment orchestrator itself across four modes: the
whole suite serially with monolithic chain cells, through the
DAG-scheduled process fan-out (stage-checkpointed chains) against a
cold two-tier cache, again warm, and once more with a fresh local L1
against the now-warm shared HTTP tier (every cell must arrive by
digest over the wire) — with the serialized results asserted
byte-identical across all four modes — writing ``BENCH_suite.json``.

A fourth, ``python -m repro bench-serve``
(:func:`repro.serve.loadgen.run_serve_bench`), load-tests the serving
layer end to end — concurrent-client coalescing, warm-path latency
percentiles and throughput — writing ``BENCH_serve.json`` through the
same :func:`write_report` plumbing.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict
from pathlib import Path

from repro.hw.mmu_sim import MmuSimulator
from repro.hw.translation import TranslationView
from repro.metrics.profiling import Profiler
from repro.sim.config import (
    BIG_SCALE,
    DEFAULT_SCALE,
    PAPER_SCALE,
    QUICK_SCALE,
    TEST_SCALE,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.sim.machine import build_machine
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.vm.flags import DEFAULT_ANON

#: CI-smoke profile: the unit-test page budget per paper GB, but on a
#: machine big enough to hold a THP-bloated workload plus its input
#: files (the plain test machine OOMs under svm).
BENCH_TEST_SCALE = ScaleProfile(
    name="bench-test", bytes_per_paper_gb=TEST_SCALE.bytes_per_paper_gb,
    machine_paper_gb=(48, 48),
)

#: Scale profiles the bench accepts (includes ``test`` for CI smoke).
BENCH_SCALES = {
    "test": BENCH_TEST_SCALE,
    "quick": QUICK_SCALE,
    "default": DEFAULT_SCALE,
    "big": BIG_SCALE,
    "paper": PAPER_SCALE,
}

#: Policies whose allocation phase the fault bench replays.  ``ingens``
#: exercises the promotion daemon (the dominant batched path); ``thp``
#: and ``ca`` exercise the huge-fault and placement paths.
FAULT_POLICIES = ("thp", "ingens", "ca")

#: Kernel engines the fault phase A/Bs, reference first.
FAULT_ENGINES = ("scalar", "fast", "columnar")

#: Wall-clock budget (seconds) the paper-tier fault phase must fit in.
PAPER_FAULT_BUDGET_S = 600.0

#: Steps of the paper-tier fault phase replayed on the reference
#: engines to project their full-run time (the full scalar run blows
#: the budget by design — that is the point of the tier).
PAPER_PROBE_STEPS = 400

#: Default trace length for the replay phase.
REPLAY_TRACE_LEN = 200_000

#: Each engine's replay is repeated this many times and the best run
#: kept (for both engines alike) — the shared CI boxes this runs on
#: have enough scheduler noise to swamp a single measurement.
REPLAY_REPEATS = 3


def _fault_phase_once(policy: str, engine: str, scale: ScaleProfile,
                      workload_name: str, max_steps: int | None = None) -> dict:
    """Replay one workload's anonymous allocation phase; time the faults.

    ``max_steps`` caps the replay (reference-engine probes at paper
    scale, CI smoke); the cap is part of the reported summary so capped
    runs are never mistaken for full ones.
    """
    from repro.workloads import make_workload

    cfg = SystemConfig.from_scale(scale, engine=engine)
    machine = build_machine(policy, cfg)
    kernel = machine.kernel
    wl = make_workload(workload_name, scale)
    process = kernel.create_process(wl.name)
    vmas = [
        kernel.mmap(process, plan.n_pages, flags=DEFAULT_ANON, name=plan.name)
        for plan in wl.vma_plans
    ]
    steps = [s for s in wl.alloc_steps() if s.kind == "anon"]
    total_steps = len(steps)
    if max_steps is not None:
        steps = steps[:max_steps]
    pages = sum(s.n_pages for s in steps)
    started = time.perf_counter()
    for step in steps:
        kernel.touch_range(
            process, vmas[step.index].start_vpn + step.start_page, step.n_pages
        )
    seconds = time.perf_counter() - started
    faults = kernel.major_faults
    summary = {
        "seconds": round(seconds, 4),
        "faults": faults,
        "faults_per_sec": round(faults / seconds, 1) if seconds > 0 else 0.0,
        "steps": len(steps),
        "total_steps": total_steps,
        "pages": pages,
        # Digest of observable state, compared across engines below.
        "state": {
            "minor_faults": kernel.minor_faults,
            "tlb_shootdowns": kernel.tlb_shootdowns,
            "free_pages": machine.mem.free_pages,
            "latency_sum_us": round(kernel.fault_latency_sum_us(), 3),
            "run_sizes": process.space.runs.sizes_desc(),
            "policy_stats": dict(sorted(vars(machine.policy.stats).items())),
        },
    }
    kernel.exit_process(process)
    return summary


def bench_fault_path(scale: ScaleProfile, workload_name: str = "svm",
                     fault_steps: int | None = None) -> dict:
    """A/B the kernel engines over the allocation phase per policy.

    All of :data:`FAULT_ENGINES` replay identical step sequences; state
    digests must agree across every pair before any speedup is
    reported.  The headline ``speedup`` is scalar/columnar (the tracked
    number); scalar/fast is kept as ``speedup_fast`` for continuity
    with earlier reports.
    """
    policies: dict[str, dict] = {}
    totals = dict.fromkeys(FAULT_ENGINES, 0.0)
    for policy in FAULT_POLICIES:
        runs = {
            engine: _fault_phase_once(
                policy, engine, scale, workload_name, max_steps=fault_steps
            )
            for engine in FAULT_ENGINES
        }
        ref = runs["scalar"]
        same = all(
            runs[e]["state"] == ref["state"] and runs[e]["faults"] == ref["faults"]
            for e in FAULT_ENGINES
        )
        for engine, run in runs.items():
            totals[engine] += run["seconds"]
            del run["state"]  # compared, not reported
        policies[policy] = {
            **{engine: runs[engine] for engine in runs},
            "speedup": round(
                runs["scalar"]["seconds"] / max(runs["columnar"]["seconds"], 1e-9), 2
            ),
            "speedup_fast": round(
                runs["scalar"]["seconds"] / max(runs["fast"]["seconds"], 1e-9), 2
            ),
            "engines_identical": same,
        }
    return {
        "workload": workload_name,
        "policies": policies,
        "scalar_seconds": round(totals["scalar"], 4),
        "fast_seconds": round(totals["fast"], 4),
        "columnar_seconds": round(totals["columnar"], 4),
        "fault_speedup": round(totals["scalar"] / max(totals["columnar"], 1e-9), 2),
        "fault_speedup_fast": round(totals["scalar"] / max(totals["fast"], 1e-9), 2),
        "engines_identical": all(
            p["engines_identical"] for p in policies.values()
        ),
    }


def bench_fault_path_paper(scale: ScaleProfile, workload_name: str = "bt",
                           policy: str = "ingens",
                           fault_steps: int | None = None,
                           budget_seconds: float = PAPER_FAULT_BUDGET_S) -> dict:
    """Paper-tier fault phase: full columnar run + reference projections.

    At face-value scale (tens of millions of base-page faults) the
    reference engines cannot finish inside ``budget_seconds``, so they
    replay only :data:`PAPER_PROBE_STEPS` steps and their full-run time
    is projected linearly from the probe's per-fault cost.  The
    columnar engine runs the whole phase (capped only by
    ``fault_steps`` in CI smoke) and is timed for real.
    """
    columnar = _fault_phase_once(
        policy, "columnar", scale, workload_name, max_steps=fault_steps
    )
    del columnar["state"]
    probe_steps = PAPER_PROBE_STEPS
    if fault_steps is not None:
        probe_steps = min(probe_steps, fault_steps)
    probes: dict[str, dict] = {}
    projected: dict[str, float] = {}
    for engine in ("scalar", "fast"):
        probe = _fault_phase_once(
            policy, engine, scale, workload_name, max_steps=probe_steps
        )
        del probe["state"]
        probes[engine] = probe
        projected[engine] = round(
            probe["seconds"] * columnar["faults"] / max(probe["faults"], 1), 1
        )
    return {
        "workload": workload_name,
        "policy": policy,
        "budget_seconds": budget_seconds,
        "columnar": columnar,
        "probes": probes,
        "scalar_projected_seconds": projected["scalar"],
        "fast_projected_seconds": projected["fast"],
        "columnar_in_budget": columnar["seconds"] <= budget_seconds,
        "scalar_in_budget": projected["scalar"] <= budget_seconds,
        "fault_speedup": round(
            projected["scalar"] / max(columnar["seconds"], 1e-9), 2
        ),
    }


def _replay_once(view: TranslationView, trace, vma_start_vpns, wl,
                 engine: str) -> tuple[dict, float]:
    """Best-of-N MMU simulation of ``trace``; returns (counters, seconds).

    Every repetition starts from a fresh simulator, so the counters are
    deterministic; a repetition that disagrees is a real engine bug and
    is surfaced immediately.
    """
    counters: dict | None = None
    best = float("inf")
    for _ in range(REPLAY_REPEATS):
        sim = MmuSimulator(view, HardwareConfig(), engine=engine)
        started = time.perf_counter()
        result = sim.run(trace, vma_start_vpns, workload=wl)
        best = min(best, time.perf_counter() - started)
        if counters is None:
            counters = asdict(result)
        elif counters != asdict(result):
            raise AssertionError(
                f"{engine} engine is nondeterministic across repeats"
            )
    return counters, best


def bench_replay(scale: ScaleProfile, workload_name: str = "svm",
                 trace_len: int = REPLAY_TRACE_LEN) -> dict:
    """A/B the MMU-simulator engines on native and virtualized states."""
    from repro.experiments import common
    from repro.workloads import make_workload

    wl = make_workload(workload_name, scale)
    trace = wl.trace(trace_len)
    options = RunOptions(sample_every=None, exit_after=False)
    profiler = Profiler()
    states: dict[str, dict] = {}

    native = common.native_machine("thp", scale)
    rn = run_native(native, wl, options)
    native_view = TranslationView.native(rn.process)

    vm = common.virtual_machine("ca", "ca", scale)
    rv = run_virtualized(vm, wl, options)
    virt_view = TranslationView.virtualized(vm, rv.process)

    for name, view, starts in (
        ("native_thp", native_view, rn.vma_start_vpns),
        ("virt_ca_ca", virt_view, rv.vma_start_vpns),
    ):
        counters: dict[str, dict] = {}
        seconds: dict[str, float] = {}
        for engine in ("scalar", "vector"):
            counters[engine], seconds[engine] = _replay_once(
                view, trace, starts, wl, engine
            )
            profiler.add(f"{name}/{engine}", seconds[engine], events=trace_len)
        states[name] = {
            "accesses": trace_len,
            "scalar_seconds": round(seconds["scalar"], 4),
            "vector_seconds": round(seconds["vector"], 4),
            "scalar_accesses_per_sec": round(profiler.rate(f"{name}/scalar"), 1),
            "vector_accesses_per_sec": round(profiler.rate(f"{name}/vector"), 1),
            "speedup": round(
                seconds["scalar"] / max(seconds["vector"], 1e-9), 2
            ),
            "engines_identical": counters["scalar"] == counters["vector"],
        }

    native.kernel.exit_process(rn.process)
    vm.guest_exit_process(rv.process)

    speedups = [s["speedup"] for s in states.values()]
    return {
        "workload": workload_name,
        "trace_len": trace_len,
        "states": states,
        "replay_speedup": round(min(speedups), 2),
        "engines_identical": all(s["engines_identical"] for s in states.values()),
    }


def _sim_state_digest(sim: MmuSimulator) -> dict:
    """Every observable end state of one simulator, for cross-engine
    comparison: TLB sets in LRU order + counters, the SpOT table with
    per-entry offset/confidence, resident vRMM ranges, DS counters,
    coalesced-TLB entries with coverage, Utopia promotion state,
    segmentation geometry/assignments and (when present) the walk
    simulator's caches and float cycle sum."""
    tlb = sim.tlb
    digest: dict = {
        "tlb": {
            name: ([list(s) for s in level._sets], level.hits, level.misses)
            for name, level in (
                ("l1_4k", tlb.l1_4k), ("l1_2m", tlb.l1_2m), ("l2", tlb.l2)
            )
        },
        "spot": None if sim.spot is None else (
            [
                [(pc, e.offset, e.confidence) for pc, e in s.items()]
                for s in sim.spot._sets
            ],
            vars(sim.spot.stats),
        ),
        "rmm": None if sim.rmm is None else (
            list(sim.rmm._ranges.items()), vars(sim.rmm.stats)
        ),
        "ds": None if sim.ds is None else vars(sim.ds.stats),
        "ctlb": None if sim.ctlb is None else (
            [list(s.items()) for s in sim.ctlb._sets],
            vars(sim.ctlb.stats),
        ),
        "utopia": None if sim.utopia is None else (
            list(sim.utopia._promoted.items()),
            list(sim.utopia._miss_counts.items()),
            sim.utopia.free_pages,
            vars(sim.utopia.stats),
        ),
        "seg": None if sim.seg is None else (
            [list(s) for s in sim.seg._segments],
            list(sim.seg._assigned.items()),
            list(sim.seg._rejected),
            vars(sim.seg.stats),
        ),
    }
    if sim.walk_sim is not None:
        ws = sim.walk_sim
        digest["walk_sim"] = (
            vars(ws.stats),
            [list(s) for s in ws.pwc._cache._sets],
            (ws.pwc._cache.hits, ws.pwc._cache.misses),
            None if ws.ntlb is None else (
                [list(s) for s in ws.ntlb._sets], ws.ntlb.hits, ws.ntlb.misses
            ),
        )
    return digest


def _walk_once(view, trace, vma_start_vpns, wl, engine, make_walk_sim):
    """Best-of-N walk-path replay; returns (counters, digest, seconds)."""
    counters: dict | None = None
    digest: dict | None = None
    best = float("inf")
    for _ in range(REPLAY_REPEATS):
        sim = MmuSimulator(
            view,
            HardwareConfig(),
            engine=engine,
            walk_sim=make_walk_sim() if make_walk_sim else None,
        )
        started = time.perf_counter()
        result = sim.run(trace, vma_start_vpns, workload=wl)
        best = min(best, time.perf_counter() - started)
        rep = (asdict(result), _sim_state_digest(sim))
        if counters is None:
            counters, digest = rep
        elif (counters, digest) != rep:
            raise AssertionError(
                f"{engine} engine is nondeterministic across repeats"
            )
    return counters, digest, best


def bench_walk_path(scale: ScaleProfile, workload_name: str = "svm",
                    trace_len: int = REPLAY_TRACE_LEN) -> dict:
    """A/B the MMU engines on the last-level-miss (walk) path.

    The state under test is a CA+CA guest viewed with ``force_4k``:
    every TLB entry splinters to 4K, TLB reach collapses, and nearly
    every access becomes a page walk — the regime where the per-miss
    scheme machines dominate.  Two sub-states: the scheme machines
    alone, and with the mechanistic PWC/nTLB walk coster attached.
    """
    from repro.experiments import common
    from repro.hw.pwc import WalkSimulator
    from repro.workloads import make_workload

    wl = make_workload(workload_name, scale)
    trace = wl.trace(trace_len)
    options = RunOptions(sample_every=None, exit_after=False)
    vm = common.virtual_machine("ca", "ca", scale)
    rv = run_virtualized(vm, wl, options)
    view = TranslationView.virtualized(vm, rv.process, force_4k=True)

    states: dict[str, dict] = {}
    for name, make_walk_sim in (
        ("virt_4k_schemes", None),
        ("virt_4k_mechwalk", lambda: WalkSimulator(virtualized=True)),
    ):
        counters: dict[str, dict] = {}
        digests: dict[str, dict] = {}
        seconds: dict[str, float] = {}
        for engine in ("scalar", "vector"):
            counters[engine], digests[engine], seconds[engine] = _walk_once(
                view, trace, rv.vma_start_vpns, wl, engine, make_walk_sim
            )
        miss_rate = counters["scalar"]["walks"] / max(
            1, counters["scalar"]["accesses"]
        )
        states[name] = {
            "accesses": trace_len,
            "walks": counters["scalar"]["walks"],
            "miss_rate": round(miss_rate, 4),
            "scalar_seconds": round(seconds["scalar"], 4),
            "vector_seconds": round(seconds["vector"], 4),
            "scalar_walks_per_sec": round(
                counters["scalar"]["walks"] / max(seconds["scalar"], 1e-9), 1
            ),
            "vector_walks_per_sec": round(
                counters["scalar"]["walks"] / max(seconds["vector"], 1e-9), 1
            ),
            "speedup": round(
                seconds["scalar"] / max(seconds["vector"], 1e-9), 2
            ),
            "engines_identical": (
                counters["scalar"] == counters["vector"]
                and digests["scalar"] == digests["vector"]
            ),
        }

    vm.guest_exit_process(rv.process)
    speedups = [s["speedup"] for s in states.values()]
    return {
        "workload": workload_name,
        "trace_len": trace_len,
        "states": states,
        "walk_speedup": round(min(speedups), 2),
        "engines_identical": all(
            s["engines_identical"] for s in states.values()
        ),
    }


def run_bench(scale_name: str = "default", workload_name: str = "svm",
              trace_len: int = REPLAY_TRACE_LEN,
              fault_steps: int | None = None) -> dict:
    """Run all phases; returns the JSON-ready report.

    The ``paper`` scale runs only the fault phase — in its
    full-columnar-plus-reference-projection form (the workload defaults
    to ``bt``, the paper's largest footprint) — because the replay/walk
    phases measure per-access MMU engines whose cost does not depend on
    the machine scale.
    """
    scale = BENCH_SCALES[scale_name]
    started = time.time()
    if scale_name == "paper":
        wl = "bt" if workload_name == "svm" else workload_name
        fault = bench_fault_path_paper(scale, wl, fault_steps=fault_steps)
        return {
            "bench": "engine",
            "scale": scale_name,
            "workload": wl,
            "python": platform.python_version(),
            "fault_path": fault,
            "fault_speedup": fault["fault_speedup"],
            "columnar_in_budget": fault["columnar_in_budget"],
            "scalar_in_budget": fault["scalar_in_budget"],
            "wall_seconds": round(time.time() - started, 1),
        }
    fault = bench_fault_path(scale, workload_name, fault_steps=fault_steps)
    replay = bench_replay(scale, workload_name, trace_len)
    walk = bench_walk_path(scale, workload_name, trace_len)
    return {
        "bench": "engine",
        "scale": scale_name,
        "workload": workload_name,
        "python": platform.python_version(),
        "fault_path": fault,
        "replay": replay,
        "walk_path": walk,
        # Headline numbers perf tracking plots per commit.
        "fault_speedup": fault["fault_speedup"],
        "replay_speedup": replay["replay_speedup"],
        "walk_speedup": walk["walk_speedup"],
        "engines_identical": (
            fault["engines_identical"]
            and replay["engines_identical"]
            and walk["engines_identical"]
        ),
        "wall_seconds": round(time.time() - started, 1),
    }


def write_report(report: dict, out: str | Path) -> Path:
    """Write the bench report as JSON; returns the path."""
    path = Path(out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _serialize_overhead(cells, results, salt: str) -> dict:
    """Pickle every unique cell result once; attribute bytes and time.

    This is the per-cell cost the parallel passes pay that the serial
    pass does not: each computed result crosses the worker-pool IPC
    boundary pickled and is pickled again into the run cache, so heavy
    result objects directly tax the cold fan-out (the historical
    sub-1x parallel-cold numbers in ``BENCH_suite.json`` were exactly
    this).  Measured outside the timed passes, on the serial pass's
    results.
    """
    import pickle

    from repro.sim import transport

    per_cell: dict[str, dict] = {}
    for c, result in zip(cells, results):
        key = c.key(salt)
        if key in per_cell:
            continue
        started = time.perf_counter()
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        seconds = time.perf_counter() - started
        per_cell[key] = {
            "cell": c.label(),
            "bytes": len(blob),
            # What the RPT1-framed path actually stores and ships for
            # the same result (the cache/tier/pool wire format).
            "framed_bytes": len(transport.dumps(result)),
            "seconds": round(seconds, 6),
        }
    ranked = sorted(per_cell.values(), key=lambda e: e["bytes"], reverse=True)
    return {
        "cells_measured": len(ranked),
        "total_bytes": sum(e["bytes"] for e in ranked),
        "total_framed_bytes": sum(e["framed_bytes"] for e in ranked),
        "total_seconds": round(sum(e["seconds"] for e in ranked), 6),
        "top_cells": ranked[:10],
    }


def _tier_stats(cache) -> dict | None:
    """The shared-tier traffic one pass generated (None when untiered)."""
    if cache is None or cache.tier is None:
        return None
    return {
        "hits": cache.tier_hits,
        "misses": cache.tier_misses,
        "stores": cache.tier_stores,
        "errors": cache.tier_errors,
    }


def _suite_pass(scale: ScaleProfile, names: list[str], jobs: int,
                cache, staged: bool | None = None,
                measure_serialize: bool = False
                ) -> tuple[str, float, dict, dict | None]:
    """One full-suite pass; returns (canonical JSON, seconds, stats,
    serialize overhead or None).

    Cells run through one flat :meth:`Executor.run` batch and assemble
    per plan — the exact :func:`repro.sim.jobs.run_plans` semantics,
    inlined so the flat cell/result pairing stays available for the
    (untimed) serialize-overhead measurement afterwards.  ``staged``
    picks checkpointed chain stages vs monolithic chain cells for the
    experiments that support both.
    """
    from repro.cli import suite_plans
    from repro.experiments.serialize import to_jsonable
    from repro.sim.jobs import Executor

    executor = Executor(jobs=jobs, cache=cache)
    try:
        started = time.perf_counter()
        entries = suite_plans(scale, names, staged=staged)
        plans = [plan for _, _, plan in entries]
        flat = [c for plan in plans for c in plan.cells]
        cell_results = executor.run(flat)
        results = []
        offset = 0
        for plan in plans:
            n = len(plan.cells)
            results.append(plan.assemble(cell_results[offset:offset + n]))
            offset += n
        seconds = time.perf_counter() - started
    finally:
        executor.close()
    payload = {
        key: to_jsonable(result)
        for (_, key, _), result in zip(entries, results)
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    serialize = (
        _serialize_overhead(flat, cell_results, executor._salt)
        if measure_serialize else None
    )
    stats = asdict(executor.stats)
    tier = _tier_stats(cache)
    if tier is not None:
        stats["tier"] = tier
    return blob, seconds, stats, serialize


def run_suite_bench(
    scale_name: str = "quick",
    jobs: int | None = None,
    experiments: tuple[str, ...] | None = None,
    cache_root: str | Path | None = None,
) -> dict:
    """Orchestrator A/B/C/D: serial vs parallel-cold vs warm vs two-tier.

    The same experiment suite runs four times and the four serialized
    result sets are asserted byte-identical before any timing is
    reported:

    - ``serial`` — monolithic chain cells, one process, no cache: the
      baseline the speedups are against.
    - ``parallel_cold`` — stage-checkpointed chains through the
      ``jobs``-wide DAG fan-out, empty local L1, write-through to a
      live shared HTTP tier (a real in-process ``repro serve``).
    - ``parallel_warm`` — the same L1 again, now populated.
    - ``two_tier_cold`` — a **fresh, empty** local L1 against the warm
      shared tier: every cell must arrive by digest over the wire
      (the second-worker / resumed-suite scenario), so its ``tier``
      hit count is the federation proof CI checks.

    ``cache_root`` (a scratch directory; **cleared** before the cold
    pass so cold means cold) defaults to a private temp dir.
    """
    import hashlib
    import os
    import shutil
    import tempfile

    from repro.cli import EXPERIMENTS, SCALES
    from repro.serve.loadgen import ServerThread
    from repro.sim.cache import HttpCacheTier, RunCache

    scale = SCALES[scale_name]
    names = list(experiments) if experiments else list(EXPERIMENTS)
    cpus = os.cpu_count() or 1
    jobs = jobs or cpus
    started = time.time()
    own_tmp = cache_root is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-suite-bench-"))
        if own_tmp else Path(cache_root)
    )
    try:
        for sub in ("shared", "l1", "l1-fresh"):
            RunCache(root / sub).clear()
        serial_blob, serial_s, serial_stats, serialize = _suite_pass(
            scale, names, 1, None, staged=False, measure_serialize=True
        )
        with ServerThread(cache=RunCache(root / "shared")) as server:
            url = f"http://127.0.0.1:{server.port}"

            def l1(sub: str) -> RunCache:
                return RunCache(root / sub, tier=HttpCacheTier(url))

            cold_blob, cold_s, cold_stats, _ = _suite_pass(
                scale, names, jobs, l1("l1")
            )
            warm_blob, warm_s, warm_stats, _ = _suite_pass(
                scale, names, jobs, l1("l1")
            )
            tier_blob, tier_s, tier_stats, _ = _suite_pass(
                scale, names, jobs, l1("l1-fresh")
            )
    finally:
        if own_tmp:
            shutil.rmtree(root, ignore_errors=True)

    identical = serial_blob == cold_blob == warm_blob == tier_blob
    assert serialize is not None
    serialize["share_of_cold"] = round(
        serialize["total_seconds"] / max(cold_s, 1e-9), 4
    )
    return {
        "bench": "suite",
        "scale": scale_name,
        "experiments": names,
        "jobs": jobs,
        "cpus": cpus,
        "python": platform.python_version(),
        # The cold gate needs >= 2 cores to mean anything; CI reads
        # this note instead of failing single-core runners.
        "parallel_gate_meaningful": cpus >= 2,
        "modes": {
            "serial": {
                "seconds": round(serial_s, 3), "stats": serial_stats,
            },
            "parallel_cold": {
                "seconds": round(cold_s, 3), "stats": cold_stats,
                "speedup_vs_serial": round(serial_s / max(cold_s, 1e-9), 2),
            },
            "parallel_warm": {
                "seconds": round(warm_s, 3), "stats": warm_stats,
                "speedup_vs_serial": round(serial_s / max(warm_s, 1e-9), 2),
            },
            "two_tier_cold": {
                "seconds": round(tier_s, 3), "stats": tier_stats,
                "speedup_vs_serial": round(serial_s / max(tier_s, 1e-9), 2),
            },
        },
        # Per-cell result-pickling cost: what each parallel worker pays
        # returning results over IPC and what every cache put re-pays.
        "serialize": serialize,
        # Headline numbers perf tracking plots per commit.
        "cold_speedup": round(serial_s / max(cold_s, 1e-9), 2),
        "warm_speedup": round(serial_s / max(warm_s, 1e-9), 2),
        "two_tier_speedup": round(serial_s / max(tier_s, 1e-9), 2),
        # Federation proof: a fresh L1 pulled everything from the tier.
        "two_tier_computed": tier_stats["computed"],
        "two_tier_hits": tier_stats.get("tier", {}).get("hits", 0),
        "results_identical": identical,
        "results_sha256": hashlib.sha256(serial_blob.encode()).hexdigest(),
        "wall_seconds": round(time.time() - started, 1),
    }
