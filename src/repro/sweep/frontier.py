"""Metric extraction and exact Pareto frontiers for sweep results.

Each grid point's two cell results — a :class:`~repro.sim.results
.RunResult` (bloat, contiguity, run sizes) and the
:class:`~repro.hw.mmu_sim.MmuSimResult` list (TLB counters, scheme
overheads) — reduce to one plain metrics dict.  The frontier is the
paper's trade-off made queryable: **translation overhead** (the
scheme's Table IV model output, fraction of ideal execution time)
against **memory bloat** (frames allocated beyond what the workload
touched, fraction of touched), both minimized.

Everything here returns plain dicts/lists of JSON primitives with
deterministic ordering, so a sweep body serialized with
``json.dumps(sort_keys=True)`` is byte-identical however the cells
were scheduled.
"""

from __future__ import annotations

from typing import Sequence

from repro.hw.walk import WalkLatencyModel
from repro.metrics.perf_model import WalkCosts
from repro.sweep.grid import GridPoint

#: CDF resolution: coverage is reported at these mapping counts (the
#: paper's "99% coverage needs N mappings" axis, log-spaced).
CDF_MAPPING_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def walk_costs() -> WalkCosts:
    """The Table IV walk-cost model shared by every sweep point."""
    return WalkLatencyModel().walk_costs()


def point_metrics(point: GridPoint, native, sims,
                  costs: WalkCosts | None = None) -> dict:
    """Reduce one grid point's cell results to a flat metrics dict.

    ``native`` is the RunResult of the placement run; ``sims`` the
    MmuSimResult list of the simulation cell (the sweep cell requests a
    single default-granularity view).  The scheme axis selects which
    overhead column to read; every other metric is scheme-independent.
    """
    sim = sims[0]
    overheads = sim.overheads(costs or walk_costs())
    if point.scheme not in overheads:
        raise KeyError(f"scheme {point.scheme!r} not in {sorted(overheads)}")
    touched = max(1, native.touched_pages)
    metrics = {
        "point": point.as_dict(),
        "label": point.label,
        "overhead": _r(overheads[point.scheme]),
        "overheads": {k: _r(v) for k, v in sorted(overheads.items())},
        "bloat_pages": int(native.bloat_pages),
        "bloat_fraction": _r(native.bloat_pages / touched),
        "touched_pages": int(native.touched_pages),
        "resident_pages": int(native.resident_pages),
        "coverage_32": _r(native.final.coverage_32),
        "coverage_128": _r(native.final.coverage_128),
        "mappings_99": int(native.final.mappings_99),
        "total_runs": int(native.final.total_runs),
        "walks": int(sim.walks),
        "accesses": int(sim.accesses),
        "miss_rate": _r(sim.miss_rate),
    }
    if point.scheme == "spot":
        metrics["spot_breakdown"] = {
            k: _r(v) for k, v in sorted(sim.spot_breakdown().items())
        }
    walks = max(1, sim.walks)
    if point.scheme == "ctlb":
        metrics["ctlb_coverage"] = _r(1.0 - sim.ctlb_uncovered / walks)
    elif point.scheme == "utopia":
        metrics["utopia_rest_fraction"] = _r(sim.utopia_rest / walks)
    elif point.scheme == "seg":
        metrics["seg_coverage"] = _r(1.0 - sim.seg_outside / walks)
    return metrics


def _r(value: float, digits: int = 9) -> float:
    """Round a float for stable JSON (kills 1e-17 scheduling noise
    without losing real resolution — overheads live around 1e-4..1)."""
    return round(float(value), digits)


def pareto_frontier(metrics: Sequence[dict],
                    x: str = "overhead",
                    y: str = "bloat_fraction") -> list[dict]:
    """The exact non-dominated subset, minimizing ``x`` and ``y``.

    A point is dominated when some other point is no worse on both
    objectives and strictly better on at least one.  Exactly-equal
    points are mutually non-dominating, so duplicates all survive —
    the frontier reports *configurations*, not just coordinates.
    Returned in ascending (x, y, label) order.  The dominance test is
    the literal pairwise definition: grids cap at 512 points, so
    exactness beats cleverness.
    """
    ordered = sorted(metrics, key=lambda m: (m[x], m[y], m["label"]))
    return [
        m for m in ordered
        if not any(
            q[x] <= m[x] and q[y] <= m[y]
            and (q[x] < m[x] or q[y] < m[y])
            for q in ordered
        )
    ]


def contiguity_cdf(native) -> list[dict]:
    """Coverage CDF of a run's final mapping sizes.

    ``native.run_sizes`` is the final mapping-run size list (pages,
    descending); the CDF answers "what fraction of the footprint do the
    K largest mappings cover" at the fixed K grid — the queryable form
    of the paper's 99%-coverage metric.
    """
    sizes = sorted((int(s) for s in native.run_sizes), reverse=True)
    footprint = max(1, int(native.touched_pages))
    out = []
    covered = 0
    k = 0
    for count in CDF_MAPPING_COUNTS:
        while k < len(sizes) and k < count:
            covered += sizes[k]
            k += 1
        out.append({
            "mappings": count,
            "coverage": _r(min(1.0, covered / footprint)),
        })
        if k >= len(sizes) and covered >= footprint:
            break
    return out


def walk_cycle_summary(sims, costs: WalkCosts | None = None) -> dict:
    """Walk-path cost summary of one simulation cell (plain dict)."""
    sim = sims[0]
    model_costs = costs or walk_costs()
    summary = {
        "accesses": int(sim.accesses),
        "l1_hits": int(sim.l1_hits),
        "l2_hits": int(sim.l2_hits),
        "walks": int(sim.walks),
        "miss_rate": _r(sim.miss_rate),
        "native_thp_walk_cycles": _r(model_costs.native_thp),
        "native_4k_walk_cycles": _r(model_costs.native_4k),
        "nested_thp_walk_cycles": _r(model_costs.nested_thp),
        "nested_4k_walk_cycles": _r(model_costs.nested_4k),
    }
    if sim.measured_avg_walk_cycles is not None:
        summary["measured_avg_walk_cycles"] = _r(
            sim.measured_avg_walk_cycles
        )
    return summary
