"""Dependency-free HTML/SVG rendering for the sweep explorer page.

``GET /explorer`` serves the output of :func:`render_explorer`: one
self-contained HTML document (no external scripts, stylesheets, fonts
or images — everything inline, nothing third-party) showing each known
sweep's state and, for finished sweeps, the overhead-vs-bloat scatter
with the Pareto frontier drawn as a step line.  The page is static
per render; refreshing re-reads the server's sweep registry.
"""

from __future__ import annotations

import html
from typing import Sequence

WIDTH = 640
HEIGHT = 400
MARGIN = 52

#: Scheme → plot color (SVG named colors only; no palette dependency).
SCHEME_COLORS = {
    "paging": "#888888",
    "spot": "#1f77b4",
    "vrmm": "#2ca02c",
    "ds": "#d62728",
    "ctlb": "#9467bd",
    "utopia": "#ff7f0e",
    "seg": "#8c564b",
}

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
td, th { border: 1px solid #ccd; padding: 0.25rem 0.6rem; text-align: left; }
code { background: #f0f0f5; padding: 0 0.25rem; }
.meta { color: #667; font-size: 0.85rem; }
svg { background: #fcfcff; border: 1px solid #dde; }
"""


def _fmt(value: float) -> str:
    """Tick/tooltip number format: short, locale-free."""
    return f"{value:.4g}"


def _scale(value: float, lo: float, hi: float, out_lo: float,
           out_hi: float) -> float:
    span = hi - lo
    if span <= 0:
        return (out_lo + out_hi) / 2.0
    return out_lo + (value - lo) / span * (out_hi - out_lo)


def svg_scatter(cells: Sequence[dict], frontier: Sequence[dict],
                x: str = "overhead", y: str = "bloat_fraction",
                width: int = WIDTH, height: int = HEIGHT) -> str:
    """Overhead-vs-bloat scatter with the frontier step line, as SVG.

    Every cell is a dot colored by scheme; frontier members get a ring
    and the frontier itself a staircase polyline (the set of points no
    configuration dominates).  Axes carry min/mid/max ticks.
    """
    if not cells:
        return ("<svg width='320' height='60'><text x='10' y='35'>"
                "no cells</text></svg>")
    xs = [c[x] for c in cells]
    ys = [c[y] for c in cells]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = (x_hi - x_lo) * 0.06 or max(abs(x_hi), 1e-6) * 0.06
    y_pad = (y_hi - y_lo) * 0.06 or max(abs(y_hi), 1e-6) * 0.06
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def px(v: float) -> float:
        return _scale(v, x_lo, x_hi, MARGIN, width - 16)

    def py(v: float) -> float:
        return _scale(v, y_lo, y_hi, height - MARGIN, 16)

    parts = [
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='overhead vs bloat Pareto scatter'>",
        f"<line x1='{MARGIN}' y1='{height - MARGIN}' x2='{width - 16}' "
        f"y2='{height - MARGIN}' stroke='#99a'/>",
        f"<line x1='{MARGIN}' y1='16' x2='{MARGIN}' "
        f"y2='{height - MARGIN}' stroke='#99a'/>",
    ]
    for frac in (0.0, 0.5, 1.0):
        xv = x_lo + (x_hi - x_lo) * frac
        yv = y_lo + (y_hi - y_lo) * frac
        parts.append(
            f"<text x='{px(xv):.1f}' y='{height - MARGIN + 16}' "
            f"font-size='11' text-anchor='middle'>{_fmt(xv)}</text>"
        )
        parts.append(
            f"<text x='{MARGIN - 6}' y='{py(yv):.1f}' font-size='11' "
            f"text-anchor='end' dominant-baseline='middle'>{_fmt(yv)}</text>"
        )
    parts.append(
        f"<text x='{(MARGIN + width) / 2:.0f}' y='{height - 8}' "
        f"font-size='12' text-anchor='middle'>{html.escape(x)}</text>"
    )
    parts.append(
        f"<text x='14' y='{(height - MARGIN) / 2:.0f}' font-size='12' "
        f"text-anchor='middle' transform='rotate(-90 14 "
        f"{(height - MARGIN) / 2:.0f})'>{html.escape(y)}</text>"
    )

    if frontier:
        # Staircase through the frontier: vertical-then-horizontal so
        # the line bounds the dominated region from below-left.
        pts = sorted(((f[x], f[y]) for f in frontier))
        d = [f"M {px(pts[0][0]):.1f} {py(pts[0][1]):.1f}"]
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            d.append(f"L {px(x1):.1f} {py(y0):.1f}")
            d.append(f"L {px(x1):.1f} {py(y1):.1f}")
        parts.append(
            f"<path d='{' '.join(d)}' fill='none' stroke='#d62728' "
            f"stroke-width='1.5' stroke-dasharray='4 3'/>"
        )

    frontier_labels = {f["label"] for f in frontier}
    for c in sorted(cells, key=lambda m: m["label"]):
        color = SCHEME_COLORS.get(c["point"]["scheme"], "#555")
        cx, cy = px(c[x]), py(c[y])
        title = (f"{c['label']}: {x}={_fmt(c[x])} {y}={_fmt(c[y])}")
        on_front = c["label"] in frontier_labels
        if on_front:
            parts.append(
                f"<circle cx='{cx:.1f}' cy='{cy:.1f}' r='7' fill='none' "
                f"stroke='#d62728' stroke-width='1.5'/>"
            )
        parts.append(
            f"<circle cx='{cx:.1f}' cy='{cy:.1f}' r='3.5' fill='{color}'>"
            f"<title>{html.escape(title)}</title></circle>"
        )
    legend_y = 24
    for scheme, color in SCHEME_COLORS.items():
        parts.append(
            f"<circle cx='{width - 120}' cy='{legend_y}' r='4' "
            f"fill='{color}'/>"
            f"<text x='{width - 110}' y='{legend_y + 4}' font-size='11'>"
            f"{scheme}</text>"
        )
        legend_y += 16
    parts.append("</svg>")
    return "".join(parts)


def _sweep_section(entry: dict) -> str:
    """One sweep's block: header, state table, scatter + frontier list."""
    sid = html.escape(str(entry.get("id", "?")))
    state = html.escape(str(entry.get("state", "?")))
    out = [f"<h2>sweep <code>{sid}</code> <span class='meta'>"
           f"[{state}]</span></h2>"]
    status = entry.get("status") or {}
    if status:
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(status.get("states", {}).items())
        )
        out.append(
            f"<p class='meta'>{status.get('points', '?')} points over "
            f"{status.get('unique_cells', '?')} unique cells "
            f"({html.escape(counts)})</p>"
        )
    outcome = entry.get("outcome")
    if not outcome:
        out.append("<p class='meta'>no results yet — refresh to update."
                   "</p>")
        return "".join(out)
    out.append(svg_scatter(outcome["cells"], outcome["frontier"]))
    out.append("<table><tr><th>frontier point</th><th>overhead</th>"
               "<th>bloat fraction</th><th>99% mappings</th></tr>")
    for f in outcome["frontier"]:
        out.append(
            f"<tr><td><code>{html.escape(f['label'])}</code></td>"
            f"<td>{_fmt(f['overhead'])}</td>"
            f"<td>{_fmt(f['bloat_fraction'])}</td>"
            f"<td>{f['mappings_99']}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def render_explorer(sweeps: Sequence[dict]) -> str:
    """The full ``GET /explorer`` document (self-contained HTML)."""
    body = ["<h1>sweep explorer</h1>"]
    if not sweeps:
        body.append(
            "<p>No sweeps yet. Submit one:</p>"
            "<pre>curl -sS -X POST http://HOST/v1/sweep -d '"
            '{"policies": ["thp", "ca"], "workloads": ["svm"]}'
            "'</pre>"
        )
    for entry in sweeps:
        body.append(_sweep_section(entry))
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>sweep explorer</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(body) + "</body></html>"
    )
