"""Declarative sweep grids over policy × scheme × workload.

A :class:`SweepSpec` names axis *values* — placement policies, hardware
translation schemes, workloads — plus the shared knobs (scale profile,
trace length, seed, memory-hog pressure) and optional include/exclude
filters.  It expands into :class:`GridPoint`\\ s, and each point maps
onto the **existing** content-addressed run cells
(:func:`repro.experiments.common.run_cell_native` for
bloat/contiguity, :func:`~repro.experiments.common.run_cell_native_sim`
for the TLB/scheme simulation), so:

- all schemes of one (policy, workload) pair share the *same* two
  cells — the MMU simulator runs every scheme machine in one pass,
  exactly like fig 13 reads SpOT/vRMM/DS off one simulation;
- sweep cells are shared verbatim with the figure experiments (the
  native grid of fig 11 / Table V / Table VI) and with every other
  sweep through the run cache, keyed by the same spec digests;
- a repeated or overlapping sweep recomputes nothing.

Axis values are validated eagerly against the simulator's registries
(:func:`repro.policies.make_policy` names, the workload suite, the CLI
scale table, :data:`SCHEMES`), so a bad request fails before any work
is admitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import ConfigError
from repro.sim.cache import encode_spec, spec_digest
from repro.sim.config import HardwareConfig
from repro.sim.jobs import Cell, cell
from repro.sim.runner import RunOptions

#: Hardware translation schemes a sweep can place on the frontier.
#: ``paging`` is the baseline radix walk (THP-grained nested/native
#: paging); spot/vrmm/ds are the paper's L2-miss-path schemes, and
#: ctlb/utopia/seg the related-work extensions (run-coalescing TLB,
#: Utopia hybrid mappings, segmentation baseline).
SCHEMES = ("paging", "spot", "vrmm", "ds", "ctlb", "utopia", "seg")

#: Default scheme axis: the paper's own comparison.  The related-work
#: schemes are default-off on the axis — requests opt in explicitly —
#: so the stock grid (and its cache digests/CI gates) keeps its size;
#: either way every scheme reads its column off the same shared
#: simulation cells.
BASE_SCHEMES = ("paging", "spot", "vrmm", "ds")

#: Software placement policies accepted on the policy axis (the
#: :func:`repro.policies.make_policy` registry, minus the ``default``
#: alias so one spelling has one digest).
POLICIES = ("thp", "ca", "eager", "ingens", "ranger", "ideal")

#: Workloads accepted on the workload axis (Table III suite + extras).
WORKLOADS = ("svm", "pagerank", "hashjoin", "xsbench", "bt",
             "tlbfriendly", "gups")

#: Default trace length per simulated point (shorter than fig 13's
#: 200k: sweeps trade per-point resolution for grid breadth).
DEFAULT_TRACE_LEN = 50_000

#: Hard cap on expanded grid points per sweep — admission control for
#: the grid itself, not just the job queue.
MAX_POINTS = 512


class SweepValidationError(ConfigError):
    """The sweep spec names an axis value the registries don't have."""


@dataclass(frozen=True)
class GridPoint:
    """One (policy, scheme, workload) coordinate of an expanded grid."""

    policy: str
    scheme: str
    workload: str

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.policy}/{self.scheme}"

    def as_dict(self) -> dict:
        return {"policy": self.policy, "scheme": self.scheme,
                "workload": self.workload}

    def matches(self, clause: tuple[tuple[str, str], ...]) -> bool:
        """True when every (axis, value) pair of a filter clause holds."""
        return all(getattr(self, axis) == value for axis, value in clause)


def _clauses(raw: Any, what: str) -> tuple[tuple[tuple[str, str], ...], ...]:
    """Normalize filter clauses: a list of {axis: value} mappings.

    Each clause is stored as a sorted tuple of (axis, value) pairs so
    the spec stays hashable and digests canonically.
    """
    if raw is None:
        return ()
    if not isinstance(raw, (list, tuple)):
        raise SweepValidationError(
            f"{what} must be a list of axis filters, got {type(raw).__name__}"
        )
    out = []
    for entry in raw:
        if isinstance(entry, dict):
            pairs = entry.items()
        elif isinstance(entry, (list, tuple)):
            pairs = entry
        else:
            raise SweepValidationError(
                f"each {what} filter must be an object like "
                f'{{"policy": "ca"}}, got {entry!r}'
            )
        clause = []
        for axis, value in pairs:
            if axis not in ("policy", "scheme", "workload"):
                raise SweepValidationError(
                    f"{what} filter axis must be policy/scheme/workload, "
                    f"got {axis!r}"
                )
            clause.append((str(axis), str(value)))
        if not clause:
            raise SweepValidationError(f"empty {what} filter clause")
        out.append(tuple(sorted(clause)))
    return tuple(out)


def _axis(values: Any, allowed: Sequence[str], what: str) -> tuple[str, ...]:
    """Validate one axis: known values, no duplicates, non-empty."""
    if isinstance(values, str):
        values = [v for v in values.replace(",", " ").split() if v]
    if not isinstance(values, (list, tuple)) or not values:
        raise SweepValidationError(
            f"{what} must be a non-empty list, got {values!r}"
        )
    seen: list[str] = []
    for value in values:
        name = str(value).lower()
        if name not in allowed:
            singular = {"policies": "policy", "schemes": "scheme",
                        "workloads": "workload"}.get(what, what)
            raise SweepValidationError(
                f"unknown {singular} {value!r}; "
                f"choose from {sorted(allowed)}"
            )
        if name not in seen:
            seen.append(name)
    return tuple(seen)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep over the policy × scheme × workload grid.

    ``include`` (when non-empty) keeps only points matching at least
    one clause; ``exclude`` then drops points matching any clause.
    Each clause is a conjunction of (axis, value) pairs.
    """

    policies: tuple[str, ...]
    schemes: tuple[str, ...] = BASE_SCHEMES
    workloads: tuple[str, ...] = ("svm", "pagerank", "hashjoin")
    scale: str = "quick"
    trace_len: int = DEFAULT_TRACE_LEN
    seed: int = 0
    hog: float = 0.0
    include: tuple[tuple[tuple[str, str], ...], ...] = ()
    exclude: tuple[tuple[tuple[str, str], ...], ...] = ()
    hw: HardwareConfig = field(default_factory=HardwareConfig)

    @classmethod
    def from_request(cls, data: Any) -> "SweepSpec":
        """Build and validate a spec from a JSON request body."""
        if not isinstance(data, dict):
            raise SweepValidationError(
                'sweep body must be an object like {"policies": [...], '
                '"schemes": [...], "workloads": [...]}'
            )
        from repro.cli import SCALES

        known = {
            "policies", "schemes", "workloads", "scale", "trace_len",
            "seed", "hog", "include", "exclude",
        }
        unknown = set(data) - known
        if unknown:
            raise SweepValidationError(
                f"unknown sweep field(s) {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        scale = str(data.get("scale", "quick"))
        if scale not in SCALES:
            raise SweepValidationError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
        try:
            trace_len = int(data.get("trace_len", DEFAULT_TRACE_LEN))
            seed = int(data.get("seed", 0))
            hog = float(data.get("hog", 0.0))
        except (TypeError, ValueError) as exc:
            raise SweepValidationError(
                f"trace_len/seed must be integers and hog a number: {exc}"
            ) from None
        if not 0 < trace_len <= 5_000_000:
            raise SweepValidationError(
                f"trace_len must be in (0, 5000000], got {trace_len}"
            )
        if not 0.0 <= hog < 1.0:
            raise SweepValidationError(f"hog must be in [0, 1), got {hog}")
        spec = cls(
            policies=_axis(data.get("policies", ("thp", "ca")),
                           POLICIES, "policies"),
            schemes=_axis(data.get("schemes", BASE_SCHEMES), SCHEMES,
                          "schemes"),
            workloads=_axis(data.get("workloads", ("svm", "pagerank",
                                                   "hashjoin")),
                            WORKLOADS, "workloads"),
            scale=scale,
            trace_len=trace_len,
            seed=seed,
            hog=hog,
            include=_clauses(data.get("include"), "include"),
            exclude=_clauses(data.get("exclude"), "exclude"),
        )
        points = spec.points()
        if not points:
            raise SweepValidationError(
                "sweep filters exclude every grid point"
            )
        if len(points) > MAX_POINTS:
            raise SweepValidationError(
                f"sweep expands to {len(points)} points, "
                f"above the {MAX_POINTS}-point cap"
            )
        return spec

    # -- expansion -----------------------------------------------------

    def points(self) -> list[GridPoint]:
        """Expand the axes through the filters, in canonical order."""
        out = []
        for workload in self.workloads:
            for policy in self.policies:
                for scheme in self.schemes:
                    p = GridPoint(policy=policy, scheme=scheme,
                                  workload=workload)
                    if self.include and not any(
                        p.matches(c) for c in self.include
                    ):
                        continue
                    if any(p.matches(c) for c in self.exclude):
                        continue
                    out.append(p)
        return out

    def _scale_profile(self):
        from repro.cli import SCALES

        return SCALES[self.scale]

    def cells_for(self, point: GridPoint) -> tuple[Cell, Cell]:
        """The (native run, MMU sim) cells one grid point needs.

        The scheme axis does not appear in either cell's spec: every
        scheme of a (policy, workload) pair reads a different counter
        off the same simulation, so the cells — and their cache
        entries — are shared across the whole scheme axis and with the
        figure experiments that sweep the same grid.
        """
        scale = self._scale_profile()
        native = cell(
            "repro.experiments.common:run_cell_native",
            workload=point.workload,
            policy=point.policy,
            scale=scale,
            seed=self.seed,
            options=RunOptions(sample_every=None),
            hog=self.hog,
        )
        sim = cell(
            "repro.experiments.common:run_cell_native_sim",
            workload=point.workload,
            policy=point.policy,
            scale=scale,
            hw=self.hw,
            trace_len=self.trace_len,
        )
        return native, sim

    def expand(self) -> tuple[list[GridPoint], list[Cell], list[tuple[int, int]]]:
        """``(points, unique_cells, per-point (native, sim) indices)``.

        ``unique_cells`` is deduplicated by content (scheme fan-out and
        repeated coordinates collapse), so ``len(unique_cells)`` is the
        number of distinct simulations the grid can ever cost.
        """
        points = self.points()
        cells: list[Cell] = []
        index: dict[str, int] = {}
        refs: list[tuple[int, int]] = []

        def intern(c: Cell) -> int:
            key = json.dumps(encode_spec(c.spec()), sort_keys=True,
                             separators=(",", ":"))
            i = index.get(key)
            if i is None:
                i = index[key] = len(cells)
                cells.append(c)
            return i

        for point in points:
            native, sim = self.cells_for(point)
            refs.append((intern(native), intern(sim)))
        return points, cells, refs

    # -- identity ------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-data form (the digest input and the result echo)."""
        return {
            "policies": list(self.policies),
            "schemes": list(self.schemes),
            "workloads": list(self.workloads),
            "scale": self.scale,
            "trace_len": self.trace_len,
            "seed": self.seed,
            "hog": self.hog,
            "include": [[list(pair) for pair in clause]
                        for clause in self.include],
            "exclude": [[list(pair) for pair in clause]
                        for clause in self.exclude],
        }

    def digest(self, salt: str) -> str:
        """Content address of the whole sweep under a code salt.

        Covers the expanded cell specs (not just the axis lists), so
        two spellings that expand to the same work coalesce, and any
        change to the underlying cell definitions shifts the digest
        with the cache keys.
        """
        _points, cells, refs = self.expand()
        return spec_digest({
            "sweep": self.as_dict(),
            "cells": [c.spec() for c in cells],
            "refs": [list(r) for r in refs],
        }, salt)


def iter_point_cells(
    points: Iterable[GridPoint], refs: Sequence[tuple[int, int]]
) -> Iterable[tuple[GridPoint, tuple[int, int]]]:
    """Pair points with their cell indices (convenience for runners)."""
    return zip(points, refs)
