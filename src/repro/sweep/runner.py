"""Sweep execution: fan a grid through the DAG executor, track state.

A :class:`SweepRun` owns one expanded grid.  It drives the unique
cells through a shared :class:`~repro.sim.jobs.Executor` — the same
warm process pool and (tiered) run cache the serve layer and the CLI
already use, so repeated and overlapping sweeps recompute nothing —
in deterministic **waves** of grid points.  After each wave the run:

- marks every point of the wave ``done`` and emits one event per
  point carrying its full metrics dict (the serve layer forwards
  these as NDJSON lines);
- checks the cancel flag, so a cancelled sweep stops at the next wave
  boundary with every completed cell already persisted in the run
  cache.  Calling :meth:`run` again *resumes*: finished waves replay
  from the cache, only the unfinished suffix computes.

Results are assembled into a plain-dict outcome whose canonical JSON
is byte-identical between serial (``jobs=1``) and parallel execution:
cell results are pure functions of their specs and all ordering below
is input-order, never completion-order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.jobs import Executor
from repro.sweep import frontier as frontier_mod
from repro.sweep.grid import GridPoint, SweepSpec

#: Grid points per executor wave.  Large enough to keep a multi-process
#: pool saturated (each point carries up to two cells), small enough
#: that cancel takes effect promptly.
WAVE_POINTS = 16

#: Per-point lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"


class SweepCancelled(RuntimeError):
    """The sweep was cancelled before completing (resumable)."""


@dataclass
class SweepRun:
    """One sweep's execution state machine.

    Parameters
    ----------
    spec:
        The validated :class:`~repro.sweep.grid.SweepSpec`.
    executor:
        Shared cell executor (pool, cache, chaos injector all ride it).
    on_event:
        Optional callback receiving each progress event dict (the
        serve layer marshals these onto its event loop as NDJSON).
    """

    spec: SweepSpec
    executor: Executor
    on_event: Callable[[dict], None] | None = None
    wave_points: int = WAVE_POINTS

    points: list[GridPoint] = field(init=False)
    states: list[str] = field(init=False)
    metrics: list[dict | None] = field(init=False)
    sources: list[str | None] = field(init=False)

    def __post_init__(self) -> None:
        self.points, self._cells, self._refs = self.spec.expand()
        self.states = [PENDING] * len(self.points)
        self.metrics = [None] * len(self.points)
        self.sources = [None] * len(self.points)
        self._cell_results: dict[int, Any] = {}
        self._cancelled = False
        self._costs = frontier_mod.walk_costs()

    # -- control -------------------------------------------------------

    def cancel(self) -> None:
        """Stop at the next wave boundary (idempotent, thread-safe: a
        single flag write)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def state_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.states:
            out[s] = out.get(s, 0) + 1
        return out

    def status(self) -> dict:
        """JSON-ready per-cell state snapshot (the /v1/sweep/<id> body)."""
        return {
            "points": len(self.points),
            "unique_cells": len(self._cells),
            "states": self.state_counts(),
            "cells": [
                {"point": p.as_dict(), "state": s, "source": src}
                for p, s, src in zip(self.points, self.states, self.sources)
            ],
        }

    def _emit(self, event: dict) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- execution -----------------------------------------------------

    def run(self) -> dict:
        """Execute (or resume) the grid; returns the outcome dict.

        Raises :class:`SweepCancelled` when the cancel flag stopped the
        run before the last wave; every wave completed so far remains
        recorded.  The flag is sticky — a cancel that lands before the
        run starts still takes effect — so *resume* means building a
        fresh :class:`SweepRun` over the same spec: its finished waves
        replay from the run cache for free.
        """
        pending = [i for i, s in enumerate(self.states) if s != DONE]
        done_before = len(self.points) - len(pending)
        waves = [
            pending[i:i + self.wave_points]
            for i in range(0, len(pending), self.wave_points)
        ]
        completed = done_before
        for wave in waves:
            if self._cancelled:
                self._mark_cancelled(pending, completed - done_before)
                raise SweepCancelled(
                    f"sweep cancelled with {completed}/{len(self.points)} "
                    f"point(s) done"
                )
            for i in wave:
                self.states[i] = RUNNING
            computed_before = self.executor.stats.computed
            try:
                self._run_wave(wave)
            except Exception:
                for i in wave:
                    if self.states[i] == RUNNING:
                        self.states[i] = FAILED
                raise
            wave_computed = self.executor.stats.computed - computed_before
            for i in wave:
                completed += 1
                self._emit({
                    "event": "sweep-cell",
                    **self.metrics[i]["point"],
                    "source": self.sources[i],
                    "metrics": self.metrics[i],
                    "done": completed,
                    "total": len(self.points),
                    "wave_computed_cells": wave_computed,
                })
        return self._assemble()

    def _run_wave(self, wave: list[int]) -> None:
        """Run one wave's cells and extract each point's metrics."""
        need: list[int] = []
        for i in wave:
            for ci in self._refs[i]:
                if ci not in self._cell_results and ci not in need:
                    need.append(ci)
        computed_before = self.executor.stats.computed
        if need:
            values = self.executor.run([self._cells[ci] for ci in need])
            for ci, value in zip(need, values):
                self._cell_results[ci] = value
        # Source is wave-granular: the shared executor's progress hook
        # belongs to the serve layer, so per-cell provenance is not
        # observable here without racing it.  The two cases callers
        # gate on — cold run, fully-cached repeat — are exact.
        wave_computed = self.executor.stats.computed > computed_before
        for i in wave:
            native_i, sim_i = self._refs[i]
            point = self.points[i]
            self.metrics[i] = frontier_mod.point_metrics(
                point,
                self._cell_results[native_i],
                self._cell_results[sim_i],
                self._costs,
            )
            self.states[i] = DONE
            fresh = any(ci in need for ci in self._refs[i])
            self.sources[i] = "shared" if not fresh else (
                "computed" if wave_computed else "cached"
            )

    def _mark_cancelled(self, pending: list[int], done_in_run: int) -> None:
        for i in pending[done_in_run:]:
            if self.states[i] == PENDING:
                self.states[i] = CANCELLED
        self._emit({
            "event": "sweep-cancelled",
            "done": len(self.points) - sum(
                1 for s in self.states if s != DONE
            ),
            "total": len(self.points),
        })

    # -- assembly ------------------------------------------------------

    def _assemble(self) -> dict:
        """The canonical sweep outcome (plain dicts, stable ordering)."""
        cells = [m for m in self.metrics if m is not None]
        front = frontier_mod.pareto_frontier(cells)
        frontier_labels = [m["label"] for m in front]
        cdfs = {}
        walks = {}
        for i, point in enumerate(self.points):
            native_i, sim_i = self._refs[i]
            key = f"{point.workload}|{point.policy}"
            if key not in cdfs:
                cdfs[key] = frontier_mod.contiguity_cdf(
                    self._cell_results[native_i]
                )
                walks[key] = frontier_mod.walk_cycle_summary(
                    self._cell_results[sim_i], self._costs
                )
        return {
            "sweep": self.spec.as_dict(),
            "points": len(self.points),
            "unique_cells": len(self._cells),
            "cells": cells,
            "frontier": front,
            "frontier_labels": frontier_labels,
            "frontier_size": len(front),
            "contiguity_cdf": cdfs,
            "walk_cycles": walks,
        }


@dataclass
class SweepOutcomeStats:
    """Executor-side accounting of one sweep run (volatile: travels in
    headers/events, never in the canonical body)."""

    seconds: float
    submitted: int
    computed: int
    cache_hits: int
    deduped: int

    def as_dict(self) -> dict:
        return {
            "seconds": round(self.seconds, 3),
            "submitted": self.submitted,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
        }


def run_sweep(spec: SweepSpec, executor: Executor,
              on_event: Callable[[dict], None] | None = None,
              wave_points: int = WAVE_POINTS,
              ) -> tuple[dict, SweepOutcomeStats, SweepRun]:
    """One-shot convenience: build a run, execute it, report stats."""
    run = SweepRun(spec=spec, executor=executor, on_event=on_event,
                   wave_points=wave_points)
    before = (executor.stats.submitted, executor.stats.computed,
              executor.stats.cache_hits, executor.stats.deduped)
    started = time.perf_counter()
    outcome = run.run()
    stats = SweepOutcomeStats(
        seconds=time.perf_counter() - started,
        submitted=executor.stats.submitted - before[0],
        computed=executor.stats.computed - before[1],
        cache_hits=executor.stats.cache_hits - before[2],
        deduped=executor.stats.deduped - before[3],
    )
    return outcome, stats, run
