"""Parameter-sweep-as-a-service over the policy × scheme × workload grid.

The paper's central trade-off — translation overhead vs. memory bloat
across the software policies (THP, Ingens, CA, eager, …) and the
hardware schemes (radix paging, SpOT, vRMM, DS) — is only visible when
many (policy, scheme, workload) points are measured together.  This
package turns the repo's figure machinery into a queryable instrument:

- :mod:`repro.sweep.grid` — a declarative :class:`SweepSpec` whose axes
  expand into deduplicated run cells keyed by the same content
  addresses the run cache and the serve layer already use;
- :mod:`repro.sweep.runner` — fans a grid through the DAG
  :class:`~repro.sim.jobs.Executor` (sharing the warm pool and any
  cache tier), tracking per-cell state with cancel/resume;
- :mod:`repro.sweep.frontier` — extracts overhead/bloat/contiguity
  metrics per grid point and computes exact Pareto frontiers plus
  contiguity-CDF and walk-cycle summaries as plain dicts;
- :mod:`repro.sweep.explorer` — a dependency-free HTML/SVG renderer for
  the ``GET /explorer`` page.

Serving (``POST /v1/sweep``, ``GET /v1/sweep/<id>``, ``GET /explorer``)
lives in :mod:`repro.serve`; the CLI entry is ``repro sweep``.
"""

from repro.sweep.frontier import pareto_frontier, point_metrics
from repro.sweep.grid import SCHEMES, GridPoint, SweepSpec, SweepValidationError
from repro.sweep.runner import SweepCancelled, SweepRun, run_sweep

__all__ = [
    "SCHEMES",
    "GridPoint",
    "SweepCancelled",
    "SweepRun",
    "SweepSpec",
    "SweepValidationError",
    "pareto_frontier",
    "point_metrics",
    "run_sweep",
]
