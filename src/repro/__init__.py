"""contiguity-repro: trace-driven reproduction of *Enhancing and
Exploiting Contiguity for Fast Memory Virtualization* (ISCA 2020).

The library implements the paper's two contributions and every
substrate they depend on:

- **CA paging** (:class:`repro.policies.CAPaging`) — contiguity-aware
  physical memory allocation inside a Linux-like kernel model
  (:mod:`repro.mm`, :mod:`repro.vm`, :mod:`repro.sim`), alongside the
  paper's baselines (THP, Ingens, eager paging, Translation Ranger,
  ideal paging);
- **SpOT** (:class:`repro.hw.SpotPredictor`) — speculative offset-based
  address translation on the last-level TLB miss path, emulated
  trace-driven together with vRMM, Direct Segments and hybrid
  coalescing (:mod:`repro.hw`);
- **nested paging** (:mod:`repro.virt`) — KVM-like two-dimensional
  translation with independent guest/host placement policies.

Quick start::

    from repro import (
        QUICK_SCALE, RunOptions, build_machine, make_workload, run_native,
    )

    machine = build_machine("ca", scale=QUICK_SCALE)
    workload = make_workload("pagerank", QUICK_SCALE)
    result = run_native(machine, workload, RunOptions())
    print(result.describe())

Every figure and table of the paper regenerates from
:mod:`repro.experiments` (see DESIGN.md for the index).
"""

from repro.metrics.contiguity import (
    ContiguitySample,
    coverage_of_k_largest,
    mappings_for_coverage,
    sample_contiguity,
)
from repro.policies import (
    CAPaging,
    DefaultPaging,
    EagerPaging,
    IdealPaging,
    IngensPaging,
    PlacementPolicy,
    RangerPaging,
    make_policy,
)
from repro.sim.config import (
    BIG_SCALE,
    DEFAULT_SCALE,
    QUICK_SCALE,
    TEST_SCALE,
    HardwareConfig,
    ScaleProfile,
    SystemConfig,
)
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.results import RunResult
from repro.sim.runner import RunOptions, run_native, run_virtualized
from repro.virt.hypervisor import VirtualMachine
from repro.virt.introspect import nested_runs, two_d_runs
from repro.workloads import PAPER_SUITE, Workload, make_workload

__version__ = "1.0.0"


def build_machine(policy, scale=None, config=None, aged=True, **policy_kwargs):
    """Build a machine by policy name with an optional scale profile.

    Thin wrapper over :func:`repro.sim.machine.build_machine` that also
    accepts a :class:`ScaleProfile` instead of a full config.
    """
    from repro.sim.machine import build_machine as _build

    if config is None:
        config = SystemConfig.from_scale(scale or QUICK_SCALE)
    return _build(policy, config, aged=aged, **policy_kwargs)


__all__ = [
    "BIG_SCALE",
    "CAPaging",
    "ContiguitySample",
    "DEFAULT_SCALE",
    "DefaultPaging",
    "EagerPaging",
    "HardwareConfig",
    "IdealPaging",
    "IngensPaging",
    "Kernel",
    "Machine",
    "PAPER_SUITE",
    "PlacementPolicy",
    "QUICK_SCALE",
    "RangerPaging",
    "RunOptions",
    "RunResult",
    "ScaleProfile",
    "SystemConfig",
    "TEST_SCALE",
    "VirtualMachine",
    "Workload",
    "build_machine",
    "coverage_of_k_largest",
    "make_policy",
    "make_workload",
    "mappings_for_coverage",
    "nested_runs",
    "run_native",
    "run_virtualized",
    "sample_contiguity",
    "two_d_runs",
]
