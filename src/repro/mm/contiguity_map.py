"""The *contiguity_map*: CA paging's index of free contiguity (paper Fig. 3).

The buddy allocator only tracks *aligned* free blocks up to
``MAX_ORDER`` (4 MiB).  CA paging needs to see *unaligned* free
contiguity far beyond that, so it maintains an index over the
``MAX_ORDER`` free list: each entry (*cluster*) describes a maximal run
of physically consecutive free ``MAX_ORDER`` blocks, recording its
starting address and total size.

The map updates incrementally on every insertion/removal of a
``MAX_ORDER`` block (it subscribes to the buddy allocator), so no scans
are ever needed.  Every member block of a cluster points back at its
cluster — the paper re-purposes the ``page->mapping`` field of free
pages for this; we keep an explicit dictionary.

Placement requests are served with a *next-fit* rover (paper §III-C):
search resumes where the previous search stopped, which defers
competition between processes racing for the same free blocks.
First-fit and best-fit are also provided for ablations and for the
ideal-paging baseline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.units import order_pages


@dataclass
class Cluster:
    """A maximal run of physically consecutive free MAX_ORDER blocks."""

    start_pfn: int
    n_pages: int

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the cluster."""
        return self.start_pfn + self.n_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.start_pfn:#x}+{self.n_pages})"


class _Handle:
    """Union-find indirection cell between block heads and clusters.

    Block heads map to a handle; handles chain (with path compression)
    to the *root* handle of their cluster, which targets the cluster
    itself.  Merging two clusters links one root to the other instead of
    rewriting every member block's entry, so merge is O(α); splits
    retarget only the smaller side's heads (smaller-half amortization).
    """

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class ContiguityMap:
    """Index of free clusters above the buddy heap, with a next-fit rover.

    Parameters
    ----------
    max_order:
        The buddy allocator's largest order; clusters are unions of
        blocks of exactly this order.
    """

    def __init__(self, max_order: int):
        self.block_pages = order_pages(max_order)
        # start_pfn -> Cluster, plus a sorted list of starts for iteration.
        self._clusters: dict[int, Cluster] = {}
        self._starts: list[int] = []
        # block head -> handle -> ... -> owning cluster (the repurposed
        # page->mapping, behind a union-find indirection).
        self._block_cluster: dict[int, _Handle] = {}
        # Next-fit rover: physical address where the next search begins.
        self._rover = 0
        self.searches = 0  # placement decisions served (statistics)

    # -- wiring to the buddy allocator ------------------------------------

    def on_max_order_event(self, pfn: int, inserted: bool) -> None:
        """Buddy listener entry point (see ``add_max_order_listener``)."""
        if inserted:
            self._add_block(pfn)
        else:
            self._remove_block(pfn)

    @staticmethod
    def _resolve(handle: _Handle) -> Cluster:
        """Follow (and compress) the handle chain to its cluster."""
        node = handle
        while isinstance(node.target, _Handle):
            node = node.target
        while handle is not node:
            nxt = handle.target
            handle.target = node
            handle = nxt
        return node.target

    def _new_cluster(self, start_pfn: int, n_pages: int) -> Cluster:
        cluster = Cluster(start_pfn, n_pages)
        cluster.handle = _Handle(cluster)
        self._register_cluster(cluster)
        return cluster

    def _add_block(self, pfn: int) -> None:
        before_h = self._block_cluster.get(pfn - self.block_pages)
        after_h = self._block_cluster.get(pfn + self.block_pages)
        before = self._resolve(before_h) if before_h is not None else None
        after = self._resolve(after_h) if after_h is not None else None
        if before is not None and after is not None:
            # Bridge two clusters into one: absorb ``after`` by linking
            # its root handle — no per-block rewrites.
            self._drop_cluster(after)
            before.n_pages += self.block_pages + after.n_pages
            after.handle.target = before.handle
            self._block_cluster[pfn] = before.handle
        elif before is not None:
            before.n_pages += self.block_pages
            self._block_cluster[pfn] = before.handle
        elif after is not None:
            # Extend a cluster downwards: its start moves.
            self._drop_cluster(after)
            after.start_pfn = pfn
            after.n_pages += self.block_pages
            self._register_cluster(after)
            self._block_cluster[pfn] = after.handle
        else:
            cluster = self._new_cluster(pfn, self.block_pages)
            self._block_cluster[pfn] = cluster.handle

    def _remove_block(self, pfn: int) -> None:
        cluster = self._resolve(self._block_cluster.pop(pfn))
        left_pages = pfn - cluster.start_pfn
        right_pages = cluster.end_pfn - (pfn + self.block_pages)
        left_start = cluster.start_pfn
        if not left_pages and not right_pages:
            self._drop_cluster(cluster)
            return
        if not left_pages:
            # Chew from the front: only the registry key changes.
            self._drop_cluster(cluster)
            cluster.start_pfn = pfn + self.block_pages
            cluster.n_pages = right_pages
            self._register_cluster(cluster)
            return
        if not right_pages:
            cluster.n_pages = left_pages
            return
        # Interior split: the existing cluster (with every member
        # handle) keeps the larger side; the smaller side gets a fresh
        # cluster and only its heads are retargeted.
        if left_pages >= right_pages:
            cluster.n_pages = left_pages
            other = self._new_cluster(pfn + self.block_pages, right_pages)
        else:
            self._drop_cluster(cluster)
            cluster.start_pfn = pfn + self.block_pages
            cluster.n_pages = right_pages
            self._register_cluster(cluster)
            other = self._new_cluster(left_start, left_pages)
        for head in range(other.start_pfn, other.end_pfn, self.block_pages):
            self._block_cluster[head] = other.handle

    def _register_cluster(self, cluster: Cluster) -> None:
        self._clusters[cluster.start_pfn] = cluster
        bisect.insort(self._starts, cluster.start_pfn)

    def _drop_cluster(self, cluster: Cluster) -> None:
        del self._clusters[cluster.start_pfn]
        i = bisect.bisect_left(self._starts, cluster.start_pfn)
        del self._starts[i]

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return (self._clusters[s] for s in self._starts)

    @property
    def total_free_pages(self) -> int:
        """Frames tracked by the map (free MAX_ORDER blocks only)."""
        return sum(c.n_pages for c in self._clusters.values())

    def largest(self) -> Cluster | None:
        """The largest cluster, or None when the map is empty."""
        if not self._clusters:
            return None
        return max(self._clusters.values(), key=lambda c: c.n_pages)

    def cluster_sizes(self) -> list[int]:
        """Sorted (descending) cluster sizes in pages, for diagnostics."""
        return sorted((c.n_pages for c in self._clusters.values()), reverse=True)

    def snapshot(self) -> list[tuple[int, int]]:
        """(start_pfn, n_pages) pairs in address order — for ideal paging."""
        return [(c.start_pfn, c.n_pages) for c in self]

    # -- placement policies ---------------------------------------------------

    def next_fit(self, request_pages: int, wrap: bool = True) -> Cluster | None:
        """Next-fit placement: first cluster >= request starting from the rover.

        With ``wrap=False`` only clusters at or past the rover are
        considered and ``None`` is returned when none fits — callers use
        this to defer reuse of recently placed clusters (e.g. trying the
        next NUMA node first).  With ``wrap=True`` the search wraps
        around and falls back to the largest cluster encountered when
        none is big enough (paper §III-C).  Advances the rover past the
        chosen cluster so the following request starts elsewhere.
        """
        if not self._starts:
            return None
        self.searches += 1
        n = len(self._starts)
        first = bisect.bisect_left(self._starts, self._rover) % n
        steps = n if wrap else n - bisect.bisect_left(self._starts, self._rover)
        best: Cluster | None = None
        for step in range(steps):
            cluster = self._clusters[self._starts[(first + step) % n]]
            if cluster.n_pages >= request_pages:
                self._rover = cluster.end_pfn
                return cluster
            if best is None or cluster.n_pages > best.n_pages:
                best = cluster
        if not wrap:
            return None
        if best is not None:
            self._rover = best.end_pfn
        return best

    def first_fit(self, request_pages: int) -> Cluster | None:
        """First-fit placement (ablation): lowest-address fitting cluster."""
        if not self._starts:
            return None
        self.searches += 1
        best: Cluster | None = None
        for start in self._starts:
            cluster = self._clusters[start]
            if cluster.n_pages >= request_pages:
                return cluster
            if best is None or cluster.n_pages > best.n_pages:
                best = cluster
        return best

    def best_fit(self, request_pages: int) -> Cluster | None:
        """Best-fit placement (ablation / ideal paging): tightest fit."""
        if not self._clusters:
            return None
        self.searches += 1
        fitting = [c for c in self._clusters.values() if c.n_pages >= request_pages]
        if fitting:
            return min(fitting, key=lambda c: c.n_pages)
        return max(self._clusters.values(), key=lambda c: c.n_pages)
