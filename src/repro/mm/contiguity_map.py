"""The *contiguity_map*: CA paging's index of free contiguity (paper Fig. 3).

The buddy allocator only tracks *aligned* free blocks up to
``MAX_ORDER`` (4 MiB).  CA paging needs to see *unaligned* free
contiguity far beyond that, so it maintains an index over the
``MAX_ORDER`` free list: each entry (*cluster*) describes a maximal run
of physically consecutive free ``MAX_ORDER`` blocks, recording its
starting address and total size.

The map updates incrementally on every insertion/removal of a
``MAX_ORDER`` block (it subscribes to the buddy allocator), so no scans
are ever needed.  Every member block of a cluster points back at its
cluster — the paper re-purposes the ``page->mapping`` field of free
pages for this; we keep an explicit dictionary.

Placement requests are served with a *next-fit* rover (paper §III-C):
search resumes where the previous search stopped, which defers
competition between processes racing for the same free blocks.
First-fit and best-fit are also provided for ablations and for the
ideal-paging baseline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.units import order_pages


@dataclass
class Cluster:
    """A maximal run of physically consecutive free MAX_ORDER blocks."""

    start_pfn: int
    n_pages: int

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the cluster."""
        return self.start_pfn + self.n_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.start_pfn:#x}+{self.n_pages})"


class ContiguityMap:
    """Index of free clusters above the buddy heap, with a next-fit rover.

    Parameters
    ----------
    max_order:
        The buddy allocator's largest order; clusters are unions of
        blocks of exactly this order.
    """

    def __init__(self, max_order: int):
        self.block_pages = order_pages(max_order)
        # start_pfn -> Cluster, plus a sorted list of starts for iteration.
        self._clusters: dict[int, Cluster] = {}
        self._starts: list[int] = []
        # block head -> owning cluster (the repurposed page->mapping).
        self._block_cluster: dict[int, Cluster] = {}
        # Next-fit rover: physical address where the next search begins.
        self._rover = 0
        self.searches = 0  # placement decisions served (statistics)

    # -- wiring to the buddy allocator ------------------------------------

    def on_max_order_event(self, pfn: int, inserted: bool) -> None:
        """Buddy listener entry point (see ``add_max_order_listener``)."""
        if inserted:
            self._add_block(pfn)
        else:
            self._remove_block(pfn)

    def _add_block(self, pfn: int) -> None:
        before = self._block_cluster.get(pfn - self.block_pages)
        after = self._block_cluster.get(pfn + self.block_pages)
        if before is not None and after is not None:
            # Bridge two clusters into one.
            self._drop_cluster(after)
            before.n_pages += self.block_pages + after.n_pages
            self._retarget_blocks(after, before)
            self._block_cluster[pfn] = before
        elif before is not None:
            before.n_pages += self.block_pages
            self._block_cluster[pfn] = before
        elif after is not None:
            # Extend a cluster downwards: its start moves.
            self._drop_cluster(after)
            after.start_pfn = pfn
            after.n_pages += self.block_pages
            self._register_cluster(after)
            self._block_cluster[pfn] = after
        else:
            cluster = Cluster(pfn, self.block_pages)
            self._register_cluster(cluster)
            self._block_cluster[pfn] = cluster

    def _remove_block(self, pfn: int) -> None:
        cluster = self._block_cluster.pop(pfn)
        self._drop_cluster(cluster)
        left_pages = pfn - cluster.start_pfn
        right_pages = cluster.end_pfn - (pfn + self.block_pages)
        if left_pages:
            left = Cluster(cluster.start_pfn, left_pages)
            self._register_cluster(left)
            self._retarget_range(left.start_pfn, left_pages, left)
        if right_pages:
            right = Cluster(pfn + self.block_pages, right_pages)
            self._register_cluster(right)
            self._retarget_range(right.start_pfn, right_pages, right)

    def _register_cluster(self, cluster: Cluster) -> None:
        self._clusters[cluster.start_pfn] = cluster
        bisect.insort(self._starts, cluster.start_pfn)

    def _drop_cluster(self, cluster: Cluster) -> None:
        del self._clusters[cluster.start_pfn]
        i = bisect.bisect_left(self._starts, cluster.start_pfn)
        del self._starts[i]

    def _retarget_blocks(self, old: Cluster, new: Cluster) -> None:
        self._retarget_range(old.start_pfn, old.n_pages, new)

    def _retarget_range(self, start: int, n_pages: int, cluster: Cluster) -> None:
        for head in range(start, start + n_pages, self.block_pages):
            self._block_cluster[head] = cluster

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return (self._clusters[s] for s in self._starts)

    @property
    def total_free_pages(self) -> int:
        """Frames tracked by the map (free MAX_ORDER blocks only)."""
        return sum(c.n_pages for c in self._clusters.values())

    def largest(self) -> Cluster | None:
        """The largest cluster, or None when the map is empty."""
        if not self._clusters:
            return None
        return max(self._clusters.values(), key=lambda c: c.n_pages)

    def cluster_sizes(self) -> list[int]:
        """Sorted (descending) cluster sizes in pages, for diagnostics."""
        return sorted((c.n_pages for c in self._clusters.values()), reverse=True)

    def snapshot(self) -> list[tuple[int, int]]:
        """(start_pfn, n_pages) pairs in address order — for ideal paging."""
        return [(c.start_pfn, c.n_pages) for c in self]

    # -- placement policies ---------------------------------------------------

    def next_fit(self, request_pages: int, wrap: bool = True) -> Cluster | None:
        """Next-fit placement: first cluster >= request starting from the rover.

        With ``wrap=False`` only clusters at or past the rover are
        considered and ``None`` is returned when none fits — callers use
        this to defer reuse of recently placed clusters (e.g. trying the
        next NUMA node first).  With ``wrap=True`` the search wraps
        around and falls back to the largest cluster encountered when
        none is big enough (paper §III-C).  Advances the rover past the
        chosen cluster so the following request starts elsewhere.
        """
        if not self._starts:
            return None
        self.searches += 1
        n = len(self._starts)
        first = bisect.bisect_left(self._starts, self._rover) % n
        steps = n if wrap else n - bisect.bisect_left(self._starts, self._rover)
        best: Cluster | None = None
        for step in range(steps):
            cluster = self._clusters[self._starts[(first + step) % n]]
            if cluster.n_pages >= request_pages:
                self._rover = cluster.end_pfn
                return cluster
            if best is None or cluster.n_pages > best.n_pages:
                best = cluster
        if not wrap:
            return None
        if best is not None:
            self._rover = best.end_pfn
        return best

    def first_fit(self, request_pages: int) -> Cluster | None:
        """First-fit placement (ablation): lowest-address fitting cluster."""
        if not self._starts:
            return None
        self.searches += 1
        best: Cluster | None = None
        for start in self._starts:
            cluster = self._clusters[start]
            if cluster.n_pages >= request_pages:
                return cluster
            if best is None or cluster.n_pages > best.n_pages:
                best = cluster
        return best

    def best_fit(self, request_pages: int) -> Cluster | None:
        """Best-fit placement (ablation / ideal paging): tightest fit."""
        if not self._clusters:
            return None
        self.searches += 1
        fitting = [c for c in self._clusters.values() if c.n_pages >= request_pages]
        if fitting:
            return min(fitting, key=lambda c: c.n_pages)
        return max(self._clusters.values(), key=lambda c: c.n_pages)
