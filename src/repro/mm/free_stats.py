"""Free-block statistics: the unaligned free-size distribution of Fig. 9.

The paper shows that CA paging delays machine-level fragmentation:
after a batch of benchmarks runs to completion, a much larger share of
free memory sits in >1 GiB unaligned runs than under default paging.
This module scans a machine's frame tables for maximal runs of free
frames (ignoring buddy alignment, exactly like the paper's metric) and
buckets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mm.physmem import PhysicalMemory
from repro.units import GIB, MIB, PAGE_SIZE


#: Fig. 9 bucket boundaries (upper bounds, bytes); the last is open-ended.
DEFAULT_BUCKETS: tuple[tuple[str, int], ...] = (
    ("<=2M", 2 * MIB),
    ("2M-64M", 64 * MIB),
    ("64M-1G", GIB),
    (">1G", 1 << 62),
)


@dataclass
class FreeBlockHistogram:
    """Distribution of unaligned free-run sizes across a machine."""

    bucket_pages: dict[str, int] = field(default_factory=dict)
    total_free_pages: int = 0
    runs: list[int] = field(default_factory=list)

    def fraction(self, bucket: str) -> float:
        """Share of free memory in the named bucket (0 when no free memory)."""
        if not self.total_free_pages:
            return 0.0
        return self.bucket_pages.get(bucket, 0) / self.total_free_pages

    def fractions(self) -> dict[str, float]:
        """Share of free memory per bucket."""
        return {name: self.fraction(name) for name in self.bucket_pages}

    def largest_run_pages(self) -> int:
        """Largest unaligned free run, in pages."""
        return max(self.runs, default=0)


def _free_runs(free_mask: np.ndarray) -> list[int]:
    """Lengths of maximal runs of True values in ``free_mask``."""
    if free_mask.size == 0:
        return []
    padded = np.concatenate(([False], free_mask, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[::2], edges[1::2]
    return list((ends - starts).astype(int))


def free_block_histogram(
    mem: PhysicalMemory,
    buckets: tuple[tuple[str, int], ...] = DEFAULT_BUCKETS,
) -> FreeBlockHistogram:
    """Scan the machine and bucket maximal unaligned free runs by size.

    Scaled machines may never reach 1 GiB runs; callers can pass scaled
    bucket boundaries (see ``experiments.fig9``).
    """
    hist = FreeBlockHistogram(bucket_pages={name: 0 for name, _ in buckets})
    for zone in mem.zones:
        free_mask = zone.frames.refcount == 0
        for run in _free_runs(free_mask):
            hist.runs.append(run)
            hist.total_free_pages += run
            run_bytes = run * PAGE_SIZE
            for name, upper in buckets:
                if run_bytes <= upper:
                    hist.bucket_pages[name] += run
                    break
    hist.runs.sort(reverse=True)
    return hist
