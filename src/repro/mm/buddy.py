"""Power-of-two buddy allocator with targeted allocation.

This is the core physical allocator the paper's CA paging extends.  It
keeps per-order free lists for orders ``0..max_order`` inclusive (Linux
``MAX_ORDER`` semantics: the largest tracked aligned block is
``2**max_order`` base pages, 4 MiB by default).  On top of the stock
interface it provides the two hooks CA paging needs:

- :meth:`BuddyAllocator.alloc_target` — allocate a *specific* aligned
  block if (and only if) it is currently free, splitting a larger free
  block around it when necessary (paper §III-B, Fig. 2b);
- listener callbacks on every insertion/removal of a ``max_order``
  block, which the :class:`~repro.mm.contiguity_map.ContiguityMap` uses
  to track free clusters without scanning;
- an optional *physically sorted* ``max_order`` free list (paper
  §III-C, "fragmentation restraint"), which makes fallback allocations
  consume low addresses first instead of scattering across memory.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator

import numpy as np

from repro.errors import BuddyError, OutOfMemoryError
from repro.mm.frame import FrameTable
from repro.units import DEFAULT_MAX_ORDER, is_aligned, order_pages


class _FifoList:
    """Insertion-ordered free list (Linux-like: freed blocks reused LIFO)."""

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: dict[int, None] = {}

    def add(self, pfn: int) -> None:
        self._blocks[pfn] = None

    def remove(self, pfn: int) -> None:
        del self._blocks[pfn]

    def pop(self) -> int:
        # Reuse the most recently freed block first, like list_add() +
        # first-entry removal in Linux.
        pfn = next(reversed(self._blocks))
        del self._blocks[pfn]
        return pfn

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._blocks)


class _SortedList:
    """Physically sorted free list (the paper's MAX_ORDER sorting)."""

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: list[int] = []

    def add(self, pfn: int) -> None:
        bisect.insort(self._blocks, pfn)

    def remove(self, pfn: int) -> None:
        i = bisect.bisect_left(self._blocks, pfn)
        if i >= len(self._blocks) or self._blocks[i] != pfn:
            raise KeyError(pfn)
        del self._blocks[i]

    def pop(self) -> int:
        # Lowest physical address first: fallback allocations chew from
        # one end of memory instead of fragmenting random clusters.
        return self._blocks.pop(0)

    def __contains__(self, pfn: int) -> bool:
        i = bisect.bisect_left(self._blocks, pfn)
        return i < len(self._blocks) and self._blocks[i] == pfn

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._blocks)


#: Listener signature for max-order list changes: (pfn, inserted).
MaxOrderListener = Callable[[int, bool], None]


class BuddyAllocator:
    """Buddy allocator over the PFN range ``[base_pfn, base_pfn + n_pages)``.

    Parameters
    ----------
    base_pfn:
        First frame managed by this allocator.  Must be aligned to the
        largest block size so buddy arithmetic works on absolute PFNs.
    n_pages:
        Number of frames managed.
    max_order:
        Largest tracked order (inclusive).  Linux default corresponds to
        4 MiB blocks; eager paging raises this (paper §VI-A).
    sorted_max_order:
        Keep the ``max_order`` list sorted by physical address.
    frames:
        Optional externally owned :class:`FrameTable` (shared with the
        kernel); one is created when omitted.
    """

    def __init__(
        self,
        base_pfn: int,
        n_pages: int,
        max_order: int = DEFAULT_MAX_ORDER,
        sorted_max_order: bool = False,
        frames: FrameTable | None = None,
    ):
        top = order_pages(max_order)
        if not is_aligned(base_pfn, top):
            raise BuddyError(
                f"base_pfn {base_pfn:#x} not aligned to max block ({top} pages)"
            )
        if n_pages <= 0:
            raise BuddyError(f"n_pages must be positive, got {n_pages}")
        self.base_pfn = base_pfn
        self.n_pages = n_pages
        self.max_order = max_order
        self.frames = frames if frames is not None else FrameTable(base_pfn, n_pages)
        self._free_pages = 0
        self._listeners: list[MaxOrderListener] = []
        self._lists: list[_FifoList | _SortedList] = [
            _FifoList() for _ in range(max_order)
        ]
        self._lists.append(_SortedList() if sorted_max_order else _FifoList())
        self._seed_free_lists()

    # -- construction ------------------------------------------------------

    def _seed_free_lists(self) -> None:
        """Carve the managed range into maximal aligned free blocks."""
        pfn = self.base_pfn
        end = self.base_pfn + self.n_pages
        while pfn < end:
            order = min(self.max_order, (pfn & -pfn).bit_length() - 1 if pfn else self.max_order)
            while order_pages(order) > end - pfn:
                order -= 1
            self._insert(pfn, order)
            pfn += order_pages(order)

    # -- listener plumbing ---------------------------------------------------

    def add_max_order_listener(self, listener: MaxOrderListener) -> None:
        """Register a callback fired on max-order list insert/remove."""
        self._listeners.append(listener)

    def _notify(self, pfn: int, inserted: bool) -> None:
        for listener in self._listeners:
            listener(pfn, inserted)

    # -- free-list primitives ------------------------------------------------

    def _insert(self, pfn: int, order: int) -> None:
        self._lists[order].add(pfn)
        self.frames.set_head(pfn, order)
        self._free_pages += order_pages(order)
        if order == self.max_order:
            self._notify(pfn, True)

    def _remove(self, pfn: int, order: int) -> None:
        self._lists[order].remove(pfn)
        self.frames.clear_head(pfn)
        self._free_pages -= order_pages(order)
        if order == self.max_order:
            self._notify(pfn, False)

    # -- queries ---------------------------------------------------------------

    @property
    def free_pages(self) -> int:
        """Total free frames across all lists."""
        return self._free_pages

    @property
    def end_pfn(self) -> int:
        """One past the last managed frame."""
        return self.base_pfn + self.n_pages

    def contains(self, pfn: int) -> bool:
        """True when ``pfn`` is managed by this allocator."""
        return self.base_pfn <= pfn < self.end_pfn

    def free_list_sizes(self) -> list[int]:
        """Number of free blocks per order (diagnostics)."""
        return [len(lst) for lst in self._lists]

    def iter_free_blocks(self, order: int) -> Iterator[int]:
        """Iterate the heads of free blocks of exactly ``order``."""
        return iter(self._lists[order])

    def find_free_block(self, pfn: int) -> tuple[int, int] | None:
        """Locate the free block containing ``pfn``.

        Returns ``(head_pfn, order)`` or ``None`` when the frame is in
        use.  Exploits buddy alignment: the head of any free block
        containing ``pfn`` must sit at an order-aligned address at or
        below it, so only ``max_order + 1`` candidates exist.
        """
        if not self.contains(pfn):
            return None
        for order in range(self.max_order + 1):
            head = pfn & ~(order_pages(order) - 1)
            if not self.contains(head):
                break
            if self.frames.head_order(head) == order:
                return head, order
        return None

    def is_free(self, pfn: int) -> bool:
        """True when the frame belongs to some free block."""
        return self.find_free_block(pfn) is not None

    # -- allocation ----------------------------------------------------------

    def alloc_block(self, order: int) -> int:
        """Allocate any block of ``2**order`` pages; returns its head PFN.

        Raises :class:`OutOfMemoryError` when no block of that order (or
        larger, to split) is free.
        """
        self._check_order(order)
        for avail in range(order, self.max_order + 1):
            if self._lists[avail]:
                head = self._lists[avail].pop()
                self.frames.clear_head(head)
                self._free_pages -= order_pages(avail)
                if avail == self.max_order:
                    self._notify(head, False)
                return self._split_to(head, avail, order, target=head)
        raise OutOfMemoryError(
            f"no free block of order {order} (free pages: {self._free_pages})"
        )

    def alloc_target(self, pfn: int, order: int) -> bool:
        """Allocate the specific block ``[pfn, pfn + 2**order)`` if free.

        This is the CA paging primitive: the caller computed ``pfn``
        from the VMA offset and wants exactly that frame.  Returns True
        on success; False when the block is (partly) in use.
        """
        self._check_order(order)
        if not is_aligned(pfn, order_pages(order)):
            raise BuddyError(
                f"target pfn {pfn:#x} not aligned for order {order}"
            )
        if pfn + order_pages(order) > self.end_pfn:
            return False
        found = self.find_free_block(pfn)
        if found is None:
            return False
        head, head_order = found
        if head_order < order:
            # The containing free block is smaller than the request; by
            # the coalescing invariant the rest of the range is in use.
            return False
        self._remove(head, head_order)
        self._split_to(head, head_order, order, target=pfn)
        return True

    def alloc_pages_bulk(self, n: int) -> np.ndarray:
        """Allocate up to ``n`` order-0 pages in one batched operation.

        Returns the allocated PFNs as an int64 array, possibly shorter
        than ``n`` when the allocator runs dry (never raises).  The end
        state is *bit-identical* to ``n`` sequential :meth:`alloc_block`
        calls at order 0: sequential splitting hands out the pages of a
        popped block consecutively from its head (each split's freed
        right half is the LIFO top of its list), and the surviving tail
        of a partially consumed block is the unique greedy buddy
        decomposition of that tail from its low end.  Survivor orders
        are strictly increasing, so at most one survivor lands in each
        free list — the per-list LIFO order relative to pre-existing
        blocks is preserved no matter the insertion sequence.  Survivors
        are always below ``max_order``, so the only listener events are
        the pop-side removals, exactly as in the sequential path.
        """
        out = np.empty(n, dtype=np.int64)
        got = 0
        while got < n:
            for avail in range(self.max_order + 1):
                if self._lists[avail]:
                    break
            else:
                return out[:got]
            head = self._lists[avail].pop()
            self.frames.clear_head(head)
            self._free_pages -= order_pages(avail)
            if avail == self.max_order:
                self._notify(head, False)
            block_pages = order_pages(avail)
            take = min(n - got, block_pages)
            out[got : got + take] = np.arange(head, head + take, dtype=np.int64)
            self.frames.mark_allocated_run(head, take)
            got += take
            rem, end = head + take, head + block_pages
            while rem < end:
                align = (rem & -rem).bit_length() - 1
                order = min(align, (end - rem).bit_length() - 1)
                self._insert(rem, order)
                rem += order_pages(order)
        return out

    def _split_to(self, head: int, order: int, want: int, target: int) -> int:
        """Split block ``(head, order)`` down to ``want``, keeping ``target``.

        The half not containing ``target`` is freed at each step.  The
        final block (headed at ``target``) is marked allocated and its
        head PFN returned.
        """
        while order > want:
            order -= 1
            half = order_pages(order)
            left, right = head, head + half
            if target >= right:
                self._insert(left, order)
                head = right
            else:
                self._insert(right, order)
                head = left
        self.frames.mark_allocated(head, order_pages(want))
        return head

    # -- freeing ---------------------------------------------------------------

    def free_block(self, pfn: int, order: int) -> None:
        """Free the block ``[pfn, pfn + 2**order)``, coalescing buddies."""
        self._check_order(order)
        if not is_aligned(pfn, order_pages(order)):
            raise BuddyError(f"freeing misaligned pfn {pfn:#x} at order {order}")
        if not self.contains(pfn) or pfn + order_pages(order) > self.end_pfn:
            raise BuddyError(f"freeing pfn {pfn:#x} outside managed range")
        if self.find_free_block(pfn) is not None:
            raise BuddyError(f"double free of pfn {pfn:#x} (order {order})")
        self.frames.mark_free(pfn, order_pages(order))
        while order < self.max_order:
            buddy = pfn ^ order_pages(order)
            if not self.contains(buddy) or self.frames.head_order(buddy) != order:
                break
            self._remove(buddy, order)
            pfn = min(pfn, buddy)
            order += 1
        self._insert(pfn, order)

    # -- helpers -----------------------------------------------------------------

    def _check_order(self, order: int) -> None:
        if not 0 <= order <= self.max_order:
            raise BuddyError(
                f"order {order} outside [0, {self.max_order}]"
            )
