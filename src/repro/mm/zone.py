"""A memory zone: one NUMA node's buddy allocator + contiguity map.

Linux maintains one buddy instance per NUMA node (``struct zone``) and
CA paging mirrors that with one ``contiguity_map`` per node (paper
§III-B).  The zone glues the two together and offers the allocation
entry points the kernel uses.
"""

from __future__ import annotations

from repro.mm.buddy import BuddyAllocator
from repro.mm.contiguity_map import Cluster, ContiguityMap
from repro.mm.frame import FrameTable
from repro.units import DEFAULT_MAX_ORDER


class Zone:
    """One NUMA node of physical memory.

    Parameters
    ----------
    node_id:
        NUMA node number (0-based).
    base_pfn / n_pages:
        Frame range owned by this node.
    max_order:
        Buddy MAX_ORDER (raised by the eager-paging baseline).
    sorted_max_order:
        Keep the MAX_ORDER list physically sorted (CA paging's
        fragmentation-restraint optimization).
    """

    def __init__(
        self,
        node_id: int,
        base_pfn: int,
        n_pages: int,
        max_order: int = DEFAULT_MAX_ORDER,
        sorted_max_order: bool = False,
    ):
        self.node_id = node_id
        self.frames = FrameTable(base_pfn, n_pages)
        self.buddy = BuddyAllocator(
            base_pfn,
            n_pages,
            max_order=max_order,
            sorted_max_order=sorted_max_order,
            frames=self.frames,
        )
        self.contiguity_map = ContiguityMap(max_order)
        # Replay the seed blocks into the map, then subscribe for updates.
        for head in list(self.buddy.iter_free_blocks(max_order)):
            self.contiguity_map.on_max_order_event(head, True)
        self.buddy.add_max_order_listener(self.contiguity_map.on_max_order_event)

    # -- delegation -----------------------------------------------------------

    @property
    def base_pfn(self) -> int:
        """First frame of the node."""
        return self.buddy.base_pfn

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the node."""
        return self.buddy.end_pfn

    @property
    def n_pages(self) -> int:
        """Total frames owned by the node."""
        return self.buddy.n_pages

    @property
    def free_pages(self) -> int:
        """Free frames on the node."""
        return self.buddy.free_pages

    @property
    def max_order(self) -> int:
        """Buddy MAX_ORDER of the node."""
        return self.buddy.max_order

    def contains(self, pfn: int) -> bool:
        """True when ``pfn`` belongs to this node."""
        return self.buddy.contains(pfn)

    def alloc_block(self, order: int) -> int:
        """Allocate any block of the given order from this node."""
        return self.buddy.alloc_block(order)

    def alloc_pages_bulk(self, n: int):
        """Allocate up to ``n`` order-0 pages at once (may return short)."""
        return self.buddy.alloc_pages_bulk(n)

    def alloc_target(self, pfn: int, order: int) -> bool:
        """Allocate the specific block at ``pfn`` if it is entirely free."""
        return self.buddy.alloc_target(pfn, order)

    def free_block(self, pfn: int, order: int) -> None:
        """Free a block previously returned by this node."""
        self.buddy.free_block(pfn, order)

    def is_free(self, pfn: int) -> bool:
        """True when the frame is inside a free buddy block."""
        return self.buddy.is_free(pfn)

    def place(self, request_pages: int, policy: str = "next_fit") -> Cluster | None:
        """Run a placement decision on the node's contiguity map."""
        search = getattr(self.contiguity_map, policy)
        return search(request_pages)

    def largest_cluster_pages(self) -> int:
        """Size of the largest free cluster, in pages (0 when none)."""
        largest = self.contiguity_map.largest()
        return largest.n_pages if largest else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Zone(node={self.node_id}, pfn=[{self.base_pfn:#x},{self.end_pfn:#x}),"
            f" free={self.free_pages}/{self.n_pages})"
        )
