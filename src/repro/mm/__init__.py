"""Physical memory management substrate (Linux-like).

This package models the pieces of a kernel physical memory manager that
the paper's CA paging extends:

- :mod:`repro.mm.frame` — per-frame metadata (``struct page`` analogue),
- :mod:`repro.mm.buddy` — the power-of-two buddy allocator with
  ``[0, MAX_ORDER]`` free lists, targeted allocation and the optional
  physically-sorted MAX_ORDER list,
- :mod:`repro.mm.contiguity_map` — CA paging's index of free clusters
  above the buddy heap, with the next-fit rover,
- :mod:`repro.mm.zone` — one NUMA node (buddy + contiguity map),
- :mod:`repro.mm.physmem` — the machine-level container of zones,
- :mod:`repro.mm.free_stats` — free-block size distributions (Fig. 9).
"""

from repro.mm.buddy import BuddyAllocator
from repro.mm.contiguity_map import Cluster, ContiguityMap
from repro.mm.frame import FrameTable
from repro.mm.free_stats import FreeBlockHistogram, free_block_histogram
from repro.mm.physmem import PhysicalMemory
from repro.mm.zone import Zone

__all__ = [
    "BuddyAllocator",
    "Cluster",
    "ContiguityMap",
    "FrameTable",
    "FreeBlockHistogram",
    "free_block_histogram",
    "PhysicalMemory",
    "Zone",
]
