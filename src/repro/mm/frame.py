"""Per-frame metadata: the ``struct page`` analogue.

Linux keeps an array of ``struct page`` (the ``mem_map``) indexed by
physical frame number.  CA paging inspects ``_count``/``_mapcount`` to
decide whether a targeted frame is already in use, and re-purposes the
``mapping`` field of *free* pages to point at their contiguity-map
cluster.  We keep the hot fields in numpy arrays so that multi-million
frame machines stay cheap, and expose the same queries.
"""

from __future__ import annotations

import numpy as np

#: Sentinel stored in ``free_order`` for frames that do not head a free block.
NOT_A_FREE_HEAD = -1

#: Sentinel stored in ``owner`` for frames not mapped by any process.
NO_OWNER = -1

#: Sentinel stored in ``alloc_order`` for frames not heading an allocation.
NOT_ALLOCATED = -1


class FrameTable:
    """Array-of-struct-page metadata for a contiguous PFN range.

    Parameters
    ----------
    base_pfn:
        First frame of the range described by this table.
    n_pages:
        Number of frames in the range.
    """

    __slots__ = (
        "base_pfn", "n_pages", "free_order", "refcount", "mapcount",
        "owner", "alloc_order",
    )

    def __init__(self, base_pfn: int, n_pages: int):
        if n_pages <= 0:
            raise ValueError(f"FrameTable needs at least one frame, got {n_pages}")
        self.base_pfn = base_pfn
        self.n_pages = n_pages
        # Order of the free buddy block headed by this frame, or -1.
        self.free_order = np.full(n_pages, NOT_A_FREE_HEAD, dtype=np.int8)
        # struct page ->_count: frames handed out by the allocator.
        self.refcount = np.zeros(n_pages, dtype=np.int32)
        # struct page ->_mapcount: page-table mappings of the frame.
        self.mapcount = np.zeros(n_pages, dtype=np.int32)
        # Pid of the last process to map the frame, or NO_OWNER.  Shared
        # COW frames record the most recent mapper (last-writer-wins),
        # which is what reclaim diagnostics want.
        self.owner = np.full(n_pages, NO_OWNER, dtype=np.int32)
        # Buddy order this frame's block was allocated at (recorded on
        # every frame of the block), or NOT_ALLOCATED for free frames.
        # Together with ``free_order`` this is the "flags" state column:
        # free head / free body / allocated head+order are all readable
        # with one vectorized compare.
        self.alloc_order = np.full(n_pages, NOT_ALLOCATED, dtype=np.int8)

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the range."""
        return self.base_pfn + self.n_pages

    def contains(self, pfn: int) -> bool:
        """True when ``pfn`` falls inside this table's range."""
        return self.base_pfn <= pfn < self.end_pfn

    def index(self, pfn: int) -> int:
        """Array index of ``pfn``; raises on out-of-range frames."""
        if not self.contains(pfn):
            raise IndexError(
                f"pfn {pfn:#x} outside frame table "
                f"[{self.base_pfn:#x}, {self.end_pfn:#x})"
            )
        return pfn - self.base_pfn

    # -- allocator-visible state ------------------------------------------

    def in_use(self, pfn: int) -> bool:
        """The CA paging availability probe: is the frame handed out?"""
        return bool(self.refcount[self.index(pfn)] > 0)

    def mark_allocated(self, pfn: int, n_pages: int) -> None:
        """Account a block of frames as handed out by the allocator."""
        i = self.index(pfn)
        self.refcount[i : i + n_pages] = 1
        self.alloc_order[i : i + n_pages] = n_pages.bit_length() - 1

    def mark_allocated_run(self, pfn: int, n_pages: int) -> None:
        """Account ``n_pages`` *individual* order-0 allocations at once.

        The bulk fault path hands out runs of consecutive frames that
        are logically separate order-0 blocks; one slice write replaces
        ``n_pages`` calls to :meth:`mark_allocated`.
        """
        i = self.index(pfn)
        self.refcount[i : i + n_pages] = 1
        self.alloc_order[i : i + n_pages] = 0

    def mark_free(self, pfn: int, n_pages: int) -> None:
        """Return a block of frames to the allocator."""
        i = self.index(pfn)
        self.refcount[i : i + n_pages] = 0
        self.mapcount[i : i + n_pages] = 0
        self.owner[i : i + n_pages] = NO_OWNER
        self.alloc_order[i : i + n_pages] = NOT_ALLOCATED

    def map_block(self, pfn: int, n_pages: int, owner: int | None = None) -> None:
        """Account page-table mappings covering ``n_pages`` frames."""
        i = self.index(pfn)
        self.mapcount[i : i + n_pages] += 1
        if owner is not None:
            self.owner[i : i + n_pages] = owner

    def unmap_block(self, pfn: int, n_pages: int) -> None:
        """Drop page-table mappings covering ``n_pages`` frames."""
        i = self.index(pfn)
        self.mapcount[i : i + n_pages] -= 1

    # -- free-block head bookkeeping (used by the buddy allocator) --------

    def head_order(self, pfn: int) -> int:
        """Order of the free block headed at ``pfn``, or NOT_A_FREE_HEAD."""
        return int(self.free_order[self.index(pfn)])

    def set_head(self, pfn: int, order: int) -> None:
        """Mark ``pfn`` as the head of a free block of ``order``."""
        self.free_order[self.index(pfn)] = order

    def clear_head(self, pfn: int) -> None:
        """Clear the free-block-head mark on ``pfn``."""
        self.free_order[self.index(pfn)] = NOT_A_FREE_HEAD

    def allocated_pages(self) -> int:
        """Total frames currently handed out."""
        return int(np.count_nonzero(self.refcount))
