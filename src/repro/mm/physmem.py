"""Machine-level physical memory: the set of NUMA zones.

Provides zone lookup by PFN, cross-zone allocation with node fallback
(Linux zonelist-like), whole-machine statistics, and the *hog* and
*churn* utilities used to reproduce the paper's fragmentation and
aged-machine conditions.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError, OutOfMemoryError
from repro.mm.zone import Zone
from repro.units import DEFAULT_MAX_ORDER, order_pages  # noqa: F401


class PhysicalMemory:
    """All physical memory of a simulated machine.

    Parameters
    ----------
    node_pages:
        Frames per NUMA node, e.g. ``[2**18, 2**18]`` for two nodes.
    max_order / sorted_max_order:
        Forwarded to every zone.
    """

    def __init__(
        self,
        node_pages: Iterable[int],
        max_order: int = DEFAULT_MAX_ORDER,
        sorted_max_order: bool = False,
    ):
        sizes = list(node_pages)
        if not sizes:
            raise ConfigError("at least one NUMA node is required")
        self.zones: list[Zone] = []
        base = 0
        top = order_pages(max_order)
        for node_id, n_pages in enumerate(sizes):
            if n_pages % top:
                raise ConfigError(
                    f"node {node_id} size {n_pages} not a multiple of the "
                    f"max block ({top} pages)"
                )
            self.zones.append(
                Zone(
                    node_id,
                    base,
                    n_pages,
                    max_order=max_order,
                    sorted_max_order=sorted_max_order,
                )
            )
            base += n_pages

    # -- lookup -----------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Total frames in the machine."""
        return sum(z.n_pages for z in self.zones)

    @property
    def free_pages(self) -> int:
        """Total free frames in the machine."""
        return sum(z.free_pages for z in self.zones)

    @property
    def max_order(self) -> int:
        """Buddy MAX_ORDER (identical across zones)."""
        return self.zones[0].max_order

    def zone_of(self, pfn: int) -> Zone:
        """The zone owning ``pfn``."""
        for zone in self.zones:
            if zone.contains(pfn):
                return zone
        raise IndexError(f"pfn {pfn:#x} outside all zones")

    def iter_zones_from(self, preferred: int) -> Iterator[Zone]:
        """Zones starting at the preferred node, then in node order."""
        n = len(self.zones)
        for step in range(n):
            yield self.zones[(preferred + step) % n]

    # -- allocation with node fallback -------------------------------------

    def alloc_block(self, order: int, preferred_node: int = 0) -> int:
        """Allocate from the preferred node, falling back across nodes."""
        for zone in self.iter_zones_from(preferred_node):
            try:
                return zone.alloc_block(order)
            except OutOfMemoryError:
                continue
        raise OutOfMemoryError(
            f"no node can satisfy an order-{order} allocation"
        )

    def alloc_pages_bulk(self, n: int, preferred_node: int = 0):
        """Allocate up to ``n`` order-0 pages, draining nodes in order.

        Mirrors ``n`` calls to :meth:`alloc_block` at order 0: the
        preferred node is consumed until dry, then the next node in the
        fallback order, and so on.  Returns an int64 PFN array that may
        be shorter than ``n`` when the whole machine runs out.
        """
        parts = []
        remaining = n
        for zone in self.iter_zones_from(preferred_node):
            if remaining <= 0:
                break
            got = zone.alloc_pages_bulk(remaining)
            if len(got):
                parts.append(got)
                remaining -= len(got)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def alloc_target(self, pfn: int, order: int) -> bool:
        """Targeted allocation; routes to the owning zone."""
        return self.zone_of(pfn).alloc_target(pfn, order)

    def free_block(self, pfn: int, order: int) -> None:
        """Free a block; routes to the owning zone."""
        self.zone_of(pfn).free_block(pfn, order)

    def is_free(self, pfn: int) -> bool:
        """True when the frame is inside a free buddy block."""
        zone = self.zone_of(pfn)
        return zone.is_free(pfn)

    # -- machine-aging utilities -----------------------------------------------

    def churn(self, ops: int, rng: random.Random, max_block_order: int = 6) -> None:
        """Randomize free-list ordering like an aged machine.

        Allocates and frees random small blocks so the LIFO free lists
        lose their boot-time address ordering.  Memory fully coalesces
        back afterwards, so free *contiguity* is preserved — only the
        order in which the default allocator hands out blocks becomes
        arbitrary, which is exactly the behaviour that inhibits
        contiguity under demand paging (paper §III-B).
        """
        held: list[tuple[int, int]] = []
        for _ in range(ops):
            if held and rng.random() < 0.5:
                i = rng.randrange(len(held))
                pfn, order = held.pop(i)
                self.free_block(pfn, order)
            else:
                order = rng.randint(0, max_block_order)
                node = rng.randrange(len(self.zones))
                try:
                    held.append((self.alloc_block(order, node), order))
                except OutOfMemoryError:
                    continue
        rng.shuffle(held)
        for pfn, order in held:
            self.free_block(pfn, order)

    def hog(
        self,
        fraction: float,
        rng: random.Random,
        block_order: int | None = None,
    ) -> list[tuple[int, int]]:
        """Fragment physical memory like the paper's hog microbenchmark.

        Pins ``fraction`` of total memory in randomly chosen blocks of
        ``block_order`` (default: MAX_ORDER, i.e. >2 MiB granularity as
        in the paper, so plenty of free 2 MiB pages remain).  Returns
        the pinned blocks so callers can release them later.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigError(f"hog fraction must be in [0, 1), got {fraction}")
        order = self.max_order if block_order is None else block_order
        goal = int(self.n_pages * fraction)
        pinned: list[tuple[int, int]] = []
        pinned_pages = 0
        attempts = 0
        while pinned_pages < goal and attempts < goal * 4:
            attempts += 1
            zone = rng.choice(self.zones)
            target = rng.randrange(
                zone.base_pfn, zone.end_pfn, order_pages(order)
            )
            if zone.alloc_target(target, order):
                pinned.append((target, order))
                pinned_pages += order_pages(order)
        return pinned

    def boot_reserve(
        self,
        fraction: float,
        rng: random.Random,
        scatter_blocks_per_node: int = 3,
    ) -> list[tuple[int, int]]:
        """Pin boot-time kernel memory the way a real machine does.

        Most of the reserve sits contiguously at the *bottom* of each
        node (kernel text, initrd, early allocations), leaving the bulk
        of the node as one giant free cluster; a few max-order blocks
        are pinned at random higher addresses (long-lived daemons).
        This is the boot state under which CA paging's placement finds
        VMA-sized clusters, like the paper's test machine.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigError(f"reserve fraction must be in [0, 1), got {fraction}")
        pinned: list[tuple[int, int]] = []
        # Pin at the stock kernel granularity even on raised-MAX_ORDER
        # machines (boot allocations do not grow with the patch).
        order = min(DEFAULT_MAX_ORDER, self.max_order)
        block = order_pages(order)
        for zone in self.zones:
            low_pages = int(zone.n_pages * fraction * 0.7)
            pfn = zone.base_pfn
            while low_pages >= block:
                if zone.alloc_target(pfn, order):
                    pinned.append((pfn, order))
                low_pages -= block
                pfn += block
            for _ in range(scatter_blocks_per_node):
                target = rng.randrange(zone.base_pfn, zone.end_pfn, block)
                if zone.alloc_target(target, order):
                    pinned.append((target, order))
        return pinned

    def release(self, blocks: Iterable[tuple[int, int]]) -> None:
        """Free blocks previously returned by :meth:`hog`."""
        for pfn, order in blocks:
            self.free_block(pfn, order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalMemory({len(self.zones)} zones, {self.n_pages} pages)"
