"""Virtualized execution: KVM-like nested paging.

- :mod:`repro.virt.hypervisor` — the host side: a VM's guest-physical
  space backed lazily by host memory through nested faults,
- :mod:`repro.virt.introspect` — the VMI tool: composes guest and
  nested page table information into full 2D (gVA→hPA) mappings, like
  the paper's in-house introspection tool (§V).
"""

from repro.virt.hypervisor import VirtualMachine
from repro.virt.introspect import (
    nested_runs,
    pte_contiguous_2d,
    two_d_runs,
)

__all__ = [
    "VirtualMachine",
    "nested_runs",
    "pte_contiguous_2d",
    "two_d_runs",
]
