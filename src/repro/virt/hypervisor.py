"""The hypervisor model: nested paging a la KVM.

A :class:`VirtualMachine` owns

- a *host-side process* (the QEMU analogue) whose single big anonymous
  VMA represents the guest-physical (gPA) space; host page tables for
  that VMA play the role of the nested page tables (gPA→hPA),
- a *guest kernel* (an independent :class:`~repro.sim.kernel.Kernel`)
  whose "physical" memory is the gPA space, with its own buddy
  allocator, contiguity map and placement policy.

A guest page fault allocates gPA frames through the guest policy; the
first touch of each gPA region raises a *nested fault* which the host
kernel serves through the host policy.  CA paging therefore operates in
each dimension independently, exactly as in the paper (§III-C,
"virtualized execution"): the nested (gPA→hPA) mappings persist for the
VM's lifetime while guest mappings come and go with guest processes.
"""

from __future__ import annotations

import random

from repro.errors import AddressSpaceError, VirtualizationError
from repro.mm.physmem import PhysicalMemory
from repro.sim.kernel import FaultResult, Kernel
from repro.sim.machine import Machine
from repro.units import order_pages
from repro.vm.flags import DEFAULT_ANON
from repro.vm.process import Process


class VirtualMachine:
    """One VM: guest kernel + host backing via nested faults.

    Parameters
    ----------
    host:
        The host machine (its kernel runs the host/nested dimension
        placement policy).
    guest_pages:
        Guest-physical memory size in frames.
    guest_policy:
        Placement policy instance (or name) for the guest kernel.
    guest_config_knobs:
        ``max_order`` / ``sorted_max_order`` / ``thp`` of the guest
        kernel; defaults mirror the host's configuration object.
    """

    def __init__(
        self,
        host: Machine,
        guest_pages: int,
        guest_policy,
        guest_thp: bool | None = None,
        guest_max_order: int | None = None,
        guest_sorted_max_order: bool | None = None,
        aged: bool = True,
        name: str = "vm0",
    ):
        from repro.policies import make_policy

        self.host = host
        self.name = name
        cfg = host.config
        if isinstance(guest_policy, str):
            policy_name = guest_policy
            guest_cfg = cfg.for_policy(policy_name)
            guest_policy = make_policy(policy_name)
            if guest_max_order is None:
                guest_max_order = guest_cfg.max_order
            if guest_sorted_max_order is None:
                guest_sorted_max_order = guest_cfg.sorted_max_order
            if guest_thp is None:
                # Ingens-style guests disable synchronous THP faults;
                # everything else runs THP regardless of the host knob.
                guest_thp = guest_cfg.thp if policy_name == "ingens" else True
        if guest_thp is None:
            guest_thp = True
        if guest_max_order is None:
            guest_max_order = cfg.max_order
        if guest_sorted_max_order is None:
            guest_sorted_max_order = cfg.sorted_max_order

        top = order_pages(guest_max_order)
        if guest_pages % top:
            raise VirtualizationError(
                f"guest memory ({guest_pages} pages) must be a multiple of "
                f"the guest max block ({top} pages)"
            )

        # Host side: the QEMU process and the VM-memory VMA.
        self.qemu = host.kernel.create_process(f"qemu-{name}")
        self.vm_vma = host.kernel.mmap(
            self.qemu, guest_pages, flags=DEFAULT_ANON, name=f"{name}-memory"
        )

        # Guest side: an independent kernel over the gPA space.
        self.guest_mem = PhysicalMemory(
            [guest_pages],
            max_order=guest_max_order,
            sorted_max_order=guest_sorted_max_order,
        )
        rng = random.Random(cfg.seed + 1)
        if aged:
            # The guest kernel pins its own boot-time allocations
            # (kernel text, page tables, daemons), breaking guest
            # memory into several free clusters like the host's.
            if cfg.reserve_fraction > 0:
                self.guest_mem.boot_reserve(cfg.reserve_fraction, rng)
            if cfg.churn_ops:
                self.guest_mem.churn(cfg.churn_ops, rng)
        self.guest_kernel = Kernel(
            self.guest_mem,
            guest_policy,
            thp=guest_thp,
            contig_threshold=cfg.contig_threshold,
            tick_every_faults=cfg.tick_every_faults,
            engine=cfg.engine,
        )
        self.nested_faults = 0
        #: Callables ``(process, FaultResult)`` run after every guest
        #: fault that installed a mapping (once its gPA range is
        #: nested-backed) — the shadow pager syncs from here.
        self.fault_hooks: list = []
        #: Set by :func:`repro.virt.shadow.attach_shadow_paging`; when
        #: present, guest process exits drop their shadow tables too.
        self.shadow_pager = None

    # -- address plumbing -----------------------------------------------------

    @property
    def guest_pages(self) -> int:
        """Guest-physical memory size in frames."""
        return self.vm_vma.n_pages

    def host_vpn(self, gpa_page: int) -> int:
        """Host virtual page backing guest-physical page ``gpa_page``."""
        if not 0 <= gpa_page < self.guest_pages:
            raise VirtualizationError(
                f"gPA page {gpa_page:#x} outside guest memory"
            )
        return self.vm_vma.start_vpn + gpa_page

    def gpa_to_hpa(self, gpa_page: int) -> int | None:
        """Nested translation of one guest-physical page (None if unbacked)."""
        return self.qemu.space.translate(self.host_vpn(gpa_page))

    # -- nested faults -----------------------------------------------------------

    def ensure_backed(self, gpa_page: int, n_pages: int = 1) -> int:
        """Back a gPA range with host memory; returns nested fault count.

        Called when the guest touches freshly allocated guest-physical
        memory.  Already-backed pages are skipped (nested mappings
        persist for the VM's lifetime).
        """
        start = self.host_vpn(gpa_page)
        faults = self.host.kernel.touch_range(self.qemu, start, n_pages)
        # touch_range also counts toward qemu "touched" accounting;
        # the guest drives that, so undo the double count.
        self.qemu.touched_pages -= n_pages
        self.nested_faults += faults
        return faults

    # -- guest-side execution -------------------------------------------------------

    def create_guest_process(self, name: str = "") -> Process:
        """Spawn a process inside the guest."""
        return self.guest_kernel.create_process(name)

    def guest_mmap(self, process: Process, n_pages: int, **kwargs):
        """mmap inside the guest; eager guest policies back gPA at once."""
        vma = self.guest_kernel.mmap(process, n_pages, **kwargs)
        if self.guest_kernel.policy.prefaults:
            self._back_mapped_range(process, vma.start_vpn, vma.n_pages)
        return vma

    def guest_fault(self, process: Process, vpn: int, write: bool = True) -> FaultResult:
        """Guest page fault + nested backing of the granted gPA frames."""
        result = self.guest_kernel.fault(process, vpn, write)
        if not result.minor:
            self.ensure_backed(result.pfn, order_pages(result.order))
            for hook in self.fault_hooks:
                hook(process, result)
        return result

    def guest_touch_range(self, process: Process, start_vpn: int, n_pages: int,
                          write: bool = True) -> int:
        """Touch a guest virtual range, faulting in both dimensions.

        Mapped guest stretches are skipped via the mapping runs and
        unmapped gaps go through the guest kernel's batched
        ``fault_span``; each granted guest leaf is nested-backed
        immediately, exactly like the per-page :meth:`guest_fault` path.
        The ``scalar`` guest engine routes the reference per-leaf loop.
        A ``columnar`` guest with no fault hooks nested-backs whole
        granted segments through ``on_span`` (one host ``touch_range``
        per physically contiguous gPA stretch); with hooks installed it
        keeps the per-fault ``on_fault`` callback, which routes the span
        through the per-leaf path so every hook sees its FaultResult.
        """
        if self.guest_kernel.engine == "scalar":
            return self._guest_touch_range_scalar(process, start_vpn, n_pages, write)
        majors = 0
        vpn = start_vpn
        end = start_vpn + n_pages
        space = process.space

        def back(result: FaultResult) -> None:
            self.ensure_backed(result.pfn, order_pages(result.order))
            for hook in self.fault_hooks:
                hook(process, result)

        on_fault = back
        on_span = None
        if self.guest_kernel.engine == "columnar" and not self.fault_hooks:
            on_fault = None

            def on_span(_vpn: int, pfn: int, n: int) -> None:
                self.ensure_backed(pfn, n)

        while vpn < end:
            gap = space.runs.next_unmapped(vpn, end)
            if gap is None:
                break
            gap_start, gap_end = gap
            vma = space.vma_at(gap_start)
            if vma is None:
                raise AddressSpaceError(
                    f"segfault: pid {process.pid} touched unmapped vpn {gap_start:#x}"
                )
            n, vpn = self.guest_kernel.fault_span(
                process, vma, gap_start, min(gap_end, vma.end_vpn), write,
                on_fault=on_fault, on_span=on_span,
            )
            majors += n
        process.touched_pages += n_pages
        return majors

    def _guest_touch_range_scalar(self, process: Process, start_vpn: int,
                                  n_pages: int, write: bool = True) -> int:
        """Reference per-leaf :meth:`guest_touch_range` (scalar engine)."""
        majors = 0
        vpn = start_vpn
        end = start_vpn + n_pages
        space = process.space
        while vpn < end:
            walk = space.page_table.walk(vpn)
            if walk.hit:
                vpn = walk.base_vpn + order_pages(walk.pte.order)
                continue
            result = self.guest_fault(process, vpn, write)
            majors += 1
            vpn = result.vpn + order_pages(result.order)
        process.touched_pages += n_pages
        return majors

    def guest_file_read(self, file, index: int) -> int:
        """Guest page-cache read + nested backing of the cached frames."""
        gpa = self.guest_kernel.file_read(file, index)
        fill = self.guest_kernel.page_cache.last_fill
        i = 0
        while i < len(fill):
            # Coalesce gPA-contiguous frames into one backing request.
            _, frame = fill[i]
            n = 1
            while i + n < len(fill) and fill[i + n][1] == frame + n:
                n += 1
            self.ensure_backed(frame, n)
            i += n
        return gpa

    def guest_exit_process(self, process: Process) -> None:
        """Tear down a guest process.

        Guest frames return to the guest buddy allocator, but nested
        (gPA→hPA) mappings persist — the host does not reclaim VM
        memory, matching §III-C's aging behaviour.  Under shadow paging
        the process's shadow table drops with it.
        """
        if self.shadow_pager is not None:
            self.shadow_pager.drop(process)
        self.guest_kernel.exit_process(process)

    def _back_mapped_range(self, process: Process, start_vpn: int, n_pages: int) -> None:
        # One nested-backing request per gPA-contiguous guest run, not
        # one per leaf (the host kernel skips already-backed spans).
        end = start_vpn + n_pages
        for run in list(process.space.runs):
            if run.end_vpn <= start_vpn or run.start_vpn >= end:
                continue
            lo = max(run.start_vpn, start_vpn)
            hi = min(run.end_vpn, end)
            self.ensure_backed(run.translate(lo), hi - lo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualMachine({self.name}, {self.guest_pages} gPA pages, "
            f"guest={self.guest_kernel.policy.name}, host={self.host.policy.name})"
        )
