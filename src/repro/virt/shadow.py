"""Shadow paging: the alternative MMU-virtualization technique.

With shadow paging the hypervisor maintains *shadow page tables* that
map gVA→hPA directly, so a TLB miss walks one 4-level table at native
cost instead of the 24-reference nested walk.  The price moves to the
fault path: every guest page-table update traps into the hypervisor
(a VM exit) to keep the shadow in sync.

The paper evaluates nested paging (the state of practice) but notes
CA paging and SpOT are "agnostic to the virtualization technology and
directly applicable to shadow and hybrid paging" (§VII).  This module
implements the shadow side so that claim is testable:

- a :class:`ShadowPager` mirrors every guest mapping into a per-process
  shadow table, *splintering* guest huge leaves whose gPA range is not
  backed by one huge nested mapping (the same splintering the TLB sees
  under nested paging),
- sync counts feed a cost model (VM exit + emulation per guest PTE
  update), letting experiments locate the classic crossover: shadow
  wins on TLB-miss-heavy phases, nested wins on fault-heavy ones —
  the trade-off that motivated agile paging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import HUGE_ORDER, HUGE_PAGES, is_aligned, order_pages
from repro.virt.hypervisor import VirtualMachine
from repro.vm.flags import PteFlags
from repro.vm.page_table import PageTable
from repro.vm.process import Process

#: Cycles per shadow synchronization (VM exit + shadow PTE emulation);
#: the order of magnitude KVM reports for shadow-MMU page faults.
SHADOW_SYNC_CYCLES = 2700.0


@dataclass
class ShadowStats:
    """Shadow-pager counters."""

    syncs: int = 0
    installed_leaves: int = 0
    splintered_leaves: int = 0
    dropped_tables: int = 0


class ShadowPager:
    """Maintains gVA→hPA shadow page tables for a VM's guest processes."""

    def __init__(self, vm: VirtualMachine):
        self.vm = vm
        self._tables: dict[int, PageTable] = {}
        self.stats = ShadowStats()

    def table_for(self, process: Process) -> PageTable:
        """The shadow table of a guest process (created on demand)."""
        table = self._tables.get(process.pid)
        if table is None:
            table = PageTable()
            self._tables[process.pid] = table
        return table

    # -- sync path -----------------------------------------------------------

    def sync_fault(self, process: Process, base_vpn: int, gpa: int,
                   order: int) -> None:
        """Mirror one guest mapping into the shadow table.

        Called after the guest installed ``base_vpn -> gpa`` (a leaf of
        ``order``) and the hypervisor backed the gPA range.  A guest
        huge leaf stays huge in the shadow only when the whole gPA
        range is backed by a single aligned huge nested mapping;
        otherwise it splinters into 4 KiB shadow entries.
        """
        self.stats.syncs += 1
        shadow = self.table_for(process)
        self._invalidate(shadow, base_vpn, order_pages(order))
        if order == HUGE_ORDER and self._huge_backing(gpa):
            hpa = self.vm.gpa_to_hpa(gpa)
            shadow.map(base_vpn, hpa, order=HUGE_ORDER, flags=PteFlags.USER)
            self.stats.installed_leaves += 1
            return
        if order == HUGE_ORDER:
            self.stats.splintered_leaves += 1
        for i in range(order_pages(order)):
            hpa = self.vm.gpa_to_hpa(gpa + i)
            if hpa is None:
                continue
            shadow.map(base_vpn + i, hpa, flags=PteFlags.USER)
            self.stats.installed_leaves += 1

    @staticmethod
    def _invalidate(shadow: PageTable, base_vpn: int, n_pages: int) -> None:
        """Drop stale shadow leaves in a range (COW breaks, remaps)."""
        vpn = base_vpn
        end = base_vpn + n_pages
        while vpn < end:
            walk = shadow.walk(vpn)
            if walk.hit:
                shadow.unmap(vpn)
                vpn = walk.base_vpn + order_pages(walk.pte.order)
            else:
                vpn += 1

    def _huge_backing(self, gpa: int) -> bool:
        if not is_aligned(gpa, HUGE_PAGES):
            return False
        walk = self.vm.qemu.space.page_table.walk(self.vm.host_vpn(gpa))
        return (
            walk.hit
            and walk.pte.huge
            and walk.base_vpn == self.vm.host_vpn(gpa)
        )

    def drop(self, process: Process) -> None:
        """Discard a process's shadow table (guest exit / flush)."""
        if self._tables.pop(process.pid, None) is not None:
            self.stats.dropped_tables += 1

    # -- verification ----------------------------------------------------------

    def translate(self, process: Process, vpn: int) -> int | None:
        """Shadow translation of one guest virtual page."""
        return self.table_for(process).translate(vpn)

    def verify(self, process: Process, sample_vpns) -> bool:
        """Shadow must agree with the composed 2D translation."""
        from repro.virt.introspect import two_d_runs

        runs = two_d_runs(self.vm, process)
        for vpn in sample_vpns:
            run = runs.find(vpn)
            expected = run.translate(vpn) if run else None
            if self.translate(process, vpn) != expected:
                return False
        return True


class ShadowSyncHook:
    """Fault hook mirroring guest mapping installs into the shadow.

    A module-level class (not a closure) so a shadow-paging VM stays
    picklable: chain-stage checkpoints serialize the whole VM — pager,
    hook and tables — and the unpickled hook still points at the same
    pager object.
    """

    def __init__(self, pager: ShadowPager):
        self.pager = pager

    def __call__(self, process, result) -> None:
        self.pager.sync_fault(process, result.vpn, result.pfn, result.order)


def attach_shadow_paging(vm: VirtualMachine) -> ShadowPager:
    """Switch a VM to shadow paging.

    Registers a fault hook so every guest mapping install (single
    faults and batched ``guest_touch_range`` spans alike) also syncs
    the shadow table; ``vm.shadow_pager`` makes ``guest_exit_process``
    drop each table with its process.  Returns the pager (stats +
    tables).
    """
    pager = ShadowPager(vm)
    vm.fault_hooks.append(ShadowSyncHook(pager))
    vm.shadow_pager = pager
    return pager
