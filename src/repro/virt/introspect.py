"""Virtual-machine introspection: full 2D (gVA→hPA) mapping extraction.

The paper measures virtualized contiguity with an in-house VMI tool
that reads the guest page table and the nested page tables and combines
them into 2D translations (§V).  These helpers are that tool: they
compose a guest process's gVA→gPA mapping runs with the VM's gPA→hPA
nested runs into effective 2D runs, and answer the combined
contiguity-bit question the SpOT table-fill filter asks.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.units import HUGE_PAGES
from repro.virt.hypervisor import VirtualMachine
from repro.vm.mapping_runs import MappingRuns, compose
from repro.vm.process import Process

#: vm -> {pid: (guest_generation, host_generation, composed runs)}.
#: Composition is O(runs) and samplers call it every epoch, so cache it
#: behind the generation counters of both dimensions.
_TWO_D_CACHE: "WeakKeyDictionary[VirtualMachine, dict]" = WeakKeyDictionary()


def nested_runs(vm: VirtualMachine) -> MappingRuns:
    """The VM's gPA→hPA mapping runs (the nested dimension).

    Host-side runs of the VM-memory VMA, re-based so keys are guest
    physical pages instead of host virtual pages.
    """
    base = vm.vm_vma.start_vpn
    end = vm.vm_vma.end_vpn
    result = MappingRuns()
    for run in vm.qemu.space.runs:
        if run.end_vpn <= base or run.start_vpn >= end:
            continue
        start = max(run.start_vpn, base)
        stop = min(run.end_vpn, end)
        result.add(start - base, run.translate(start), stop - start)
    return result


def two_d_runs(vm: VirtualMachine, process: Process) -> MappingRuns:
    """Effective 2D (gVA→hPA) contiguous mappings of a guest process.

    A 2D run continues only while both the guest (gVA→gPA) and the
    nested (gPA→hPA) dimensions stay contiguous — the paper's
    effective-contiguity definition (Fig. 5).

    The result is memoized per (vm, process) behind the generation
    counters of both dimensions' :class:`MappingRuns`, so repeated
    sampling of an unchanged state is O(1).  Callers must treat the
    returned runs as read-only.
    """
    key = (process.space.runs.generation, vm.qemu.space.runs.generation)
    per_vm = _TWO_D_CACHE.setdefault(vm, {})
    cached = per_vm.get(process.pid)
    if cached is not None and cached[0] == key:
        return cached[1]
    runs = compose(process.space.runs, nested_runs(vm))
    per_vm[process.pid] = (key, runs)
    return runs


def pte_contiguous_2d(
    vm: VirtualMachine, process: Process, vpn: int, threshold: int = 32
) -> bool:
    """Both-dimensions contiguity-bit check (SpOT fill filter, §IV-C).

    The guest OS sets the bit in gPTEs of guest mappings >= threshold;
    the host sets it in nPTEs of nested mappings >= threshold.  The
    nested walker fills SpOT's table only when both are set.
    """
    guest_run = process.space.runs.find(vpn)
    if guest_run is None or guest_run.n_pages < threshold:
        return False
    gpa = guest_run.translate(vpn)
    host_run = vm.qemu.space.runs.find(vm.host_vpn(gpa))
    return host_run is not None and host_run.n_pages >= threshold


def entry_is_huge_2d(vm: VirtualMachine, process: Process, vpn: int) -> bool:
    """Can hardware cache a 2 MiB TLB entry for ``vpn``?

    Requires a huge guest leaf whose whole gPA range is backed by one
    huge nested leaf; otherwise the nested dimension splinters the TLB
    entry down to 4 KiB (the Glue/vTHP splintering problem).
    """
    walk = process.space.page_table.walk(vpn)
    if not walk.hit or not walk.pte.huge:
        return False
    gpa_base = walk.pte.pfn
    host_walk = vm.qemu.space.page_table.walk(vm.host_vpn(gpa_base))
    if not host_walk.hit or not host_walk.pte.huge:
        return False
    # The guest huge page must sit inside exactly one nested huge leaf.
    return host_walk.base_vpn <= vm.host_vpn(gpa_base) and vm.host_vpn(
        gpa_base + HUGE_PAGES - 1
    ) < host_walk.base_vpn + HUGE_PAGES
