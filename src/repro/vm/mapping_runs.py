"""Incremental tracking of contiguous virtual-to-physical mapping runs.

A *mapping run* is the paper's larger-than-a-page contiguous mapping
(Fig. 1a): ``N`` consecutive virtual pages mapped to ``N`` consecutive
physical frames, identified by a single ``offset = vpn - pfn``.  This
structure maintains the set of maximal runs of an address space
incrementally, so that:

- the contiguity metrics (coverage of the K largest mappings, number of
  mappings for 99% coverage — Figs. 7/8/10/12, Table I) read it in
  O(runs) instead of scanning page tables,
- the kernel decides in O(log runs) whether a new allocation extended a
  mapping past the SpOT contiguity-bit threshold (§IV-C),
- range-based hardware models (vRMM) derive their range tables from it.

The same composition logic (intersection of two run sets) produces the
2D gVA→hPA runs for virtualized execution (:mod:`repro.virt.introspect`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass
class MappingRun:
    """A maximal contiguous virtual-to-physical mapping."""

    start_vpn: int
    start_pfn: int
    n_pages: int

    @property
    def end_vpn(self) -> int:
        """One past the last virtual page of the run."""
        return self.start_vpn + self.n_pages

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the run."""
        return self.start_pfn + self.n_pages

    @property
    def offset(self) -> int:
        """The paper's Offset identifier (vpn − pfn, in pages)."""
        return self.start_vpn - self.start_pfn

    def contains_vpn(self, vpn: int) -> bool:
        """True when ``vpn`` falls inside the run."""
        return self.start_vpn <= vpn < self.end_vpn

    def translate(self, vpn: int) -> int:
        """PFN backing ``vpn``."""
        return vpn - self.offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Run(vpn={self.start_vpn:#x}->pfn={self.start_pfn:#x},"
            f" {self.n_pages}p)"
        )


class MappingRuns:
    """Sorted collection of maximal mapping runs with O(log n) updates."""

    def __init__(self) -> None:
        self._starts: list[int] = []  # sorted start_vpn keys
        self._runs: dict[int, MappingRun] = {}
        #: Bumped on every structural change; lets derived views (the
        #: composed 2D runs, translation snapshots) cache safely.
        self.generation = 0

    # -- updates ---------------------------------------------------------------

    def add(self, vpn: int, pfn: int, n_pages: int = 1) -> MappingRun:
        """Record a new mapping block; merges with adjacent runs.

        Returns the (possibly merged) run now covering the block.
        """
        run = MappingRun(vpn, pfn, n_pages)
        # Merge with predecessor when virtually adjacent with equal offset.
        i = bisect.bisect_left(self._starts, vpn)
        if i > 0:
            prev = self._runs[self._starts[i - 1]]
            if prev.end_vpn == vpn and prev.offset == run.offset:
                self._drop(prev)
                run = MappingRun(prev.start_vpn, prev.start_pfn, prev.n_pages + n_pages)
        # Merge with successor.
        i = bisect.bisect_left(self._starts, run.start_vpn)
        if i < len(self._starts):
            nxt = self._runs[self._starts[i]]
            if run.end_vpn == nxt.start_vpn and nxt.offset == run.offset:
                self._drop(nxt)
                run = MappingRun(run.start_vpn, run.start_pfn, run.n_pages + nxt.n_pages)
        self._insert(run)
        return run

    def remove(self, vpn: int, n_pages: int = 1) -> None:
        """Remove ``n_pages`` starting at ``vpn``; splits runs as needed."""
        self.remove_span(vpn, vpn + n_pages)

    def remove_span(self, vpn: int, end: int) -> list[tuple[int, int, int]]:
        """Remove all coverage in ``[vpn, end)``; returns removed chunks.

        Each chunk is ``(vpn, pfn, n_pages)`` of one removed contiguous
        mapping, in VPN order.  Uncovered holes are skipped via the
        sorted starts (O(log runs) per chunk, not per page), which is
        what lets the batched unmap paths free whole physical stretches
        at once.
        """
        removed: list[tuple[int, int, int]] = []
        while vpn < end:
            run = self.find(vpn)
            if run is None:
                i = bisect.bisect_left(self._starts, vpn)
                if i >= len(self._starts) or self._starts[i] >= end:
                    break
                vpn = self._starts[i]
                continue
            cut_end = min(end, run.end_vpn)
            removed.append((vpn, vpn - run.offset, cut_end - vpn))
            self._drop(run)
            if run.start_vpn < vpn:
                self._insert(MappingRun(run.start_vpn, run.start_pfn, vpn - run.start_vpn))
            if cut_end < run.end_vpn:
                self._insert(
                    MappingRun(cut_end, cut_end - run.offset, run.end_vpn - cut_end)
                )
            vpn = cut_end
        return removed

    def _insert(self, run: MappingRun) -> None:
        bisect.insort(self._starts, run.start_vpn)
        self._runs[run.start_vpn] = run
        self.generation += 1

    def _drop(self, run: MappingRun) -> None:
        i = bisect.bisect_left(self._starts, run.start_vpn)
        del self._starts[i]
        del self._runs[run.start_vpn]
        self.generation += 1

    # -- queries --------------------------------------------------------------

    def find(self, vpn: int) -> MappingRun | None:
        """The run covering ``vpn``, or None."""
        i = bisect.bisect_right(self._starts, vpn)
        if i == 0:
            return None
        run = self._runs[self._starts[i - 1]]
        return run if run.contains_vpn(vpn) else None

    def next_unmapped(self, vpn: int, end: int) -> tuple[int, int] | None:
        """First maximal uncovered span within ``[vpn, end)``, or None.

        Because runs mirror the page table exactly, this finds the next
        stretch of unmapped pages in O(log runs) instead of walking the
        table page by page (the ``touch_range`` fast path).
        """
        while vpn < end:
            run = self.find(vpn)
            if run is None:
                i = bisect.bisect_left(self._starts, vpn)
                gap_end = self._starts[i] if i < len(self._starts) else end
                return vpn, min(end, gap_end)
            vpn = run.end_vpn
        return None

    def covered_pages(self, vpn: int, end: int) -> int:
        """Mapped pages within ``[vpn, end)`` (runs mirror the page table)."""
        covered = 0
        run = self.find(vpn)
        i = bisect.bisect_left(self._starts, vpn if run is None else run.start_vpn)
        while i < len(self._starts) and self._starts[i] < end:
            r = self._runs[self._starts[i]]
            covered += min(end, r.end_vpn) - max(vpn, r.start_vpn)
            i += 1
        return covered

    def run_length_at(self, vpn: int) -> int:
        """Length (pages) of the run covering ``vpn``; 0 when unmapped."""
        run = self.find(vpn)
        return run.n_pages if run else 0

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[MappingRun]:
        return (self._runs[s] for s in self._starts)

    @property
    def total_pages(self) -> int:
        """Total pages covered by all runs."""
        return sum(r.n_pages for r in self._runs.values())

    def sizes_desc(self) -> list[int]:
        """Run sizes in pages, largest first."""
        return sorted((r.n_pages for r in self._runs.values()), reverse=True)

    def snapshot(self) -> list[MappingRun]:
        """Copy of all runs in VPN order."""
        return [
            MappingRun(r.start_vpn, r.start_pfn, r.n_pages)
            for r in self
        ]


def compose(first: Iterable[MappingRun], second: MappingRuns) -> MappingRuns:
    """Compose two translation dimensions into full 2D runs.

    ``first`` maps A→B (e.g. gVA→gPA) and ``second`` maps B→C (e.g.
    gPA→hPA); the result maps A→C (gVA→hPA).  Each first-dimension run
    is intersected with the second-dimension runs covering its
    intermediate range; a 2D run continues only while *both* dimensions
    stay contiguous — exactly the paper's effective-contiguity notion
    (Fig. 5) and the logic of our VMI introspection tool.
    """
    result = MappingRuns()
    for run in first:
        b = run.start_pfn  # intermediate address (dimension-B page)
        b_end = run.end_pfn
        while b < b_end:
            inner = second.find(b)
            if inner is None:
                b += 1
                continue
            span = min(b_end, inner.end_vpn) - b
            vpn = run.start_vpn + (b - run.start_pfn)
            result.add(vpn, inner.translate(b), span)
            b += span
    return result
