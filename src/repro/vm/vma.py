"""Virtual memory areas with CA paging's per-VMA offset metadata.

The only metadata CA paging adds to Linux's ``vm_area_struct`` is a
small FIFO of *Offsets*: each entry remembers the ``vpn − pfn`` offset
chosen by a placement decision together with the virtual address of the
fault that created it.  On a fault the policy picks the offset whose
recorded fault address is closest to the faulting address (paper
§III-C, "dealing with external fragmentation"); the FIFO is bounded (64
entries in the paper) to keep the search cheap.

Multithreaded fault races are modelled with the paper's atomic
``replacement`` flag: only one logical thread may trigger a
re-placement at a time (others retry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.vm.flags import VmaFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.page_cache import CachedFile

#: Paper bound on per-VMA offsets.
MAX_OFFSETS = 64


@dataclass
class VmaOffset:
    """One CA placement decision: offset chosen at a given fault address."""

    fault_vpn: int
    offset: int  # vpn - pfn, in pages


class Vma:
    """A contiguous virtual address range of a process."""

    __slots__ = (
        "start_vpn",
        "n_pages",
        "flags",
        "name",
        "file",
        "offsets",
        "max_offsets",
        "replacement_in_progress",
        "mapped_pages",
    )

    def __init__(
        self,
        start_vpn: int,
        n_pages: int,
        flags: VmaFlags,
        name: str = "",
        file: "CachedFile | None" = None,
        max_offsets: int = MAX_OFFSETS,
    ):
        self.start_vpn = start_vpn
        self.n_pages = n_pages
        self.flags = flags
        self.name = name
        self.file = file
        #: FIFO of CA placement offsets (newest last).
        self.offsets: list[VmaOffset] = []
        self.max_offsets = max_offsets
        #: The paper's atomic flag: a re-placement is underway.
        self.replacement_in_progress = False
        #: Pages of this VMA currently backed by frames (bookkeeping).
        self.mapped_pages = 0

    @property
    def end_vpn(self) -> int:
        """One past the last page of the area."""
        return self.start_vpn + self.n_pages

    def contains(self, vpn: int) -> bool:
        """True when ``vpn`` falls inside the area."""
        return self.start_vpn <= vpn < self.end_vpn

    @property
    def unmapped_pages(self) -> int:
        """Pages not yet backed by frames."""
        return self.n_pages - self.mapped_pages

    # -- CA offset metadata -----------------------------------------------

    def record_offset(self, fault_vpn: int, offset: int) -> None:
        """Push a new placement offset, evicting FIFO-style when full."""
        self.offsets.append(VmaOffset(fault_vpn, offset))
        if len(self.offsets) > self.max_offsets:
            self.offsets.pop(0)

    def pick_offset(self, vpn: int) -> VmaOffset | None:
        """The offset recorded closest (in VA) to the faulting address."""
        if not self.offsets:
            return None
        return min(self.offsets, key=lambda o: abs(o.fault_vpn - vpn))

    def clear_offsets(self) -> None:
        """Drop all placement metadata (used on munmap reuse)."""
        self.offsets.clear()

    def try_begin_replacement(self) -> bool:
        """Atomically claim the right to run a re-placement decision."""
        if self.replacement_in_progress:
            return False
        self.replacement_in_progress = True
        return True

    def end_replacement(self) -> None:
        """Release the re-placement claim."""
        self.replacement_in_progress = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vma({self.name or 'anon'}, vpn=[{self.start_vpn:#x},"
            f"{self.end_vpn:#x}), {self.n_pages}p)"
        )
