"""File page cache with readahead and a per-file CA offset.

CA paging also steers the *readahead* allocations of the page cache:
each file (Linux ``struct address_space``) gets its own Offset so that
cached file pages land physically contiguous (paper §III-C, "supported
faults").  Scattered page-cache pages outlive processes and fragment
physical memory; contiguous ones restrain fragmentation — this is what
Fig. 9 measures after benchmark batches.

The cache here is intentionally small: files are identified by an
inode number, pages by index, and eviction is explicit (``drop``);
that is all the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressSpaceError
from repro.vm.mapping_runs import MappingRuns

#: Pages brought in around a faulting index by default (Linux-like window).
DEFAULT_READAHEAD_PAGES = 8


@dataclass
class CachedFile:
    """A file known to the page cache (``struct address_space`` analogue)."""

    inode: int
    n_pages: int
    name: str = ""
    #: CA paging per-file offset: file_index - pfn (None until first use).
    ca_offset: int | None = None
    #: index -> pfn of resident pages.
    pages: dict[int, int] = field(default_factory=dict)

    @property
    def resident_pages(self) -> int:
        """Number of cached pages of this file."""
        return len(self.pages)


class PageCache:
    """System-wide page cache.

    The cache does not allocate frames itself; the kernel passes an
    ``allocate(file, index, n_pages) -> list[pfn]`` callable so the
    active placement policy decides frame placement (CA steers it with
    the per-file offset).
    """

    def __init__(self, readahead_pages: int = DEFAULT_READAHEAD_PAGES):
        self.readahead_pages = readahead_pages
        self._files: dict[int, CachedFile] = {}
        #: (name, n_pages) -> first file registered under that identity;
        #: lets runs reopen shared inputs in O(1) instead of scanning
        #: every file (machines aged with many scratch files otherwise
        #: pay an O(#files) lookup per run).
        self._by_name: dict[tuple[str, int], CachedFile] = {}
        self._next_inode = 1
        #: runs of file-index -> pfn contiguity, per inode (diagnostics).
        self.runs: dict[int, MappingRuns] = {}
        self.fault_count = 0
        self.readahead_count = 0
        #: (index, pfn) pairs populated by the most recent miss — lets
        #: the hypervisor back exactly the new frames without scanning.
        self.last_fill: list[tuple[int, int]] = []
        #: Reverse map pfn -> (inode, index): which cached page owns a
        #: frame (migration/defragmentation support).
        self.frame_owner: dict[int, tuple[int, int]] = {}

    # -- file management -----------------------------------------------------

    def open(self, n_pages: int, name: str = "") -> CachedFile:
        """Register a file of ``n_pages`` with the cache."""
        if n_pages <= 0:
            raise AddressSpaceError(f"file of {n_pages} pages")
        file = CachedFile(self._next_inode, n_pages, name=name)
        self._files[file.inode] = file
        self._by_name.setdefault((name, n_pages), file)
        self.runs[file.inode] = MappingRuns()
        self._next_inode += 1
        return file

    def file(self, inode: int) -> CachedFile:
        """Look up a registered file."""
        return self._files[inode]

    def find(self, name: str, n_pages: int) -> CachedFile | None:
        """The first file opened as (name, n_pages), if any.

        Matches the registration-order semantics of scanning
        ``iter_files`` — the earliest matching file wins — without the
        linear scan.
        """
        return self._by_name.get((name, n_pages))

    def iter_files(self):
        """All registered files."""
        return iter(self._files.values())

    # -- access path -----------------------------------------------------------

    def read(self, file: CachedFile, index: int, allocate) -> int:
        """Access page ``index`` of ``file``; returns its PFN.

        A miss triggers readahead: the window of
        ``readahead_pages`` starting at the faulting index (clamped to
        the file) is populated in one allocation request so the policy
        can place it contiguously.
        """
        if not 0 <= index < file.n_pages:
            raise AddressSpaceError(
                f"index {index} outside file of {file.n_pages} pages"
            )
        pfn = file.pages.get(index)
        if pfn is not None:
            self.last_fill = []
            return pfn
        self.fault_count += 1
        window = min(self.readahead_pages, file.n_pages - index)
        # Do not re-read pages already resident inside the window.
        n = 0
        while n < window and (index + n) not in file.pages:
            n += 1
        pfns = allocate(file, index, n)
        if len(pfns) != n:
            raise AddressSpaceError(
                f"allocator returned {len(pfns)} frames for a {n}-page readahead"
            )
        self.readahead_count += max(0, n - 1)
        self.last_fill = []
        for i, frame in enumerate(pfns):
            file.pages[index + i] = frame
            self.runs[file.inode].add(index + i, frame, 1)
            self.frame_owner[frame] = (file.inode, index + i)
            self.last_fill.append((index + i, frame))
        return file.pages[index]

    def drop(self, file: CachedFile, release) -> int:
        """Evict every page of ``file``; calls ``release(pfn)`` per page.

        Returns the number of pages released.
        """
        count = 0
        for index, pfn in sorted(file.pages.items()):
            release(pfn)
            self.runs[file.inode].remove(index, 1)
            self.frame_owner.pop(pfn, None)
            count += 1
        file.pages.clear()
        return count

    def move_page(self, old_pfn: int, new_pfn: int) -> bool:
        """Retarget a cached page to a new frame (migration support)."""
        owner = self.frame_owner.pop(old_pfn, None)
        if owner is None:
            return False
        inode, index = owner
        self.file(inode).pages[index] = new_pfn
        self.runs[inode].remove(index, 1)
        self.runs[inode].add(index, new_pfn, 1)
        self.frame_owner[new_pfn] = owner
        return True

    @property
    def resident_pages(self) -> int:
        """Total pages held by the cache."""
        return sum(f.resident_pages for f in self._files.values())
