"""Flag bits for PTEs and VMAs.

``PteFlags.CONTIG`` models the reserved page-table bit the paper's OS
support sets on every PTE of a contiguous mapping that grew past the
threshold (32 pages by default); the nested page walker only fills
SpOT's prediction table when the bit is set in *both* dimensions
(paper §IV-C, "preventing thrashing").
"""

from __future__ import annotations

import enum


class PteFlags(enum.IntFlag):
    """x86-64-like page table entry bits (only the modelled subset)."""

    NONE = 0
    PRESENT = 1 << 0
    WRITE = 1 << 1
    USER = 1 << 2
    ACCESSED = 1 << 3
    DIRTY = 1 << 4
    HUGE = 1 << 5  # 2 MiB leaf at the PMD level
    COW = 1 << 6  # copy-on-write: write-protected shared page
    CONTIG = 1 << 7  # reserved bit: member of a large contiguous mapping


class VmaFlags(enum.IntFlag):
    """Virtual memory area attributes."""

    NONE = 0
    READ = 1 << 0
    WRITE = 1 << 1
    EXEC = 1 << 2
    ANON = 1 << 3  # anonymous memory (heap, mmap MAP_ANONYMOUS)
    FILE = 1 << 4  # file-backed (page cache)
    NOHUGE = 1 << 5  # THP disabled for this area (madvise-like)

    @property
    def writable(self) -> bool:
        """True when stores are allowed in the area."""
        return bool(self & VmaFlags.WRITE)


#: Default protection for anonymous test/workload mappings.
DEFAULT_ANON = VmaFlags.READ | VmaFlags.WRITE | VmaFlags.ANON
#: Default protection for file-backed mappings.
DEFAULT_FILE = VmaFlags.READ | VmaFlags.FILE
