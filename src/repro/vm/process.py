"""Process model: an address space plus identity and accounting."""

from __future__ import annotations

from repro.vm.address_space import AddressSpace


class Process:
    """One running process (or one guest kernel's pseudo-process)."""

    __slots__ = (
        "pid",
        "name",
        "space",
        "preferred_node",
        "touched_pages",
        "alive",
    )

    def __init__(self, pid: int, name: str = "", preferred_node: int = 0):
        self.pid = pid
        self.name = name or f"pid{pid}"
        self.space = AddressSpace()
        self.preferred_node = preferred_node
        #: Distinct pages the workload driver reports as touched (used
        #: for bloat accounting in Table VI).
        self.touched_pages = 0
        self.alive = True

    @property
    def resident_pages(self) -> int:
        """Base pages currently backed by frames."""
        return self.space.resident_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, name={self.name!r})"
