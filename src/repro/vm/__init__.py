"""Virtual memory substrate: page tables, VMAs, address spaces.

- :mod:`repro.vm.flags` — PTE and VMA flag bits (including the
  reserved *contiguity bit* SpOT's table-fill filter uses),
- :mod:`repro.vm.page_table` — x86-64-like 4-level radix page tables
  with 4 KiB and 2 MiB leaves,
- :mod:`repro.vm.mapping_runs` — incremental tracking of contiguous
  virtual-to-physical mapping runs (the paper's *Offset* mappings),
- :mod:`repro.vm.vma` — virtual memory areas with CA paging's per-VMA
  offset metadata (up to 64 offsets, FIFO),
- :mod:`repro.vm.address_space` — mmap/munmap and VMA lookup,
- :mod:`repro.vm.page_cache` — file page cache with readahead and a
  per-file CA offset.
"""

from repro.vm.address_space import AddressSpace
from repro.vm.flags import PteFlags, VmaFlags
from repro.vm.mapping_runs import MappingRun, MappingRuns
from repro.vm.page_cache import CachedFile, PageCache
from repro.vm.page_table import PageTable, Pte, WalkResult
from repro.vm.vma import Vma, VmaOffset

__all__ = [
    "AddressSpace",
    "CachedFile",
    "MappingRun",
    "MappingRuns",
    "PageCache",
    "PageTable",
    "Pte",
    "PteFlags",
    "Vma",
    "VmaFlags",
    "VmaOffset",
    "WalkResult",
]
