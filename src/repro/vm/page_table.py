"""Four-level radix page tables with 4 KiB and 2 MiB leaves.

Models x86-64 long-mode paging closely enough for the paper's purposes:
a 48-bit virtual address space translated through four levels of
512-entry tables (PGD → PUD → PMD → PT), with transparent-huge-page
leaves at the PMD level.  The same structure serves as the guest page
table (gVA→gPA) and the nested page table (gPA→hPA); the hardware
models in :mod:`repro.hw` consume :class:`WalkResult` to charge walk
latency and to read the contiguity bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MappingError
from repro.units import HUGE_ORDER, HUGE_PAGES, is_aligned
from repro.vm.flags import PteFlags

#: Bits of VPN consumed per level (512-entry tables).
LEVEL_BITS = 9
LEVEL_FANOUT = 1 << LEVEL_BITS
#: Default number of radix levels (PGD, PUD, PMD, PT).  Five-level
#: paging (LA57: an extra PGD level, the paper's intro motivation for
#: even costlier nested walks) is supported per table instance.
LEVELS = 4


class Pte:
    """A leaf page table entry."""

    __slots__ = ("pfn", "flags")

    def __init__(self, pfn: int, flags: PteFlags):
        self.pfn = pfn
        self.flags = flags

    @property
    def present(self) -> bool:
        """True when the entry maps a frame."""
        return bool(self.flags & PteFlags.PRESENT)

    @property
    def huge(self) -> bool:
        """True for a 2 MiB (PMD-level) leaf."""
        return bool(self.flags & PteFlags.HUGE)

    @property
    def order(self) -> int:
        """Buddy order of the mapped frame block (0 or HUGE_ORDER)."""
        return HUGE_ORDER if self.huge else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pte(pfn={self.pfn:#x}, flags={self.flags!r})"


@dataclass
class WalkResult:
    """Outcome of a page walk."""

    pte: Pte | None
    #: Base VPN covered by the leaf (vpn itself for 4K, 512-aligned for 2M).
    base_vpn: int
    #: Number of table levels referenced (3 for a huge leaf, 4 for 4K,
    #: however deep the walk got for a miss).
    levels: int

    @property
    def hit(self) -> bool:
        """True when a present leaf was found."""
        return self.pte is not None and self.pte.present

    def translate(self, vpn: int) -> int:
        """PFN backing ``vpn``; only valid on a hit."""
        if not self.hit:
            raise MappingError(f"translating unmapped vpn {vpn:#x}")
        return self.pte.pfn + (vpn - self.base_vpn)


class _Node:
    """One 512-entry page table node."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # index -> _Node (interior) or Pte (leaf)
        self.entries: dict[int, "_Node | Pte"] = {}


def _index(vpn: int, level: int) -> int:
    """Table index for ``vpn`` at ``level`` (level 4 = PGD ... 1 = PT)."""
    return (vpn >> (LEVEL_BITS * (level - 1))) & (LEVEL_FANOUT - 1)


class PageTable:
    """A per-address-space radix page table.

    Parameters
    ----------
    levels:
        Radix depth: 4 (x86-64 default) or 5 (LA57-style 57-bit VA).
    """

    def __init__(self, levels: int = LEVELS) -> None:
        if levels < 3:
            raise MappingError(f"page tables need >= 3 levels, got {levels}")
        self.levels = levels
        self._root = _Node()
        self._leaf_count = 0

    # -- mapping ------------------------------------------------------------

    def map(self, vpn: int, pfn: int, order: int = 0, flags: PteFlags = PteFlags.NONE) -> Pte:
        """Install a leaf mapping ``vpn -> pfn``.

        ``order`` must be 0 (4 KiB) or ``HUGE_ORDER`` (2 MiB leaf at the
        PMD level, requiring 512-page alignment of both vpn and pfn).
        Raises :class:`MappingError` on remap or granularity conflicts.
        """
        if order not in (0, HUGE_ORDER):
            raise MappingError(f"unsupported mapping order {order}")
        pte_flags = flags | PteFlags.PRESENT
        if order == HUGE_ORDER:
            if not is_aligned(vpn, HUGE_PAGES) or not is_aligned(pfn, HUGE_PAGES):
                raise MappingError(
                    f"huge mapping needs 2M alignment: vpn={vpn:#x} pfn={pfn:#x}"
                )
            pte_flags |= PteFlags.HUGE
            node = self._walk_to_level(vpn, 2, create=True)
            idx = _index(vpn, 2)
            existing = node.entries.get(idx)
            if isinstance(existing, _Node) and not existing.entries:
                # An empty PT node left behind by unmaps; reclaim it.
                existing = None
            if existing is not None:
                raise MappingError(
                    f"PMD slot for vpn {vpn:#x} already holds a "
                    f"{'table' if isinstance(existing, _Node) else 'mapping'}"
                )
            pte = Pte(pfn, pte_flags)
            node.entries[idx] = pte
        else:
            node = self._walk_to_level(vpn, 1, create=True)
            idx = _index(vpn, 1)
            if idx in node.entries:
                raise MappingError(f"vpn {vpn:#x} already mapped")
            pte = Pte(pfn, pte_flags)
            node.entries[idx] = pte
        self._leaf_count += 1
        return pte

    def map_span(self, vpn: int, pfn: int, n_pages: int, flags: PteFlags,
                 contig_from: int | None = None) -> Pte:
        """Install ``n_pages`` consecutive 4 KiB leaves ``vpn+i -> pfn+i``.

        The bulk analogue of ``n_pages`` order-0 :meth:`map` calls: one
        radix descent per 512-entry PT node instead of one per page, and
        no per-page collision checks — callers guarantee the span is
        unmapped (the fault path derives spans from the mapping runs,
        which mirror the table exactly).  Pages at index >=
        ``contig_from`` get :attr:`PteFlags.CONTIG` at creation (the
        batched contiguity-bit rule).  Returns the last installed Pte.
        """
        base_flags = flags | PteFlags.PRESENT
        contig_flags = base_flags | PteFlags.CONTIG
        if contig_from is None:
            contig_from = n_pages
        done = 0
        pte: Pte | None = None
        while done < n_pages:
            v = vpn + done
            node = self._walk_to_level(v, 1, create=True)
            entries = node.entries
            idx = v & (LEVEL_FANOUT - 1)
            chunk = min(n_pages - done, LEVEL_FANOUT - idx)
            p = pfn + done
            for i in range(chunk):
                pte = Pte(
                    p + i,
                    contig_flags if done + i >= contig_from else base_flags,
                )
                entries[idx + i] = pte
            done += chunk
        self._leaf_count += n_pages
        assert pte is not None
        return pte

    def unmap(self, vpn: int) -> Pte:
        """Remove the leaf covering ``vpn`` and return it.

        A huge leaf is removed whole; ``vpn`` may be any page inside it.
        """
        path = self._walk_path(vpn)
        if path is None:
            raise MappingError(f"unmapping absent vpn {vpn:#x}")
        node, idx, pte, _level = path
        del node.entries[idx]
        self._leaf_count -= 1
        return pte

    def unmap_region_leaves(self, region_vpn: int) -> list[tuple[int, Pte]]:
        """Detach every 4 KiB leaf of one 2 MiB-aligned region at once.

        The region maps to exactly one PT node, so the whole batch is a
        single descent plus one dict sweep — the promotion hot path —
        instead of one full walk per page.  Returns ``(vpn, pte)`` pairs
        in VPN order; raises :class:`MappingError` when the PMD slot
        holds a huge leaf (callers promote only non-huge regions).
        """
        if not is_aligned(region_vpn, HUGE_PAGES):
            raise MappingError(f"region vpn {region_vpn:#x} not 2M-aligned")
        node = self._root
        for level in range(self.levels, 2, -1):
            entry = node.entries.get(_index(region_vpn, level))
            if entry is None:
                return []
            node = entry
        pt = node.entries.get(_index(region_vpn, 2))
        if pt is None:
            return []
        if isinstance(pt, Pte):
            raise MappingError(
                f"region {region_vpn:#x} is mapped by a huge leaf"
            )
        removed = [
            (region_vpn + idx, pte) for idx, pte in sorted(pt.entries.items())
        ]
        pt.entries.clear()
        self._leaf_count -= len(removed)
        return removed

    # -- lookup ------------------------------------------------------------

    def walk(self, vpn: int) -> WalkResult:
        """Walk the table for ``vpn``, counting levels referenced."""
        node = self._root
        for level in range(self.levels, 0, -1):
            entry = node.entries.get(_index(vpn, level))
            levels_touched = self.levels - level + 1
            if entry is None:
                return WalkResult(None, vpn, levels_touched)
            if isinstance(entry, Pte):
                base = vpn & ~(HUGE_PAGES - 1) if entry.huge else vpn
                return WalkResult(entry, base, levels_touched)
            node = entry
        raise MappingError(f"malformed page table at vpn {vpn:#x}")  # pragma: no cover

    def lookup(self, vpn: int) -> Pte | None:
        """The leaf covering ``vpn``, or None."""
        result = self.walk(vpn)
        return result.pte

    def translate(self, vpn: int) -> int | None:
        """PFN backing ``vpn``, or None when unmapped."""
        result = self.walk(vpn)
        return result.translate(vpn) if result.hit else None

    def is_mapped(self, vpn: int) -> bool:
        """True when a present leaf covers ``vpn``."""
        return self.walk(vpn).hit

    # -- iteration / stats ----------------------------------------------------

    @property
    def leaf_count(self) -> int:
        """Number of installed leaves (huge leaves count once)."""
        return self._leaf_count

    def iter_leaves(self) -> Iterator[tuple[int, Pte]]:
        """Yield ``(base_vpn, pte)`` for every leaf in VPN order."""
        yield from self._iter_node(self._root, self.levels, 0)

    def _iter_node(self, node: _Node, level: int, base: int) -> Iterator[tuple[int, Pte]]:
        shift = LEVEL_BITS * (level - 1)
        for idx in sorted(node.entries):
            entry = node.entries[idx]
            vpn = base | (idx << shift)
            if isinstance(entry, Pte):
                yield vpn, entry
            else:
                yield from self._iter_node(entry, level - 1, vpn)

    def mapped_pages(self) -> int:
        """Total base pages mapped."""
        return sum(
            HUGE_PAGES if pte.huge else 1 for _, pte in self.iter_leaves()
        )

    def node_count(self) -> int:
        """Number of table nodes (memory overhead diagnostics)."""
        def count(node: _Node) -> int:
            return 1 + sum(
                count(e) for e in node.entries.values() if isinstance(e, _Node)
            )

        return count(self._root)

    def huge_slot_free(self, vpn: int) -> bool:
        """True when the PMD slot covering ``vpn`` could take a huge leaf.

        The slot is free when no leaf occupies it and no PT node with
        live 4 KiB entries hangs below it.
        """
        node = self._root
        for level in range(self.levels, 2, -1):
            entry = node.entries.get(_index(vpn, level))
            if entry is None:
                return True
            if isinstance(entry, Pte):  # pragma: no cover - 1G leaves unmodelled
                return False
            node = entry
        entry = node.entries.get(_index(vpn, 2))
        if entry is None:
            return True
        if isinstance(entry, Pte):
            return False
        return len(entry.entries) == 0

    # -- internals -----------------------------------------------------------

    def _walk_to_level(self, vpn: int, stop_level: int, create: bool) -> _Node:
        """Descend to the node at ``stop_level``, optionally creating path."""
        node = self._root
        for level in range(self.levels, stop_level, -1):
            idx = _index(vpn, level)
            entry = node.entries.get(idx)
            if entry is None:
                if not create:
                    raise MappingError(f"no table node at level {level - 1}")
                entry = _Node()
                node.entries[idx] = entry
            elif isinstance(entry, Pte):
                raise MappingError(
                    f"vpn {vpn:#x} covered by a huge leaf at level {level}"
                )
            node = entry
        return node

    def _walk_path(self, vpn: int) -> tuple[_Node, int, Pte, int] | None:
        """Locate the leaf covering ``vpn`` with its parent node and index."""
        node = self._root
        for level in range(self.levels, 0, -1):
            idx = _index(vpn, level)
            entry = node.entries.get(idx)
            if entry is None:
                return None
            if isinstance(entry, Pte):
                return node, idx, entry, level
            node = entry
        return None
