"""Per-process address spaces: VMA management + page table + run tracking.

The address space owns the three views of a process's memory that the
rest of the library consumes:

- the VMA list (``mmap``/``munmap``),
- the radix page table (installed mappings),
- the :class:`~repro.vm.mapping_runs.MappingRuns` set of contiguous
  mappings, updated on every map/unmap (the contiguity statistics and
  the SpOT contiguity bit read it).
"""

from __future__ import annotations

import bisect
from typing import Iterator

import numpy as np

from repro.errors import AddressSpaceError, MappingError
from repro.units import HUGE_PAGES, align_up
from repro.vm.flags import PteFlags, VmaFlags
from repro.vm.mapping_runs import MappingRuns
from repro.vm.page_table import PageTable, Pte
from repro.vm.vma import Vma

#: Where the bump allocator places the first VMA (arbitrary, huge-aligned).
DEFAULT_MMAP_BASE_VPN = 0x7F00_0000_0000 >> 12  # 0x7f0000000 pages
#: Unmapped guard gap between consecutive VMAs, in pages.
VMA_GAP_PAGES = HUGE_PAGES

#: Sentinel in a :class:`VmaColumns` pfn column for unmapped pages.
NO_FRAME = -1


class VmaColumns:
    """Structure-of-arrays mirror of one VMA's leaf state.

    Four parallel columns indexed by ``vpn - vma.start_vpn``: a present
    bitmap, the backing PFN (``NO_FRAME`` when unmapped — together with
    the VPN index this is the per-page offset array), and mirrors of the
    DIRTY and CONTIG PTE bits.  Maintained incrementally by the columnar
    address-space paths so utilization/promotion scans become array
    reductions instead of page-table walks.
    """

    __slots__ = ("start_vpn", "present", "pfn", "dirty", "contig")

    def __init__(self, vma: Vma):
        self.start_vpn = vma.start_vpn
        self.present = np.zeros(vma.n_pages, dtype=bool)
        self.pfn = np.full(vma.n_pages, NO_FRAME, dtype=np.int64)
        self.dirty = np.zeros(vma.n_pages, dtype=bool)
        self.contig = np.zeros(vma.n_pages, dtype=bool)


class AddressSpace:
    """Virtual address space of one process (or one guest kernel)."""

    def __init__(self, mmap_base_vpn: int = DEFAULT_MMAP_BASE_VPN):
        self.page_table = PageTable()
        self.runs = MappingRuns()
        self._vma_starts: list[int] = []
        self._vmas: dict[int, Vma] = {}
        self._mmap_cursor = mmap_base_vpn
        #: True when per-VMA columns are maintained (columnar engine);
        #: scalar/fast address spaces pay nothing for the feature.
        self.columnar = False
        self._columns: dict[int, VmaColumns] = {}

    # -- VMA management ----------------------------------------------------

    def mmap(
        self,
        n_pages: int,
        flags: VmaFlags,
        at_vpn: int | None = None,
        name: str = "",
        file=None,
    ) -> Vma:
        """Create a VMA of ``n_pages``; address chosen by a bump allocator.

        Virtual starts are 2 MiB-aligned (like Linux THP-friendly mmap)
        and separated by a guard gap so distinct VMAs never produce
        accidentally adjacent virtual pages.
        """
        if n_pages <= 0:
            raise AddressSpaceError(f"mmap of {n_pages} pages")
        if at_vpn is None:
            at_vpn = align_up(self._mmap_cursor, HUGE_PAGES)
        if self._overlaps(at_vpn, n_pages):
            raise AddressSpaceError(
                f"VMA [{at_vpn:#x}, {at_vpn + n_pages:#x}) overlaps an existing one"
            )
        vma = Vma(at_vpn, n_pages, flags, name=name, file=file)
        bisect.insort(self._vma_starts, at_vpn)
        self._vmas[at_vpn] = vma
        self._mmap_cursor = max(
            self._mmap_cursor, align_up(vma.end_vpn + VMA_GAP_PAGES, HUGE_PAGES)
        )
        return vma

    def munmap(self, vma: Vma) -> list[tuple[int, Pte]]:
        """Remove a VMA; returns the leaves that were mapped inside it.

        The caller (kernel) frees the underlying frames.
        """
        if self._vmas.get(vma.start_vpn) is not vma:
            raise AddressSpaceError(f"munmap of unknown VMA {vma!r}")
        removed: list[tuple[int, Pte]] = []
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            walk = self.page_table.walk(vpn)
            if walk.hit:
                self.page_table.unmap(vpn)
                removed.append((walk.base_vpn, walk.pte))
                self.runs.remove(walk.base_vpn, 1 << walk.pte.order)
                vpn = walk.base_vpn + (1 << walk.pte.order)
            else:
                vpn += 1
        i = bisect.bisect_left(self._vma_starts, vma.start_vpn)
        del self._vma_starts[i]
        del self._vmas[vma.start_vpn]
        vma.mapped_pages = 0
        self._columns.pop(vma.start_vpn, None)
        return removed

    def _overlaps(self, start: int, n_pages: int) -> bool:
        end = start + n_pages
        i = bisect.bisect_right(self._vma_starts, start)
        if i > 0 and self._vmas[self._vma_starts[i - 1]].end_vpn > start:
            return True
        return i < len(self._vma_starts) and self._vma_starts[i] < end

    def vma_at(self, vpn: int) -> Vma | None:
        """The VMA covering ``vpn``, or None."""
        i = bisect.bisect_right(self._vma_starts, vpn)
        if i == 0:
            return None
        vma = self._vmas[self._vma_starts[i - 1]]
        return vma if vma.contains(vpn) else None

    def iter_vmas(self) -> Iterator[Vma]:
        """VMAs in address order."""
        return (self._vmas[s] for s in self._vma_starts)

    @property
    def vma_count(self) -> int:
        """Number of VMAs."""
        return len(self._vmas)

    # -- mapping installation -------------------------------------------------

    def install(self, vma: Vma, vpn: int, pfn: int, order: int, flags: PteFlags) -> Pte:
        """Map ``vpn -> pfn`` and update run tracking + VMA accounting."""
        pte = self.page_table.map(vpn, pfn, order=order, flags=flags)
        self.runs.add(vpn, pfn, 1 << order)
        vma.mapped_pages += 1 << order
        if self.columnar:
            self._note_installed(vma, vpn, pfn, 1 << order, pte.flags)
        return pte

    def install_run(self, vma: Vma, vpn: int, pfn: int, n_pages: int,
                    flags: PteFlags, contig_from: int | None = None):
        """Map ``n_pages`` consecutive base leaves in one batch.

        The columnar fault path's installer: one :meth:`PageTable.map_span`
        descent per PT node, one run insertion, one accounting update and
        one column slice write for the whole physical segment.  Pages at
        index >= ``contig_from`` carry the CONTIG bit from creation.
        Returns ``(merged_run, last_pte)`` so the caller can apply the
        successor-merge contiguity fixup.
        """
        last = self.page_table.map_span(vpn, pfn, n_pages, flags, contig_from)
        run = self.runs.add(vpn, pfn, n_pages)
        vma.mapped_pages += n_pages
        if self.columnar:
            cols = self.columns_for(vma)
            i = vpn - vma.start_vpn
            cols.present[i : i + n_pages] = True
            cols.pfn[i : i + n_pages] = np.arange(pfn, pfn + n_pages, dtype=np.int64)
            if flags & PteFlags.DIRTY:
                cols.dirty[i : i + n_pages] = True
            if contig_from is not None and contig_from < n_pages:
                cols.contig[i + contig_from : i + n_pages] = True
        return run, last

    def uninstall(self, vma: Vma, vpn: int) -> Pte:
        """Unmap the leaf covering ``vpn``; update runs and accounting."""
        walk = self.page_table.walk(vpn)
        if not walk.hit:
            raise MappingError(f"uninstall of unmapped vpn {vpn:#x}")
        self.page_table.unmap(vpn)
        pages = 1 << walk.pte.order
        self.runs.remove(walk.base_vpn, pages)
        vma.mapped_pages -= pages
        if self.columnar:
            self._note_uninstalled(vma, walk.base_vpn, pages)
        return walk.pte

    def uninstall_region(self, vma: Vma, region_vpn: int) -> list[tuple[int, int, int]]:
        """Unmap every 4 KiB leaf of one 2 MiB region in one batch.

        The promotion fast path: detaches the region's PT leaves with a
        single page-table descent and removes the covering runs whole,
        returning the removed ``(vpn, pfn, n_pages)`` chunks so the
        caller can release contiguous physical stretches together.
        """
        from repro.units import HUGE_PAGES as _HUGE

        removed = self.page_table.unmap_region_leaves(region_vpn)
        chunks = self.runs.remove_span(region_vpn, region_vpn + _HUGE)
        vma.mapped_pages -= len(removed)
        if self.columnar and removed:
            self._note_uninstalled(vma, region_vpn, _HUGE)
        return chunks

    # -- columnar per-VMA state --------------------------------------------

    def columns_for(self, vma: Vma) -> VmaColumns:
        """The VMA's column set, created lazily on first use."""
        cols = self._columns.get(vma.start_vpn)
        if cols is None:
            cols = self._columns[vma.start_vpn] = VmaColumns(vma)
        return cols

    def _note_installed(self, vma: Vma, vpn: int, pfn: int, n_pages: int,
                        flags: PteFlags) -> None:
        cols = self.columns_for(vma)
        i = vpn - vma.start_vpn
        cols.present[i : i + n_pages] = True
        cols.pfn[i : i + n_pages] = np.arange(pfn, pfn + n_pages, dtype=np.int64)
        cols.dirty[i : i + n_pages] = bool(flags & PteFlags.DIRTY)
        cols.contig[i : i + n_pages] = bool(flags & PteFlags.CONTIG)

    def _note_uninstalled(self, vma: Vma, vpn: int, n_pages: int) -> None:
        cols = self.columns_for(vma)
        i = vpn - vma.start_vpn
        cols.present[i : i + n_pages] = False
        cols.pfn[i : i + n_pages] = NO_FRAME
        cols.dirty[i : i + n_pages] = False
        cols.contig[i : i + n_pages] = False

    def note_contig(self, vpn: int, n_pages: int) -> None:
        """Mirror a CONTIG-bit upgrade of an existing leaf to the columns."""
        if not self.columnar:
            return
        vma = self.vma_at(vpn)
        if vma is None:
            return
        i = vpn - vma.start_vpn
        self.columns_for(vma).contig[i : i + n_pages] = True

    def note_remap(self, vpn: int, pfn: int, n_pages: int) -> None:
        """Mirror an in-place PFN change (page exchange) to the columns."""
        if not self.columnar:
            return
        vma = self.vma_at(vpn)
        if vma is None:
            return
        i = vpn - vma.start_vpn
        cols = self.columns_for(vma)
        cols.pfn[i : i + n_pages] = np.arange(pfn, pfn + n_pages, dtype=np.int64)

    def region_resident_pages(self, vma: Vma, start: int, end: int) -> int:
        """Mapped pages in ``[start, end)`` of one VMA.

        On a columnar space this is a bitmap reduction (the Ingens
        utilization scan); otherwise it falls back to the run cover.
        """
        if self.columnar:
            cols = self.columns_for(vma)
            i = start - vma.start_vpn
            return int(np.count_nonzero(cols.present[i : end - vma.start_vpn]))
        return self.runs.covered_pages(start, end)

    # -- queries ---------------------------------------------------------------

    def is_mapped(self, vpn: int) -> bool:
        """True when a present leaf covers ``vpn``."""
        return self.page_table.is_mapped(vpn)

    def translate(self, vpn: int) -> int | None:
        """PFN backing ``vpn``, or None."""
        return self.page_table.translate(vpn)

    @property
    def resident_pages(self) -> int:
        """Total base pages currently mapped."""
        return self.runs.total_pages

    def huge_candidate(self, vma: Vma, vpn: int) -> int | None:
        """The 2 MiB-aligned base VPN for a THP fault at ``vpn``.

        Returns None when the aligned region does not fit inside the
        VMA, THP is disabled for it, or part of the region is already
        mapped (Linux would then fall back to base pages).
        """
        if vma.flags & VmaFlags.NOHUGE:
            return None
        base = vpn & ~(HUGE_PAGES - 1)
        if base < vma.start_vpn or base + HUGE_PAGES > vma.end_vpn:
            return None
        # A PMD-aligned region is mappable only if the PMD slot holds
        # neither a leaf nor a PT node with live 4K entries (Linux
        # falls back to base pages otherwise).
        if not self.page_table.huge_slot_free(base):
            return None
        return base
