"""Unsafe-load (USL) estimation for SpOT's security cost (Table VII).

Speculation windows execute loads whose side effects must be hidden
from the cache hierarchy by Spectre-class mitigations (InvisiSpec).
Table VII estimates how many loads run unsafely under SpOT versus under
ordinary branch speculation:

- ``Spectre USL = #branches · branch_resolution_cycles · loads_per_cycle``
- ``SpOT USL    = #dtlb_misses · page_walk_cycles · loads_per_cycle``

Both are reported as percentages of total instructions, assuming loads
are distributed linearly over time (paper §VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper constants (§VI-B): branches resolve in ~20 cycles, the average
#: nested page walk takes ~81 cycles.
BRANCH_RESOLUTION_CYCLES = 20.0
DEFAULT_WALK_CYCLES = 81.0


@dataclass
class UslEstimate:
    """Table VII row: speculation exposure of one workload."""

    branches_per_instruction: float
    dtlb_misses_per_instruction: float
    spectre_usl_per_instruction: float
    spot_usl_per_instruction: float

    def as_percentages(self) -> dict[str, float]:
        """The four Table VII columns, in percent."""
        return {
            "branches/instructions(%)": 100 * self.branches_per_instruction,
            "dtlb_misses/instructions(%)": 100 * self.dtlb_misses_per_instruction,
            "spectre_usl/instructions(%)": 100 * self.spectre_usl_per_instruction,
            "spot_usl/instructions(%)": 100 * self.spot_usl_per_instruction,
        }


def estimate_usl(
    instructions: int,
    branches: int,
    dtlb_misses: int,
    loads: int,
    cycles: float,
    walk_cycles: float = DEFAULT_WALK_CYCLES,
    branch_resolution_cycles: float = BRANCH_RESOLUTION_CYCLES,
) -> UslEstimate:
    """Apply Table VII's two equations to one workload's counters."""
    if instructions <= 0 or cycles <= 0:
        raise ValueError("instructions and cycles must be positive")
    loads_per_cycle = loads / cycles
    spectre_usl = branches * branch_resolution_cycles * loads_per_cycle
    spot_usl = dtlb_misses * walk_cycles * loads_per_cycle
    return UslEstimate(
        branches_per_instruction=branches / instructions,
        dtlb_misses_per_instruction=dtlb_misses / instructions,
        spectre_usl_per_instruction=spectre_usl / instructions,
        spot_usl_per_instruction=spot_usl / instructions,
    )
