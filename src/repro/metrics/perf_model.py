"""The linear address-translation overhead model (paper Table IV).

The paper never times SpOT/vRMM/DS directly — like all prior work it
measures or simulates TLB-miss counts and charges them against an
*ideal* execution time with zero translation overhead:

- ``T_ideal = T_THP − C_THP`` (measured THP cycles minus walk cycles),
- paging overhead = walk cycles / ``T_ideal``,
- ``O_vRMM = M_sim · AvgC_vTHP / T_ideal`` (range walks hidden),
- ``O_DS   = M_sim · AvgC_v4K / T_ideal`` (misses left outside the
  segment walk at 4K cost),
- ``O_SpOT = (NP_sim · AvgC + MP_sim · (AvgC + MP_penalty)) / T_ideal``
  (correct predictions are free, no-predictions expose the full walk,
  mispredictions add a 20-cycle flush on top of it).

Here the inputs come from the MMU simulator instead of perf counters,
and ``T_ideal`` from the workload's nominal instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WalkCosts:
    """Average page-walk costs in cycles per configuration (AvgC).

    Defaults follow the paper's measurements: the average nested walk
    under THP is ~81 cycles (§VI-B); base-page tables walk longer, and
    native walks are roughly 2.4x cheaper than nested ones.
    """

    native_4k: float = 50.0
    native_thp: float = 34.0
    nested_4k: float = 120.0
    nested_thp: float = 81.0
    mispredict_penalty: float = 20.0
    #: Utopia restrictive-region translation cost (cycles): a set-index
    #: computation plus one tag fetch, far below any walk.
    utopia_rest_cycles: float = 12.0

    def walk_cost(self, virtualized: bool, huge: bool) -> float:
        """AvgC for one configuration."""
        if virtualized:
            return self.nested_thp if huge else self.nested_4k
        return self.native_thp if huge else self.native_4k


@dataclass
class PerfModel:
    """Overhead calculator for one workload run.

    Parameters
    ----------
    t_ideal_cycles:
        Ideal execution cycles with zero translation overhead.
    costs:
        Average walk costs (AvgC) per configuration.
    """

    t_ideal_cycles: float
    costs: WalkCosts = WalkCosts()

    def _check(self) -> None:
        if self.t_ideal_cycles <= 0:
            raise ValueError("t_ideal_cycles must be positive")

    def paging_overhead(self, walks: int, virtualized: bool, huge: bool) -> float:
        """O_4K / O_THP / O_v4K / O_vTHP: all walks at full cost."""
        self._check()
        return walks * self.costs.walk_cost(virtualized, huge) / self.t_ideal_cycles

    def vrmm_overhead(self, uncovered_walks: int, virtualized: bool = True) -> float:
        """O_vRMM: only walks not covered by range translations pay."""
        self._check()
        avg = self.costs.walk_cost(virtualized, huge=True)
        return uncovered_walks * avg / self.t_ideal_cycles

    def ds_overhead(self, outside_segment_walks: int, virtualized: bool = True) -> float:
        """O_DS: misses outside the direct segment pay a 4K-table walk."""
        self._check()
        avg = self.costs.walk_cost(virtualized, huge=False)
        return outside_segment_walks * avg / self.t_ideal_cycles

    def ctlb_overhead(self, uncovered_walks: int, virtualized: bool = True,
                      huge: bool = True) -> float:
        """O_cTLB: only misses no coalesced entry covers pay a walk
        (the same only-uncovered accounting vRMM gets)."""
        self._check()
        avg = self.costs.walk_cost(virtualized, huge)
        return uncovered_walks * avg / self.t_ideal_cycles

    def utopia_overhead(self, flex_walks: int, rest_hits: int,
                        virtualized: bool = True, huge: bool = True) -> float:
        """O_Utopia: flexible misses pay the full walk, restrictive
        misses pay the cheap RestSeg translation."""
        self._check()
        avg = self.costs.walk_cost(virtualized, huge)
        cycles = flex_walks * avg + rest_hits * self.costs.utopia_rest_cycles
        return cycles / self.t_ideal_cycles

    def seg_overhead(self, outside_walks: int, virtualized: bool = True) -> float:
        """O_Seg: misses outside every base/limit segment pay a 4K-table
        walk (the DS residual accounting)."""
        self._check()
        avg = self.costs.walk_cost(virtualized, huge=False)
        return outside_walks * avg / self.t_ideal_cycles

    def spot_overhead(
        self,
        no_predictions: int,
        mispredictions: int,
        virtualized: bool = True,
        huge: bool = True,
    ) -> float:
        """O_SpOT per Table IV.

        Correct predictions hide the whole walk; decisions not to
        speculate expose it; mispredictions add the flush penalty on
        top of the walk.
        """
        self._check()
        avg = self.costs.walk_cost(virtualized, huge)
        cycles = no_predictions * avg + mispredictions * (
            avg + self.costs.mispredict_penalty
        )
        return cycles / self.t_ideal_cycles
