"""Contiguity metrics: the paper's three headline statistics.

Given the set of contiguous mapping runs of a footprint (1D for native,
2D for virtualized execution):

- *coverage of the K largest mappings* — what fraction of the footprint
  the K biggest runs cover (paper uses K = 32 and 128; higher better),
- *mappings for P coverage* — how many runs, largest first, are needed
  to cover fraction P of the footprint (paper uses 99%; lower better).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.vm.mapping_runs import MappingRuns


def _sizes(runs: MappingRuns | Sequence[int]) -> list[int]:
    if isinstance(runs, MappingRuns):
        return runs.sizes_desc()
    return sorted(runs, reverse=True)


def coverage_of_k_largest(
    runs: MappingRuns | Sequence[int], footprint_pages: int, k: int
) -> float:
    """Fraction of the footprint covered by the ``k`` largest mappings."""
    if footprint_pages <= 0:
        return 0.0
    sizes = _sizes(runs)
    return min(1.0, sum(sizes[:k]) / footprint_pages)


def mappings_for_coverage(
    runs: MappingRuns | Sequence[int], footprint_pages: int, coverage: float = 0.99
) -> int:
    """Number of mappings (largest first) covering ``coverage`` of the footprint.

    Returns one more than the run count when even all runs fall short
    (possible when part of the footprint is unmapped), so that
    unreachable coverage is visible in results.
    """
    if footprint_pages <= 0:
        return 0
    goal = coverage * footprint_pages
    covered = 0.0
    for i, size in enumerate(_sizes(runs), start=1):
        covered += size
        if covered >= goal:
            return i
    return len(_sizes(runs)) + 1


@dataclass
class ContiguitySample:
    """One contiguity measurement (a point on the paper's time series)."""

    #: Position of the sample: pages touched so far (allocation progress).
    touched_pages: int
    footprint_pages: int
    coverage_32: float
    coverage_128: float
    mappings_99: int
    total_runs: int

    @classmethod
    def empty(cls) -> "ContiguitySample":
        return cls(0, 0, 0.0, 0.0, 0, 0)


def sample_contiguity(
    runs: MappingRuns | Sequence[int],
    footprint_pages: int,
    touched_pages: int | None = None,
) -> ContiguitySample:
    """Compute the paper's three statistics in one pass."""
    sizes = _sizes(runs)
    return ContiguitySample(
        touched_pages=footprint_pages if touched_pages is None else touched_pages,
        footprint_pages=footprint_pages,
        coverage_32=coverage_of_k_largest(sizes, footprint_pages, 32),
        coverage_128=coverage_of_k_largest(sizes, footprint_pages, 128),
        mappings_99=mappings_for_coverage(sizes, footprint_pages, 0.99),
        total_runs=len(sizes),
    )


def average_samples(samples: Iterable[ContiguitySample]) -> ContiguitySample:
    """Average a time series of samples (the paper averages over time)."""
    samples = list(samples)
    if not samples:
        return ContiguitySample.empty()
    n = len(samples)
    return ContiguitySample(
        touched_pages=samples[-1].touched_pages,
        footprint_pages=samples[-1].footprint_pages,
        coverage_32=sum(s.coverage_32 for s in samples) / n,
        coverage_128=sum(s.coverage_128 for s in samples) / n,
        mappings_99=round(sum(s.mappings_99 for s in samples) / n),
        total_runs=round(sum(s.total_runs for s in samples) / n),
    )


def suggest_contig_threshold(
    runs: MappingRuns | Sequence[int],
    minimum: int = 8,
    maximum: int = 512,
) -> int:
    """Dynamic SpOT contiguity-bit threshold (paper §IV-C).

    The paper fixes the threshold at 32 contiguous pages but notes CA
    paging could adjust it from its contiguity statistics.  This
    heuristic marks mappings an order of magnitude below the *median*
    run length as prediction candidates (power of two, clamped), so a
    well-coalesced process filters aggressively while a fragmented one
    still feeds the predictor.
    """
    sizes = _sizes(runs)
    if not sizes:
        return 32
    median = sizes[len(sizes) // 2]
    threshold = minimum
    while threshold * 2 <= max(minimum, median // 8) and threshold * 2 <= maximum:
        threshold *= 2
    return threshold


def geomean(values: Iterable[float], floor: float = 1e-12) -> float:
    """Geometric mean with a floor guarding zero entries."""
    vals = [max(float(v), floor) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
