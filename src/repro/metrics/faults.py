"""Fault-latency and memory-bloat accounting (Tables V and VI, Fig. 11).

- Table V compares total fault counts and 99th-percentile fault latency
  between THP, CA and eager paging,
- Table VI reports *bloat*: extra memory allocated relative to pure 4K
  demand paging (which backs exactly the touched pages),
- Fig. 11 normalizes software runtime overheads (migrations, placement
  searches) against THP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.kernel import Kernel
from repro.vm.process import Process


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (0 for an empty sequence)."""
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, round(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def bloat_pages(process: Process) -> int:
    """Extra pages allocated beyond what the workload touched.

    Pure 4K demand paging backs exactly the touched pages, so bloat =
    resident − touched.  THP bloats at huge-page tails, eager paging at
    whole untouched VMA regions.
    """
    return max(0, process.resident_pages - process.touched_pages)


@dataclass
class FaultSummary:
    """Table V row for one configuration."""

    total_faults: int
    p99_latency_us: float
    mean_latency_us: float

    @classmethod
    def from_kernel(cls, kernel: Kernel) -> "FaultSummary":
        latencies = kernel.fault_latencies_us()
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return cls(
            total_faults=kernel.major_faults,
            p99_latency_us=percentile(latencies, 99.0),
            mean_latency_us=mean,
        )


@dataclass
class SoftwareOverhead:
    """Fig. 11: software-side runtime cost relative to useful work.

    Modelled as microseconds of kernel work (fault handling, placement
    searches, migrations + shootdowns) per page of footprint; the
    experiment normalizes each policy to THP.
    """

    fault_us: float
    migration_us: float
    shootdown_us: float

    #: Cost constants: migrating a page copies 4 KiB (~1.2 us) and a
    #: TLB shootdown IPI costs ~4 us (both in the range Linux reports).
    MIGRATION_US_PER_PAGE = 1.2
    SHOOTDOWN_US = 4.0

    @classmethod
    def from_kernel(cls, kernel: Kernel) -> "SoftwareOverhead":
        return cls(
            fault_us=sum(kernel.fault_latencies_us()),
            migration_us=kernel.policy.stats.migrations * cls.MIGRATION_US_PER_PAGE,
            shootdown_us=kernel.tlb_shootdowns * cls.SHOOTDOWN_US,
        )

    @property
    def total_us(self) -> float:
        """All modelled kernel time."""
        return self.fault_us + self.migration_us + self.shootdown_us

    def normalized_runtime(self, baseline: "SoftwareOverhead",
                           useful_us: float) -> float:
        """Runtime relative to a baseline given shared useful work."""
        if useful_us <= 0:
            raise ValueError("useful_us must be positive")
        return (useful_us + self.total_us) / (useful_us + baseline.total_us)
