"""Metrics: the quantities the paper's tables and figures report.

- :mod:`repro.metrics.contiguity` — footprint coverage of the K largest
  mappings and #mappings for 99% coverage (Figs. 7/8/10/12, Table I),
- :mod:`repro.metrics.perf_model` — the linear translation-overhead
  model of Table IV,
- :mod:`repro.metrics.faults` — fault counts, latency percentiles and
  memory bloat (Tables V and VI, Fig. 11),
- :mod:`repro.metrics.usl` — unsafe-load estimation (Table VII).
"""

from repro.metrics.contiguity import (
    ContiguitySample,
    coverage_of_k_largest,
    mappings_for_coverage,
    sample_contiguity,
)
from repro.metrics.faults import bloat_pages, percentile
from repro.metrics.perf_model import PerfModel, WalkCosts
from repro.metrics.usl import UslEstimate, estimate_usl

__all__ = [
    "ContiguitySample",
    "PerfModel",
    "UslEstimate",
    "WalkCosts",
    "bloat_pages",
    "coverage_of_k_largest",
    "estimate_usl",
    "mappings_for_coverage",
    "percentile",
    "sample_contiguity",
]
