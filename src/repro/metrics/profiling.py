"""Lightweight wall-clock timing hooks for the simulation engine.

The bench harness (``python -m repro bench``) wraps each phase in a
:class:`Timer` / :class:`Profiler` section and derives throughput rates
from the recorded seconds and event counts; the serving layer
(:mod:`repro.serve`) reuses the same primitives plus the fixed-bucket
:class:`Histogram` for request-latency percentiles.  Kept
dependency-free and cheap enough to leave enabled in experiment code.
"""

from __future__ import annotations

import bisect
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += perf_counter() - self._started
        self._started = None


@dataclass
class Profiler:
    """Named timing sections with event counts and derived rates."""

    seconds: dict[str, float] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        """Time a block under ``name`` (accumulates across entries)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    def add(self, name: str, seconds: float, events: int = 0) -> None:
        """Record time (and optionally an event count) for a section."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        if events:
            self.events[name] = self.events.get(name, 0) + events

    def count(self, name: str, events: int) -> None:
        """Add events to a section without adding time."""
        self.events[name] = self.events.get(name, 0) + events

    def rate(self, name: str) -> float:
        """Events per second for a section.

        A section can legitimately record zero (or sub-tick) seconds —
        warm-cache serve paths finish inside one ``perf_counter`` tick —
        and a section counted via :meth:`count` may never be timed at
        all.  Both report ``0.0`` rather than dividing by zero; the
        result is always finite.
        """
        seconds = self.seconds.get(name, 0.0)
        if not seconds > 0.0 or not math.isfinite(seconds):
            return 0.0
        return self.events.get(name, 0) / seconds

    def as_dict(self) -> dict:
        """JSON-ready summary: per-section seconds, events, rates.

        Covers every section that recorded *either* time or events, so
        count-only sections (zero duration) still appear instead of
        silently dropping out of reports.
        """
        names = list(self.seconds) + [
            n for n in self.events if n not in self.seconds
        ]
        return {
            name: {
                "seconds": round(self.seconds.get(name, 0.0), 6),
                "events": self.events.get(name, 0),
                "per_second": round(self.rate(name), 1),
            }
            for name in names
        }


#: Default latency buckets (seconds): 1 ms .. 10 s, roughly log-spaced.
#: The serving layer's warm path sits in the first few buckets; cold
#: simulation runs land in the tail.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram with cumulative counts and quantiles.

    Observations land in the first bucket whose upper bound is >= the
    value; values beyond the last bound land in an implicit ``+Inf``
    overflow bucket.  Shaped so a Prometheus-style exporter can render
    it directly (cumulative ``le`` buckets plus ``sum``/``count``) and
    cheap enough to observe per request.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        value = max(0.0, float(value))
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        out = []
        running = 0
        for bound, n in zip(self.bounds + (math.inf,), self.counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0..1); 0.0 when empty.

        Interpolates linearly inside the bucket holding the quantile;
        observations in the overflow bucket report the largest finite
        bound (the estimate saturates rather than returning ``inf``).
        """
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if n:
                if running + n >= target:
                    return lower + (bound - lower) * (
                        (target - running) / n
                    )
                running += n
            lower = bound
        return self.bounds[-1]

    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        The serve layer aggregates per-job executor histograms into the
        registry-held ones this way.  Bounds must match exactly — a
        merge across different bucket layouts would silently misbin.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def as_dict(self) -> dict:
        """JSON-ready summary with common latency percentiles."""
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean(), 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }
